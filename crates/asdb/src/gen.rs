//! Deterministic synthetic-Internet generator.
//!
//! The paper's attribution tables name real networks: Table 4/6 cellular
//! carriers (TELEFONICA BRASIL, Tim Celular, Bharti Airtel, ...), Table 5
//! continents, and Figure 11 satellite ISPs (Hughes, ViaSat, Skylogic, ...).
//! We cannot redistribute real routing or MaxMind data, so this module
//! *generates* an address space with the same cast and the same relative
//! sizes: every named AS from the paper is present with a weight chosen so
//! the reproduction's rankings come out in the published order, and filler
//! ASes (broadband/academic/hosting/transit per continent) supply the
//! low-latency bulk of the responsive Internet.
//!
//! The `year` knob scales cellular address space: the paper observes
//! (Fig. 9) that the timeout needed to capture the 95th/98th/99th
//! percentiles grew from 2006 to 2015 and attributes the growth to cellular
//! hosts — so the 2006 plan allocates cellular ASes ~15% of their 2015
//! space, interpolating between.

use crate::geo::Continent;
use crate::registry::{AsInfo, AsKind, AsRegistry, Asn};
use crate::AsDb;

/// Configuration for [`InternetPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Survey year, 2006–2015. Controls the cellular share of the space.
    pub year: u16,
    /// Seed for the (purely cosmetic) jitter applied to filler AS sizes.
    pub seed: u64,
    /// Total number of /24 blocks to allocate across all ASes.
    pub total_blocks: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { year: 2015, seed: 0xbe_aa_2e, total_blocks: 4096 }
    }
}

/// One routed prefix and the AS that originates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixAllocation {
    /// Prefix bits (host-order address of the first covered IP).
    pub prefix: u32,
    /// Prefix length, 16–24 as produced by the generator.
    pub len: u8,
    /// Originating AS.
    pub asn: Asn,
}

impl PrefixAllocation {
    /// Number of /24 blocks covered.
    pub fn block_count(&self) -> u32 {
        1u32 << (24 - u32::from(self.len.min(24)))
    }

    /// Iterate the 24-bit block prefixes (i.e. `addr >> 8`) covered.
    pub fn block_prefixes(&self) -> impl Iterator<Item = u32> {
        let first = self.prefix >> 8;
        (first..first + self.block_count()).take(self.block_count() as usize)
    }
}

/// A generated Internet: the AS registry plus every routed prefix.
#[derive(Debug, Clone)]
pub struct InternetPlan {
    /// The registry of all generated ASes.
    pub registry: AsRegistry,
    /// Every routed prefix.
    pub allocations: Vec<PrefixAllocation>,
    /// The year this plan models.
    pub year: u16,
}

/// How an AS's size responds to the `year` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Growth {
    /// Cellular space: grows 2006→2015.
    CellularTrend,
    /// Stable across the study period.
    Fixed,
}

struct RosterEntry {
    asn: u32,
    name: &'static str,
    kind: AsKind,
    country: &'static str,
    continent: Continent,
    /// Relative size (in /24 blocks) at 2015.
    weight: f64,
    growth: Growth,
}

/// The cast: every AS the paper names, with weights that order Tables 4/6
/// correctly, plus filler ASes providing the responsive low-latency bulk.
fn roster() -> Vec<RosterEntry> {
    use AsKind::*;
    use Continent::*;
    use Growth::*;
    let mut r = Vec::new();
    let mut push = |asn: u32,
                    name: &'static str,
                    kind: AsKind,
                    country: &'static str,
                    continent: Continent,
                    weight: f64,
                    growth: Growth| {
        r.push(RosterEntry { asn, name, kind, country, continent, weight, growth });
    };

    // Table 4 / Table 6 cellular carriers, ordered by published turtle counts.
    push(26599, "TELEFONICA BRASIL", Cellular, "BR", SouthAmerica, 44.0, CellularTrend);
    push(26615, "Tim Celular S.A.", Cellular, "BR", SouthAmerica, 18.0, CellularTrend);
    push(45609, "Bharti Airtel Ltd.", Cellular, "IN", Asia, 15.0, CellularTrend);
    push(22394, "Cellco Partnership", Cellular, "US", NorthAmerica, 8.0, CellularTrend);
    push(1257, "TELE2", Cellular, "SE", Europe, 7.5, CellularTrend);
    push(27831, "Colombia Movil", Cellular, "CO", SouthAmerica, 7.0, CellularTrend);
    push(6306, "VENEZOLAN", Cellular, "VE", SouthAmerica, 6.5, CellularTrend);
    push(35819, "Etihad Etisalat (Mobily)", Cellular, "SA", Asia, 6.0, CellularTrend);
    push(12430, "VODAFONE ESPANA S.A.U.", Cellular, "ES", Europe, 3.0, CellularTrend);
    // Mixed networks the paper singles out for their *low* turtle fraction:
    // only part of the space behaves cellularly.
    push(3352, "TELEFONICA DE ESPANA", MixedCellular, "ES", Europe, 30.0, Fixed);
    push(9829, "National Internet Backbone", MixedCellular, "IN", Asia, 26.0, CellularTrend);
    push(4134, "Chinanet", Transit, "CN", Asia, 60.0, Fixed);

    // Figure 11 satellite ISPs.
    push(6621, "Hughes Network Systems", Satellite, "US", NorthAmerica, 3.0, Fixed);
    push(7155, "ViaSat", Satellite, "US", NorthAmerica, 2.5, Fixed);
    push(21107, "Skylogic", Satellite, "IT", Europe, 1.5, Fixed);
    push(23005, "BayCity Satellite", Satellite, "US", NorthAmerica, 1.0, Fixed);
    push(4739, "iiNet Satellite", Satellite, "AU", Oceania, 1.5, Fixed);
    push(15611, "On Line Satellite", Satellite, "IL", Asia, 1.0, Fixed);
    push(38195, "SkyMesh", Satellite, "AU", Oceania, 1.0, Fixed);
    push(52616, "Telesat", Satellite, "CA", NorthAmerica, 1.0, Fixed);
    push(19165, "Horizon Satellite", Satellite, "US", NorthAmerica, 1.0, Fixed);
    // Rural mixed provider (satellite *and* fixed wireless): appears inside
    // the satellite cluster of Fig. 11 with some low-first-percentile
    // addresses. The scenario layer keys on this ASN.
    push(22995, "Xplornet", Broadband, "CA", NorthAmerica, 2.5, Fixed);

    // Filler broadband/academic/hosting/transit: the responsive, low-latency
    // bulk of the Internet, spread over continents roughly like the real
    // responsive-address distribution.
    push(64501, "Mid-Atlantic Cable", Broadband, "US", NorthAmerica, 80.0, Fixed);
    push(64502, "Pacific Fiber Co", Broadband, "US", NorthAmerica, 60.0, Fixed);
    push(64503, "Maple DSL", Broadband, "CA", NorthAmerica, 25.0, Fixed);
    push(64504, "Rhine Telecom", Broadband, "DE", Europe, 55.0, Fixed);
    push(64505, "Gaulois Net", Broadband, "FR", Europe, 45.0, Fixed);
    push(64506, "Thames Broadband", Broadband, "GB", Europe, 40.0, Fixed);
    push(64507, "Vistula Online", Broadband, "PL", Europe, 20.0, Fixed);
    push(64508, "Nippon Hikari", Broadband, "JP", Asia, 55.0, Fixed);
    push(64509, "Han River Gigabit", Broadband, "KR", Asia, 35.0, Fixed);
    push(64510, "Mekong Connect", Broadband, "VN", Asia, 15.0, Fixed);
    push(64511, "Pampas Cable", Broadband, "AR", SouthAmerica, 16.0, Fixed);
    push(64512, "Andes DSL", Broadband, "CL", SouthAmerica, 10.0, Fixed);
    push(64513, "Sahel Wireless", Broadband, "NG", Africa, 6.0, Fixed);
    push(64514, "Cape Fibre", Broadband, "ZA", Africa, 6.0, Fixed);
    push(64515, "Southern Cross Net", Broadband, "AU", Oceania, 12.0, Fixed);
    push(64516, "Kiwi Broadband", Broadband, "NZ", Oceania, 5.0, Fixed);
    push(64521, "Unified Research Net", Academic, "US", NorthAmerica, 14.0, Fixed);
    push(64522, "EuroGrid Academia", Academic, "GR", Europe, 10.0, Fixed);
    push(64523, "Asia Pacific Uni Net", Academic, "JP", Asia, 8.0, Fixed);
    push(64531, "Rackhouse Hosting", Hosting, "US", NorthAmerica, 25.0, Fixed);
    push(64532, "Amstel Colo", Hosting, "NL", Europe, 18.0, Fixed);
    push(64541, "Continental Transit One", Transit, "US", NorthAmerica, 20.0, Fixed);
    push(64542, "Bosphorus Carrier", Transit, "RU", Europe, 15.0, Fixed);
    // Extra cellular carriers so cellular tails exist beyond the top-10 cast.
    push(64551, "Savanna Mobile", Cellular, "KE", Africa, 9.0, CellularTrend);
    push(64552, "Nile Cellular", Cellular, "EG", Africa, 7.0, CellularTrend);
    push(64553, "Ganges Wireless", Cellular, "IN", Asia, 9.0, CellularTrend);
    push(64554, "Archipelago Mobile", Cellular, "ID", Asia, 8.0, CellularTrend);
    push(64555, "Altiplano Cel", Cellular, "PE", SouthAmerica, 5.0, CellularTrend);

    r
}

/// Cellular size multiplier for a year: ~15% of 2015 size in 2006, growing
/// superlinearly (mirrors the paper's observation that the high-latency
/// population grew sharply after 2011).
fn cellular_multiplier(year: u16) -> f64 {
    let t = (f64::from(year.clamp(2006, 2015)) - 2006.0) / 9.0;
    0.15 + 0.85 * t.powf(1.4)
}

/// True if the /16 identified by its top octets is IETF/IANA reserved and
/// must not be allocated.
fn reserved_slash16(a: u8, b: u8) -> bool {
    match a {
        0 | 10 | 127 => true,
        169 if b == 254 => true,
        172 if (16..32).contains(&b) => true,
        192 if b == 168 || b == 0 => true,
        198 if b == 18 || b == 19 || b == 51 => true,
        203 if b == 0 => true,
        a if a >= 224 => true,
        _ => false,
    }
}

impl InternetPlan {
    /// Generate a plan deterministically from `cfg`.
    pub fn generate(cfg: &GenConfig) -> Self {
        let mult = cellular_multiplier(cfg.year);
        let roster = roster();

        // Effective weights for this year.
        let weights: Vec<f64> = roster
            .iter()
            .map(|e| match e.growth {
                Growth::CellularTrend => e.weight * mult,
                Growth::Fixed => e.weight,
            })
            .collect();
        let total_weight: f64 = weights.iter().sum();

        let mut registry = AsRegistry::new();
        let mut allocations = Vec::new();
        // Allocation cursor in /24-block units (i.e. address >> 8), starting
        // at 1.0.0.0.
        let mut cursor: u32 = 1 << 16;
        let mut jitter = cfg.seed | 1;

        for (entry, weight) in roster.iter().zip(&weights) {
            registry.insert(AsInfo::new(
                Asn(entry.asn),
                entry.name,
                entry.kind,
                entry.country,
                entry.continent,
            ));
            // Small deterministic jitter (±6%) so filler sizes are not
            // suspiciously round, without disturbing the ranking.
            jitter = jitter.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) | 1;
            let wobble = 0.94 + 0.12 * ((jitter >> 8) as f64 / (u64::MAX >> 8) as f64);
            let mut blocks = ((weight / total_weight) * f64::from(cfg.total_blocks) * wobble)
                .round()
                .max(1.0) as u32;
            while blocks > 0 {
                // Largest power-of-two chunk ≤ blocks, capped at a /16.
                let chunk = (1u32 << (31 - blocks.leading_zeros())).min(256);
                // Align the cursor to the chunk and skip reserved /16s.
                loop {
                    cursor = (cursor + chunk - 1) & !(chunk - 1);
                    let addr = cursor << 8;
                    let a = (addr >> 24) as u8;
                    let b = (addr >> 16) as u8;
                    if reserved_slash16(a, b) {
                        // Jump past this entire /16.
                        cursor = ((cursor >> 8) + 1) << 8;
                        continue;
                    }
                    break;
                }
                let len = 24 - chunk.trailing_zeros() as u8;
                allocations.push(PrefixAllocation {
                    prefix: cursor << 8,
                    len,
                    asn: Asn(entry.asn),
                });
                cursor += chunk;
                blocks -= chunk;
            }
        }

        InternetPlan { registry, allocations, year: cfg.year }
    }

    /// Build the lookup database for this plan.
    pub fn to_db(&self) -> AsDb {
        AsDb::new(self.registry.clone(), self.allocations.iter().copied())
    }

    /// Iterate `(block_prefix24, asn)` over every routed /24 block.
    pub fn blocks(&self) -> impl Iterator<Item = (u32, Asn)> + '_ {
        self.allocations.iter().flat_map(|a| a.block_prefixes().map(move |b| (b, a.asn)))
    }

    /// Total /24 blocks routed.
    pub fn block_count(&self) -> u32 {
        self.allocations.iter().map(|a| a.block_count()).sum()
    }

    /// Total addresses routed.
    pub fn address_count(&self) -> u64 {
        u64::from(self.block_count()) * 256
    }

    /// /24 blocks of one AS.
    pub fn blocks_of(&self, asn: Asn) -> Vec<u32> {
        self.allocations.iter().filter(|a| a.asn == asn).flat_map(|a| a.block_prefixes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = InternetPlan::generate(&cfg);
        let b = InternetPlan::generate(&cfg);
        assert_eq!(a.allocations, b.allocations);
        assert_eq!(a.registry.len(), b.registry.len());
    }

    #[test]
    fn block_budget_roughly_met() {
        let cfg = GenConfig::default();
        let plan = InternetPlan::generate(&cfg);
        let blocks = plan.block_count();
        // Rounding and the ≥1-block floor allow some slack.
        assert!(blocks > cfg.total_blocks * 85 / 100, "only {blocks} blocks");
        assert!(blocks < cfg.total_blocks * 115 / 100, "too many: {blocks}");
        assert_eq!(plan.address_count(), u64::from(blocks) * 256);
    }

    #[test]
    fn allocations_never_overlap_and_avoid_reserved() {
        let plan = InternetPlan::generate(&GenConfig::default());
        let mut seen = HashSet::new();
        for (block, _) in plan.blocks() {
            assert!(seen.insert(block), "block {block:#x} allocated twice");
            let a = (block >> 16) as u8;
            let b = (block >> 8) as u8;
            assert!(!reserved_slash16(a, b), "reserved block {a}.{b}.x.0 allocated");
        }
    }

    #[test]
    fn every_allocation_resolves_to_its_as() {
        let plan = InternetPlan::generate(&GenConfig { total_blocks: 512, ..Default::default() });
        let db = plan.to_db();
        for alloc in &plan.allocations {
            let mid = alloc.prefix + (1u32 << (32 - u32::from(alloc.len))) / 2;
            assert_eq!(db.lookup(mid).unwrap().asn, alloc.asn);
        }
    }

    #[test]
    fn paper_cast_is_present() {
        let plan = InternetPlan::generate(&GenConfig::default());
        for asn in [26599, 26615, 45609, 22394, 1257, 27831, 6306, 35819, 12430, 3352, 9829, 4134] {
            assert!(plan.registry.get(Asn(asn)).is_some(), "AS{asn} missing");
            assert!(!plan.blocks_of(Asn(asn)).is_empty(), "AS{asn} has no blocks");
        }
        assert_eq!(plan.registry.get(Asn(26599)).unwrap().name, "TELEFONICA BRASIL");
    }

    #[test]
    fn telefonica_brasil_is_largest_cellular() {
        let plan = InternetPlan::generate(&GenConfig::default());
        let tb = plan.blocks_of(Asn(26599)).len();
        for info in plan.registry.of_kind(AsKind::Cellular) {
            if info.asn != Asn(26599) {
                assert!(
                    plan.blocks_of(info.asn).len() < tb,
                    "{} not smaller than TELEFONICA BRASIL",
                    info.name
                );
            }
        }
    }

    #[test]
    fn cellular_space_grows_with_year() {
        let blocks_in = |year: u16| {
            let plan = InternetPlan::generate(&GenConfig { year, ..Default::default() });
            let cellular: usize =
                plan.registry.of_kind(AsKind::Cellular).map(|i| plan.blocks_of(i.asn).len()).sum();
            (cellular, plan.block_count() as usize)
        };
        let (c2006, t2006) = blocks_in(2006);
        let (c2011, _) = blocks_in(2011);
        let (c2015, t2015) = blocks_in(2015);
        assert!(c2006 < c2011 && c2011 < c2015, "{c2006} !< {c2011} !< {c2015}");
        // Share roughly triples-or-more over the period.
        let share06 = c2006 as f64 / t2006 as f64;
        let share15 = c2015 as f64 / t2015 as f64;
        assert!(share15 > 2.5 * share06, "share {share06:.3} -> {share15:.3}");
    }

    #[test]
    fn multiplier_endpoints() {
        assert!((cellular_multiplier(2006) - 0.15).abs() < 1e-9);
        assert!((cellular_multiplier(2015) - 1.0).abs() < 1e-9);
        assert_eq!(cellular_multiplier(1999), cellular_multiplier(2006));
        assert_eq!(cellular_multiplier(2030), cellular_multiplier(2015));
    }

    #[test]
    fn reserved_ranges_spot_check() {
        assert!(reserved_slash16(10, 5));
        assert!(reserved_slash16(192, 168));
        assert!(reserved_slash16(172, 20));
        assert!(!reserved_slash16(172, 8));
        assert!(reserved_slash16(224, 0));
        assert!(!reserved_slash16(8, 8));
    }
}
