//! Geographic attribution types.
//!
//! Table 5 of the paper ranks continents by the number of addresses with
//! RTT > 1 s; this module provides the continent enumeration and its
//! display names as they appear in that table.

/// The six populated continents the paper's Table 5 reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    /// South America — tops Table 5 (≈27% of its addresses are turtles).
    SouthAmerica,
    /// Asia — second by turtle count.
    Asia,
    /// Europe.
    Europe,
    /// Africa — highest *fraction* of turtle addresses (≈30%).
    Africa,
    /// North America — lowest turtle fraction (≈1%).
    NorthAmerica,
    /// Oceania.
    Oceania,
}

impl Continent {
    /// All continents, in the order Table 5 lists them.
    pub const ALL: [Continent; 6] = [
        Continent::SouthAmerica,
        Continent::Asia,
        Continent::Europe,
        Continent::Africa,
        Continent::NorthAmerica,
        Continent::Oceania,
    ];

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Continent::SouthAmerica => "South America",
            Continent::Asia => "Asia",
            Continent::Europe => "Europe",
            Continent::Africa => "Africa",
            Continent::NorthAmerica => "North America",
            Continent::Oceania => "Oceania",
        }
    }
}

impl std::fmt::Display for Continent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Map an ISO 3166 alpha-2 country code to its continent, for the country
/// codes the synthetic registry uses. Unknown codes return `None` rather
/// than guessing.
pub fn continent_of_country(code: &str) -> Option<Continent> {
    let c = match code {
        "BR" | "CO" | "VE" | "AR" | "CL" | "PE" | "EC" => Continent::SouthAmerica,
        "IN" | "CN" | "JP" | "KR" | "SA" | "AE" | "ID" | "TH" | "VN" | "PK" => Continent::Asia,
        "ES" | "SE" | "DE" | "FR" | "GB" | "IT" | "NL" | "GR" | "PL" | "RU" => Continent::Europe,
        "NG" | "ZA" | "EG" | "KE" | "MA" | "GH" | "TZ" => Continent::Africa,
        "US" | "CA" | "MX" => Continent::NorthAmerica,
        "AU" | "NZ" | "FJ" => Continent::Oceania,
        _ => return None,
    };
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_order_and_names() {
        assert_eq!(Continent::ALL[0].name(), "South America");
        assert_eq!(Continent::ALL[5].to_string(), "Oceania");
        assert_eq!(Continent::ALL.len(), 6);
    }

    #[test]
    fn country_mapping_spot_checks() {
        assert_eq!(continent_of_country("BR"), Some(Continent::SouthAmerica));
        assert_eq!(continent_of_country("IN"), Some(Continent::Asia));
        assert_eq!(continent_of_country("ES"), Some(Continent::Europe));
        assert_eq!(continent_of_country("US"), Some(Continent::NorthAmerica));
        assert_eq!(continent_of_country("ZZ"), None);
    }

    #[test]
    fn continents_are_distinct_and_ordered() {
        for w in Continent::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
