//! # beware-asdb
//!
//! The address-attribution substrate of the *Timeouts: Beware Surprisingly
//! High Delay* reproduction. The paper attributes high-latency addresses to
//! Autonomous Systems and continents using the MaxMind database; this crate
//! is our from-scratch substitute:
//!
//! * [`trie`] — a binary prefix trie with longest-prefix-match lookup,
//! * [`registry`] — Autonomous System records (ASN, organization, access
//!   technology, country, continent),
//! * [`geo`] — continents and countries,
//! * [`gen`] — a deterministic generator that allocates a synthetic IPv4
//!   address space to a realistic AS mix, parameterized by year so the
//!   2006→2015 growth of cellular address space (the paper's explanation of
//!   the rising-latency trend, Fig. 9) can be reproduced.
//!
//! The database view used everywhere downstream is [`AsDb`]: address in,
//! `(ASN, organization, kind, continent)` out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod geo;
pub mod persist;
pub mod registry;
pub mod trie;

pub use gen::{GenConfig, InternetPlan, PrefixAllocation};
pub use geo::Continent;
pub use registry::{AsInfo, AsKind, AsRegistry, Asn};
pub use trie::PrefixTrie;

/// Longest-prefix-match database mapping addresses to AS records.
///
/// This is the reproduction's stand-in for MaxMind GeoIP/ASN: the analysis
/// pipeline only ever asks "which AS and continent does this address belong
/// to", which is exactly [`AsDb::lookup`].
#[derive(Debug, Clone)]
pub struct AsDb {
    registry: AsRegistry,
    prefixes: PrefixTrie<Asn>,
}

impl AsDb {
    /// Build from a registry and a set of prefix allocations.
    pub fn new(
        registry: AsRegistry,
        allocations: impl IntoIterator<Item = PrefixAllocation>,
    ) -> Self {
        let mut prefixes = PrefixTrie::new();
        for alloc in allocations {
            prefixes.insert(alloc.prefix, alloc.len, alloc.asn);
        }
        AsDb { registry, prefixes }
    }

    /// Longest-prefix-match lookup of an address to its AS record.
    pub fn lookup(&self, addr: u32) -> Option<&AsInfo> {
        let asn = *self.prefixes.lookup(addr)?;
        self.registry.get(asn)
    }

    /// The AS record for an ASN, if registered.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.registry.get(asn)
    }

    /// The underlying registry.
    pub fn registry(&self) -> &AsRegistry {
        &self.registry
    }

    /// Number of installed prefixes.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_lookup_resolves_most_specific() {
        let mut reg = AsRegistry::new();
        reg.insert(AsInfo::new(
            Asn(100),
            "Coarse Transit",
            AsKind::Transit,
            "US",
            Continent::NorthAmerica,
        ));
        reg.insert(AsInfo::new(
            Asn(200),
            "Fine Cellular",
            AsKind::Cellular,
            "BR",
            Continent::SouthAmerica,
        ));
        let db = AsDb::new(
            reg,
            [
                PrefixAllocation { prefix: 0x0a00_0000, len: 8, asn: Asn(100) },
                PrefixAllocation { prefix: 0x0a01_0000, len: 16, asn: Asn(200) },
            ],
        );
        assert_eq!(db.lookup(0x0a01_0203).unwrap().asn, Asn(200));
        assert_eq!(db.lookup(0x0a02_0203).unwrap().asn, Asn(100));
        assert!(db.lookup(0x0b00_0000).is_none());
        assert_eq!(db.prefix_count(), 2);
    }
}
