//! Plain-text persistence for Internet plans.
//!
//! A generated plan — the registry plus every routed prefix — can be saved
//! to a human-auditable TSV file and reloaded, so a study pins its exact
//! synthetic Internet next to its results (the same role the MaxMind
//! snapshot date plays in the paper). Format:
//!
//! ```text
//! #beware-plan v1
//! year\t<year>
//! as\t<asn>\t<kind>\t<country>\t<continent>\t<name>
//! pfx\t<dotted-quad>/<len>\t<asn>
//! ```
//!
//! The name field is last so embedded tabs cannot exist (names are
//! validated) and parsing stays unambiguous.

use crate::gen::{InternetPlan, PrefixAllocation};
use crate::geo::Continent;
use crate::registry::{AsInfo, AsKind, AsRegistry, Asn};
use std::fmt::Write as _;

/// Errors while loading a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Missing or wrong file signature.
    BadHeader,
    /// A line failed to parse; carries the 1-based line number.
    BadLine(usize),
    /// A prefix references an ASN absent from the registry section.
    UnknownAsn(u32),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadHeader => write!(f, "missing #beware-plan header"),
            LoadError::BadLine(n) => write!(f, "unparseable line {n}"),
            LoadError::UnknownAsn(a) => write!(f, "prefix references unregistered AS{a}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn kind_str(k: AsKind) -> &'static str {
    k.label()
}

fn kind_parse(s: &str) -> Option<AsKind> {
    Some(match s {
        "cellular" => AsKind::Cellular,
        "mixed-cellular" => AsKind::MixedCellular,
        "broadband" => AsKind::Broadband,
        "satellite" => AsKind::Satellite,
        "academic" => AsKind::Academic,
        "hosting" => AsKind::Hosting,
        "transit" => AsKind::Transit,
        _ => return None,
    })
}

fn continent_str(c: Continent) -> &'static str {
    match c {
        Continent::SouthAmerica => "SA",
        Continent::Asia => "AS",
        Continent::Europe => "EU",
        Continent::Africa => "AF",
        Continent::NorthAmerica => "NA",
        Continent::Oceania => "OC",
    }
}

fn continent_parse(s: &str) -> Option<Continent> {
    Some(match s {
        "SA" => Continent::SouthAmerica,
        "AS" => Continent::Asia,
        "EU" => Continent::Europe,
        "AF" => Continent::Africa,
        "NA" => Continent::NorthAmerica,
        "OC" => Continent::Oceania,
        _ => return None,
    })
}

/// Serialize a plan to the TSV format.
pub fn save(plan: &InternetPlan) -> String {
    let mut out = String::new();
    out.push_str("#beware-plan v1\n");
    let _ = writeln!(out, "year\t{}", plan.year);
    for info in plan.registry.iter() {
        debug_assert!(!info.name.contains('\t') && !info.name.contains('\n'));
        let _ = writeln!(
            out,
            "as\t{}\t{}\t{}\t{}\t{}",
            info.asn.0,
            kind_str(info.kind),
            info.country,
            continent_str(info.continent),
            info.name
        );
    }
    for a in &plan.allocations {
        let _ = writeln!(out, "pfx\t{}/{}\t{}", std::net::Ipv4Addr::from(a.prefix), a.len, a.asn.0);
    }
    out
}

/// Parse a plan previously produced by [`save`].
pub fn load(text: &str) -> Result<InternetPlan, LoadError> {
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else { return Err(LoadError::BadHeader) };
    if header.trim() != "#beware-plan v1" {
        return Err(LoadError::BadHeader);
    }
    let mut registry = AsRegistry::new();
    let mut allocations = Vec::new();
    let mut year = 2015u16;
    for (i, line) in lines {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        match fields.next() {
            Some("year") => {
                year =
                    fields.next().and_then(|v| v.parse().ok()).ok_or(LoadError::BadLine(lineno))?;
            }
            Some("as") => {
                let asn: u32 =
                    fields.next().and_then(|v| v.parse().ok()).ok_or(LoadError::BadLine(lineno))?;
                let kind = fields.next().and_then(kind_parse).ok_or(LoadError::BadLine(lineno))?;
                let country = fields.next().ok_or(LoadError::BadLine(lineno))?;
                let continent =
                    fields.next().and_then(continent_parse).ok_or(LoadError::BadLine(lineno))?;
                let name = fields.next().ok_or(LoadError::BadLine(lineno))?;
                registry.insert(AsInfo::new(Asn(asn), name, kind, country, continent));
            }
            Some("pfx") => {
                let cidr = fields.next().ok_or(LoadError::BadLine(lineno))?;
                let asn: u32 =
                    fields.next().and_then(|v| v.parse().ok()).ok_or(LoadError::BadLine(lineno))?;
                let (addr, len) = cidr.split_once('/').ok_or(LoadError::BadLine(lineno))?;
                let prefix: u32 = addr
                    .parse::<std::net::Ipv4Addr>()
                    .map(u32::from)
                    .map_err(|_| LoadError::BadLine(lineno))?;
                let len: u8 = len.parse().map_err(|_| LoadError::BadLine(lineno))?;
                if len > 32 {
                    return Err(LoadError::BadLine(lineno));
                }
                if registry.get(Asn(asn)).is_none() {
                    return Err(LoadError::UnknownAsn(asn));
                }
                allocations.push(PrefixAllocation { prefix, len, asn: Asn(asn) });
            }
            _ => return Err(LoadError::BadLine(lineno)),
        }
    }
    Ok(InternetPlan { registry, allocations, year })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    #[test]
    fn roundtrip_generated_plan() {
        let plan = InternetPlan::generate(&GenConfig { total_blocks: 256, ..Default::default() });
        let text = save(&plan);
        let back = load(&text).unwrap();
        assert_eq!(back.year, plan.year);
        assert_eq!(back.allocations, plan.allocations);
        assert_eq!(back.registry.len(), plan.registry.len());
        for info in plan.registry.iter() {
            assert_eq!(back.registry.get(info.asn), Some(info));
        }
        // And the resulting databases resolve identically.
        let db_a = plan.to_db();
        let db_b = back.to_db();
        for (block, _) in plan.blocks() {
            assert_eq!(
                db_a.lookup(block << 8).map(|i| i.asn),
                db_b.lookup(block << 8).map(|i| i.asn)
            );
        }
    }

    #[test]
    fn header_required() {
        assert_eq!(load("nonsense\n").unwrap_err(), LoadError::BadHeader);
        assert_eq!(load("").unwrap_err(), LoadError::BadHeader);
    }

    #[test]
    fn bad_lines_located() {
        let text = "#beware-plan v1\nyear\t2015\nas\tnot-a-number\tcellular\tBR\tSA\tx\n";
        assert_eq!(load(text).unwrap_err(), LoadError::BadLine(3));
        let text = "#beware-plan v1\npfx\t10.0.0.0/33\t1\n";
        assert!(load(text).is_err());
    }

    #[test]
    fn prefix_requires_registered_as() {
        let text = "#beware-plan v1\npfx\t10.0.0.0/16\t777\n";
        assert_eq!(load(text).unwrap_err(), LoadError::UnknownAsn(777));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "#beware-plan v1\n\n# a comment\nyear\t2010\n";
        let plan = load(text).unwrap();
        assert_eq!(plan.year, 2010);
        assert!(plan.allocations.is_empty());
    }

    #[test]
    fn kind_and_continent_codes_roundtrip() {
        use AsKind::*;
        for k in [Cellular, MixedCellular, Broadband, Satellite, Academic, Hosting, Transit] {
            assert_eq!(kind_parse(kind_str(k)), Some(k));
        }
        for c in Continent::ALL {
            assert_eq!(continent_parse(continent_str(c)), Some(c));
        }
    }
}
