//! Autonomous System records.
//!
//! Each AS carries the attributes the paper's Section 6 analysis needs: the
//! organization name (Tables 4 and 6 print them), the access technology
//! ("Inspecting the owners of each of these Autonomous Systems reveals that
//! a majority of them are cellular"), and the geographic home used for the
//! continent ranking (Table 5).

use crate::geo::Continent;
use std::collections::BTreeMap;

/// An Autonomous System number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Dominant access technology of an AS — the attribute the paper's causal
/// analysis pivots on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsKind {
    /// Cellular carrier (GPRS/3G/LTE). The paper finds these dominate both
    /// the >1 s ("turtle") and >100 s ("sleepy turtle") rankings.
    Cellular,
    /// Mixed-service carrier: offers cellular alongside fixed-line service
    /// (e.g. AS9829 National Internet Backbone); only part of its space
    /// shows cellular latency behavior.
    MixedCellular,
    /// Fixed-line broadband (DSL/cable/fiber).
    Broadband,
    /// Geostationary-satellite ISP (Hughes, ViaSat, ... — Figure 11).
    Satellite,
    /// University / research network.
    Academic,
    /// Datacenter / hosting.
    Hosting,
    /// Backbone / transit carrier (e.g. AS4134 Chinanet in Table 4, whose
    /// turtle *fraction* is ~1% because most of its space is not cellular).
    Transit,
}

impl AsKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AsKind::Cellular => "cellular",
            AsKind::MixedCellular => "mixed-cellular",
            AsKind::Broadband => "broadband",
            AsKind::Satellite => "satellite",
            AsKind::Academic => "academic",
            AsKind::Hosting => "hosting",
            AsKind::Transit => "transit",
        }
    }

    /// True if any portion of the AS serves cellular subscribers.
    pub fn serves_cellular(self) -> bool {
        matches!(self, AsKind::Cellular | AsKind::MixedCellular)
    }
}

/// One Autonomous System record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Organization name as printed in the paper's tables.
    pub name: String,
    /// Dominant access technology.
    pub kind: AsKind,
    /// ISO 3166 alpha-2 country code of the registered home.
    pub country: String,
    /// Continent, for Table 5.
    pub continent: Continent,
}

impl AsInfo {
    /// Convenience constructor.
    pub fn new(
        asn: Asn,
        name: impl Into<String>,
        kind: AsKind,
        country: impl Into<String>,
        continent: Continent,
    ) -> Self {
        AsInfo { asn, name: name.into(), kind, country: country.into(), continent }
    }
}

/// The set of known Autonomous Systems, keyed by ASN.
///
/// `BTreeMap` keeps iteration deterministic, which the reproducible
/// experiment harness depends on.
#[derive(Debug, Clone, Default)]
pub struct AsRegistry {
    entries: BTreeMap<Asn, AsInfo>,
}

impl AsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a record. Returns the previous record if any.
    pub fn insert(&mut self, info: AsInfo) -> Option<AsInfo> {
        self.entries.insert(info.asn, info)
    }

    /// Look up by ASN.
    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.entries.get(&asn)
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no AS is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate records in ascending ASN order.
    pub fn iter(&self) -> impl Iterator<Item = &AsInfo> {
        self.entries.values()
    }

    /// Records of a given kind, ascending ASN order.
    pub fn of_kind(&self, kind: AsKind) -> impl Iterator<Item = &AsInfo> {
        self.entries.values().filter(move |i| i.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AsRegistry {
        let mut r = AsRegistry::new();
        r.insert(AsInfo::new(
            Asn(26599),
            "TELEFONICA BRASIL",
            AsKind::Cellular,
            "BR",
            Continent::SouthAmerica,
        ));
        r.insert(AsInfo::new(Asn(4134), "Chinanet", AsKind::Transit, "CN", Continent::Asia));
        r.insert(AsInfo::new(
            Asn(9829),
            "National Internet Backbone",
            AsKind::MixedCellular,
            "IN",
            Continent::Asia,
        ));
        r
    }

    #[test]
    fn insert_get_iterate_in_asn_order() {
        let r = sample();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(Asn(26599)).unwrap().name, "TELEFONICA BRASIL");
        let asns: Vec<u32> = r.iter().map(|i| i.asn.0).collect();
        assert_eq!(asns, vec![4134, 9829, 26599]);
    }

    #[test]
    fn kind_filter_and_cellular_service() {
        let r = sample();
        assert_eq!(r.of_kind(AsKind::Cellular).count(), 1);
        assert!(AsKind::MixedCellular.serves_cellular());
        assert!(!AsKind::Transit.serves_cellular());
    }

    #[test]
    fn replace_returns_previous() {
        let mut r = sample();
        let prev = r.insert(AsInfo::new(
            Asn(4134),
            "Chinanet (renamed)",
            AsKind::Transit,
            "CN",
            Continent::Asia,
        ));
        assert_eq!(prev.unwrap().name, "Chinanet");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn asn_display() {
        assert_eq!(Asn(26599).to_string(), "AS26599");
    }

    #[test]
    fn kind_labels_distinct() {
        use AsKind::*;
        let kinds = [Cellular, MixedCellular, Broadband, Satellite, Academic, Hosting, Transit];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
