//! Binary prefix trie with longest-prefix-match lookup.
//!
//! The workhorse behind [`crate::AsDb`]: prefixes of any length 0–32 map to
//! a value, and lookup returns the value of the most specific covering
//! prefix. Nodes live in a flat arena (`Vec`) — no per-node allocation, no
//! pointer chasing beyond an index, and the whole structure is `Clone` when
//! the value is.
//!
//! The alternative considered (and benchmarked in `beware-bench`) is a
//! sorted interval list with binary search; the trie wins once overlapping
//! prefixes of mixed lengths exist, which real routing data (and our
//! generator) produce.

/// Index of a node in the arena. `u32::MAX` is the null sentinel, letting a
/// node stay 12 bytes + value slot instead of carrying `Option<usize>`.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    children: [u32; 2],
    /// Index into the values arena, or `NIL`.
    value: u32,
}

impl Node {
    fn new() -> Self {
        Node { children: [NIL, NIL], value: NIL }
    }
}

/// A binary trie keyed by IPv4 prefixes.
///
/// ```
/// use beware_asdb::PrefixTrie;
///
/// let mut trie = PrefixTrie::new();
/// trie.insert(0x0a000000, 8, "coarse");   // 10.0.0.0/8
/// trie.insert(0x0a010000, 16, "specific"); // 10.1.0.0/16
/// assert_eq!(trie.lookup(0x0a010203), Some(&"specific"));
/// assert_eq!(trie.lookup(0x0a020304), Some(&"coarse"));
/// assert_eq!(trie.lookup(0x0b000000), None);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node>,
    values: Vec<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// An empty trie (with a preallocated root).
    pub fn new() -> Self {
        PrefixTrie { nodes: vec![Node::new()], values: Vec::new(), len: 0 }
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefix is installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Install `prefix/len ⇒ value`, replacing and returning any previous
    /// value for exactly that prefix.
    ///
    /// Bits of `prefix` below the prefix length are ignored, so callers may
    /// pass any covered address. Panics if `len > 32` (a programming error,
    /// not a data error).
    pub fn insert(&mut self, prefix: u32, len: u8, value: V) -> Option<V> {
        assert!(len <= 32, "prefix length {len} exceeds 32");
        let mut node = 0usize;
        for depth in 0..len {
            let bit = ((prefix >> (31 - depth)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            node = if child == NIL {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[bit] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let slot = self.nodes[node].value;
        if slot == NIL {
            self.nodes[node].value = self.values.len() as u32;
            self.values.push(value);
            self.len += 1;
            None
        } else {
            Some(std::mem::replace(&mut self.values[slot as usize], value))
        }
    }

    /// Longest-prefix-match: the value of the most specific installed
    /// prefix covering `addr`, or `None` if no prefix covers it.
    pub fn lookup(&self, addr: u32) -> Option<&V> {
        let mut node = 0usize;
        let mut best = self.nodes[0].value;
        for depth in 0..32 {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NIL {
                break;
            }
            node = child as usize;
            if self.nodes[node].value != NIL {
                best = self.nodes[node].value;
            }
        }
        (best != NIL).then(|| &self.values[best as usize])
    }

    /// Exact-match lookup of an installed prefix.
    pub fn get_exact(&self, prefix: u32, len: u8) -> Option<&V> {
        assert!(len <= 32, "prefix length {len} exceeds 32");
        let mut node = 0usize;
        for depth in 0..len {
            let bit = ((prefix >> (31 - depth)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NIL {
                return None;
            }
            node = child as usize;
        }
        let slot = self.nodes[node].value;
        (slot != NIL).then(|| &self.values[slot as usize])
    }

    /// Iterate `(prefix, len, &value)` for every installed prefix, in
    /// depth-first (i.e. ascending-prefix) order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter { trie: self, stack: vec![(0u32, 0u32, 0u8)] }
    }
}

/// Iterator over installed prefixes; see [`PrefixTrie::iter`].
#[derive(Debug)]
pub struct Iter<'a, V> {
    trie: &'a PrefixTrie<V>,
    /// (node index, prefix bits so far, depth)
    stack: Vec<(u32, u32, u8)>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u32, u8, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((idx, prefix, depth)) = self.stack.pop() {
            let node = &self.trie.nodes[idx as usize];
            // Push children right-then-left so the left (0-bit, lower
            // address) side is visited first.
            if node.children[1] != NIL {
                let child_prefix = prefix | (1u32 << (31 - depth));
                self.stack.push((node.children[1], child_prefix, depth + 1));
            }
            if node.children[0] != NIL {
                self.stack.push((node.children[0], prefix, depth + 1));
            }
            if node.value != NIL {
                return Some((prefix, depth, &self.trie.values[node.value as usize]));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> u32 {
        s.parse::<std::net::Ipv4Addr>().unwrap().into()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0"), 8, "coarse");
        t.insert(p("10.1.0.0"), 16, "mid");
        t.insert(p("10.1.2.0"), 24, "fine");
        assert_eq!(t.lookup(p("10.1.2.3")), Some(&"fine"));
        assert_eq!(t.lookup(p("10.1.9.9")), Some(&"mid"));
        assert_eq!(t.lookup(p("10.9.9.9")), Some(&"coarse"));
        assert_eq!(t.lookup(p("11.0.0.1")), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn replace_returns_old_value() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("192.0.2.0"), 24, 1), None);
        assert_eq!(t.insert(p("192.0.2.0"), 24, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(p("192.0.2.200")), Some(&2));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(0, 0, "default");
        assert_eq!(t.lookup(0), Some(&"default"));
        assert_eq!(t.lookup(u32::MAX), Some(&"default"));
        t.insert(p("128.0.0.0"), 1, "high-half");
        assert_eq!(t.lookup(p("1.2.3.4")), Some(&"default"));
        assert_eq!(t.lookup(p("200.2.3.4")), Some(&"high-half"));
    }

    #[test]
    fn host_routes_supported() {
        let mut t = PrefixTrie::new();
        t.insert(p("203.0.113.7"), 32, "host");
        assert_eq!(t.lookup(p("203.0.113.7")), Some(&"host"));
        assert_eq!(t.lookup(p("203.0.113.8")), None);
    }

    #[test]
    fn low_bits_of_inserted_prefix_ignored() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.99"), 24, "x"); // same as 10.0.0.0/24
        assert_eq!(t.lookup(p("10.0.0.1")), Some(&"x"));
        assert_eq!(t.get_exact(p("10.0.0.0"), 24), Some(&"x"));
    }

    #[test]
    fn get_exact_distinguishes_lengths() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0"), 8, "a");
        assert_eq!(t.get_exact(p("10.0.0.0"), 8), Some(&"a"));
        assert_eq!(t.get_exact(p("10.0.0.0"), 16), None);
        assert_eq!(t.get_exact(p("10.0.0.0"), 24), None);
    }

    #[test]
    fn iter_yields_all_in_address_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.2.0.0"), 16, 2);
        t.insert(p("10.1.0.0"), 16, 1);
        t.insert(p("10.1.5.0"), 24, 15);
        t.insert(p("9.0.0.0"), 8, 0);
        let got: Vec<(u32, u8, i32)> = t.iter().map(|(pfx, l, v)| (pfx, l, *v)).collect();
        assert_eq!(
            got,
            vec![
                (p("9.0.0.0"), 8, 0),
                (p("10.1.0.0"), 16, 1),
                (p("10.1.5.0"), 24, 15),
                (p("10.2.0.0"), 16, 2),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 32")]
    fn overlong_prefix_panics() {
        let mut t = PrefixTrie::new();
        t.insert(0, 33, ());
    }

    #[test]
    fn host_routes_at_address_space_extremes() {
        let mut t = PrefixTrie::new();
        t.insert(0, 32, "zero");
        t.insert(u32::MAX, 32, "ones");
        assert_eq!(t.lookup(0), Some(&"zero"));
        assert_eq!(t.lookup(u32::MAX), Some(&"ones"));
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.lookup(u32::MAX - 1), None);
        assert_eq!(t.get_exact(0, 32), Some(&"zero"));
        assert_eq!(t.get_exact(u32::MAX, 32), Some(&"ones"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_insert_wins_last_at_every_length() {
        let mut t = PrefixTrie::new();
        // /0, /32 and a middle length: repeated insert must replace, not
        // shadow, and len must not double-count.
        for (pfx, len) in [(0u32, 0u8), (p("198.51.100.7"), 32), (p("10.0.0.0"), 12)] {
            assert_eq!(t.insert(pfx, len, "first"), None);
            assert_eq!(t.insert(pfx, len, "second"), Some("first"));
            assert_eq!(t.insert(pfx, len, "third"), Some("second"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(p("198.51.100.7")), Some(&"third"));
        assert_eq!(t.get_exact(0, 0), Some(&"third"));
        assert_eq!(t.lookup(p("99.99.99.99")), Some(&"third")); // default route
    }

    #[test]
    fn default_route_exact_and_iter() {
        let mut t = PrefixTrie::new();
        t.insert(0xffff_ffff, 0, "default"); // low bits ignored at /0 too
        t.insert(p("0.0.0.0"), 32, "zero-host");
        t.insert(p("255.255.255.255"), 32, "ones-host");
        assert_eq!(t.get_exact(0, 0), Some(&"default"));
        assert_eq!(t.get_exact(0x1234_5678, 0), Some(&"default"));
        // iter must emit the /0 first (it is the root), then both host
        // routes in address order, with correct lengths.
        let got: Vec<(u32, u8, &str)> = t.iter().map(|(pfx, l, v)| (pfx, l, *v)).collect();
        assert_eq!(got, vec![(0, 0, "default"), (0, 32, "zero-host"), (u32::MAX, 32, "ones-host")]);
    }

    #[test]
    fn nested_prefixes_on_one_path_all_reachable() {
        // A full chain 0.0.0.0/0 .. /32 along the zero path: lookup of an
        // address off the path at depth k must return the /k ancestor.
        let mut t = PrefixTrie::new();
        for len in 0..=32u8 {
            t.insert(0, len, len);
        }
        assert_eq!(t.len(), 33);
        assert_eq!(t.lookup(0), Some(&32));
        for k in 0..32u8 {
            // Flip bit k (from the top): diverges after k matching bits.
            let addr = 1u32 << (31 - k);
            assert_eq!(t.lookup(addr), Some(&k), "diverging at depth {k}");
        }
    }
}
