//! Property tests: the prefix trie against a brute-force reference model,
//! and structural invariants of generated Internet plans.

use beware_asdb::{GenConfig, InternetPlan, PrefixTrie};
use proptest::prelude::*;
use std::collections::HashMap;

/// Brute-force reference: keep (prefix, len, value) and scan for the
/// longest match.
#[derive(Default)]
struct RefLpm {
    entries: HashMap<(u32, u8), u32>,
}

impl RefLpm {
    fn insert(&mut self, prefix: u32, len: u8, value: u32) {
        let masked = mask(prefix, len);
        self.entries.insert((masked, len), value);
    }

    fn lookup(&self, addr: u32) -> Option<u32> {
        self.entries
            .iter()
            .filter(|&(&(pfx, len), _)| mask(addr, len) == pfx)
            .max_by_key(|&(&(_, len), _)| len)
            .map(|(_, &v)| v)
    }
}

fn mask(addr: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        addr & (u32::MAX << (32 - u32::from(len)))
    }
}

fn arb_entries() -> impl Strategy<Value = Vec<(u32, u8, u32)>> {
    proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 0..64)
}

proptest! {
    #[test]
    fn trie_matches_reference_model(entries in arb_entries(), probes in proptest::collection::vec(any::<u32>(), 32)) {
        let mut trie = PrefixTrie::new();
        let mut reference = RefLpm::default();
        for &(prefix, len, value) in &entries {
            trie.insert(prefix, len, value);
            reference.insert(prefix, len, value);
        }
        // Probe random addresses plus the inserted prefixes themselves.
        for addr in probes.iter().copied().chain(entries.iter().map(|e| e.0)) {
            prop_assert_eq!(trie.lookup(addr).copied(), reference.lookup(addr),
                "mismatch at {:#010x}", addr);
        }
    }

    #[test]
    fn trie_len_counts_distinct_prefixes(entries in arb_entries()) {
        let mut trie = PrefixTrie::new();
        let mut distinct = std::collections::HashSet::new();
        for &(prefix, len, value) in &entries {
            trie.insert(prefix, len, value);
            distinct.insert((mask(prefix, len), len));
        }
        prop_assert_eq!(trie.len(), distinct.len());
    }

    #[test]
    fn trie_iter_is_complete_and_sorted(entries in arb_entries()) {
        let mut trie = PrefixTrie::new();
        for &(prefix, len, value) in &entries {
            trie.insert(prefix, len, value);
        }
        let items: Vec<(u32, u8)> = trie.iter().map(|(p, l, _)| (p, l)).collect();
        prop_assert_eq!(items.len(), trie.len());
        // Ascending by (prefix, len): DFS with 0-side first guarantees it.
        for w in items.windows(2) {
            prop_assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
        // Every iterated prefix looks itself up.
        for (p, l) in items {
            prop_assert!(trie.get_exact(p, l).is_some());
        }
    }

    #[test]
    fn plan_lookup_total_over_routed_space(seed in any::<u64>(), year in 2006u16..=2015) {
        let plan = InternetPlan::generate(&GenConfig { year, seed, total_blocks: 256 });
        let db = plan.to_db();
        for (block, asn) in plan.blocks() {
            let addr = (block << 8) | u32::from((seed ^ u64::from(block)) as u8);
            let info = db.lookup(addr);
            prop_assert!(info.is_some(), "routed block {block:#x} fails lookup");
            prop_assert_eq!(info.unwrap().asn, asn);
        }
    }
}
