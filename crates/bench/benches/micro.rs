//! Criterion micro-benchmarks over the hot paths, including the ablations
//! DESIGN.md calls out: trie-vs-linear LPM, cyclic-permutation-vs-shuffle
//! ordering, and the wire codecs that sit on every simulated packet.

use beware_asdb::{GenConfig, InternetPlan, PrefixTrie};
use beware_core::matching::match_unmatched;
use beware_core::percentile::LatencySamples;
use beware_dataset::Record;
use beware_netsim::event::EventQueue;
use beware_netsim::packet::Packet;
use beware_netsim::time::{SimDuration, SimTime};
use beware_probe::permutation::CyclicPermutation;
use beware_wire::checksum::internet_checksum;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn bench_checksum(c: &mut Criterion) {
    let data = vec![0xa5u8; 1500];
    c.bench_function("wire/checksum_1500B", |b| {
        b.iter(|| internet_checksum(black_box(&data)))
    });
}

fn bench_packet_codec(c: &mut Criterion) {
    let pkt = Packet::echo_request(0x01010101, 0x0a000001, 7, 3, vec![0u8; 24]);
    let bytes = pkt.encode();
    c.bench_function("wire/packet_encode", |b| b.iter(|| black_box(&pkt).encode()));
    c.bench_function("wire/packet_decode", |b| {
        b.iter(|| Packet::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_asdb_lookup(c: &mut Criterion) {
    let plan = InternetPlan::generate(&GenConfig { total_blocks: 4096, ..Default::default() });
    let db = plan.to_db();
    let addrs: Vec<u32> = plan.blocks().map(|(b, _)| (b << 8) | 0x42).collect();
    c.bench_function("asdb/trie_lpm_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            db.lookup(black_box(addrs[i]))
        })
    });
    // Ablation: linear scan over the allocation list.
    let allocs = plan.allocations.clone();
    c.bench_function("asdb/linear_scan_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            let a = black_box(addrs[i]);
            allocs
                .iter()
                .filter(|al| {
                    let mask = u32::MAX << (32 - u32::from(al.len));
                    a & mask == al.prefix & mask
                })
                .max_by_key(|al| al.len)
                .map(|al| al.asn)
        })
    });
}

fn bench_trie_insert(c: &mut Criterion) {
    let plan = InternetPlan::generate(&GenConfig { total_blocks: 4096, ..Default::default() });
    c.bench_function("asdb/trie_build_4k_blocks", |b| {
        b.iter(|| {
            let mut t = PrefixTrie::new();
            for a in &plan.allocations {
                t.insert(a.prefix, a.len, a.asn);
            }
            t.len()
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("netsim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                let t = SimTime::EPOCH + SimDuration::from_ns((i * 2_654_435_761) % 1_000_000);
                q.push(t, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
}

fn bench_permutation(c: &mut Criterion) {
    c.bench_function("probe/cyclic_permutation_100k", |b| {
        b.iter(|| CyclicPermutation::new(100_000, 7).sum::<u64>())
    });
    // Ablation: materialized Fisher-Yates shuffle.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    c.bench_function("probe/materialized_shuffle_100k", |b| {
        b.iter(|| {
            let mut v: Vec<u64> = (0..100_000).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            v.shuffle(&mut rng);
            v.iter().sum::<u64>()
        })
    });
}

fn bench_matching(c: &mut Criterion) {
    // 10k addresses × 10 rounds of timeout+late-response pairs.
    let mut records = Vec::new();
    for round in 0..10u32 {
        for a in 0..10_000u32 {
            records.push(Record::timeout(a, round * 660 + (a % 600)));
            if a % 3 == 0 {
                records.push(Record::unmatched(a, round * 660 + (a % 600) + 20));
            }
        }
    }
    c.bench_function("core/match_unmatched_130k_records", |b| {
        b.iter_batched(
            || records.clone(),
            |r| match_unmatched(&r),
            BatchSize::LargeInput,
        )
    });
}

fn bench_percentiles(c: &mut Criterion) {
    let samples = LatencySamples::from_values(
        (0..10_000).map(|i| ((i * 2_654_435_761u64) % 10_000) as f64 / 100.0).collect(),
    );
    c.bench_function("core/percentile_profile_10k_samples", |b| {
        b.iter(|| black_box(&samples).paper_profile())
    });
}

criterion_group!(
    benches,
    bench_checksum,
    bench_packet_codec,
    bench_asdb_lookup,
    bench_trie_insert,
    bench_event_queue,
    bench_permutation,
    bench_matching,
    bench_percentiles,
);
criterion_main!(benches);
