//! Criterion micro-benchmarks over the hot paths, including the ablations
//! DESIGN.md calls out: trie-vs-linear LPM, cyclic-permutation-vs-shuffle
//! ordering, and the wire codecs that sit on every simulated packet.

use beware_asdb::{GenConfig, InternetPlan, PrefixTrie};
use beware_core::matching::match_unmatched;
use beware_core::percentile::LatencySamples;
use beware_dataset::Record;
use beware_netsim::event::EventQueue;
use beware_netsim::packet::Packet;
use beware_netsim::time::{SimDuration, SimTime};
use beware_probe::permutation::CyclicPermutation;
use beware_wire::checksum::internet_checksum;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn bench_checksum(c: &mut Criterion) {
    let data = vec![0xa5u8; 1500];
    c.bench_function("wire/checksum_1500B", |b| b.iter(|| internet_checksum(black_box(&data))));
}

fn bench_packet_codec(c: &mut Criterion) {
    let pkt = Packet::echo_request(0x01010101, 0x0a000001, 7, 3, vec![0u8; 24]);
    let bytes = pkt.encode();
    c.bench_function("wire/packet_encode", |b| b.iter(|| black_box(&pkt).encode()));
    c.bench_function("wire/packet_decode", |b| {
        b.iter(|| Packet::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_asdb_lookup(c: &mut Criterion) {
    let plan = InternetPlan::generate(&GenConfig { total_blocks: 4096, ..Default::default() });
    let db = plan.to_db();
    let addrs: Vec<u32> = plan.blocks().map(|(b, _)| (b << 8) | 0x42).collect();
    c.bench_function("asdb/trie_lpm_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            db.lookup(black_box(addrs[i]))
        })
    });
    // Ablation: linear scan over the allocation list.
    let allocs = plan.allocations.clone();
    c.bench_function("asdb/linear_scan_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % addrs.len();
            let a = black_box(addrs[i]);
            allocs
                .iter()
                .filter(|al| {
                    let mask = u32::MAX << (32 - u32::from(al.len));
                    a & mask == al.prefix & mask
                })
                .max_by_key(|al| al.len)
                .map(|al| al.asn)
        })
    });
}

fn bench_trie_insert(c: &mut Criterion) {
    let plan = InternetPlan::generate(&GenConfig { total_blocks: 4096, ..Default::default() });
    c.bench_function("asdb/trie_build_4k_blocks", |b| {
        b.iter(|| {
            let mut t = PrefixTrie::new();
            for a in &plan.allocations {
                t.insert(a.prefix, a.len, a.asn);
            }
            t.len()
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("netsim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                let t = SimTime::EPOCH + SimDuration::from_ns((i * 2_654_435_761) % 1_000_000);
                q.push(t, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
}

fn bench_permutation(c: &mut Criterion) {
    c.bench_function("probe/cyclic_permutation_100k", |b| {
        b.iter(|| CyclicPermutation::new(100_000, 7).sum::<u64>())
    });
    // Ablation: materialized Fisher-Yates shuffle.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    c.bench_function("probe/materialized_shuffle_100k", |b| {
        b.iter(|| {
            let mut v: Vec<u64> = (0..100_000).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            v.shuffle(&mut rng);
            v.iter().sum::<u64>()
        })
    });
}

fn bench_matching(c: &mut Criterion) {
    // 10k addresses × 10 rounds of timeout+late-response pairs.
    let mut records = Vec::new();
    for round in 0..10u32 {
        for a in 0..10_000u32 {
            records.push(Record::timeout(a, round * 660 + (a % 600)));
            if a % 3 == 0 {
                records.push(Record::unmatched(a, round * 660 + (a % 600) + 20));
            }
        }
    }
    c.bench_function("core/match_unmatched_130k_records", |b| {
        b.iter_batched(|| records.clone(), |r| match_unmatched(&r), BatchSize::LargeInput)
    });
}

fn bench_percentiles(c: &mut Criterion) {
    let samples = LatencySamples::from_values(
        (0..10_000).map(|i| ((i * 2_654_435_761u64) % 10_000) as f64 / 100.0).collect(),
    );
    c.bench_function("core/percentile_profile_10k_samples", |b| {
        b.iter(|| black_box(&samples).paper_profile())
    });
}

/// 100k pseudo-random latencies, the size class of a flood address.
fn ingest_values() -> Vec<f64> {
    (0..100_000u64).map(|i| ((i * 2_654_435_761) % 1_000_000) as f64 / 1000.0).collect()
}

fn bench_samples_ingestion(c: &mut Criterion) {
    let values = ingest_values();
    c.bench_function("core/latency_samples_ingest_100k", |b| {
        b.iter_batched(
            || values.clone(),
            |vs| {
                let mut s = LatencySamples::new();
                for v in vs {
                    s.push(v);
                }
                s.percentile(50.0)
            },
            BatchSize::LargeInput,
        )
    });
    // Ablation: the seed's sorted-insert ingestion (O(n) Vec::insert per
    // value, quadratic overall).
    c.bench_function("core/sorted_insert_ingest_100k", |b| {
        b.iter_batched(
            || values.clone(),
            |vs| {
                let mut sorted: Vec<f64> = Vec::new();
                for v in vs {
                    let idx = sorted.partition_point(|&x| x <= v);
                    sorted.insert(idx, v);
                }
                beware_core::percentile::percentile_sorted(&sorted, 50.0)
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_merge_samples(c: &mut Criterion) {
    use beware_core::pipeline::merge_samples;
    use std::collections::BTreeMap;
    // Two surveys × 500 addresses × 200 sorted samples each.
    let part = |salt: u64| -> BTreeMap<u32, LatencySamples> {
        (0..500u32)
            .map(|a| {
                let vs = (0..200u64)
                    .map(|i| (((i + u64::from(a)) * 2_654_435_761 + salt) % 60_000) as f64 / 100.0)
                    .collect();
                (a, LatencySamples::from_values(vs))
            })
            .collect()
    };
    let (w, c_part) = (part(1), part(2));
    c.bench_function("core/merge_samples_kway_2x500x200", |b| {
        b.iter_batched(|| vec![w.clone(), c_part.clone()], merge_samples, BatchSize::LargeInput)
    });
    // Ablation: concat-and-resort, the seed's merge strategy.
    c.bench_function("core/merge_samples_resort_2x500x200", |b| {
        b.iter_batched(
            || vec![w.clone(), c_part.clone()],
            |parts| {
                let mut out: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
                for p in parts {
                    for (a, s) in p {
                        out.entry(a).or_default().extend_from_slice(&s.values());
                    }
                }
                out.into_iter()
                    .map(|(a, v)| (a, LatencySamples::from_values(v)))
                    .collect::<BTreeMap<u32, LatencySamples>>()
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_checksum,
    bench_packet_codec,
    bench_asdb_lookup,
    bench_trie_insert,
    bench_event_queue,
    bench_permutation,
    bench_matching,
    bench_percentiles,
    bench_samples_ingestion,
    bench_merge_samples,
);
criterion_main!(benches);
