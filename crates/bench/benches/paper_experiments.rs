//! Regenerates every table and figure of *Timeouts: Beware Surprisingly
//! High Delay* and prints them with paper-vs-measured annotations.
//!
//! Runs as a `harness = false` bench so `cargo bench --workspace` produces
//! the full reproduction transcript. Set `BEWARE_SCALE=small` for a quick
//! pass (the default is the bench scale).

use beware_bench::{experiments, ExperimentCtx, Scale};
use std::time::Instant;

fn main() {
    // Respect `cargo bench -- --test` style filter-less invocations; any
    // argument containing "small" (or the env var) drops the scale.
    let args: Vec<String> = std::env::args().collect();
    let small = std::env::var("BEWARE_SCALE").map(|v| v == "small").unwrap_or(false)
        || args.iter().any(|a| a.contains("small"));
    let scale = if small { Scale::small() } else { Scale::bench() };
    println!("== beware paper experiments (scale: {scale:?}) ==\n");

    let t0 = Instant::now();
    let ctx = ExperimentCtx::build(scale);
    println!(
        "[shared context] surveys {} + {} ({} + {} records), {} zmap scans — built in {:?}\n",
        ctx.survey_w.meta.display_name(),
        ctx.survey_c.meta.display_name(),
        ctx.survey_w.records.len(),
        ctx.survey_c.records.len(),
        ctx.scans.len(),
        t0.elapsed(),
    );

    let step = |name: &str, body: &mut dyn FnMut() -> String| {
        let t = Instant::now();
        let text = body();
        println!("---- {name} ({:?}) ----", t.elapsed());
        println!("{text}");
    };

    step("Figure 1", &mut || experiments::fig1::run(&ctx).render());
    step("Figures 2-3", &mut || experiments::fig2_3::run(&ctx).render());
    step("Figure 4", &mut || experiments::fig4::run(scale.seed).render());
    step("Figure 5", &mut || experiments::fig5::run(&ctx).render());
    step("Table 1", &mut || experiments::table1::run(&ctx).render());
    step("Table 2", &mut || experiments::table2::run(&ctx).render());
    step("Figure 6", &mut || experiments::fig6::run(&ctx).render());
    step("Figure 7 / Table 3", &mut || experiments::fig7::run(&ctx).render());
    step("Figure 8", &mut || experiments::fig8::run(&ctx).render());
    step("Figure 9", &mut || experiments::fig9::run(&scale).render());
    step("Figure 10", &mut || experiments::fig10::run(&ctx).render());
    step("Figure 11", &mut || experiments::fig11::run(&ctx).render());
    step("Figures 12-14", &mut || experiments::fig12_14::run(&ctx).render());
    step("Tables 4-6", &mut || experiments::table4_6::run(&ctx).render());
    step("Table 7", &mut || experiments::table7::run(&ctx).render());
    step("Ablation: broadcast filter", &mut || experiments::ablation::run(&ctx).render());
    step("Section 7 recommendation", &mut || experiments::recommendation::run(&ctx).render());

    println!("== all experiments regenerated in {:?} ==", t0.elapsed());
}
