//! Regenerates every table and figure of *Timeouts: Beware Surprisingly
//! High Delay* and prints them with paper-vs-measured annotations.
//!
//! Runs as a `harness = false` bench so `cargo bench --workspace` produces
//! the full reproduction transcript. Set `BEWARE_SCALE=small` for a quick
//! pass (the default is the bench scale).
//!
//! Each run also writes the perf-trajectory report (`BENCH_1.json` at the
//! workspace root — see [`beware_bench::perf`]): wall-clock, throughput
//! and thread count per experiment, plus a serial-vs-parallel timing of
//! the zmap scan campaign on the deterministic worker pool.

use beware_bench::ctx::{run_scan_campaign, run_scan_campaign_with};
use beware_bench::perf::{CampaignBench, TelemetryBench};
use beware_bench::{experiments, BenchReport, ExperimentCtx, Scale};
use beware_netsim::exec::default_threads;
use beware_telemetry::Registry;
use std::time::Instant;

fn main() {
    // Respect `cargo bench -- --test` style filter-less invocations; any
    // argument containing "small" (or the env var) drops the scale.
    let args: Vec<String> = std::env::args().collect();
    let small = std::env::var("BEWARE_SCALE").map(|v| v == "small").unwrap_or(false)
        || args.iter().any(|a| a.contains("small"));
    let scale = if small { Scale::small() } else { Scale::bench() };
    let threads = default_threads();
    println!("== beware paper experiments (scale: {scale:?}, {threads} thread(s)) ==\n");
    let mut report = BenchReport::new(if small { "small" } else { "bench" }, threads);

    let t0 = Instant::now();
    let ctx = ExperimentCtx::build(scale);
    let build_secs = t0.elapsed().as_secs_f64();
    let ctx_records = (ctx.survey_w.records.len()
        + ctx.survey_c.records.len()
        + ctx.scans.iter().map(|s| s.records.len()).sum::<usize>()) as u64;
    report.push_with_records("shared_context", build_secs, ctx_records, threads);
    println!(
        "[shared context] surveys {} + {} ({} + {} records), {} zmap scans — built in {:?}\n",
        ctx.survey_w.meta.display_name(),
        ctx.survey_c.meta.display_name(),
        ctx.survey_w.records.len(),
        ctx.survey_c.records.len(),
        ctx.scans.len(),
        t0.elapsed(),
    );

    let mut step = |name: &str, slug: &str, threads: usize, body: &mut dyn FnMut() -> String| {
        let t = Instant::now();
        let text = body();
        let secs = t.elapsed().as_secs_f64();
        report.push(slug, secs, threads);
        println!("---- {name} ({:.3}s) ----", secs);
        println!("{text}");
    };

    step("Figure 1", "fig1", 1, &mut || experiments::fig1::run(&ctx).render());
    step("Figures 2-3", "fig2_3", 1, &mut || experiments::fig2_3::run(&ctx).render());
    step("Figure 4", "fig4", 1, &mut || experiments::fig4::run(scale.seed).render());
    step("Figure 5", "fig5", 1, &mut || experiments::fig5::run(&ctx).render());
    step("Table 1", "table1", 1, &mut || experiments::table1::run(&ctx).render());
    step("Table 2", "table2", 1, &mut || experiments::table2::run(&ctx).render());
    step("Figure 6", "fig6", 1, &mut || experiments::fig6::run(&ctx).render());
    step("Figure 7 / Table 3", "fig7_table3", 1, &mut || experiments::fig7::run(&ctx).render());
    step("Figure 8", "fig8", threads, &mut || experiments::fig8::run(&ctx).render());
    step("Figure 9", "fig9", threads, &mut || experiments::fig9::run(&scale).render());
    step("Figure 10", "fig10", 1, &mut || experiments::fig10::run(&ctx).render());
    step("Figure 11", "fig11", 1, &mut || experiments::fig11::run(&ctx).render());
    step("Figures 12-14", "fig12_14", threads, &mut || experiments::fig12_14::run(&ctx).render());
    step("Tables 4-6", "table4_6", 1, &mut || experiments::table4_6::run(&ctx).render());
    step("Table 7", "table7", threads, &mut || experiments::table7::run(&ctx).render());
    step("Ablation: broadcast filter", "ablation", 1, &mut || {
        experiments::ablation::run(&ctx).render()
    });
    step("Section 7 recommendation", "recommendation", 1, &mut || {
        experiments::recommendation::run(&ctx).render()
    });

    // The headline fan-out measurement: the scan campaign, serial vs
    // parallel, on fresh worlds (nothing cached from the context build).
    // The serial pass reruns even when `threads == 1` so the two numbers
    // always mean the same thing.
    let ts = Instant::now();
    let serial = run_scan_campaign(&ctx.scenario, &scale, 1);
    let serial_secs = ts.elapsed().as_secs_f64();
    let tp = Instant::now();
    let parallel = run_scan_campaign(&ctx.scenario, &scale, threads);
    let parallel_secs = tp.elapsed().as_secs_f64();
    assert_eq!(
        serial.iter().map(|s| s.records.len()).collect::<Vec<_>>(),
        parallel.iter().map(|s| s.records.len()).collect::<Vec<_>>(),
        "serial and parallel campaigns diverged"
    );
    let campaign = CampaignBench {
        scans: serial.len(),
        records: serial.iter().map(|s| s.records.len() as u64).sum(),
        threads,
        serial_secs,
        parallel_secs,
    };
    println!(
        "---- zmap campaign ({} scans): serial {:.3}s, {} thread(s) {:.3}s, speedup {:.2}x ----\n",
        campaign.scans,
        serial_secs,
        threads,
        parallel_secs,
        campaign.speedup(),
    );
    report.zmap_campaign = Some(campaign);

    // Telemetry overhead: the same campaign with counters off vs on,
    // best-of-N each to shed scheduler noise (run-to-run swing on a busy
    // box exceeds the true cost, so the floor needs several samples).
    // Counters flush once per task, so "on" should track "off" within a
    // few percent.
    const TELEMETRY_ITERS: u32 = 5;
    let mut off_secs = f64::MAX;
    let mut on_secs = f64::MAX;
    let mut snapshot = Registry::new();
    for _ in 0..TELEMETRY_ITERS {
        let t = Instant::now();
        let plain = run_scan_campaign(&ctx.scenario, &scale, threads);
        off_secs = off_secs.min(t.elapsed().as_secs_f64());
        let mut metrics = Registry::new();
        let t = Instant::now();
        let instrumented = run_scan_campaign_with(&ctx.scenario, &scale, threads, &mut metrics);
        on_secs = on_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(
            plain.iter().map(|s| s.records.len()).collect::<Vec<_>>(),
            instrumented.iter().map(|s| s.records.len()).collect::<Vec<_>>(),
            "telemetry changed the campaign output"
        );
        snapshot = metrics;
    }
    let telemetry = TelemetryBench {
        off_secs,
        on_secs,
        iterations: TELEMETRY_ITERS,
        metrics_json: snapshot.to_json(),
    };
    println!(
        "---- telemetry overhead (campaign, best of {TELEMETRY_ITERS}): off {:.3}s, on {:.3}s, {:+.2}% ----\n",
        telemetry.off_secs,
        telemetry.on_secs,
        telemetry.overhead() * 100.0,
    );
    report.telemetry = Some(telemetry);

    match report.write_default() {
        Ok(path) => println!("perf report -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write perf report: {e}"),
    }
    println!("== all experiments regenerated in {:?} ==", t0.elapsed());
}
