//! Scratch calibration probe: prints the headline statistics so the
//! behavior models can be tuned against the paper's bands.

use beware_bench::{ExperimentCtx, Scale};
use beware_core::timeout_table::TimeoutTable;
use beware_core::turtles;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("bench") => Scale::bench(),
        _ => Scale::small(),
    };
    let t0 = std::time::Instant::now();
    let ctx = ExperimentCtx::build(scale);
    eprintln!("ctx built in {:?}", t0.elapsed());

    println!(
        "survey_w: matched={} timeouts={} unmatched={} errors={} rate={:.3}",
        ctx.survey_w.stats.matched,
        ctx.survey_w.stats.timeouts,
        ctx.survey_w.stats.unmatched,
        ctx.survey_w.stats.errors,
        ctx.survey_w.stats.response_rate()
    );
    let acc = ctx.pipeline_w.accounting;
    println!(
        "table1-ish: detected={:?} naive={:?} bcast={:?} dup={:?} final={:?}",
        acc.survey_detected,
        acc.naive_matching,
        acc.broadcast_responses,
        acc.duplicate_responses,
        acc.survey_plus_delayed
    );

    if let Some(t) = TimeoutTable::compute(&ctx.combined_samples) {
        println!("addresses: {}", t.addresses);
        for r in [50.0, 90.0, 95.0, 98.0, 99.0] {
            let row: Vec<String> = [50.0, 90.0, 95.0, 98.0, 99.0]
                .iter()
                .map(|&c| format!("{:.2}", t.cell(r, c).unwrap()))
                .collect();
            println!("  r={r}%: {}", row.join("  "));
        }
    }

    for scan in &ctx.scans {
        println!(
            "scan {}: responses={} turtle_frac={:.4} sleepy={:.5}",
            scan.meta.label,
            scan.response_count(),
            turtles::turtle_fraction(scan, 1.0),
            turtles::turtle_fraction(scan, 100.0)
        );
    }
    let tscans: Vec<_> = ctx.turtle_scans().into_iter().cloned().collect();
    let ranked = turtles::rank_ases(&tscans, &ctx.db, 1.0);
    for r in ranked.iter().take(10) {
        println!(
            "AS rank: {} {} [{}] total={} pct={:.1}",
            r.asn,
            r.name,
            r.kind.label(),
            r.total_turtles,
            r.per_scan[0].percent()
        );
    }
    let conts = turtles::rank_continents(&tscans, &ctx.db, 1.0);
    for c in &conts {
        println!(
            "continent: {} total={} pct={:.1}",
            c.continent,
            c.total_turtles,
            c.per_scan[0].percent()
        );
    }
    eprintln!("total {:?}", t0.elapsed());
}
