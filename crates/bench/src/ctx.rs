//! Shared experiment context: the expensive data-collection steps, run
//! once and reused by every table/figure module.

use crate::scale::Scale;
use beware_asdb::AsDb;
use beware_core::pipeline::{merge_samples, run_pipeline_with, PipelineCfg, PipelineOutput};
use beware_core::LatencySamples;
use beware_dataset::{Record, ScanMeta, SurveyMeta, SurveyStats, ZmapScan};
use beware_netsim::exec::{default_threads, run_tasks};
use beware_netsim::scenario::{vantage, Scenario, ScenarioCfg};
use beware_probe::prelude::*;
use beware_runtime::rng::derive_seed;
use beware_telemetry::Registry;
use std::collections::BTreeMap;

/// The 17 scan slots of the paper's Table 3 (date label, weekday, begin).
pub const SCAN_SLOTS: [(&str, &str, &str); 17] = [
    ("Apr 17, 2015", "Fri", "02:44"),
    ("Apr 19, 2015", "Sun", "12:07"),
    ("Apr 23, 2015", "Thu", "12:07"),
    ("Apr 26, 2015", "Sun", "12:07"),
    ("Apr 30, 2015", "Thu", "12:08"),
    ("May 3, 2015", "Sun", "12:08"),
    ("May 17, 2015", "Sun", "12:09"),
    ("May 22, 2015", "Fri", "00:57"),
    ("May 24, 2015", "Sun", "12:09"),
    ("May 31, 2015", "Sun", "12:09"),
    ("Jun 4, 2015", "Thu", "12:10"),
    ("Jun 15, 2015", "Mon", "13:53"),
    ("Jun 21, 2015", "Sun", "12:11"),
    ("Jul 2, 2015", "Thu", "12:00"),
    ("Jul 5, 2015", "Sun", "12:00"),
    ("Jul 9, 2015", "Thu", "12:00"),
    ("Jul 12, 2015", "Sun", "12:00"),
];

/// Indices (into [`SCAN_SLOTS`] / `ExperimentCtx::scans`) of the three
/// scans Tables 4–6 analyze: May 22, Jun 21, Jul 9. When fewer scans were
/// run (small scale), the first three are used instead.
pub const TURTLE_SCAN_SLOTS: [usize; 3] = [7, 12, 15];

/// One completed survey.
#[derive(Debug, Clone)]
pub struct SurveyRun {
    /// Identity.
    pub meta: SurveyMeta,
    /// All records.
    pub records: Vec<Record>,
    /// Aggregate statistics.
    pub stats: SurveyStats,
}

/// The shared context.
#[derive(Debug)]
pub struct ExperimentCtx {
    /// Scale everything was run at.
    pub scale: Scale,
    /// Worker threads used for campaign fan-out (1 = serial). Outputs are
    /// byte-identical regardless of this value — see
    /// [`beware_netsim::exec`] for the determinism contract.
    pub threads: usize,
    /// The generated Internet (2015).
    pub scenario: Scenario,
    /// Attribution database.
    pub db: AsDb,
    /// The IT63w-like survey (vantage `w`).
    pub survey_w: SurveyRun,
    /// The IT63c-like survey (vantage `c`).
    pub survey_c: SurveyRun,
    /// Pipeline output for survey `w`.
    pub pipeline_w: PipelineOutput,
    /// Pipeline output for survey `c`.
    pub pipeline_c: PipelineOutput,
    /// Filtered per-address samples of both surveys combined — the
    /// paper's Table 2 substrate.
    pub combined_samples: BTreeMap<u32, LatencySamples>,
    /// The zmap scan campaign, in [`SCAN_SLOTS`] order.
    pub scans: Vec<ZmapScan>,
}

/// One unit of the shared data-collection fan-out.
enum BuildJob {
    Survey(char),
    Scan(usize),
}

/// Its result.
enum BuildOut {
    Survey(Box<(SurveyRun, PipelineOutput)>),
    Scan(Box<ZmapScan>),
}

impl ExperimentCtx {
    /// Run the shared data collection at `scale` with the machine's
    /// available parallelism.
    pub fn build(scale: Scale) -> Self {
        Self::build_with_threads(scale, default_threads())
    }

    /// Run the shared data collection at `scale` on `threads` workers.
    /// Every task (each survey+pipeline, each scan slot) is independently
    /// seeded, so the result does not depend on `threads`.
    pub fn build_with_threads(scale: Scale, threads: usize) -> Self {
        Self::build_with_metrics(scale, threads, &mut Registry::disabled())
    }

    /// Like [`build_with_threads`](Self::build_with_threads), additionally
    /// collecting telemetry. Each fan-out task records into its own
    /// registry; the per-task registries are merged into `metrics` in
    /// fixed task order (surveys first, then scan slots ascending), so the
    /// merged result is byte-identical for any `threads` value.
    pub fn build_with_metrics(scale: Scale, threads: usize, metrics: &mut Registry) -> Self {
        let scenario = scenario_for(&scale, 2015, 'w');
        let scenario_c = scenario_for(&scale, 2015, 'c');
        let db = scenario.db();
        let enabled = metrics.enabled();

        let mut jobs = vec![BuildJob::Survey('w'), BuildJob::Survey('c')];
        jobs.extend((0..scale.zmap_scans).map(BuildJob::Scan));
        let outs = run_tasks(threads, jobs, |_, job| {
            let mut local = if enabled { Registry::new() } else { Registry::disabled() };
            let out = match job {
                BuildJob::Survey(v) => {
                    let (scenario, name) = match v {
                        'w' => (&scenario, "IT63w"),
                        _ => (&scenario_c, "IT63c"),
                    };
                    let run = run_survey_like_with(scenario, &scale, name, v, 0.0, &mut local);
                    let pipe = run_pipeline_with(&run.records, &PipelineCfg::paper(), &mut local);
                    BuildOut::Survey(Box::new((run, pipe)))
                }
                BuildJob::Scan(i) => {
                    BuildOut::Scan(Box::new(run_scan_slot_with(&scenario, &scale, i, &mut local)))
                }
            };
            (out, local)
        });

        let mut surveys = Vec::with_capacity(2);
        let mut scans = Vec::with_capacity(scale.zmap_scans);
        for (out, local) in outs {
            metrics.merge(&local);
            match out {
                BuildOut::Survey(b) => surveys.push(*b),
                BuildOut::Scan(s) => scans.push(*s),
            }
        }
        let (survey_c, pipeline_c) = surveys.pop().expect("c survey task");
        let (survey_w, pipeline_w) = surveys.pop().expect("w survey task");

        let combined_samples =
            merge_samples(vec![pipeline_w.samples.clone(), pipeline_c.samples.clone()]);

        ExperimentCtx {
            scale,
            threads,
            scenario,
            db,
            survey_w,
            survey_c,
            pipeline_w,
            pipeline_c,
            combined_samples,
            scans,
        }
    }

    /// The three scans Tables 4–6 analyze.
    pub fn turtle_scans(&self) -> Vec<&ZmapScan> {
        if self.scans.len() > *TURTLE_SCAN_SLOTS.iter().max().expect("non-empty") {
            TURTLE_SCAN_SLOTS.iter().map(|&i| &self.scans[i]).collect()
        } else {
            self.scans.iter().take(3).collect()
        }
    }

    /// Addresses whose filtered survey percentile exceeds `threshold`
    /// seconds at percentile `pct`, capped at the scale's target budget —
    /// the selection step for the targeted re-probing experiments.
    pub fn high_latency_addrs(&self, pct: f64, threshold: f64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .combined_samples
            .iter()
            .filter(|(_, s)| s.percentile(pct).is_some_and(|v| v > threshold))
            .map(|(&a, _)| a)
            .collect();
        out.truncate(self.scale.target_addrs);
        out
    }

    /// Run a set of scamper jobs against fresh instances of this
    /// context's world, fanned out in fixed-size chunks.
    ///
    /// The chunk size is a constant — never derived from the thread
    /// count — and each chunk runs in its own world under a seed derived
    /// from the chunk index, so the result is identical whether the
    /// chunks run serially or in parallel.
    pub fn run_scamper(&self, jobs: Vec<PingJob>, grace_secs: f64) -> Vec<JobResult> {
        const CHUNK: usize = 32;
        let base = derive_seed(self.scale.seed, 0x5ca3_9e44);
        let mut chunks: Vec<Vec<PingJob>> = Vec::new();
        let mut jobs = jobs;
        while !jobs.is_empty() {
            let rest = jobs.split_off(jobs.len().min(CHUNK));
            chunks.push(std::mem::replace(&mut jobs, rest));
        }
        let results = run_tasks(self.threads, chunks, |i, chunk| {
            let mut world = self.scenario.build_world();
            let cfg = ScamperCfg {
                prober_addr: 0xC0_00_02_07,
                seed: derive_seed(base, i as u64),
                grace_secs,
            };
            cfg.build(chunk).run(&mut world).0
        });
        results.into_iter().flatten().collect()
    }
}

/// Build the scenario for a year and vantage at this scale.
pub fn scenario_for(scale: &Scale, year: u16, vantage_code: char) -> Scenario {
    Scenario::new(ScenarioCfg {
        year,
        seed: scale.seed,
        total_blocks: scale.internet_blocks,
        vantage: vantage(vantage_code).expect("known vantage code"),
    })
}

/// Deterministic sample of the plan's blocks for the survey to probe.
/// Blocks are ranked by a per-block hash and the first `count` taken —
/// stride sampling is avoided because it aliases against any structure in
/// the plan's block order. Result is in ascending block order.
pub fn survey_block_sample(scenario: &Scenario, count: u32) -> Vec<u32> {
    let mut all: Vec<u32> = scenario.plan.blocks().map(|(b, _)| b).collect();
    if all.len() as u32 <= count {
        return all;
    }
    all.sort_by_key(|&b| derive_seed(scenario.cfg.seed ^ 0x5a17, u64::from(b)));
    all.truncate(count as usize);
    all.sort_unstable();
    all
}

/// Run one ISI-style survey over the scenario.
pub fn run_survey_like(
    scenario: &Scenario,
    scale: &Scale,
    name: &str,
    vantage_code: char,
    match_drop_prob: f64,
) -> SurveyRun {
    run_survey_like_with(
        scenario,
        scale,
        name,
        vantage_code,
        match_drop_prob,
        &mut Registry::disabled(),
    )
}

/// [`run_survey_like`] with telemetry: engine counters land under
/// `probe/survey/`, world/run counters under `netsim/`.
pub fn run_survey_like_with(
    scenario: &Scenario,
    scale: &Scale,
    name: &str,
    vantage_code: char,
    match_drop_prob: f64,
    metrics: &mut Registry,
) -> SurveyRun {
    let blocks = survey_block_sample(scenario, scale.survey_blocks);
    let cfg = SurveyCfg {
        blocks,
        rounds: scale.survey_rounds,
        match_drop_prob,
        seed: derive_seed(scale.seed, u64::from(vantage_code as u32)),
        ..Default::default()
    };
    let mut world = scenario.build_world();
    let ((records, stats), _) = cfg.build(Vec::new()).run_with(&mut world, metrics);
    SurveyRun {
        meta: SurveyMeta {
            name: name.into(),
            vantage: vantage_code,
            year: scenario.cfg.year,
            date_label: 20150117,
        },
        records,
        stats,
    }
}

/// Run the whole Zmap scan campaign (`scale.zmap_scans` slots) on
/// `threads` workers, in slot order. Each slot is independently seeded
/// from the master seed and the slot index, so the output is identical
/// for any thread count. [`ExperimentCtx::build_with_threads`] folds the
/// slots into its larger fan-out; this standalone entry point exists for
/// the perf harness, which times the campaign serial vs parallel.
pub fn run_scan_campaign(scenario: &Scenario, scale: &Scale, threads: usize) -> Vec<ZmapScan> {
    run_scan_campaign_with(scenario, scale, threads, &mut Registry::disabled())
}

/// [`run_scan_campaign`] with telemetry: each slot records into its own
/// registry, merged into `metrics` in slot order — identical for any
/// thread count.
pub fn run_scan_campaign_with(
    scenario: &Scenario,
    scale: &Scale,
    threads: usize,
    metrics: &mut Registry,
) -> Vec<ZmapScan> {
    let enabled = metrics.enabled();
    let outs = run_tasks(threads, (0..scale.zmap_scans).collect(), |_, slot| {
        let mut local = if enabled { Registry::new() } else { Registry::disabled() };
        let scan = run_scan_slot_with(scenario, scale, slot, &mut local);
        (scan, local)
    });
    outs.into_iter()
        .map(|(scan, local)| {
            metrics.merge(&local);
            scan
        })
        .collect()
}

/// Run one scan slot of the campaign.
fn run_scan_slot_with(
    scenario: &Scenario,
    scale: &Scale,
    slot: usize,
    metrics: &mut Registry,
) -> ZmapScan {
    let (label, day, begin) = SCAN_SLOTS[slot % SCAN_SLOTS.len()];
    let blocks: Vec<u32> = scenario.plan.blocks().map(|(b, _)| b).collect();
    let cfg = ZmapCfg {
        blocks,
        duration_secs: scale.zmap_duration_secs,
        cooldown_secs: 240.0,
        seed: derive_seed(scale.seed, 0x2a00 + slot as u64),
        ..Default::default()
    };
    let mut world = scenario.build_world();
    let meta = ScanMeta { label: label.into(), day: day.into(), begin: begin.into() };
    let (scan, _) = cfg.build(meta).run_with(&mut world, metrics);
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sample_is_sorted_subset() {
        let scenario = scenario_for(&Scale::small(), 2015, 'w');
        let sample = survey_block_sample(&scenario, 16);
        assert_eq!(sample.len(), 16);
        let all: Vec<u32> = scenario.plan.blocks().map(|(b, _)| b).collect();
        for b in &sample {
            assert!(all.contains(b));
        }
        assert!(sample.windows(2).all(|w| w[0] < w[1]), "ascending, deduped");
        // Deterministic.
        assert_eq!(sample, survey_block_sample(&scenario, 16));
    }

    #[test]
    fn sample_larger_than_plan_returns_all() {
        let scenario = scenario_for(&Scale::small(), 2015, 'w');
        let total = scenario.plan.block_count();
        let sample = survey_block_sample(&scenario, total + 100);
        assert_eq!(sample.len() as u32, total);
    }
}
