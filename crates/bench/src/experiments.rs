//! One module per table/figure of the paper. Each exposes a result struct
//! holding the measured quantities (asserted by integration tests) plus a
//! `render()` producing the text the `paper_experiments` bench emits.

pub mod ablation;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12_14;
pub mod fig2_3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod recommendation;
pub mod table1;
pub mod table2;
pub mod table4_6;
pub mod table7;
