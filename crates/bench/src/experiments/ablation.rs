//! Broadcast-filter ablation: precision/recall of the EWMA filter across
//! its parameter grid, against simulator ground truth.
//!
//! The paper could only *estimate* its filter's quality by cross-checking
//! against Zmap-detected responders (97.7% caught, 0.13% false-negative
//! rate on the intersection). The simulator knows exactly which addresses
//! are unicast-silent broadcast responders, so here the filter is scored
//! against the real answer — and the paper's α = 0.01 / mark = 0.2 choice
//! is shown to sit on the knee of the precision/recall surface.

use crate::ExperimentCtx;
use beware_core::filters::broadcast::{detect_broadcast_responders, BroadcastFilterCfg};
use beware_core::matching::match_unmatched;
use beware_core::report::Table;
use beware_netsim::host;
use std::collections::BTreeSet;

/// One grid point's score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// EWMA smoothing factor.
    pub alpha: f64,
    /// Mark threshold.
    pub mark: f64,
    /// Addresses the filter marked.
    pub marked: usize,
    /// Of those, how many are true responders.
    pub true_positives: usize,
    /// True responders the filter missed.
    pub false_negatives: usize,
}

impl GridPoint {
    /// Fraction of marked addresses that are genuine responders.
    pub fn precision(&self) -> f64 {
        if self.marked == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.marked as f64
        }
    }

    /// Fraction of genuine responders the filter caught.
    pub fn recall(&self) -> f64 {
        let truth = self.true_positives + self.false_negatives;
        if truth == 0 {
            1.0
        } else {
            self.true_positives as f64 / truth as f64
        }
    }
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct FilterAblation {
    /// Ground-truth unicast-silent broadcast responders among the
    /// surveyed blocks (the addresses that *generate* stable artifacts).
    pub truth: BTreeSet<u32>,
    /// Scores over the (α, mark) grid.
    pub grid: Vec<GridPoint>,
}

/// α values swept (paper: 0.01).
pub const ALPHAS: [f64; 4] = [0.1, 0.05, 0.01, 0.002];
/// Mark thresholds swept (paper: 0.2).
pub const MARKS: [f64; 3] = [0.1, 0.2, 0.5];

/// Oracle: the unicast-silent broadcast responders in the surveyed blocks.
fn ground_truth(ctx: &ExperimentCtx) -> BTreeSet<u32> {
    let world = ctx.scenario.build_world();
    let wseed = ctx.scenario.world_seed();
    let blocks = crate::ctx::survey_block_sample(&ctx.scenario, ctx.scale.survey_blocks);
    let mut truth = BTreeSet::new();
    for b in blocks {
        let Some(profile) = world.block_profile(b) else { continue };
        if profile.broadcast.is_none() {
            continue;
        }
        for addr in (b << 8)..(b << 8) + 256 {
            if host::is_live(wseed, &profile, addr)
                && host::broadcast_unicast_silent(wseed, &profile, addr)
            {
                truth.insert(addr);
            }
        }
    }
    truth
}

/// Run the ablation over the `w` survey.
pub fn run(ctx: &ExperimentCtx) -> FilterAblation {
    let truth = ground_truth(ctx);
    let outcome = match_unmatched(&ctx.survey_w.records);
    let mut grid = Vec::new();
    for &alpha in &ALPHAS {
        for &mark in &MARKS {
            let cfg = BroadcastFilterCfg { alpha, mark_threshold: mark, ..Default::default() };
            let marked = detect_broadcast_responders(&outcome.delayed, &cfg);
            let true_positives = marked.intersection(&truth).count();
            grid.push(GridPoint {
                alpha,
                mark,
                marked: marked.len(),
                true_positives,
                false_negatives: truth.len() - true_positives,
            });
        }
    }
    FilterAblation { truth, grid }
}

impl FilterAblation {
    /// The paper's operating point.
    pub fn paper_point(&self) -> GridPoint {
        *self
            .grid
            .iter()
            .find(|g| g.alpha == 0.01 && g.mark == 0.2)
            .expect("paper point is in the sweep")
    }

    /// Render the grid.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Ablation: EWMA broadcast filter vs simulator ground truth",
            &["alpha", "mark", "marked", "precision", "recall"],
        );
        for g in &self.grid {
            t.row(vec![
                format!("{}", g.alpha),
                format!("{}", g.mark),
                g.marked.to_string(),
                format!("{:.3}", g.precision()),
                format!("{:.3}", g.recall()),
            ]);
        }
        let mut out = t.render();
        let p = self.paper_point();
        out.push_str(&format!(
            "ground truth: {} unicast-silent broadcast responders in the surveyed blocks\n\
             paper's cross-check (vs Zmap intersection): 97.7% detected, 0.13% false-negative\n\
             measured at the paper's (alpha=0.01, mark=0.2): precision {:.3}, recall {:.3}\n",
            self.truth.len(),
            p.precision(),
            p.recall(),
        ));
        out
    }
}
