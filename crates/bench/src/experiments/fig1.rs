//! Figure 1: CDF of per-address percentile latency over **survey-detected
//! responses only** — the view that is clipped at the prober's 3 s match
//! window and motivates recovering the unmatched responses.

use crate::ExperimentCtx;
use beware_core::cdf::Cdf;
use beware_core::pipeline::survey_samples;
use beware_core::report::{ascii_plot, Series};

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// One CDF per percentile level (50/80/90/95/98/99), over addresses.
    pub curves: Vec<(f64, Cdf)>,
    /// Number of addresses plotted.
    pub addresses: usize,
    /// Fraction of per-address p95 values at or below the 3 s window —
    /// the clipping the paper observes ("the distribution is clipped at
    /// the 3 second mark").
    pub p95_within_window: f64,
}

/// Percentile levels of Figure 1.
pub const LEVELS: [f64; 6] = [50.0, 80.0, 90.0, 95.0, 98.0, 99.0];

/// Compute the figure from the context's `w` survey.
pub fn run(ctx: &ExperimentCtx) -> Fig1 {
    let samples = survey_samples(&ctx.survey_w.records);
    let mut per_level: Vec<Vec<f64>> = vec![Vec::new(); LEVELS.len()];
    for s in samples.values() {
        for (i, &p) in LEVELS.iter().enumerate() {
            if let Some(v) = s.percentile(p) {
                per_level[i].push(v);
            }
        }
    }
    let curves: Vec<(f64, Cdf)> =
        LEVELS.iter().copied().zip(per_level.into_iter().map(Cdf::new)).collect();
    let p95 = &curves.iter().find(|(p, _)| *p == 95.0).expect("level present").1;
    Fig1 { addresses: samples.len(), p95_within_window: p95.fraction_at(3.0), curves }
}

impl Fig1 {
    /// Render the figure's data and the paper comparison.
    pub fn render(&self) -> String {
        let series: Vec<Series> = self
            .curves
            .iter()
            .map(|(p, cdf)| Series::new(format!("p{p}"), cdf.to_series(48)))
            .collect();
        let mut out = String::new();
        out.push_str(&ascii_plot(
            "Figure 1: CDF of per-address percentile latency (survey-detected only)",
            &series,
            72,
            18,
        ));
        out.push_str(&format!(
            "addresses: {}\npaper: '95% of echo replies from 95% of addresses arrive in < 2.85 s', \
             clipped at the 3 s timeout\nmeasured: {:.1}% of addresses have p95 ≤ 3 s (window-clipped view)\n",
            self.addresses,
            100.0 * self.p95_within_window,
        ));
        out
    }
}
