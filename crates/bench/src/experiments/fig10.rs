//! Figure 10: protocol parity — ICMP vs UDP vs TCP triplets against
//! high-latency addresses, 20 minutes between protocols, with the
//! firewall-RST cluster identified by its constant TTL.

use crate::ExperimentCtx;
use beware_core::protocols::{compare, Proto, ProtocolComparison, TripletResult};
use beware_core::report::{ascii_plot, Series};
use beware_probe::scamper::{JobResult, PingJob, PingProto};

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Addresses probed.
    pub targets: usize,
    /// The comparison (CDFs per protocol × seq class, firewall set).
    pub comparison: ProtocolComparison,
}

fn to_triplet(r: &JobResult) -> TripletResult {
    let proto = match r.proto {
        PingProto::Icmp => Proto::Icmp,
        PingProto::Udp => Proto::Udp,
        PingProto::TcpAck => Proto::Tcp,
    };
    let get = |v: &Vec<Option<f64>>, i: usize| v.get(i).copied().flatten();
    let gett = |v: &Vec<Option<u8>>, i: usize| v.get(i).copied().flatten();
    TripletResult {
        addr: r.dst,
        proto,
        rtts: [get(&r.rtts, 0), get(&r.rtts, 1), get(&r.rtts, 2)],
        ttls: [gett(&r.ttls, 0), gett(&r.ttls, 1), gett(&r.ttls, 2)],
    }
}

/// Select high-latency addresses (top of the median/80/90/95 sort, like
/// the paper's union sample) and probe triplets per protocol 20 minutes
/// apart.
pub fn run(ctx: &ExperimentCtx) -> Fig10 {
    let targets = ctx.high_latency_addrs(80.0, 1.0);
    let mut jobs = Vec::new();
    for (i, &dst) in targets.iter().enumerate() {
        let stagger = i as f64 * 0.11;
        jobs.push(PingJob::train(dst, PingProto::Icmp, 3, 1.0, stagger));
        jobs.push(PingJob::train(dst, PingProto::Udp, 3, 1.0, 1200.0 + stagger));
        jobs.push(PingJob::train(dst, PingProto::TcpAck, 3, 1.0, 2400.0 + stagger));
    }
    let results = if jobs.is_empty() { Vec::new() } else { ctx.run_scamper(jobs, 300.0) };
    let triplets: Vec<TripletResult> = results.iter().map(to_triplet).collect();
    Fig10 { targets: targets.len(), comparison: compare(&triplets) }
}

impl Fig10 {
    /// Max spread of the rest-of-triplet medians across protocols — the
    /// parity claim ("it does not appear that any protocol has significant
    /// preferential treatment").
    pub fn parity_spread(&self) -> f64 {
        let meds: Vec<f64> =
            Proto::ALL.iter().filter_map(|&p| self.comparison.rest_median(p)).collect();
        if meds.len() < 2 {
            return 0.0;
        }
        meds.iter().cloned().fold(f64::MIN, f64::max)
            - meds.iter().cloned().fold(f64::MAX, f64::min)
    }

    /// Render the six CDFs plus the firewall findings.
    pub fn render(&self) -> String {
        let mut series = Vec::new();
        for &p in &Proto::ALL {
            if let Some(cdf) = self.comparison.seq0.get(&p) {
                series.push(Series::new(
                    format!("{} seq0", p.label()),
                    cdf.to_series(150).into_iter().map(|(x, y)| (x.max(1e-3).log10(), y)).collect(),
                ));
            }
            if let Some(cdf) = self.comparison.rest.get(&p) {
                series.push(Series::new(
                    format!("{} seq1,2", p.label()),
                    cdf.to_series(150).into_iter().map(|(x, y)| (x.max(1e-3).log10(), y)).collect(),
                ));
            }
        }
        let mut out = ascii_plot(
            "Figure 10: per-address worst RTT by protocol and sequence (x = log10 s)",
            &series,
            72,
            18,
        );
        let fw = &self.comparison.firewall_blocks;
        out.push_str(&format!(
            "paper: first probe of a triplet slower (wake-up); TCP shows a ~200 ms \
             firewall-RST mode with constant TTL per /24; otherwise no protocol favored\n\
             measured over {} targets: parity spread of seq1,2 medians = {:.3} s; \
             firewall-fronted /24s detected: {}; TCP seq0 median with firewalls removed: {:?}\n",
            self.targets,
            self.parity_spread(),
            fw.len(),
            self.comparison.tcp_seq0_no_firewall.quantile(0.5),
        ));
        out
    }
}
