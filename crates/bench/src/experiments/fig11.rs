//! Figure 11: the satellite split — 1st vs 99th percentile scatter,
//! satellite-only ISPs separated out.

use crate::ExperimentCtx;
use beware_core::report::{ascii_plot, Series};
use beware_core::satellite::{split_by_satellite, SatelliteSplit};

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// The split scatter.
    pub split: SatelliteSplit,
}

/// Compute from the combined filtered samples.
pub fn run(ctx: &ExperimentCtx) -> Fig11 {
    // The paper restricts both panels to addresses with high 1st
    // percentiles (its x-axis starts around 0.3 s) and enough samples for
    // a meaningful p99.
    Fig11 { split: split_by_satellite(&ctx.combined_samples, &ctx.db, 0.3, 20) }
}

impl Fig11 {
    /// Render the two panels and the paper's claims.
    pub fn render(&self) -> String {
        let to_points = |pts: &[beware_core::satellite::ScatterPoint]| -> Vec<(f64, f64)> {
            pts.iter().map(|p| (p.p1, p.p99.max(1e-2).log10())).collect()
        };
        let mut out = ascii_plot(
            "Figure 11: 1st percentile (s) vs log10 99th percentile (s)",
            &[
                Series::new("other", to_points(&self.split.other)),
                Series::new("satellite", to_points(&self.split.satellite)),
            ],
            72,
            18,
        );
        out.push_str(&format!(
            "paper: satellite 1st percentiles exceed 500 ms in all cases (~2x the \
             geosynchronous theoretical minimum); their 99th percentiles are predominantly \
             below 3 s — satellites are NOT the source of extreme latency\n\
             measured: satellite addrs {}, p1 floor {:?} s, {:.0}% of satellite p99 < 3 s; \
             non-satellite high-p1 addrs {}, of which {:.0}% exceed 3 s at p99\n",
            self.split.satellite.len(),
            self.split.satellite_p1_floor().map(|v| (v * 1000.0).round() / 1000.0),
            100.0 * self.split.satellite_p99_below(3.0),
            self.split.other.len(),
            100.0
                * if self.split.other.is_empty() {
                    0.0
                } else {
                    self.split.other.iter().filter(|p| p.p99 > 3.0).count() as f64
                        / self.split.other.len() as f64
                },
        ));
        out
    }
}
