//! Figures 12–14: the first-ping (radio wake-up) experiment.
//!
//! Protocol mirrors the paper's: addresses with survey median ≥ 1 s are
//! screened with two pings 5 s apart; responders that are not simply fast
//! get, ~80 s later, a 10-ping 1 Hz train; the per-address trains feed the
//! `beware-core::firstping` analysis.

use crate::ExperimentCtx;
use beware_core::firstping::{analyze, FirstPingAnalysis};
use beware_core::report::{ascii_plot, Series};
use beware_probe::scamper::{PingJob, PingProto};

/// The computed figures.
#[derive(Debug, Clone)]
pub struct Fig12To14 {
    /// Addresses selected by the survey screen (median ≥ 1 s).
    pub screened: usize,
    /// Addresses that passed the two-ping responsiveness screen.
    pub trained: usize,
    /// The first-ping analysis over the 10-ping trains.
    pub analysis: FirstPingAnalysis,
    /// Median estimated wake-up duration (paper: 1.37 s).
    pub setup_median: Option<f64>,
    /// 90th percentile of the wake-up estimate (paper: < 4 s).
    pub setup_p90: Option<f64>,
}

/// Run the experiment.
pub fn run(ctx: &ExperimentCtx) -> Fig12To14 {
    let candidates = ctx.high_latency_addrs(50.0, 1.0);
    let screened = candidates.len();
    if screened == 0 {
        let analysis = analyze(&[]);
        return Fig12To14 { screened, trained: 0, analysis, setup_median: None, setup_p90: None };
    }

    // Screen: two pings 5 s apart.
    let screen_jobs: Vec<PingJob> = candidates
        .iter()
        .enumerate()
        .map(|(i, &dst)| PingJob {
            dst,
            proto: PingProto::Icmp,
            offsets: vec![0.0, 5.0],
            start_secs: i as f64 * 0.03,
        })
        .collect();
    let screen = ctx.run_scamper(screen_jobs, 120.0);
    // Keep addresses that responded at least once and are not sub-200 ms
    // on average (the paper drops 1,994 fast responders).
    let keep: Vec<u32> = screen
        .iter()
        .filter(|r| {
            let answered = r.answered();
            !answered.is_empty() && answered.iter().sum::<f64>() / answered.len() as f64 >= 0.2
        })
        .map(|r| r.dst)
        .collect();

    // Train: ~80 s later, ten pings at 1 Hz.
    let train_jobs: Vec<PingJob> = keep
        .iter()
        .enumerate()
        .map(|(i, &dst)| PingJob::train(dst, PingProto::Icmp, 10, 1.0, 200.0 + i as f64 * 0.07))
        .collect();
    let trains =
        if train_jobs.is_empty() { Vec::new() } else { ctx.run_scamper(train_jobs, 300.0) };
    let streams: Vec<(u32, Vec<Option<f64>>)> =
        trains.iter().map(|r| (r.dst, r.rtts.clone())).collect();
    let analysis = analyze(&streams);

    let setup_cdf = analysis.fig13_setup_time_cdf();
    Fig12To14 {
        screened,
        trained: keep.len(),
        setup_median: setup_cdf.quantile(0.5),
        setup_p90: setup_cdf.quantile(0.9),
        analysis,
    }
}

impl Fig12To14 {
    /// Per-/24 fractions with the wake-up signature, as a CDF (Figure 14).
    pub fn fig14_cdf(&self) -> Vec<(f64, f64)> {
        let fracs: Vec<f64> =
            self.analysis.fig14_prefix_fractions().into_iter().map(|(_, f)| f).collect();
        beware_core::cdf::Cdf::new(fracs).to_series(100)
    }

    /// Render all three figures.
    pub fn render(&self) -> String {
        let (all, above) = self.analysis.fig12_diff_cdfs();
        let prob = self.analysis.fig12_probability_curve(-1.0, 1.5, 25);
        let mut out = ascii_plot(
            "Figure 12 (bottom): CDF of RTT1 - RTT2",
            &[
                Series::new("all", all.to_series(200)),
                Series::new("RTT1>max(rest)", above.to_series(200)),
            ],
            72,
            14,
        );
        out.push_str(&ascii_plot(
            "Figure 12 (top): P(RTT1 > max rest | RTT1-RTT2)",
            &[Series::new("prob", prob)],
            72,
            10,
        ));
        out.push_str(&ascii_plot(
            "Figure 13: CDF of RTT1 - min(rest) (wake-up estimate)",
            &[Series::new("setup", self.analysis.fig13_setup_time_cdf().to_series(200))],
            72,
            12,
        ));
        out.push_str(&ascii_plot(
            "Figure 14: per-/24 fraction of addresses with first-ping drop (CDF)",
            &[Series::new("frac", self.fig14_cdf())],
            72,
            10,
        ));
        let c = self.analysis.counts;
        out.push_str(&format!(
            "paper: 51,646 of 74,430 classified (69%) had RTT1 > max(rest); wake-up \
             median 1.37 s, 90% < 4 s; prefixes concentrated (1,887 /24s)\n\
             measured: screened {} → trained {}; classified {} — above-max {:.0}%, \
             above-median {:.0}%, at/below {:.0}%; wake-up median {:?} s, p90 {:?} s; \
             distinct /24s {}\n",
            self.screened,
            self.trained,
            c.classified(),
            100.0 * c.above_max_fraction(),
            100.0 * c.above_median as f64 / c.classified().max(1) as f64,
            100.0 * c.at_or_below_median as f64 / c.classified().max(1) as f64,
            self.setup_median.map(|v| (v * 100.0).round() / 100.0),
            self.setup_p90.map(|v| (v * 100.0).round() / 100.0),
            self.analysis.fig14_prefix_fractions().len(),
        ));
        out
    }
}
