//! Figures 2 and 3: last-octet histograms showing that cross-address
//! responses are triggered by probes to subnet broadcast/network
//! addresses (trailing runs of ≥ 2 equal bits spike; interior octets form
//! a flat background).

use crate::ExperimentCtx;
use beware_core::broadcast_octets::{
    survey_unmatched_octets, zmap_broadcast_octets, OctetHistogram,
};
use beware_core::report::{ascii_plot, Series};

/// Both histograms plus their headline ratios.
#[derive(Debug, Clone)]
pub struct Fig2And3 {
    /// Figure 2: distinct probed addresses soliciting cross-address
    /// responses, per last octet (from the first zmap scan).
    pub zmap: OctetHistogram,
    /// Figure 3: unmatched survey responses, per last octet of the most
    /// recently probed address in the same /24.
    pub survey: OctetHistogram,
    /// Spike-to-background ratio for the zmap histogram: broadcast-like
    /// total over (interior mean × broadcast-like octet count).
    pub zmap_spike_ratio: f64,
    /// Same, for the survey histogram.
    pub survey_spike_ratio: f64,
}

fn spike_ratio(h: &OctetHistogram) -> f64 {
    let bl_octets = 128.0; // half the octet values are broadcast-like
    let background = h.interior_mean() * bl_octets;
    if background == 0.0 {
        if h.broadcast_like_total() > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        h.broadcast_like_total() as f64 / background
    }
}

/// Compute both figures.
pub fn run(ctx: &ExperimentCtx) -> Fig2And3 {
    let zmap = zmap_broadcast_octets(&ctx.scans[0]);
    let survey = survey_unmatched_octets(&ctx.survey_w.records);
    Fig2And3 {
        zmap_spike_ratio: spike_ratio(&zmap),
        survey_spike_ratio: spike_ratio(&survey),
        zmap,
        survey,
    }
}

impl Fig2And3 {
    /// Render both histograms and the paper comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&ascii_plot(
            "Figure 2: broadcast addresses that solicit responses in Zmap (per last octet)",
            &[Series::new("count", self.zmap.to_series())],
            72,
            14,
        ));
        out.push_str(&format!(
            "measured: {} probed addresses with cross-address responses; \
             broadcast-like octets carry {} vs interior total {}\n\n",
            self.zmap.total(),
            self.zmap.broadcast_like_total(),
            self.zmap.interior_total(),
        ));
        out.push_str(&ascii_plot(
            "Figure 3: unmatched responses per last octet of most recent probe",
            &[Series::new("count", self.survey.to_series())],
            72,
            14,
        ));
        out.push_str(&format!(
            "paper: spikes at last octets whose trailing N ≥ 2 bits are equal (255, 0, 127, 128, ...) \
             over an even background\nmeasured: broadcast-like {} vs interior {} unmatched responses \
             (spike ratio {:.1})\n",
            self.survey.broadcast_like_total(),
            self.survey.interior_total(),
            self.survey_spike_ratio,
        ));
        out
    }
}
