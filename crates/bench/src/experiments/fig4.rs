//! Figure 4: the broadcast false-match scenario, demonstrated end to end.
//!
//! The paper's figure is an illustration: the probe to 211.4.10.254 at
//! T = 660 is lost, the broadcast ping to .255 at T = 990 solicits a
//! response *from* .254, and source-address matching falsely infers a
//! 330 s latency. Here we build exactly that world — a .254 that answers
//! broadcast but not unicast — run the real survey prober and the real
//! matcher over it, and check the false latency appears and that the
//! filter then removes it.

use beware_core::filters::broadcast::{detect_broadcast_responders, BroadcastFilterCfg};
use beware_core::matching::match_unmatched;
use beware_netsim::profile::{BlockProfile, BroadcastCfg};
use beware_netsim::rng::Dist;
use beware_netsim::world::World;
use beware_probe::prelude::*;
use std::sync::Arc;

/// Outcome of the demonstration.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The false latencies inferred for the silent broadcast responders
    /// (paper's canonical value: 330 s for an off-by-one octet).
    pub false_latencies: Vec<u32>,
    /// Number of addresses the EWMA filter subsequently marked.
    pub filtered: usize,
}

/// Run the demonstration (self-contained; does not need the shared ctx).
pub fn run(seed: u64) -> Fig4 {
    let mut world = World::new(seed);
    world.add_block(
        0x0a0a0a, // stand-in for the paper's 211.4.10.0/24
        Arc::new(BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            subnet_host_bits: 8,
            broadcast: Some(BroadcastCfg {
                responder_prob: 0.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 1.0,
                network_addr_responds: false,
            }),
            ..Default::default()
        }),
    );
    let cfg = SurveyCfg { blocks: vec![0x0a0a0a], rounds: 40, seed, ..Default::default() };
    let ((records, _), _) = cfg.build(Vec::new()).run(&mut world);
    let outcome = match_unmatched(&records);
    // The .254 responder's false latencies.
    let false_latencies: Vec<u32> =
        outcome.delayed.iter().filter(|d| d.addr & 0xff == 254).map(|d| d.latency_s).collect();
    let filtered =
        detect_broadcast_responders(&outcome.delayed, &BroadcastFilterCfg::default()).len();
    Fig4 { false_latencies, filtered }
}

impl Fig4 {
    /// Render the narration.
    pub fn render(&self) -> String {
        let sample = self.false_latencies.first().copied().unwrap_or(0);
        format!(
            "Figure 4: broadcast false-match demonstration\n\
             paper: a lost probe to .254 is falsely matched to the broadcast response the\n\
             .255 probe solicits 330 s later (half the 660 s round)\n\
             measured: .254 (broadcast-answering, unicast-silent) yields {} false delayed\n\
             responses, each inferring {} s; EWMA filter then marks {} responder(s)\n",
            self.false_latencies.len(),
            sample,
            self.filtered,
        )
    }
}
