//! Figure 5: CCDF of the maximum number of echo responses a single echo
//! request ever solicited per address, over addresses that sent more than
//! 2 responses to some request — the duplicate/DoS tail.

use crate::ExperimentCtx;
use beware_core::cdf::Cdf;
use beware_core::report::{ascii_plot, Series};

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// CCDF over per-address maxima (addresses with max > 2 only, as the
    /// paper plots).
    pub ccdf: Cdf,
    /// Addresses with max > 2.
    pub addresses: usize,
    /// Addresses whose max exceeded the paper's 1,000-response marker.
    pub over_1000: usize,
    /// The single largest flood observed.
    pub max_observed: u32,
}

/// Compute from the `w` survey's pipeline output.
pub fn run(ctx: &ExperimentCtx) -> Fig5 {
    let maxima: Vec<u32> =
        ctx.pipeline_w.max_responses.values().copied().filter(|&m| m > 2).collect();
    Fig5 {
        addresses: maxima.len(),
        over_1000: maxima.iter().filter(|&&m| m >= 1000).count(),
        max_observed: maxima.iter().copied().max().unwrap_or(0),
        ccdf: Cdf::new(maxima.into_iter().map(f64::from).collect()),
    }
}

impl Fig5 {
    /// Render the CCDF (log-log in spirit; the ASCII plot shows log10).
    pub fn render(&self) -> String {
        let series: Vec<(f64, f64)> = self
            .ccdf
            .to_ccdf_series()
            .into_iter()
            .filter(|&(_, y)| y > 0.0)
            .map(|(x, y)| (x.log10(), y.log10()))
            .collect();
        let mut out = ascii_plot(
            "Figure 5: CCDF of max responses per echo request (log10/log10)",
            &[Series::new("ccdf", series)],
            72,
            14,
        );
        out.push_str(&format!(
            "paper: 658,841 addresses sent >2 responses; 0.7% sent ≥1,000; up to ~11 M \
             (DoS floods)\nmeasured (scaled world, flood cap applies): {} addresses >2 \
             responses, {} ≥ 1,000, max {}\n",
            self.addresses, self.over_1000, self.max_observed,
        ));
        out
    }
}
