//! Figure 6: per-address percentile-latency CDFs before and after
//! filtering unexpected responses — the filter removes the bumps at 330,
//! 165 and 495 s (fractions of the 660 s round).

use crate::ExperimentCtx;
use beware_core::cdf::Cdf;
use beware_core::percentile::LatencySamples;
use beware_core::report::{ascii_plot, Series};

/// Mass near the artifact latencies in a set of per-address p99 values.
fn bump_mass(values: &Cdf, centers: &[f64], halfwidth: f64) -> f64 {
    centers
        .iter()
        .map(|&c| values.fraction_at(c + halfwidth) - values.fraction_at(c - halfwidth))
        .sum()
}

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// p99-per-address CDF before filtering.
    pub before_p99: Cdf,
    /// p99-per-address CDF after filtering.
    pub after_p99: Cdf,
    /// Fraction of addresses whose pre-filter p99 sits within ±6 s of one
    /// of the 165/330/495 s artifact latencies.
    pub bump_mass_before: f64,
    /// The same, after filtering.
    pub bump_mass_after: f64,
}

fn p99_cdf<'a>(samples: impl Iterator<Item = &'a LatencySamples>) -> Cdf {
    Cdf::new(samples.filter_map(|s| s.percentile(99.0)).collect())
}

/// Compute from the `w` survey pipeline (before = naive, after = filtered).
pub fn run(ctx: &ExperimentCtx) -> Fig6 {
    let before_p99 = p99_cdf(ctx.pipeline_w.naive_samples().map(|(_, s)| s));
    let after_p99 = p99_cdf(ctx.pipeline_w.samples.values());
    let centers = [165.0, 330.0, 495.0];
    Fig6 {
        bump_mass_before: bump_mass(&before_p99, &centers, 6.0),
        bump_mass_after: bump_mass(&after_p99, &centers, 6.0),
        before_p99,
        after_p99,
    }
}

impl Fig6 {
    /// Render the top-of-distribution view the paper plots (y ∈ [0.98, 1]).
    pub fn render(&self) -> String {
        let tail = |cdf: &Cdf| -> Vec<(f64, f64)> {
            cdf.to_series(400).into_iter().filter(|&(_, y)| y >= 0.98).collect()
        };
        let mut out = ascii_plot(
            "Figure 6: per-address p99 latency CDF, top 2% (before vs after filtering)",
            &[
                Series::new("before", tail(&self.before_p99)),
                Series::new("after", tail(&self.after_p99)),
            ],
            72,
            16,
        );
        out.push_str(&format!(
            "paper: before filtering there are bumps at 330 s, 165 s and 495 s, \
             fractions of the 11-minute probing interval; filtering removes them\n\
             measured: address mass within ±6 s of those latencies: before {:.4}, after {:.4}\n",
            self.bump_mass_before, self.bump_mass_after,
        ));
        out
    }
}
