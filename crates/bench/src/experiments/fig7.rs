//! Figure 7 and Table 3: the zmap scan campaign — RTT distribution of
//! every scan, and the per-scan metadata table.
//!
//! The paper's claims: the distributions are nearly identical across
//! scans; ~5% of addresses exceed 1 s in *each* scan; 0.1% exceed 75 s
//! with the 99.9th percentile between 77 and 102 s.

use crate::ExperimentCtx;
use beware_core::cdf::Cdf;
use beware_core::report::{ascii_plot, fmt_count, Series, Table};
use beware_core::turtles::turtle_fraction;
use beware_dataset::ZmapScan;

/// Per-scan summary.
#[derive(Debug, Clone)]
pub struct ScanSummary {
    /// Scan label (date).
    pub label: String,
    /// Weekday.
    pub day: String,
    /// Begin time.
    pub begin: String,
    /// Echo responses received.
    pub responses: usize,
    /// Median RTT in seconds.
    pub median_rtt: f64,
    /// Fraction of responders above 1 s.
    pub over_1s: f64,
    /// Fraction of responders above 75 s.
    pub over_75s: f64,
}

/// The computed campaign view.
#[derive(Debug, Clone)]
pub struct Fig7Table3 {
    /// One summary per scan.
    pub scans: Vec<ScanSummary>,
    /// Per-scan RTT CDFs (per responder, min RTT).
    pub cdfs: Vec<Cdf>,
}

fn summarize(scan: &ZmapScan) -> (ScanSummary, Cdf) {
    let rtts: Vec<f64> = scan.min_rtt_per_responder().into_iter().map(|(_, r)| r).collect();
    let cdf = Cdf::new(rtts);
    let summary = ScanSummary {
        label: scan.meta.label.clone(),
        day: scan.meta.day.clone(),
        begin: scan.meta.begin.clone(),
        responses: scan.response_count(),
        median_rtt: cdf.quantile(0.5).unwrap_or(0.0),
        over_1s: turtle_fraction(scan, 1.0),
        over_75s: turtle_fraction(scan, 75.0),
    };
    (summary, cdf)
}

/// Compute over the whole campaign.
pub fn run(ctx: &ExperimentCtx) -> Fig7Table3 {
    let mut scans = Vec::new();
    let mut cdfs = Vec::new();
    for scan in &ctx.scans {
        let (s, c) = summarize(scan);
        scans.push(s);
        cdfs.push(c);
    }
    Fig7Table3 { scans, cdfs }
}

impl Fig7Table3 {
    /// Max spread of the >1 s fraction across scans (the paper's
    /// "consistent fraction of addresses" claim).
    pub fn turtle_fraction_spread(&self) -> f64 {
        let fracs: Vec<f64> = self.scans.iter().map(|s| s.over_1s).collect();
        let max = fracs.iter().copied().fold(f64::MIN, f64::max);
        let min = fracs.iter().copied().fold(f64::MAX, f64::min);
        max - min
    }

    /// Render Table 3 plus the Figure 7 overlay (first/middle/last scans).
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 3: Zmap scan details",
            &["Scan Date", "Day", "Begin", "Echo Responses", ">1s %", ">75s %"],
        );
        for s in &self.scans {
            t.row(vec![
                s.label.clone(),
                s.day.clone(),
                s.begin.clone(),
                fmt_count(s.responses as u64),
                format!("{:.2}", 100.0 * s.over_1s),
                format!("{:.3}", 100.0 * s.over_75s),
            ]);
        }
        let mut out = t.render();
        let pick = [0, self.cdfs.len() / 2, self.cdfs.len() - 1];
        let series: Vec<Series> = pick
            .iter()
            .map(|&i| {
                Series::new(
                    self.scans[i].label.clone(),
                    self.cdfs[i]
                        .to_series(300)
                        .into_iter()
                        .map(|(x, y)| (x.max(1e-3).log10(), y))
                        .collect(),
                )
            })
            .collect();
        out.push_str(&ascii_plot(
            "Figure 7: RTT CDF per scan (x = log10 seconds)",
            &series,
            72,
            16,
        ));
        out.push_str(&format!(
            "paper: median < 250 ms per scan; ~5% of addresses > 1 s in each scan; 0.1% > 75 s\n\
             measured: >1 s fraction spread across scans = {:.4} (stability), \
             median range [{:.3}, {:.3}] s\n",
            self.turtle_fraction_spread(),
            self.scans.iter().map(|s| s.median_rtt).fold(f64::MAX, f64::min),
            self.scans.iter().map(|s| s.median_rtt).fold(f64::MIN, f64::max),
        ));
        out
    }
}
