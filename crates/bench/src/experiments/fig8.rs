//! Figure 8: confirming extreme latencies with a second probing scheme.
//!
//! The paper took 2,000 addresses whose survey latencies exceeded 100 s in
//! ≥ 5% of pings, re-probed them with scamper (1,000 pings at 10 s
//! spacing, effectively unbounded listen), and found 17% still saw > 100 s
//! for 1% of pings — while the population's p95 dropped, showing the
//! extreme behavior is real but time-varying.

use crate::ExperimentCtx;
use beware_core::cdf::Cdf;
use beware_core::percentile::percentile_sorted;
use beware_core::report::{ascii_plot, Series};
use beware_probe::scamper::{PingJob, PingProto};

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Addresses selected from the survey.
    pub selected: usize,
    /// Addresses that responded to the re-probe.
    pub responded: usize,
    /// CDF over responding addresses of their per-address p95 RTT.
    pub p95_cdf: Cdf,
    /// CDF over responding addresses of their per-address p99 RTT.
    pub p99_cdf: Cdf,
    /// Fraction of responding addresses whose p99 exceeds 100 s (paper:
    /// 17% of their sample).
    pub still_extreme: f64,
}

/// Select extreme addresses and re-probe them.
pub fn run(ctx: &ExperimentCtx) -> Fig8 {
    // The paper screens on ≥5% of pings over 100 s (per-address p95). At
    // our scale that population is a handful of addresses, so the screen
    // is relaxed to p99 > 100 s — same "extreme" population, larger
    // sample (recorded as a substitution in EXPERIMENTS.md).
    let targets = ctx.high_latency_addrs(99.0, 100.0);
    let jobs: Vec<PingJob> = targets
        .iter()
        .enumerate()
        .map(|(i, &dst)| {
            PingJob::train(dst, PingProto::Icmp, ctx.scale.confirm_train, 10.0, i as f64 * 0.05)
        })
        .collect();
    if jobs.is_empty() {
        return Fig8 {
            selected: 0,
            responded: 0,
            p95_cdf: Cdf::new(vec![]),
            p99_cdf: Cdf::new(vec![]),
            still_extreme: 0.0,
        };
    }
    let results = ctx.run_scamper(jobs, 500.0);
    let mut p95s = Vec::new();
    let mut p99s = Vec::new();
    for r in &results {
        let mut answered = r.answered();
        if answered.is_empty() {
            continue;
        }
        answered.sort_by(f64::total_cmp);
        p95s.push(percentile_sorted(&answered, 95.0).expect("non-empty"));
        p99s.push(percentile_sorted(&answered, 99.0).expect("non-empty"));
    }
    let responded = p95s.len();
    let still_extreme = if responded == 0 {
        0.0
    } else {
        p99s.iter().filter(|&&v| v > 100.0).count() as f64 / responded as f64
    };
    Fig8 {
        selected: targets.len(),
        responded,
        p95_cdf: Cdf::new(p95s),
        p99_cdf: Cdf::new(p99s),
        still_extreme,
    }
}

impl Fig8 {
    /// Render the percentile-per-address CDFs and the comparison.
    pub fn render(&self) -> String {
        let mut out = ascii_plot(
            "Figure 8: re-probe of extreme addresses — per-address p95/p99 RTT CDFs",
            &[
                Series::new("p95", self.p95_cdf.to_series(200)),
                Series::new("p99", self.p99_cdf.to_series(200)),
            ],
            72,
            14,
        );
        out.push_str(&format!(
            "paper: of 2,000 selected / 1,244 responding, 17% still see >100 s at p99; \
             p95 for half the addresses dropped to 7.3 s (extremes vary with time)\n\
             measured: selected {} / responded {}; {:.1}% still >100 s at p99; \
             median per-address p95 = {:.2} s\n",
            self.selected,
            self.responded,
            100.0 * self.still_extreme,
            self.p95_cdf.quantile(0.5).unwrap_or(0.0),
        ));
        out
    }
}
