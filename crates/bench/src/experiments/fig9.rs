//! Figure 9: the 2006–2015 longitudinal sweep — per-survey minimum
//! timeouts at each percentile level (top panel) and response rates with
//! broken-survey screening (bottom panel).
//!
//! One scaled survey is run per (year, vantage) slot; the documented
//! failure of the 2014 Japan vantage (matches collapsing by three orders
//! of magnitude) is injected to exercise the data-quality screen.

use crate::ctx::{run_survey_like, scenario_for};
use crate::Scale;
use beware_core::pipeline::{run_pipeline, PipelineCfg};
use beware_core::report::{ascii_plot, Series};
use beware_core::trend::{timeout_series, SurveyPoint};
use beware_netsim::exec::{default_threads, run_tasks};

/// The computed sweep.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// All survey points, chronological.
    pub points: Vec<SurveyPoint>,
    /// Timeout series per percentile level over usable surveys.
    pub series: Vec<(f64, Vec<f64>)>,
    /// Names of surveys screened out by the response-rate rule.
    pub screened_out: Vec<String>,
}

/// Per-year vantage schedule: mostly `w`/`c` like the real campaign, with
/// a `j` survey in 2014 that is injected broken.
fn schedule() -> Vec<(u16, char, f64)> {
    let mut slots = Vec::new();
    for year in 2006..=2015u16 {
        slots.push((year, 'w', 0.0));
        slots.push((year, 'c', 0.0));
        if year == 2014 {
            // The IT59j-style failure: the prober loses almost all matches.
            slots.push((year, 'j', 0.999));
        }
    }
    slots
}

/// Run the sweep with the machine's available parallelism.
pub fn run(scale: &Scale) -> Fig9 {
    run_with_threads(scale, default_threads())
}

/// Run the sweep on `threads` workers. Surveys here are smaller than the
/// main context's (a quarter of the blocks, half the rounds) because 21
/// of them run. Each (year, vantage) slot is an independently seeded
/// simulation, fanned out over the pool; the chronological point order is
/// the fixed task order, so the result does not depend on `threads`.
pub fn run_with_threads(scale: &Scale, threads: usize) -> Fig9 {
    let mini = Scale {
        survey_blocks: (scale.survey_blocks / 4).max(8),
        survey_rounds: (scale.survey_rounds / 2).max(20),
        ..*scale
    };
    let points = run_tasks(threads, schedule(), |_, (year, vantage_code, drop)| {
        let scenario = scenario_for(&mini, year, vantage_code);
        let name = format!("IT{}{}", year - 1952, vantage_code); // IT63 ≈ 2015
        let run = run_survey_like(&scenario, &mini, &name, vantage_code, drop);
        let pipe = run_pipeline(&run.records, &PipelineCfg::default());
        SurveyPoint::compute(run.meta, &pipe.samples, &run.stats)
    });
    let series = timeout_series(&points, 0.02);
    let screened_out =
        points.iter().filter(|p| !p.is_usable(0.02)).map(|p| p.meta.name.clone()).collect();
    Fig9 { points, series, screened_out }
}

impl Fig9 {
    /// The 95%-diagonal values of the first and last usable surveys — the
    /// paper reports growth "from near two seconds in 2007 to near five
    /// seconds in 2011".
    pub fn p95_growth(&self) -> Option<(f64, f64)> {
        let usable: Vec<&SurveyPoint> = self.points.iter().filter(|p| p.is_usable(0.02)).collect();
        let first = usable.first()?.diagonal_at(95.0)?;
        let last = usable.last()?.diagonal_at(95.0)?;
        Some((first, last))
    }

    /// Render both panels.
    pub fn render(&self) -> String {
        let usable: Vec<&SurveyPoint> = self.points.iter().filter(|p| p.is_usable(0.02)).collect();
        let top: Vec<Series> = self
            .series
            .iter()
            .filter(|(p, _)| [50.0, 95.0, 98.0, 99.0].contains(p))
            .map(|(p, values)| {
                Series::new(
                    format!("{p}%"),
                    values
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (usable[i].meta.year as f64, v.max(1e-3).log10()))
                        .collect(),
                )
            })
            .collect();
        let mut out = ascii_plot(
            "Figure 9 (top): min timeout per survey, log10 seconds vs year",
            &top,
            72,
            16,
        );
        let rates: Vec<(f64, f64)> =
            self.points.iter().map(|p| (p.meta.year as f64, 100.0 * p.response_rate)).collect();
        out.push_str(&ascii_plot(
            "Figure 9 (bottom): response rate (%) per survey",
            &[Series::new("rate", rates)],
            72,
            10,
        ));
        if let Some((first, last)) = self.p95_growth() {
            out.push_str(&format!(
                "paper: 95/95 timeout grew ~2 s (2007) → ~5 s (2011+); some j/g surveys \
                 broken (0.02–0.2% response rate) and screened out\n\
                 measured: 95/95 {first:.2} s (2006) → {last:.2} s (2015); screened out: {:?}\n",
                self.screened_out,
            ));
        }
        out
    }
}
