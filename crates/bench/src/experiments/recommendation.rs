//! Section 7's recommendation, evaluated: run the adaptive
//! (retransmit-early, listen-long) prober against the full 2015 world and
//! quantify the false outages the long listen avoids, versus the naive
//! fixed-timeout prober every system in Section 2.2 uses.

use crate::ExperimentCtx;
use beware_core::report::Table;
use beware_probe::prelude::*;

/// Aggregated monitoring outcome.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Live addresses monitored.
    pub monitored: usize,
    /// Total check cycles.
    pub cycles: u64,
    /// Outages declared by the naive prober (verdict at the retransmit
    /// deadline).
    pub naive_outages: u64,
    /// Outages still declared by the listen-long prober.
    pub long_outages: u64,
    /// Naive outages rescued by listening (false outages avoided).
    pub rescued: u64,
    /// Per-address reports.
    pub reports: Vec<OutageReport>,
}

/// Monitor a spread of live addresses from the shared world. Every
/// monitored address is genuinely up (the simulator never takes a live
/// host offline), so **every** outage verdict below is false.
pub fn run(ctx: &ExperimentCtx) -> Recommendation {
    let world = ctx.scenario.build_world();
    let db = ctx.scenario.db();
    // Monitor live *cellular* addresses — the population outage studies
    // like Thunderping actually watch, and where Section 2's systems
    // manufacture false outages.
    let addrs: Vec<u32> = ctx
        .scenario
        .plan
        .blocks()
        .filter(|&(b, _)| {
            db.lookup(b << 8).is_some_and(|i| i.kind == beware_asdb::AsKind::Cellular)
        })
        .flat_map(|(b, _)| (2u32..250).step_by(7).map(move |o| (b << 8) | o))
        .filter(|&a| world.is_live(a))
        .take(ctx.scale.target_addrs.min(600))
        .collect();
    let cfg = AdaptiveCfg { cycles: 12, ..Default::default() };
    let mut world = world;
    let (reports, _) = cfg.build(addrs).run(&mut world);
    let monitored = reports.len();
    let cycles = reports.iter().map(|r| u64::from(r.cycles)).sum();
    let naive_outages = reports.iter().map(|r| u64::from(r.naive_outages)).sum();
    let long_outages = reports.iter().map(|r| u64::from(r.outages)).sum();
    let rescued = reports.iter().map(|r| u64::from(r.rescued)).sum();
    Recommendation { monitored, cycles, naive_outages, long_outages, rescued, reports }
}

impl Recommendation {
    /// False-outage rate of the naive prober, per cycle.
    pub fn naive_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.naive_outages as f64 / self.cycles as f64
        }
    }

    /// False-outage rate after the long listen.
    pub fn long_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.long_outages as f64 / self.cycles as f64
        }
    }

    /// Render the verdict table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Section 7 evaluated: naive 3 s-timeout prober vs retransmit-and-keep-listening",
            &["prober", "false outages", "rate per check"],
        );
        t.row(vec![
            "naive (verdict at retransmit deadline)".into(),
            self.naive_outages.to_string(),
            format!("{:.4}", self.naive_rate()),
        ]);
        t.row(vec![
            "adaptive (keep listening 60 s)".into(),
            self.long_outages.to_string(),
            format!("{:.4}", self.long_rate()),
        ]);
        let mut out = t.render();
        out.push_str(&format!(
            "{} live addresses x {} checks; every declared outage is FALSE by\n\
             construction (no simulated host is ever down). Listening rescued {} of {}\n\
             naive outages — the paper's closing advice, quantified.\n",
            self.monitored,
            self.cycles / self.monitored.max(1) as u64,
            self.rescued,
            self.naive_outages,
        ));
        out
    }
}
