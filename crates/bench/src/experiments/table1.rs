//! Table 1: packets/addresses accounting of adding unmatched responses to
//! survey-detected responses, with the artifact filters applied.

use crate::ExperimentCtx;
use beware_core::pipeline::{Accounting, CountRow};
use beware_core::report::{fmt_count, Table};

/// The computed table (both surveys merged, like the paper's IT63w+IT63c).
#[derive(Debug, Clone, Copy)]
pub struct Table1 {
    /// Summed accounting across the two surveys.
    pub combined: Accounting,
}

fn add(a: CountRow, b: CountRow) -> CountRow {
    CountRow { packets: a.packets + b.packets, addresses: a.addresses + b.addresses }
}

/// Compute from both pipelines.
pub fn run(ctx: &ExperimentCtx) -> Table1 {
    let w = ctx.pipeline_w.accounting;
    let c = ctx.pipeline_c.accounting;
    Table1 {
        combined: Accounting {
            survey_detected: add(w.survey_detected, c.survey_detected),
            naive_matching: add(w.naive_matching, c.naive_matching),
            broadcast_responses: add(w.broadcast_responses, c.broadcast_responses),
            duplicate_responses: add(w.duplicate_responses, c.duplicate_responses),
            survey_plus_delayed: add(w.survey_plus_delayed, c.survey_plus_delayed),
        },
    }
}

impl Table1 {
    /// Render in the paper's layout with the paper's own values inline.
    pub fn render(&self) -> String {
        let a = &self.combined;
        let mut t = Table::new(
            "Table 1: adding unmatched responses to survey-detected responses",
            &["row", "packets", "addresses", "paper packets", "paper addresses"],
        );
        let mut row = |name: &str, r: CountRow, pp: &str, pa: &str| {
            t.row(vec![
                name.to_string(),
                fmt_count(r.packets),
                fmt_count(r.addresses),
                pp.to_string(),
                pa.to_string(),
            ]);
        };
        row("Survey-detected", a.survey_detected, "9,644,670,150", "4,008,703");
        row("Naive matching", a.naive_matching, "9,768,703,324", "4,008,830");
        row("Broadcast responses", a.broadcast_responses, "33,775,148", "9,942");
        row("Duplicate responses", a.duplicate_responses, "67,183,853", "20,736");
        row("Survey + Delayed", a.survey_plus_delayed, "9,667,744,323", "3,978,152");
        let mut out = t.render();
        out.push_str(
            "shape checks: naive > detected; final < naive; discarded addresses split \
             between broadcast and duplicates\n",
        );
        out
    }
}
