//! Table 2: the minimum-timeout matrix — the paper's headline deliverable.

use crate::ExperimentCtx;
use beware_core::timeout_table::TimeoutTable;

/// The computed matrix with the paper's reference cells.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The computed table over the filtered combined dataset.
    pub table: TimeoutTable,
}

/// Cells of the paper's Table 2 used for the side-by-side comparison:
/// `(address %, ping %, paper seconds)`.
pub const PAPER_CELLS: [(f64, f64, f64); 9] = [
    (50.0, 50.0, 0.19),
    (80.0, 80.0, 0.33),
    (90.0, 90.0, 0.57),
    (95.0, 95.0, 5.0),
    (98.0, 98.0, 41.0),
    (99.0, 99.0, 145.0),
    (95.0, 98.0, 9.0),
    (98.0, 95.0, 12.0),
    (99.0, 95.0, 22.0),
];

/// Compute from the combined filtered samples.
pub fn run(ctx: &ExperimentCtx) -> Table2 {
    let table = TimeoutTable::compute(&ctx.combined_samples)
        .expect("combined dataset is never empty at any supported scale");
    Table2 { table }
}

impl Table2 {
    /// The paper's headline: the timeout that captures 95% of pings from
    /// 95% of addresses (paper: 5 s).
    pub fn headline_95_95(&self) -> f64 {
        self.table.cell(95.0, 95.0).expect("paper percentile present")
    }

    /// Render the full matrix plus the comparison rows.
    pub fn render(&self) -> String {
        let mut out = self
            .table
            .render("Table 2: minimum timeout (s) capturing c% of pings from r% of addresses");
        out.push_str("\npaper vs measured (diagonal and spot cells):\n");
        for (r, c, paper) in PAPER_CELLS {
            let measured = self.table.cell(r, c).expect("cell exists");
            out.push_str(&format!(
                "  r={r:>2}% c={c:>2}%: paper {paper:>6.2} s, measured {measured:>8.2} s\n"
            ));
        }
        out.push_str(&format!(
            "headline: 'at least 5% of pings from 5% of addresses have latencies higher \
             than 5 seconds' — measured 95/95 cell: {:.2} s\n",
            self.headline_95_95()
        ));
        out
    }
}
