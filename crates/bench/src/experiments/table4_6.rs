//! Tables 4, 5 and 6: Autonomous Systems and continents ranked by
//! high-latency addresses across three zmap scans.

use crate::ExperimentCtx;
use beware_core::report::Table;
use beware_core::turtles::{rank_ases, rank_continents, AsRank, ContinentRank};
use beware_dataset::ZmapScan;

/// The computed rankings.
#[derive(Debug, Clone)]
pub struct Tables4To6 {
    /// Table 4: ASes by addresses with RTT > 1 s.
    pub turtles: Vec<AsRank>,
    /// Table 5: continents by the same.
    pub continents: Vec<ContinentRank>,
    /// Table 6: ASes by addresses with RTT > 100 s.
    pub sleepy: Vec<AsRank>,
}

/// Compute over the context's three turtle scans.
pub fn run(ctx: &ExperimentCtx) -> Tables4To6 {
    let scans: Vec<ZmapScan> = ctx.turtle_scans().into_iter().cloned().collect();
    Tables4To6 {
        turtles: rank_ases(&scans, &ctx.db, 1.0),
        continents: rank_continents(&scans, &ctx.db, 1.0),
        sleepy: rank_ases(&scans, &ctx.db, 100.0),
    }
}

impl Tables4To6 {
    /// Of the top-10 turtle ASes, how many serve cellular subscribers —
    /// the paper's central attribution claim.
    pub fn cellular_in_top10(&self) -> usize {
        self.turtles.iter().take(10).filter(|r| r.kind.serves_cellular()).count()
    }

    /// Render all three tables with the paper comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let as_table = |title: &str, rows: &[AsRank], limit: usize| -> String {
            let mut t = Table::new(title, &["ASN", "Owner", "kind", "total", "%", "rank s1/s2/s3"]);
            for r in rows.iter().take(limit).filter(|r| r.total_turtles > 0) {
                let pct = if r.per_scan.is_empty() { 0.0 } else { r.per_scan[0].percent() };
                let ranks: Vec<String> = r.per_scan.iter().map(|e| e.rank.to_string()).collect();
                t.row(vec![
                    r.asn.to_string(),
                    r.name.clone(),
                    r.kind.label().to_string(),
                    r.total_turtles.to_string(),
                    format!("{pct:.1}"),
                    ranks.join("/"),
                ]);
            }
            t.render()
        };
        out.push_str(&as_table(
            "Table 4: ASes by addresses with RTT > 1 s (summed over 3 scans)",
            &self.turtles,
            10,
        ));
        out.push_str(&format!(
            "paper: TELEFONICA BRASIL first with >2x the next AS; 8 of top 10 serve \
             cellular; cellular ASes ~70% turtle share, mixed ASes ~30%, Chinanet ~1%\n\
             measured: top AS = {}, cellular-serving in top 10: {}\n\n",
            self.turtles.first().map(|r| r.name.as_str()).unwrap_or("-"),
            self.cellular_in_top10(),
        ));

        let mut t5 = Table::new(
            "Table 5: continents by addresses with RTT > 1 s",
            &["Continent", "total", "% of responding"],
        );
        for c in &self.continents {
            let pct = if c.per_scan.is_empty() { 0.0 } else { c.per_scan[0].percent() };
            t5.row(vec![c.continent.to_string(), c.total_turtles.to_string(), format!("{pct:.1}")]);
        }
        out.push_str(&t5.render());
        out.push_str(
            "paper: South America + Asia ≈ 75% of turtles; ~27% of SA and ~30% of African \
             addresses are turtles; North America ≈ 1%\n\n",
        );

        out.push_str(&as_table(
            "Table 6: ASes by addresses with RTT > 100 s (sleepy turtles)",
            &self.sleepy,
            10,
        ));
        out.push_str(&format!(
            "paper: every Table 6 AS is cellular; ranks stable across scans, percentages \
             noisier\nmeasured: sleepy-turtle ASes with non-zero counts: {} (scaled world — \
             the >100 s population is ~0.1% of responders, sparse at this scale)\n",
            self.sleepy.iter().filter(|r| r.total_turtles > 0).count(),
        ));
        out
    }
}
