//! Table 7: the patterns around >100 s pings, from long 1 Hz probe
//! trains against addresses whose survey p99 exceeded 100 s.

use crate::ExperimentCtx;
use beware_core::patterns::{classify_streams, HighRttPattern, PatternTable};
use beware_core::report::Table;
use beware_probe::scamper::{PingJob, PingProto};

/// The computed table.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// Addresses probed with trains.
    pub probed: usize,
    /// Addresses that answered at all.
    pub responded: usize,
    /// The pattern classification.
    pub patterns: PatternTable,
}

/// Run the experiment: `scale.pattern_train` pings at 1 s against the
/// extreme addresses.
pub fn run(ctx: &ExperimentCtx) -> Table7 {
    let targets = ctx.high_latency_addrs(99.0, 100.0);
    let jobs: Vec<PingJob> = targets
        .iter()
        .enumerate()
        .map(|(i, &dst)| {
            PingJob::train(dst, PingProto::Icmp, ctx.scale.pattern_train, 1.0, i as f64 * 0.02)
        })
        .collect();
    let results = if jobs.is_empty() { Vec::new() } else { ctx.run_scamper(jobs, 500.0) };
    let responded = results.iter().filter(|r| !r.answered().is_empty()).count();
    let streams: Vec<(u32, Vec<Option<f64>>)> =
        results.iter().map(|r| (r.dst, r.rtts.clone())).collect();
    Table7 { probed: targets.len(), responded, patterns: classify_streams(&streams, 100.0) }
}

impl Table7 {
    /// Render with the paper's counts inline.
    pub fn render(&self) -> String {
        let paper: [(HighRttPattern, (usize, usize, usize)); 4] = [
            (HighRttPattern::LowLatencyThenDecay, (615, 13, 10)),
            (HighRttPattern::LossThenDecay, (1528, 81, 33)),
            (HighRttPattern::SustainedHighLatencyAndLoss, (2994, 21, 14)),
            (HighRttPattern::HighLatencyBetweenLoss, (12, 12, 12)),
        ];
        let mut t = Table::new(
            "Table 7: patterns around >100 s pings",
            &["Pattern", "Pings", "Events", "Addrs", "paper P/E/A"],
        );
        for (pattern, (pp, pe, pa)) in paper {
            let (pings, events, addrs) = self.patterns.totals(pattern);
            t.row(vec![
                pattern.label().to_string(),
                pings.to_string(),
                events.to_string(),
                addrs.to_string(),
                format!("{pp}/{pe}/{pa}"),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "probed {} extreme addresses, {} responded\n\
             paper shape: decay staircases dominate events; sustained high latency \
             carries the most >100 s pings; isolated highs are rare\n",
            self.probed, self.responded,
        ));
        out
    }
}
