//! Full-address-space campaign: stream a Zmap-style sweep of up to the
//! entire IPv4 space through the procedural netsim in bounded memory.
//!
//! The sweep is decomposed into fixed `2^chunk_bits`-address chunks. Each
//! chunk gets a **fresh** procedural world sharing one
//! [`beware_netsim::scenario::ProceduralSpace`] (block identity is a pure
//! function of the campaign seed, so per-chunk worlds agree everywhere),
//! with host state bounded by the campaign's [`LazyCfg`]. Probe send
//! times come from the *global* address index times a fixed inter-probe
//! interval — not from any per-thread clock — so the arrival set a chunk
//! produces depends only on the chunk's identity.
//!
//! That decomposition is what makes the headline guarantees hold:
//!
//! * **bounded memory** — at most `threads` chunk worlds are live, each
//!   holding ≤ `host_cap` hosts and a bounded profile cache;
//! * **thread invariance** — chunks are merged in index order
//!   ([`beware_netsim::exec::run_tasks`]), so the deterministic summary
//!   is byte-identical for any `--threads`;
//! * **capacity invariance** — each address is probed exactly once, so
//!   eviction can never change results (see `beware_netsim::space`), and
//!   the summary is byte-identical across `host_cap` settings too.
//!
//! The [`FullSpaceReport`] renders two JSON documents: a deterministic
//! summary (`summary_json`, the artifact CI `cmp`s across thread counts
//! and host caps) and the perf-annotated `BENCH_7.json` (`bench_json`,
//! which adds wall-clock, throughput and the peak-resident-host /
//! eviction numbers that legitimately vary with configuration).

use beware_netsim::link::LinkEvent;
use beware_netsim::scenario::{Scenario, ScenarioCfg, Vantage, VANTAGES};
use beware_netsim::space::LazyCfg;
use beware_netsim::time::{SimDuration, SimTime};
use beware_netsim::world::World;
use beware_netsim::{run_tasks, Packet};
use std::sync::Arc;

/// Source address the campaign probes from.
const PROBER: u32 = 0x0101_0101;

/// Log₂ RTT histogram buckets (microseconds).
const RTT_BUCKETS: usize = 40;

/// Full-space campaign parameters.
#[derive(Debug, Clone)]
pub struct FullSpaceCfg {
    /// Sweep addresses `base_addr .. base_addr + 2^space_bits` (30 → a
    /// ~1.07 B-address campaign; 32 → the full IPv4 space).
    pub space_bits: u32,
    /// First address of the sweep. The plan allocates blocks upward from
    /// 1.0.0.0, so the default base 0 covers them whenever `space_bits`
    /// ≥ 25; smaller smoke sweeps point the base at 1.0.0.0 directly.
    pub base_addr: u32,
    /// Routed `/24` blocks in the generated Internet.
    pub total_blocks: u32,
    /// Survey year (controls the cellular share).
    pub year: u16,
    /// Campaign seed: the single value block and host identity derive
    /// from.
    pub seed: u64,
    /// Vantage point the prober sits at.
    pub vantage: Vantage,
    /// Worker threads (1 = serial reference run).
    pub threads: usize,
    /// Resident-host cap per chunk world.
    pub host_cap: usize,
    /// Reclaim hosts idle at least this many sim-seconds, if set.
    pub quiescence_secs: Option<f64>,
    /// Global inter-probe spacing in nanoseconds (10 µs ≈ 100 kpps).
    pub probe_interval_ns: u64,
    /// Addresses per task = `2^chunk_bits`; fixed decomposition, so this
    /// (unlike `threads`) is part of the campaign's identity.
    pub chunk_bits: u32,
    /// Scheduled link degrade/partition windows; when non-empty the
    /// chunk worlds route probes through the shared link layer.
    pub link_events: Vec<LinkEvent>,
}

impl Default for FullSpaceCfg {
    fn default() -> Self {
        FullSpaceCfg {
            space_bits: 30,
            base_addr: 0,
            total_blocks: 65_536,
            year: 2015,
            seed: 0x1511_0b5e,
            vantage: VANTAGES[0],
            threads: 1,
            host_cap: 16_384,
            quiescence_secs: None,
            probe_interval_ns: 10_000,
            chunk_bits: 24,
            link_events: Vec::new(),
        }
    }
}

/// Deterministic per-chunk aggregate, merged in chunk order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChunkOut {
    probes: u64,
    responses: u64,
    unrouted: u64,
    no_response: u64,
    firewall_rsts: u64,
    link_drops: u64,
    arrivals: u64,
    rtt_sum_us: u64,
    rtt_hist: [u64; RTT_BUCKETS],
    // Config-dependent perf numbers, excluded from the summary.
    hosts_evicted: u64,
    hosts_peak: u64,
    link_queue_peak_us: u64,
}

impl Default for ChunkOut {
    // Manual because `[u64; 40]` has no derived Default.
    fn default() -> Self {
        ChunkOut {
            probes: 0,
            responses: 0,
            unrouted: 0,
            no_response: 0,
            firewall_rsts: 0,
            link_drops: 0,
            arrivals: 0,
            rtt_sum_us: 0,
            rtt_hist: [0; RTT_BUCKETS],
            hosts_evicted: 0,
            hosts_peak: 0,
            link_queue_peak_us: 0,
        }
    }
}

/// Campaign results: deterministic counters plus run-specific perf.
#[derive(Debug, Clone)]
pub struct FullSpaceReport {
    /// The configuration the campaign ran with.
    pub cfg: FullSpaceCfg,
    /// Probes sent (= addresses swept).
    pub probes: u64,
    /// Response packets received.
    pub responses: u64,
    /// Probes on unrouted space.
    pub unrouted: u64,
    /// Routed probes that drew no response.
    pub no_response: u64,
    /// Firewall-synthesized RSTs (zero for an echo sweep).
    pub firewall_rsts: u64,
    /// Probes black-holed by the link layer.
    pub link_drops: u64,
    /// Total arrivals at the prober.
    pub arrivals: u64,
    /// Sum of round-trip times, microseconds.
    pub rtt_sum_us: u64,
    /// Log₂ RTT histogram: bucket `i` counts RTTs in `[2^i, 2^(i+1))` µs.
    pub rtt_hist: [u64; RTT_BUCKETS],
    /// Max simultaneously resident hosts across all chunk worlds — the
    /// number the memory ceiling must fit (config-dependent).
    pub peak_resident_hosts: u64,
    /// Hosts reclaimed across the campaign (config-dependent).
    pub hosts_evicted: u64,
    /// High-water link queueing backlog, microseconds.
    pub link_queue_peak_us: u64,
    /// Wall-clock seconds of the sweep.
    pub wall_secs: f64,
}

/// Run the campaign. Spawns `cfg.threads` workers over the fixed chunk
/// decomposition; wall-clock aside, the result depends only on the
/// campaign identity (seed, space, blocks, chunking, link events).
pub fn run(cfg: &FullSpaceCfg) -> Result<FullSpaceReport, String> {
    if cfg.space_bits > 32 {
        return Err(format!("--bits {} exceeds the IPv4 space (max 32)", cfg.space_bits));
    }
    if cfg.chunk_bits > cfg.space_bits {
        return Err(format!("chunk_bits {} exceeds space_bits {}", cfg.chunk_bits, cfg.space_bits));
    }
    if cfg.host_cap == 0 {
        return Err("--lazy-hosts must be at least 1".into());
    }
    if u64::from(cfg.base_addr) + (1u64 << cfg.space_bits) > 1u64 << 32 {
        return Err(format!(
            "base {:#010x} + 2^{} runs past the end of the IPv4 space",
            cfg.base_addr, cfg.space_bits
        ));
    }
    let sc = Scenario::new(ScenarioCfg {
        year: cfg.year,
        seed: cfg.seed,
        total_blocks: cfg.total_blocks,
        vantage: cfg.vantage,
    });
    // One shared procedural space: resolving it is pure, so every chunk
    // world sees the same Internet without any of them owning it.
    let space = Arc::new(sc.lazy_space());
    let lazy = LazyCfg {
        host_cap: cfg.host_cap,
        quiescence: cfg.quiescence_secs.map(SimDuration::from_secs_f64),
        ..LazyCfg::default()
    };
    let world_seed = sc.world_seed();
    let link_cfg = (!cfg.link_events.is_empty()).then(|| sc.link_cfg(cfg.link_events.clone()));

    let chunk_count = 1u64 << (cfg.space_bits - cfg.chunk_bits);
    let chunk_size = 1u64 << cfg.chunk_bits;
    let interval = cfg.probe_interval_ns;
    let chunks: Vec<u64> = (0..chunk_count).collect();

    let t0 = std::time::Instant::now();
    let outs = run_tasks(cfg.threads, chunks, |_, chunk| {
        let source: Arc<dyn beware_netsim::space::ProfileSource> = space.clone();
        let mut world = World::procedural(world_seed, source, &lazy);
        if let Some(lc) = &link_cfg {
            world = world.with_links(lc.clone());
        }
        let mut out = ChunkOut::default();
        let base = chunk * chunk_size;
        for i in 0..chunk_size {
            let global = base + i;
            let addr = (u64::from(cfg.base_addr) + global) as u32;
            let at = SimTime::EPOCH + SimDuration::from_ns(global.saturating_mul(interval));
            let probe = Packet::echo_request(PROBER, addr, 1, global as u16, Vec::new());
            for arrival in world.probe(&probe, at) {
                let rtt_us = arrival.at.saturating_since(at).as_us();
                out.arrivals += 1;
                out.rtt_sum_us += rtt_us;
                let bucket = (u64::BITS - 1 - (rtt_us | 1).leading_zeros()) as usize;
                out.rtt_hist[bucket.min(RTT_BUCKETS - 1)] += 1;
            }
        }
        let s = world.stats();
        out.probes = s.probes;
        out.responses = s.responses;
        out.unrouted = s.unrouted;
        out.no_response = s.no_response;
        out.firewall_rsts = s.firewall_rsts;
        out.link_drops = s.link_drops;
        out.hosts_evicted = s.hosts_evicted;
        out.hosts_peak = s.hosts_peak;
        out.link_queue_peak_us = s.link_queue_peak_us;
        out
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    // Merge in chunk order (run_tasks already returns input order).
    let mut r = FullSpaceReport {
        cfg: cfg.clone(),
        probes: 0,
        responses: 0,
        unrouted: 0,
        no_response: 0,
        firewall_rsts: 0,
        link_drops: 0,
        arrivals: 0,
        rtt_sum_us: 0,
        rtt_hist: [0; RTT_BUCKETS],
        peak_resident_hosts: 0,
        hosts_evicted: 0,
        link_queue_peak_us: 0,
        wall_secs,
    };
    for out in outs {
        r.probes += out.probes;
        r.responses += out.responses;
        r.unrouted += out.unrouted;
        r.no_response += out.no_response;
        r.firewall_rsts += out.firewall_rsts;
        r.link_drops += out.link_drops;
        r.arrivals += out.arrivals;
        r.rtt_sum_us += out.rtt_sum_us;
        for (acc, n) in r.rtt_hist.iter_mut().zip(&out.rtt_hist) {
            *acc += n;
        }
        r.peak_resident_hosts = r.peak_resident_hosts.max(out.hosts_peak);
        r.hosts_evicted += out.hosts_evicted;
        r.link_queue_peak_us = r.link_queue_peak_us.max(out.link_queue_peak_us);
    }
    Ok(r)
}

impl FullSpaceReport {
    /// Events per wall-clock second (probes + arrivals) — the headline
    /// throughput number.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            (self.probes + self.arrivals) as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The deterministic summary: every field is a pure function of the
    /// campaign identity, so two runs of the same campaign produce
    /// byte-identical documents regardless of `threads`, `host_cap` or
    /// `quiescence` — the artifact the CI smoke `cmp`s.
    pub fn summary_json(&self) -> String {
        let c = &self.cfg;
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!(
            "  \"space_bits\": {}, \"base_addr\": {}, \"total_blocks\": {}, \"year\": {}, \
             \"seed\": {},\n",
            c.space_bits, c.base_addr, c.total_blocks, c.year, c.seed
        ));
        out.push_str(&format!(
            "  \"vantage\": \"{}\", \"chunk_bits\": {}, \"probe_interval_ns\": {}, \
             \"link_events\": {},\n",
            c.vantage.code,
            c.chunk_bits,
            c.probe_interval_ns,
            c.link_events.len()
        ));
        out.push_str(&format!(
            "  \"probes\": {}, \"responses\": {}, \"unrouted\": {}, \"no_response\": {},\n",
            self.probes, self.responses, self.unrouted, self.no_response
        ));
        out.push_str(&format!(
            "  \"firewall_rsts\": {}, \"link_drops\": {}, \"arrivals\": {}, \"rtt_sum_us\": {},\n",
            self.firewall_rsts, self.link_drops, self.arrivals, self.rtt_sum_us
        ));
        out.push_str("  \"rtt_hist_log2_us\": [");
        let mut first = true;
        for (i, &n) in self.rtt_hist.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("{{\"bucket\": {i}, \"count\": {n}}}"));
        }
        out.push_str("]\n}\n");
        out
    }

    /// The `BENCH_7.json` document: the deterministic summary plus the
    /// run-specific numbers — wall clock, throughput, peak residency,
    /// evictions, queue peaks and the knobs they depend on.
    pub fn bench_json(&self) -> String {
        let c = &self.cfg;
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n  \"mode\": \"fullspace\",\n");
        out.push_str(&format!(
            "  \"threads\": {}, \"host_cap\": {}, \"quiescence_secs\": {},\n",
            c.threads,
            c.host_cap,
            c.quiescence_secs.map_or("null".to_string(), |q| format!("{q:.6}")),
        ));
        out.push_str(&format!(
            "  \"wall_secs\": {:.6}, \"events_per_sec\": {:.1},\n",
            self.wall_secs,
            self.events_per_sec()
        ));
        out.push_str(&format!(
            "  \"peak_resident_hosts\": {}, \"hosts_evicted\": {}, \"link_queue_peak_us\": {},\n",
            self.peak_resident_hosts, self.hosts_evicted, self.link_queue_peak_us
        ));
        out.push_str(&format!("  \"summary\": {}", indent(&self.summary_json())));
        out.push_str("\n}\n");
        out
    }

    /// One-paragraph human summary for the CLI.
    pub fn summary_text(&self) -> String {
        format!(
            "fullspace sweep: {} addresses ({} routed blocks) on {} thread(s) in {:.2}s \
             ({:.0} events/s)\n  responses {} | unrouted {} | silent {} | link drops {}\n  \
             peak resident hosts {} (cap {}) | evicted {} | mean rtt {:.1} ms\n",
            self.probes,
            self.cfg.total_blocks,
            self.cfg.threads,
            self.wall_secs,
            self.events_per_sec(),
            self.responses,
            self.unrouted,
            self.no_response,
            self.link_drops,
            self.peak_resident_hosts,
            self.cfg.host_cap,
            self.hosts_evicted,
            if self.arrivals > 0 {
                self.rtt_sum_us as f64 / self.arrivals as f64 / 1_000.0
            } else {
                0.0
            },
        )
    }
}

/// Nest a pretty-printed JSON document two spaces deep.
fn indent(json: &str) -> String {
    let trimmed = json.trim_end();
    let mut out = String::with_capacity(trimmed.len());
    for (i, line) in trimmed.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            if !line.is_empty() {
                out.push_str("  ");
            }
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_netsim::link::{LinkEventKind, LinkId};

    fn tiny(threads: usize, host_cap: usize) -> FullSpaceCfg {
        FullSpaceCfg {
            space_bits: 16,
            // Blocks allocate upward from 1.0.0.0; sweep that /16.
            base_addr: 0x0100_0000,
            chunk_bits: 12,
            total_blocks: 128,
            threads,
            host_cap,
            seed: 42,
            ..FullSpaceCfg::default()
        }
    }

    #[test]
    fn summary_is_thread_and_capacity_invariant() {
        let serial = run(&tiny(1, usize::MAX)).unwrap();
        let parallel = run(&tiny(4, usize::MAX)).unwrap();
        let starved = run(&tiny(4, 64)).unwrap();
        assert_eq!(serial.summary_json(), parallel.summary_json());
        assert_eq!(serial.summary_json(), starved.summary_json());
        assert!(starved.peak_resident_hosts <= 64);
        assert!(starved.hosts_evicted > 0, "cap 64 must evict under a dense sweep");
        assert!(serial.responses > 0 && serial.unrouted > 0);
        assert_eq!(serial.probes, 1 << 16);
    }

    #[test]
    fn link_degrade_shows_up_in_the_summary() {
        let mut cfg = tiny(2, usize::MAX);
        cfg.link_events = vec![LinkEvent {
            link: LinkId::Access(0x0100),
            at_secs: 0.0,
            until_secs: f64::INFINITY,
            kind: LinkEventKind::Partition,
        }];
        let base = run(&tiny(2, usize::MAX)).unwrap();
        let partitioned = run(&cfg).unwrap();
        assert!(partitioned.link_drops > 0, "partitioning 1.0.0.0/16 must drop probes");
        assert!(partitioned.responses < base.responses);
        // Still thread-invariant with links attached.
        cfg.threads = 1;
        assert_eq!(run(&cfg).unwrap().summary_json(), partitioned.summary_json());
    }

    #[test]
    fn bench_json_embeds_the_summary() {
        let r = run(&tiny(1, 128)).unwrap();
        let json = r.bench_json();
        assert!(json.contains("\"mode\": \"fullspace\""));
        assert!(json.contains("\"peak_resident_hosts\""));
        assert!(json.contains("\"rtt_hist_log2_us\""));
        assert_eq!(json.matches(['{', '[']).count(), json.matches(['}', ']']).count());
    }
}
