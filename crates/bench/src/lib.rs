//! # beware-bench
//!
//! The experiment harness: regenerates every table and figure of
//! *Timeouts: Beware Surprisingly High Delay* against the simulated
//! Internet, at a configurable scale.
//!
//! [`Scale`] holds the knobs (blocks, rounds, scan counts); [`ExperimentCtx`]
//! runs the shared expensive steps once (one IT63-style survey pair, the
//! zmap scan campaign, the analysis pipeline) and each `experiments::*`
//! module derives its table/figure from that context, returning both
//! structured results (asserted by integration tests) and rendered text
//! (written to `bench_output.txt` by the `paper_experiments` bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod experiments;
pub mod fullspace;
pub mod perf;
pub mod scale;
pub mod simserve;

pub use ctx::ExperimentCtx;
pub use fullspace::{FullSpaceCfg, FullSpaceReport};
pub use perf::BenchReport;
pub use scale::Scale;
pub use simserve::{Regime, SimServeCfg, SimServeReport};
