//! Perf-trajectory reporting: the `BENCH_<n>.json` file the
//! `paper_experiments` harness writes at the repo root.
//!
//! Every run of the harness records wall-clock, record throughput and
//! thread count per experiment, plus a serial-vs-parallel timing of the
//! 17-scan zmap campaign — the canonical fan-out workload — and, since
//! PR 2, a telemetry-off vs telemetry-on timing of that campaign with the
//! merged metrics snapshot embedded. Successive PRs regenerate the file,
//! giving the repo a measurable perf history instead of anecdotes.
//!
//! The JSON is hand-rendered (the workspace's vendored dependency set has
//! no serde); the schema is documented in README.md §Reproducing the
//! paper and is deliberately flat:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "scale": "bench",
//!   "threads": 8,
//!   "experiments": [
//!     {"name": "shared_context", "wall_secs": 1.92,
//!      "records": 491520, "records_per_sec": 256000.0, "threads": 8},
//!     {"name": "fig1", "wall_secs": 0.011, "threads": 1}
//!   ],
//!   "zmap_campaign": {
//!     "scans": 17, "records": 120000, "threads": 8,
//!     "serial_secs": 4.1, "parallel_secs": 1.2, "speedup": 3.4
//!   }
//! }
//! ```

use std::path::{Path, PathBuf};

/// One timed experiment. `records`/`records_per_sec` are present only for
/// entries that ingest or produce a well-defined record stream (the
/// shared context, the campaign); pure render/aggregation steps report
/// wall-clock and thread count alone.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Experiment name (`fig1`, `table2`, `shared_context`, ...).
    pub name: String,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Records processed, when the experiment has a record stream.
    pub records: Option<u64>,
    /// Worker threads the experiment ran on (1 = serial).
    pub threads: usize,
}

/// Serial-vs-parallel timing of the zmap scan campaign (Fig 7 / Table 3's
/// 17 slots) — the headline fan-out measurement.
#[derive(Debug, Clone, Copy)]
pub struct CampaignBench {
    /// Scan slots run.
    pub scans: usize,
    /// Total response records across the campaign.
    pub records: u64,
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Wall-clock of the `threads = 1` reference run.
    pub serial_secs: f64,
    /// Wall-clock of the parallel run.
    pub parallel_secs: f64,
}

impl CampaignBench {
    /// Serial over parallel wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            0.0
        }
    }
}

/// Telemetry-off vs telemetry-on timing of the scan campaign, plus the
/// merged metrics snapshot of the instrumented run. Counters are flushed
/// once per task end, so the overhead should stay well under 5%.
#[derive(Debug, Clone)]
pub struct TelemetryBench {
    /// Best-of-N wall-clock with telemetry disabled.
    pub off_secs: f64,
    /// Best-of-N wall-clock with telemetry enabled.
    pub on_secs: f64,
    /// Timing iterations each (the minimum was kept).
    pub iterations: u32,
    /// The instrumented run's metrics, as telemetry-schema JSON
    /// ([`beware_telemetry::Registry::to_json`]); embedded verbatim.
    pub metrics_json: String,
}

impl TelemetryBench {
    /// Fractional wall-clock overhead of enabling telemetry (0.03 = 3%).
    /// Negative values (noise) are reported as measured.
    pub fn overhead(&self) -> f64 {
        if self.off_secs > 0.0 {
            self.on_secs / self.off_secs - 1.0
        } else {
            0.0
        }
    }
}

/// Accumulates timings and renders/writes the JSON report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale label (`small` / `bench`).
    pub scale: String,
    /// Default worker-pool width of this run.
    pub threads: usize,
    /// Per-experiment timings, in run order.
    pub experiments: Vec<BenchEntry>,
    /// The campaign measurement, when taken.
    pub zmap_campaign: Option<CampaignBench>,
    /// The telemetry overhead measurement, when taken.
    pub telemetry: Option<TelemetryBench>,
}

impl BenchReport {
    /// Empty report for a run at `scale` on `threads` workers.
    pub fn new(scale: &str, threads: usize) -> Self {
        BenchReport {
            scale: scale.to_string(),
            threads,
            experiments: Vec::new(),
            zmap_campaign: None,
            telemetry: None,
        }
    }

    /// Record one experiment without a record stream.
    pub fn push(&mut self, name: &str, wall_secs: f64, threads: usize) {
        self.experiments.push(BenchEntry {
            name: name.to_string(),
            wall_secs,
            records: None,
            threads,
        });
    }

    /// Record one experiment with a record stream (throughput derivable).
    pub fn push_with_records(&mut self, name: &str, wall_secs: f64, records: u64, threads: usize) {
        self.experiments.push(BenchEntry {
            name: name.to_string(),
            wall_secs,
            records: Some(records),
            threads,
        });
    }

    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"scale\": {},\n", json_str(&self.scale)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"wall_secs\": {}",
                json_str(&e.name),
                json_f64(e.wall_secs)
            ));
            if let Some(records) = e.records {
                out.push_str(&format!(
                    ", \"records\": {records}, \"records_per_sec\": {}",
                    json_f64(rate(records, e.wall_secs))
                ));
            }
            out.push_str(&format!(", \"threads\": {}}}", e.threads));
            out.push_str(if i + 1 < self.experiments.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        if let Some(c) = &self.zmap_campaign {
            out.push_str(&format!(
                ",\n  \"zmap_campaign\": {{\n    \"scans\": {}, \"records\": {}, \"threads\": {},\n    \
                 \"serial_secs\": {}, \"parallel_secs\": {}, \"speedup\": {}\n  }}",
                c.scans,
                c.records,
                c.threads,
                json_f64(c.serial_secs),
                json_f64(c.parallel_secs),
                json_f64(c.speedup()),
            ));
        }
        if let Some(t) = &self.telemetry {
            out.push_str(&format!(
                ",\n  \"telemetry\": {{\n    \"off_secs\": {}, \"on_secs\": {}, \
                 \"overhead\": {}, \"iterations\": {},\n    \"metrics\": {}\n  }}",
                json_f64(t.off_secs),
                json_f64(t.on_secs),
                json_f64(t.overhead()),
                t.iterations,
                indent_block(&t.metrics_json, "    "),
            ));
        }
        out.push_str("\n}\n");
        out
    }

    /// The default output path: `$BEWARE_BENCH_JSON` when set, else
    /// `BENCH_2.json` at the workspace root (resolved relative to this
    /// crate, so it lands in the same place no matter which directory
    /// `cargo bench` runs from).
    pub fn default_path() -> PathBuf {
        if let Ok(p) = std::env::var("BEWARE_BENCH_JSON") {
            return PathBuf::from(p);
        }
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("bench crate lives two levels below the workspace root")
            .join("BENCH_2.json")
    }

    /// Write to [`default_path`](Self::default_path), returning the path.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        let path = Self::default_path();
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Re-indent an embedded pretty-printed JSON document so it nests inside
/// the report: every line after the first is prefixed with `pad`, and the
/// trailing newline is dropped.
fn indent_block(json: &str, pad: &str) -> String {
    let trimmed = json.trim_end();
    let mut out = String::with_capacity(trimmed.len());
    for (i, line) in trimmed.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            if !line.is_empty() {
                out.push_str(pad);
            }
        }
        out.push_str(line);
    }
    out
}

/// Records per second; zero when the interval is degenerate.
fn rate(records: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        records as f64 / secs
    } else {
        0.0
    }
}

/// A JSON number: finite, fixed six decimal places (stable diffs, enough
/// resolution for microsecond-scale steps).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".into()
    }
}

/// A JSON string literal (names are ASCII identifiers; escape anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape() {
        let mut r = BenchReport::new("small", 4);
        r.push_with_records("shared_context", 1.5, 3_000, 4);
        r.push("fig1", 0.25, 1);
        r.zmap_campaign = Some(CampaignBench {
            scans: 17,
            records: 10_000,
            threads: 4,
            serial_secs: 4.0,
            parallel_secs: 1.0,
        });
        r.telemetry = Some(TelemetryBench {
            off_secs: 2.0,
            on_secs: 2.05,
            iterations: 3,
            metrics_json: "{\n  \"schema\": 1,\n  \"metrics\": []\n}\n".into(),
        });
        let json = r.to_json();
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"overhead\": 0.025000"));
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("\"scale\": \"small\""));
        assert!(json.contains("\"records_per_sec\": 2000.000000"));
        assert!(json.contains("\"speedup\": 4.000000"));
        // fig1 has no record stream -> no records key on its line.
        let fig1 = json.lines().find(|l| l.contains("\"fig1\"")).unwrap();
        assert!(!fig1.contains("records"));
        // Brace balance — cheap structural sanity without a JSON parser.
        assert_eq!(json.matches(['{', '[']).count(), json.matches(['}', ']']).count());
    }

    #[test]
    fn speedup_guards_zero() {
        let c = CampaignBench {
            scans: 1,
            records: 0,
            threads: 1,
            serial_secs: 1.0,
            parallel_secs: 0.0,
        };
        assert_eq!(c.speedup(), 0.0);
    }

    #[test]
    fn strings_escaped() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("\n"), "\"\\u000a\"");
    }
}
