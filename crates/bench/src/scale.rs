//! Experiment scale knobs.
//!
//! The paper's raw inputs (9.6 B pings, full-IPv4 scans) are scaled down;
//! every experiment keeps the *per-address sample counts* and *population
//! mix* that make the distributions meaningful, and `EXPERIMENTS.md`
//! records the scaling factor next to each paper-vs-measured comparison.

/// Scale parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Total /24 blocks in the generated Internet.
    pub internet_blocks: u32,
    /// Blocks the ISI-style survey probes (ISI: ~24,000 ≈ 1% of IPv4; we
    /// probe a deterministic sample of the generated space).
    pub survey_blocks: u32,
    /// Survey rounds (ISI: ~1,800 over two weeks at 11 min).
    pub survey_rounds: u32,
    /// Number of zmap scans in the campaign (paper: 17 for Fig 7,
    /// 3 for Tables 4–6).
    pub zmap_scans: usize,
    /// Sending-phase duration of each scan, seconds (paper: 10.5 h).
    pub zmap_duration_secs: f64,
    /// Probe-train length for the Table 7 pattern experiment
    /// (paper: 2,000 pings at 1 s).
    pub pattern_train: usize,
    /// Probe-train length for the Fig 8 confirmation experiment
    /// (paper: 1,000 pings at 10 s).
    pub confirm_train: usize,
    /// Maximum addresses to re-probe in targeted experiments.
    pub target_addrs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny: CI-friendly, exercises every code path in seconds.
    pub fn small() -> Self {
        Scale {
            internet_blocks: 96,
            survey_blocks: 48,
            survey_rounds: 40,
            zmap_scans: 3,
            zmap_duration_secs: 600.0,
            pattern_train: 600,
            confirm_train: 60,
            target_addrs: 400,
            seed: 0xbe_2015,
        }
    }

    /// Bench scale: large enough for the paper's distributional claims to
    /// be visible, small enough for a laptop run.
    pub fn bench() -> Self {
        Scale {
            internet_blocks: 768,
            survey_blocks: 256,
            survey_rounds: 120,
            zmap_scans: 17,
            zmap_duration_secs: 3_600.0,
            pattern_train: 2_000,
            confirm_train: 200,
            target_addrs: 1_500,
            seed: 0xbe_2015,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let s = Scale::small();
        let b = Scale::bench();
        assert!(s.internet_blocks < b.internet_blocks);
        assert!(s.survey_rounds < b.survey_rounds);
        assert!(s.zmap_scans <= b.zmap_scans);
        assert_eq!(s.seed, b.seed);
    }
}
