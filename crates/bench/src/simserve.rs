//! In-sim serving campaign: the oracle server and up to a million
//! closed-loop clients inside the deterministic netsim — zero sockets,
//! zero real sleeps.
//!
//! This is the payoff of two seams built for it:
//!
//! * the **scheduler seam** (netsim's event loop runs on
//!   `beware_runtime::DeadlineWheel` and drives a `SimClock`): the serve
//!   [`Engine`] stamps request latency through
//!   [`Ctx::clock`](beware_netsim::Ctx::clock) and observes the simulated
//!   timeline, and every client's timeout is a genuinely cancellable
//!   wheel timer ([`Ctx::cancel_timer`](beware_netsim::Ctx)) — set when
//!   the query departs, cancelled when the answer lands, exactly the
//!   pattern the paper says real probers get wrong;
//! * the **transport seam** (`beware_serve::engine`): the very same
//!   protocol state machine the epoll server runs is hosted here over
//!   [`ChannelTransport`] byte queues, so campaign conclusions transfer
//!   to the socket server.
//!
//! Following `fullspace`, the campaign is decomposed into fixed **cells**
//! of `2^cell_bits` clients. A cell is one single-threaded netsim
//! [`Simulation`]: one engine shard plus its clients, connected by
//! in-memory channels, with request/reply bytes delayed by the shared
//! three-tier link layer ([`LinkLayer`]) — an access link per client
//! /16, an aggregation link per /20, one spine. The cell decomposition
//! is part of the campaign's identity; worker threads only decide which
//! cells run concurrently, and per-cell results (all `u64` arithmetic)
//! merge in cell order — so the deterministic summary is byte-identical
//! for any `--threads` and across repeat runs.
//!
//! Faults are **topology events**, not byte mangling: `--partition`
//! black-holes every eighth access link during the middle fifth of the
//! campaign (`beware_faultsim::topology::mid_campaign_partitions`).
//! Queries in flight across a dead link are dropped by
//! `LinkLayer::traverse`, the clients' timeouts fire, and the acceptance
//! bar is the chaos suite's: bounded error rates, zero wrong answers.
//! In snapshot mode every delivered answer is compared **bit for bit**
//! against a direct `Oracle::lookup`; `--policy` serves an online
//! estimator instead (fed by the clients' own measured RTTs via `Report`
//! frames) and validates answers for sane bounds.

use beware_faultsim::topology::mid_campaign_partitions;
use beware_netsim::link::{LinkCfg, LinkId, LinkLayer};
use beware_netsim::time::{SimDuration, SimTime};
use beware_netsim::world::World;
use beware_netsim::{run_tasks, Agent, Ctx, Packet, Simulation, TimerId};
use beware_policy::PolicyKind;
use beware_runtime::reactor::StopSignal;
use beware_serve::engine::{channel_pair, ChannelPeer, ChannelTransport, Conn, Engine, EngineCore};
use beware_serve::oracle::Oracle;
use beware_serve::proto::{self, Message};
use beware_serve::{build_snapshot, SnapshotCfg};
use beware_telemetry::Registry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// First client address: clients occupy `10.0.0.0/8` upward.
const CLIENT_BASE: u32 = 0x0a00_0000;

/// `/24`s covered by their own snapshot entry — every *other* `/24` of
/// the first [`COVERED_SLASH24`]·2, so even small campaigns exercise
/// both exact and byte-exact *fallback* answers (the validator checks
/// both the same way).
const COVERED_SLASH24: u32 = 64;

/// One-way propagation floor per direction, before link queueing.
const PROP_ONE_WAY: SimDuration = SimDuration::from_millis(10);

/// Floor on the dog-fooded client timeout: a served recommendation below
/// the network's own floor would self-DoS the campaign.
const MIN_CLIENT_TIMEOUT_SECS: f64 = 0.1;

/// Timeout applied before the first answer arrives (matches the policy
/// plane's boot value).
const INITIAL_TIMEOUT_SECS: f64 = 1.0;

/// Per-connection output bound, mirroring the socket server's default.
const OUT_QUEUE_CAP: usize = 64 * 1024;

/// Percentile pairs the clients cycle through — all on the snapshot's
/// paper grid, biased toward the high-coverage corner the paper cares
/// about.
const PCT_PAIRS: [(u16, u16); 4] = [(500, 500), (900, 950), (950, 990), (990, 980)];

/// Log₂ RTT histogram buckets (microseconds).
const RTT_BUCKETS: usize = 40;

/// Demand regime the closed-loop clients replay (names shared with the
/// policy shootout's scenario matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Stationary think time.
    Steady,
    /// A permanent 4× demand surge at half the campaign.
    CovidStep,
    /// Think time swings ±50% on a triangle wave (two periods per
    /// campaign) — sin-free so the summary stays bit-stable.
    DiurnalDrift,
}

impl Regime {
    /// Parse the CLI spelling.
    pub fn from_name(name: &str) -> Option<Regime> {
        match name {
            "steady" => Some(Regime::Steady),
            "covid_step" => Some(Regime::CovidStep),
            "diurnal_drift" => Some(Regime::DiurnalDrift),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Regime::Steady => "steady",
            Regime::CovidStep => "covid_step",
            Regime::DiurnalDrift => "diurnal_drift",
        }
    }
}

/// In-sim campaign parameters. Everything except `threads` is part of
/// the campaign's identity.
#[derive(Debug, Clone)]
pub struct SimServeCfg {
    /// Simulated closed-loop clients.
    pub clients: u64,
    /// Queries each client attempts (a timeout consumes an attempt).
    pub queries_per_client: u32,
    /// Clients per cell = `2^cell_bits`; fixed decomposition, part of
    /// the campaign identity (unlike `threads`).
    pub cell_bits: u32,
    /// Campaign seed (engine/link wobble derivation).
    pub seed: u64,
    /// Demand regime.
    pub regime: Regime,
    /// Partition every eighth access link mid-campaign.
    pub partition: bool,
    /// Base think time between one client's queries, microseconds.
    pub interval_us: u64,
    /// Worker threads (1 = serial reference run).
    pub threads: usize,
    /// `None` = snapshot mode with bit-exact validation; `Some` = the
    /// online estimator, validated for bounds.
    pub policy: Option<PolicyKind>,
}

impl Default for SimServeCfg {
    fn default() -> Self {
        SimServeCfg {
            clients: 1_000_000,
            queries_per_client: 2,
            cell_bits: 16,
            seed: 0x1511_0b5e,
            regime: Regime::Steady,
            partition: false,
            interval_us: 1_000_000,
            threads: 1,
            policy: None,
        }
    }
}

impl SimServeCfg {
    /// Nominal campaign span: the regime and partition windows are
    /// defined over it.
    fn duration_secs(&self) -> f64 {
        f64::from(self.queries_per_client) * self.interval_us as f64 / 1e6
    }
}

/// Build the campaign's oracle: distinct per-/24 tables for the first
/// [`COVERED_SLASH24`] client blocks, fallback for the rest. Pure
/// function of nothing — the snapshot is fixed so `Exact`/`Fallback`
/// splits are part of the campaign identity.
pub fn campaign_oracle() -> Oracle {
    let mut samples = BTreeMap::new();
    for p in 0..COVERED_SLASH24 {
        // Mostly-fast with a slow tail whose height grows with the
        // prefix index, so high-coverage cells differ per /24.
        let mut v = vec![0.05 + f64::from(p) * 0.002; 45];
        v.extend(vec![0.8 + f64::from(p) * 0.05; 5]);
        samples
            .insert(CLIENT_BASE | ((2 * p) << 8) | 1, beware_core::LatencySamples::from_values(v));
    }
    let cfg = SnapshotCfg { min_addresses: 1, ..SnapshotCfg::default() };
    let snap = build_snapshot(&samples, &cfg).expect("campaign snapshot builds");
    Oracle::from_snapshot(snap).expect("campaign oracle builds")
}

/// The three-tier path a client's bytes traverse (each direction):
/// access per /16, aggregation per /20, one spine.
fn path_of(addr: u32) -> [LinkId; 3] {
    [LinkId::Access((addr >> 16) as u16), LinkId::Core(addr >> 12 & 0xf_ff00), LinkId::Spine(0)]
}

/// Timer-token kinds; the low 32 bits carry the cell-local client index.
const FIRE: u64 = 0 << 32;
const SERVER_RX: u64 = 1 << 32;
const CLIENT_RX: u64 = 2 << 32;
const TIMEOUT: u64 = 3 << 32;
const KIND_MASK: u64 = 0xffff_ffff_0000_0000;

/// Deterministic per-cell aggregate, merged in cell order. Strictly
/// `u64` arithmetic — no float accumulation order to worry about.
#[derive(Debug)]
struct CellOut {
    queries_sent: u64,
    ok: u64,
    wrong: u64,
    timeouts: u64,
    errors: u64,
    requests_dropped: u64,
    replies_dropped: u64,
    gave_up_inflight: u64,
    reports_sent: u64,
    rtt_sum_us: u64,
    rtt_max_us: u64,
    rtt_hist: [u64; RTT_BUCKETS],
    // Perf numbers (deterministic here, but reported outside the
    // summary alongside the wall clock).
    sim_events: u64,
    queue_peak: u64,
    link_drops: u64,
    reg: Registry,
}

impl Default for CellOut {
    // Manual because `[u64; 40]` has no derived Default.
    fn default() -> Self {
        CellOut {
            queries_sent: 0,
            ok: 0,
            wrong: 0,
            timeouts: 0,
            errors: 0,
            requests_dropped: 0,
            replies_dropped: 0,
            gave_up_inflight: 0,
            reports_sent: 0,
            rtt_sum_us: 0,
            rtt_max_us: 0,
            rtt_hist: [0; RTT_BUCKETS],
            sim_events: 0,
            queue_peak: 0,
            link_drops: 0,
            reg: Registry::new(),
        }
    }
}

/// One client's closed loop.
#[derive(Debug, Default)]
struct Client {
    addr: u32,
    attempts_left: u32,
    attempt: u32,
    /// Dog-fooded timeout: the last served recommendation (floored).
    timeout_secs: f64,
    /// Last measured RTT, reported to the policy plane before the next
    /// query.
    last_rtt_us: Option<u64>,
    sent_at: SimTime,
    /// Snapshot mode: the bits the oracle must serve for this query.
    expected_bits: Option<u64>,
    /// The cancellable timeout — set at send, cancelled on answer.
    timeout_timer: Option<TimerId>,
    /// The in-flight network delivery (request or reply leg).
    net_timer: Option<TimerId>,
    /// Request frame(s), written into the channel when they *arrive* at
    /// the server — so a drop or give-up never leaves stale bytes.
    request: Vec<u8>,
    /// Reply bytes in flight back to the client.
    reply: Vec<u8>,
}

/// One cell: the engine shard plus its clients, driven as a netsim
/// agent. All per-client work is dispatched through wheel timers whose
/// tokens encode `(kind, client)`.
struct CellAgent {
    cfg: SimServeCfg,
    core: EngineCore,
    engine: Option<Engine>,
    links: LinkLayer,
    conns: Vec<Conn<ChannelTransport>>,
    peers: Vec<ChannelPeer>,
    clients: Vec<Client>,
    oracle: Arc<Oracle>,
    out: CellOut,
}

impl CellAgent {
    fn new(cfg: &SimServeCfg, oracle: &Arc<Oracle>, cell: u64) -> CellAgent {
        let first = cell << cfg.cell_bits;
        let count = (cfg.clients - first).min(1u64 << cfg.cell_bits) as usize;
        let mut conns = Vec::with_capacity(count);
        let mut peers = Vec::with_capacity(count);
        let mut clients = Vec::with_capacity(count);
        for i in 0..count {
            let addr = CLIENT_BASE + (first + i as u64) as u32;
            let (transport, peer) = channel_pair();
            conns.push(Conn::new(i as u64, transport));
            peers.push(peer);
            clients.push(Client {
                addr,
                attempts_left: cfg.queries_per_client,
                timeout_secs: INITIAL_TIMEOUT_SECS,
                ..Client::default()
            });
        }
        // Generous tier capacities: this campaign studies partitions and
        // timeout hygiene, not congestion collapse — fullspace covers
        // queueing. Service times still accrue per packet.
        let mut link_cfg = LinkCfg {
            seed: cfg.seed,
            access_pps: 1_000_000.0,
            core_pps: 5_000_000.0,
            spine_pps: 20_000_000.0,
            ..LinkCfg::default()
        };
        if cfg.partition {
            // Every eighth /16 of the whole campaign loses its access
            // link mid-run; collect the /16s this cell's clients span.
            let lo = (CLIENT_BASE + first as u32) >> 16;
            let hi = (CLIENT_BASE + first as u32 + count as u32 - 1) >> 16;
            let targets: Vec<LinkId> = (lo..=hi)
                .filter(|p16| p16 % 8 == 0)
                .map(|p16| LinkId::Access(p16 as u16))
                .collect();
            link_cfg.events = mid_campaign_partitions(&targets, cfg.duration_secs());
        }
        let core =
            EngineCore::new(Arc::clone(oracle), Arc::new(StopSignal::new()), cfg.policy, None);
        CellAgent {
            cfg: cfg.clone(),
            core,
            engine: None,
            links: LinkLayer::new(link_cfg),
            conns,
            peers,
            clients,
            oracle: Arc::clone(oracle),
            out: CellOut::default(),
        }
    }

    /// Regime-modulated think time at `now`.
    fn think_time(&self, now: SimTime) -> SimDuration {
        let base_us = self.cfg.interval_us;
        let us = match self.cfg.regime {
            Regime::Steady => base_us,
            Regime::CovidStep => {
                if now.as_secs_f64() >= self.cfg.duration_secs() * 0.5 {
                    (base_us / 4).max(1)
                } else {
                    base_us
                }
            }
            Regime::DiurnalDrift => {
                // Two triangle periods per campaign, factor in
                // [0.5, 1.5] — pure +/*, no libm.
                let period = (self.cfg.duration_secs() * 0.5).max(1e-9);
                let frac = (now.as_secs_f64() / period).fract();
                let tri = 1.0 - (2.0 * frac - 1.0).abs();
                ((base_us as f64) * (0.5 + tri)) as u64
            }
        };
        SimDuration::from_ns(us.max(1).saturating_mul(1_000))
    }

    /// Resolve one attempt and either rearm the client or retire it.
    fn next_attempt(&mut self, i: usize, ctx: &mut Ctx<'_>) {
        if self.clients[i].attempts_left > 0 {
            let at = ctx.now() + self.think_time(ctx.now());
            ctx.set_timer(at, FIRE | i as u64);
        }
    }

    fn fire(&mut self, i: usize, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let policy_mode = self.cfg.policy.is_some();
        let c = &mut self.clients[i];
        debug_assert!(c.attempts_left > 0, "fired with no attempts left");
        c.attempts_left -= 1;
        let (r, p) = PCT_PAIRS[(c.addr as usize + c.attempt as usize) % PCT_PAIRS.len()];
        c.attempt += 1;
        c.sent_at = now;
        c.expected_bits = if policy_mode {
            None
        } else {
            Some(self.oracle.lookup(c.addr, r, p).expect("grid pair resolves").timeout_bits)
        };
        c.request.clear();
        if policy_mode {
            if let Some(rtt_us) = c.last_rtt_us {
                c.request.extend_from_slice(&proto::encode(&Message::Report {
                    addr: c.addr,
                    rtt_us: rtt_us.min(u64::from(u32::MAX)) as u32,
                }));
                self.out.reports_sent += 1;
            }
        }
        c.request.extend_from_slice(&proto::encode(&Message::Query {
            addr: c.addr,
            addr_pct_tenths: r,
            ping_pct_tenths: p,
        }));
        self.out.queries_sent += 1;
        let timeout = SimDuration::from_secs_f64(c.timeout_secs);
        c.timeout_timer = Some(ctx.set_timer(now + timeout, TIMEOUT | i as u64));
        let addr = c.addr;
        match self.links.traverse(&path_of(addr), now) {
            Some(extra) => {
                let at = now + PROP_ONE_WAY + extra;
                self.clients[i].net_timer = Some(ctx.set_timer(at, SERVER_RX | i as u64));
            }
            None => {
                // Black-holed (partition) or tail-dropped: the timeout
                // timer is now the only thing pending for this client.
                self.out.requests_dropped += 1;
                self.clients[i].request.clear();
            }
        }
    }

    fn server_rx(&mut self, i: usize, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.clients[i].net_timer = None;
        let request = std::mem::take(&mut self.clients[i].request);
        if request.is_empty() {
            return;
        }
        self.peers[i].send(&request);
        let engine = self.engine.as_mut().expect("engine built at start");
        engine.service(&mut self.conns[i], &mut self.out.reg);
        engine.flush(&mut self.conns[i], &mut self.out.reg);
        let mut reply = Vec::new();
        self.peers[i].drain(&mut reply);
        if reply.is_empty() {
            return;
        }
        let addr = self.clients[i].addr;
        match self.links.traverse(&path_of(addr), now) {
            Some(extra) => {
                let at = now + PROP_ONE_WAY + extra;
                self.clients[i].reply = reply;
                self.clients[i].net_timer = Some(ctx.set_timer(at, CLIENT_RX | i as u64));
            }
            None => self.out.replies_dropped += 1,
        }
    }

    fn client_rx(&mut self, i: usize, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.clients[i].net_timer = None;
        let bytes = std::mem::take(&mut self.clients[i].reply);
        // The answer made it: cancel the timeout *before* judging the
        // payload — this is the wheel cancellation the refactor bought.
        if let Some(id) = self.clients[i].timeout_timer.take() {
            let cancelled = ctx.cancel_timer(id);
            debug_assert!(cancelled, "reply in hand implies a pending timeout");
        }
        let mut answer = None;
        let mut offset = 0;
        while offset < bytes.len() {
            match proto::try_decode(&bytes[offset..]) {
                Ok(Some((msg, used))) => {
                    offset += used;
                    match msg {
                        Message::Answer { .. } => answer = Some(msg),
                        Message::ReportAck { .. } => {}
                        _ => {
                            self.out.errors += 1;
                            self.next_attempt(i, ctx);
                            return;
                        }
                    }
                }
                _ => {
                    self.out.errors += 1;
                    self.next_attempt(i, ctx);
                    return;
                }
            }
        }
        let Some(Message::Answer { timeout_bits, .. }) = answer else {
            self.out.errors += 1;
            self.next_attempt(i, ctx);
            return;
        };
        let served = f64::from_bits(timeout_bits);
        let valid = match self.clients[i].expected_bits {
            // Snapshot mode: bit-exact against a direct oracle lookup.
            Some(expected) => timeout_bits == expected,
            // Policy mode: a finite, positive, sane recommendation.
            None => served.is_finite() && served > 0.0 && served <= 3_600.0,
        };
        let rtt_us = now.saturating_since(self.clients[i].sent_at).as_us();
        if valid {
            self.out.ok += 1;
            self.out.rtt_sum_us += rtt_us;
            self.out.rtt_max_us = self.out.rtt_max_us.max(rtt_us);
            let bucket = (u64::BITS - 1 - (rtt_us | 1).leading_zeros()) as usize;
            self.out.rtt_hist[bucket.min(RTT_BUCKETS - 1)] += 1;
            let c = &mut self.clients[i];
            c.last_rtt_us = Some(rtt_us);
            c.timeout_secs = served.clamp(MIN_CLIENT_TIMEOUT_SECS, 3_600.0);
        } else {
            self.out.wrong += 1;
        }
        self.next_attempt(i, ctx);
    }

    fn timed_out(&mut self, i: usize, ctx: &mut Ctx<'_>) {
        self.clients[i].timeout_timer = None;
        self.out.timeouts += 1;
        // Give up on whatever leg is still in flight — the paper's
        // bounded-listen discipline, applied by the client.
        if let Some(id) = self.clients[i].net_timer.take() {
            ctx.cancel_timer(id);
            self.out.gave_up_inflight += 1;
        }
        self.clients[i].request.clear();
        self.clients[i].reply.clear();
        self.next_attempt(i, ctx);
    }
}

impl Agent for CellAgent {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        // The engine stamps time through the simulation's own clock —
        // the scheduler seam in one line.
        self.engine = Some(self.core.engine(ctx.clock(), OUT_QUEUE_CAP));
        // Stagger first queries across one think interval so the cell
        // doesn't fire as a single thundering herd.
        let interval_ns = self.cfg.interval_us.saturating_mul(1_000).max(1);
        let slots = self.clients.len().max(1) as u64;
        for i in 0..self.clients.len() {
            let offset = SimDuration::from_ns(interval_ns * i as u64 / slots);
            ctx.set_timer(SimTime::EPOCH + offset, FIRE | i as u64);
        }
    }

    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
        // No world traffic: every byte rides the channel transports.
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let i = (token & !KIND_MASK) as usize;
        match token & KIND_MASK {
            FIRE => self.fire(i, ctx),
            SERVER_RX => self.server_rx(i, ctx),
            CLIENT_RX => self.client_rx(i, ctx),
            TIMEOUT => self.timed_out(i, ctx),
            _ => unreachable!("unknown timer kind"),
        }
    }
}

/// Campaign results: deterministic counters plus run-specific perf.
#[derive(Debug, Clone)]
pub struct SimServeReport {
    /// The configuration the campaign ran with.
    pub cfg: SimServeCfg,
    /// Query attempts issued across all clients.
    pub queries_sent: u64,
    /// Answers delivered and validated.
    pub ok: u64,
    /// Answers that failed validation (must be 0).
    pub wrong: u64,
    /// Attempts that hit the client's dog-fooded timeout.
    pub timeouts: u64,
    /// Protocol-level failures (unexpected or undecodable frames).
    pub errors: u64,
    /// Requests black-holed by the link layer.
    pub requests_dropped: u64,
    /// Replies black-holed by the link layer.
    pub replies_dropped: u64,
    /// In-flight legs abandoned when the client's timeout fired first.
    pub gave_up_inflight: u64,
    /// `Report` frames fed to the policy plane.
    pub reports_sent: u64,
    /// Sum of validated-answer RTTs, microseconds.
    pub rtt_sum_us: u64,
    /// Slowest validated answer, microseconds.
    pub rtt_max_us: u64,
    /// Log₂ RTT histogram: bucket `i` counts RTTs in `[2^i, 2^(i+1))` µs.
    pub rtt_hist: [u64; RTT_BUCKETS],
    /// Oracle queries the engine shards served (from telemetry).
    pub served_queries: u64,
    /// Exact-prefix answers served.
    pub served_exact: u64,
    /// Fallback answers served.
    pub served_fallback: u64,
    /// Simulation events processed across all cells.
    pub sim_events: u64,
    /// Deepest per-cell event queue.
    pub queue_peak: u64,
    /// Packets dropped by the link layer (partitions + tail drops).
    pub link_drops: u64,
    /// Wall-clock seconds of the campaign.
    pub wall_secs: f64,
    /// Merged per-cell telemetry (cell order).
    pub registry: Registry,
}

/// Run the campaign. Spawns `cfg.threads` workers over the fixed cell
/// decomposition; wall-clock aside, the result depends only on the
/// campaign identity.
pub fn run(cfg: &SimServeCfg) -> Result<SimServeReport, String> {
    if cfg.clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    if cfg.queries_per_client == 0 {
        return Err("--queries must be at least 1".into());
    }
    if cfg.cell_bits > 20 {
        return Err(format!("--cell-bits {} too large (max 20)", cfg.cell_bits));
    }
    if cfg.interval_us == 0 {
        return Err("--interval-us must be at least 1".into());
    }
    if cfg.clients > 1u64 << 24 {
        return Err(format!("--clients {} exceeds the 10/8 client space (max 2^24)", cfg.clients));
    }
    let oracle = Arc::new(campaign_oracle());
    let cell_count = cfg.clients.div_ceil(1u64 << cfg.cell_bits);
    let cells: Vec<u64> = (0..cell_count).collect();
    // Hard stop well past the nominal span: think times are at most
    // 1.5× base (diurnal peak) and every attempt resolves within the
    // clamped client timeout, so a cell that hasn't drained by then is
    // a bug, not a long tail.
    let worst = cfg.duration_secs() * 2.0 + f64::from(cfg.queries_per_client) * 3_600.0 + 60.0;
    let deadline = SimTime::EPOCH + SimDuration::from_secs_f64(worst);

    let t0 = std::time::Instant::now();
    let outs = run_tasks(cfg.threads, cells, |_, cell| {
        let agent = CellAgent::new(cfg, &oracle, cell);
        let world = World::new(beware_runtime::rng::derive_seed(cfg.seed, cell));
        let (mut agent, _world, summary) =
            Simulation::new(world, agent).with_deadline(deadline).run();
        agent.out.sim_events = summary.events;
        agent.out.queue_peak = summary.queue_peak;
        agent.out.link_drops = agent.links.drops();
        agent.out
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    // Merge in cell order (run_tasks already returns input order).
    let mut r = SimServeReport {
        cfg: cfg.clone(),
        queries_sent: 0,
        ok: 0,
        wrong: 0,
        timeouts: 0,
        errors: 0,
        requests_dropped: 0,
        replies_dropped: 0,
        gave_up_inflight: 0,
        reports_sent: 0,
        rtt_sum_us: 0,
        rtt_max_us: 0,
        rtt_hist: [0; RTT_BUCKETS],
        served_queries: 0,
        served_exact: 0,
        served_fallback: 0,
        sim_events: 0,
        queue_peak: 0,
        link_drops: 0,
        wall_secs,
        registry: Registry::new(),
    };
    for out in outs {
        r.queries_sent += out.queries_sent;
        r.ok += out.ok;
        r.wrong += out.wrong;
        r.timeouts += out.timeouts;
        r.errors += out.errors;
        r.requests_dropped += out.requests_dropped;
        r.replies_dropped += out.replies_dropped;
        r.gave_up_inflight += out.gave_up_inflight;
        r.reports_sent += out.reports_sent;
        r.rtt_sum_us += out.rtt_sum_us;
        r.rtt_max_us = r.rtt_max_us.max(out.rtt_max_us);
        for (acc, n) in r.rtt_hist.iter_mut().zip(&out.rtt_hist) {
            *acc += n;
        }
        r.sim_events += out.sim_events;
        r.queue_peak = r.queue_peak.max(out.queue_peak);
        r.link_drops += out.link_drops;
        r.registry.merge(&out.reg);
    }
    r.served_queries = r.registry.counter("serve/queries").unwrap_or(0);
    r.served_exact = r.registry.counter("serve/hits_exact").unwrap_or(0);
    r.served_fallback = r.registry.counter("serve/hits_fallback").unwrap_or(0);
    Ok(r)
}

impl SimServeReport {
    /// Simulation events per wall-clock second — the headline throughput
    /// number.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.sim_events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The deterministic summary: every field is a pure function of the
    /// campaign identity, so two runs produce byte-identical documents
    /// regardless of `--threads` — the artifact the CI smoke `cmp`s.
    pub fn summary_json(&self) -> String {
        let c = &self.cfg;
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!(
            "  \"clients\": {}, \"queries_per_client\": {}, \"cell_bits\": {}, \"seed\": {},\n",
            c.clients, c.queries_per_client, c.cell_bits, c.seed
        ));
        out.push_str(&format!(
            "  \"regime\": \"{}\", \"partition\": {}, \"interval_us\": {}, \"mode\": \"{}\",\n",
            c.regime.name(),
            c.partition,
            c.interval_us,
            c.policy.map_or("snapshot", PolicyKind::name),
        ));
        out.push_str(&format!(
            "  \"queries_sent\": {}, \"ok\": {}, \"wrong\": {}, \"timeouts\": {}, \
             \"errors\": {},\n",
            self.queries_sent, self.ok, self.wrong, self.timeouts, self.errors
        ));
        out.push_str(&format!(
            "  \"requests_dropped\": {}, \"replies_dropped\": {}, \"gave_up_inflight\": {}, \
             \"link_drops\": {},\n",
            self.requests_dropped, self.replies_dropped, self.gave_up_inflight, self.link_drops
        ));
        out.push_str(&format!(
            "  \"reports_sent\": {}, \"served_queries\": {}, \"served_exact\": {}, \
             \"served_fallback\": {},\n",
            self.reports_sent, self.served_queries, self.served_exact, self.served_fallback
        ));
        out.push_str(&format!(
            "  \"rtt_sum_us\": {}, \"rtt_max_us\": {},\n",
            self.rtt_sum_us, self.rtt_max_us
        ));
        out.push_str("  \"rtt_hist_log2_us\": [");
        let mut first = true;
        for (i, &n) in self.rtt_hist.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("{{\"bucket\": {i}, \"count\": {n}}}"));
        }
        out.push_str("]\n}\n");
        out
    }

    /// The `BENCH_8.json` document: the deterministic summary plus the
    /// run-specific numbers — wall clock, throughput, and the knobs they
    /// depend on.
    pub fn bench_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n  \"mode\": \"simserve\",\n");
        out.push_str(&format!(
            "  \"threads\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1},\n",
            self.cfg.threads,
            self.wall_secs,
            self.events_per_sec()
        ));
        out.push_str(&format!(
            "  \"sim_events\": {}, \"queue_peak\": {},\n",
            self.sim_events, self.queue_peak
        ));
        out.push_str(&format!("  \"summary\": {}", indent(&self.summary_json())));
        out.push_str("\n}\n");
        out
    }

    /// One-paragraph human summary for the CLI.
    pub fn summary_text(&self) -> String {
        format!(
            "simserve: {} clients x {} queries ({} regime{}) on {} thread(s) in {:.2}s \
             ({:.0} events/s)\n  ok {} | wrong {} | timeouts {} | errors {} | link drops {}\n  \
             served: {} queries ({} exact, {} fallback) | mean rtt {:.1} ms | max {:.1} ms\n",
            self.cfg.clients,
            self.cfg.queries_per_client,
            self.cfg.regime.name(),
            if self.cfg.partition { ", mid-campaign partition" } else { "" },
            self.cfg.threads,
            self.wall_secs,
            self.events_per_sec(),
            self.ok,
            self.wrong,
            self.timeouts,
            self.errors,
            self.link_drops,
            self.served_queries,
            self.served_exact,
            self.served_fallback,
            if self.ok > 0 { self.rtt_sum_us as f64 / self.ok as f64 / 1_000.0 } else { 0.0 },
            self.rtt_max_us as f64 / 1_000.0,
        )
    }
}

/// Nest a pretty-printed JSON document two spaces deep.
fn indent(json: &str) -> String {
    let trimmed = json.trim_end();
    let mut out = String::with_capacity(trimmed.len());
    for (i, line) in trimmed.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            if !line.is_empty() {
                out.push_str("  ");
            }
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(threads: usize) -> SimServeCfg {
        SimServeCfg {
            clients: 3_000,
            queries_per_client: 2,
            cell_bits: 10,
            threads,
            ..SimServeCfg::default()
        }
    }

    #[test]
    fn summary_is_thread_invariant_and_answers_are_exact() {
        let serial = run(&tiny(1)).unwrap();
        let parallel = run(&tiny(4)).unwrap();
        assert_eq!(serial.summary_json(), parallel.summary_json());
        assert_eq!(serial.queries_sent, 6_000);
        assert_eq!(serial.ok, 6_000, "no faults -> every answer validated");
        assert_eq!(serial.wrong, 0);
        assert_eq!(serial.timeouts, 0);
        assert!(serial.served_exact > 0 && serial.served_fallback > 0);
        // Attempt accounting closes.
        assert_eq!(serial.ok + serial.wrong + serial.timeouts + serial.errors, 6_000);
    }

    #[test]
    fn partition_bounds_errors_and_never_corrupts_answers() {
        let mut cfg = tiny(2);
        cfg.partition = true;
        // Spread clients over several /16s so some are (and some are
        // not) behind partitioned access links.
        cfg.clients = 3_000;
        let r = run(&cfg).unwrap();
        assert_eq!(r.wrong, 0, "partitions may delay or drop, never corrupt");
        assert_eq!(r.ok + r.wrong + r.timeouts + r.errors, r.queries_sent);
        // The partitioned /16 (10.0/16 -> Access(0x0a00), 0x0a00 % 8 == 0)
        // must actually hurt mid-campaign...
        assert!(r.timeouts > 0, "partition window must cost timeouts");
        assert!(r.link_drops > 0);
        // ...but the fault is bounded: most attempts still succeed.
        assert!(r.ok * 2 > r.queries_sent, "ok {} of {}", r.ok, r.queries_sent);
        // Thread invariance holds under faults too.
        cfg.threads = 1;
        assert_eq!(run(&cfg).unwrap().summary_json(), r.summary_json());
    }

    #[test]
    fn regimes_change_the_timeline_not_the_correctness() {
        for regime in [Regime::CovidStep, Regime::DiurnalDrift] {
            let cfg = SimServeCfg { regime, queries_per_client: 3, ..tiny(2) };
            let r = run(&cfg).unwrap();
            assert_eq!(r.wrong, 0, "{}", regime.name());
            assert_eq!(r.ok, r.queries_sent, "{}", regime.name());
            assert_eq!(
                run(&cfg).unwrap().summary_json(),
                r.summary_json(),
                "{} repeat-run invariance",
                regime.name()
            );
        }
    }

    #[test]
    fn policy_mode_dogfoods_reports_and_stays_sane() {
        let cfg = SimServeCfg {
            policy: Some(PolicyKind::JacobsonKarn),
            queries_per_client: 3,
            ..tiny(2)
        };
        let r = run(&cfg).unwrap();
        assert_eq!(r.wrong, 0);
        assert_eq!(r.ok, r.queries_sent);
        // Every attempt after a client's first success carries a Report.
        assert!(r.reports_sent > 0);
        assert!(r.summary_json().contains("\"mode\": \"jacobson-karn\""));
    }

    #[test]
    fn bench_json_embeds_the_summary() {
        let r = run(&tiny(1)).unwrap();
        let json = r.bench_json();
        assert!(json.contains("\"mode\": \"simserve\""));
        assert!(json.contains("\"rtt_hist_log2_us\""));
        assert_eq!(json.matches(['{', '[']).count(), json.matches(['}', ']']).count());
    }

    #[test]
    fn geometry_is_validated() {
        assert!(run(&SimServeCfg { clients: 0, ..tiny(1) }).is_err());
        assert!(run(&SimServeCfg { queries_per_client: 0, ..tiny(1) }).is_err());
        assert!(run(&SimServeCfg { cell_bits: 30, ..tiny(1) }).is_err());
        assert!(run(&SimServeCfg { clients: 1 << 25, ..tiny(1) }).is_err());
    }
}
