//! Last-octet evidence for the broadcast-address hypothesis —
//! Section 3.3.1, Figures 2 and 3.
//!
//! If the cross-address responses come from probing subnet broadcast
//! addresses, their triggering destinations' last octets must end in runs
//! of ≥ 2 equal bits (255, 0, 127, 128, 63, ...). Figure 2 tests this on a
//! Zmap scan, where the probed destination is embedded in the payload;
//! Figure 3 tests it on the survey data, where it must be inferred as "the
//! most recently probed address in the same /24".

use beware_dataset::{Record, RecordKind, ZmapScan};
use beware_wire::addr::LastOctetClass;
use std::collections::{HashMap, HashSet};

/// A histogram over last octets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OctetHistogram {
    /// Count per last-octet value.
    pub counts: [u64; 256],
}

impl Default for OctetHistogram {
    fn default() -> Self {
        OctetHistogram { counts: [0; 256] }
    }
}

impl OctetHistogram {
    /// Total count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum over broadcast-like octets (trailing run of ≥ 2 equal bits).
    pub fn broadcast_like_total(&self) -> u64 {
        (0u16..=255)
            .filter(|&o| LastOctetClass::of(o as u8).is_broadcast_like())
            .map(|o| self.counts[o as usize])
            .sum()
    }

    /// Sum over interior octets (ending in binary 01/10) — the paper's
    /// null hypothesis band: these cannot be broadcast addresses.
    pub fn interior_total(&self) -> u64 {
        self.total() - self.broadcast_like_total()
    }

    /// The `(x, y)` series for plotting.
    pub fn to_series(&self) -> Vec<(f64, f64)> {
        self.counts.iter().enumerate().map(|(o, &c)| (o as f64, c as f64)).collect()
    }

    /// Mean count over interior octets — the flat background level
    /// against which the spikes stand out.
    pub fn interior_mean(&self) -> f64 {
        let interior: Vec<u64> = (0u16..=255)
            .filter(|&o| !LastOctetClass::of(o as u8).is_broadcast_like())
            .map(|o| self.counts[o as usize])
            .collect();
        if interior.is_empty() {
            0.0
        } else {
            interior.iter().sum::<u64>() as f64 / interior.len() as f64
        }
    }
}

/// Figure 2: per last octet, the number of **distinct probed addresses**
/// that solicited at least one response from a different address in the
/// same /24.
pub fn zmap_broadcast_octets(scan: &ZmapScan) -> OctetHistogram {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut hist = OctetHistogram::default();
    for r in scan.cross_address_records() {
        // Same /24 only: a response from a different prefix is routing
        // noise, not subnet broadcast.
        if r.probed >> 8 != r.responder >> 8 {
            continue;
        }
        if seen.insert(r.probed) {
            hist.counts[(r.probed & 0xff) as usize] += 1;
        }
    }
    hist
}

/// Per unmatched response, a reflector flood sends hundreds of packets per
/// survey round while a subnet broadcast responder answers only when its
/// subnet's broadcast/network address is probed — a handful per round.
/// Responders above this per-round multiplicity are floods (the paper
/// analyzes them separately in Section 3.3.2 / Figure 5) and would smear
/// the octet attribution if left in.
const FLOOD_UNMATCHED_PER_ROUND: u64 = 8;

/// Figure 3: per last octet of the **most recently probed address in the
/// same /24**, the number of unmatched responses that followed it.
///
/// Reflector floods (Section 3.3.2) are excluded: one flooding address can
/// outnumber every broadcast responder combined, and its responses arrive
/// spread over minutes, attributing to whatever octets happened to be
/// probed next.
pub fn survey_unmatched_octets(records: &[Record]) -> OctetHistogram {
    // Probe times per /24 block: (time, last octet), sorted by time. Also
    // count probes per address — the per-address maximum estimates the
    // number of survey rounds without needing the survey config here.
    let mut probes: HashMap<u32, Vec<(u32, u8)>> = HashMap::new();
    let mut probes_per_addr: HashMap<u32, u64> = HashMap::new();
    let mut unmatched_per_addr: HashMap<u32, u64> = HashMap::new();
    for r in records {
        match r.kind {
            RecordKind::Matched { .. } | RecordKind::Timeout | RecordKind::IcmpError { .. } => {
                probes.entry(r.addr >> 8).or_default().push((r.time_s, (r.addr & 0xff) as u8));
                *probes_per_addr.entry(r.addr).or_default() += 1;
            }
            RecordKind::Unmatched { .. } => {
                *unmatched_per_addr.entry(r.addr).or_default() += 1;
            }
        }
    }
    for v in probes.values_mut() {
        v.sort_unstable();
    }
    let rounds = probes_per_addr.values().copied().max().unwrap_or(1).max(1);
    let flood_threshold = FLOOD_UNMATCHED_PER_ROUND * rounds;

    let mut hist = OctetHistogram::default();
    for r in records {
        let RecordKind::Unmatched { recv_s } = r.kind else { continue };
        if unmatched_per_addr.get(&r.addr).copied().unwrap_or(0) > flood_threshold {
            continue;
        }
        let Some(block_probes) = probes.get(&(r.addr >> 8)) else { continue };
        let i = block_probes.partition_point(|&(t, _)| t <= recv_s);
        if i == 0 {
            continue;
        }
        hist.counts[usize::from(block_probes[i - 1].1)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_dataset::{ScanMeta, ScanRecord};

    fn scan(records: Vec<ScanRecord>) -> ZmapScan {
        let mut s =
            ZmapScan::new(ScanMeta { label: "t".into(), day: "Mon".into(), begin: "12:00".into() });
        s.records = records;
        s
    }

    #[test]
    fn zmap_histogram_counts_distinct_probed() {
        let s = scan(vec![
            // .255 triggers three neighbors: one probed address.
            ScanRecord { probed: 0x0a0000ff, responder: 0x0a000001, rtt_us: 1 },
            ScanRecord { probed: 0x0a0000ff, responder: 0x0a000002, rtt_us: 1 },
            ScanRecord { probed: 0x0a0000ff, responder: 0x0a000003, rtt_us: 1 },
            // .127 in another block.
            ScanRecord { probed: 0x0a00017f, responder: 0x0a000110, rtt_us: 1 },
            // Direct response: ignored.
            ScanRecord { probed: 0x0a000005, responder: 0x0a000005, rtt_us: 1 },
            // Cross-prefix response: ignored.
            ScanRecord { probed: 0x0a000290, responder: 0x0b000001, rtt_us: 1 },
        ]);
        let h = zmap_broadcast_octets(&s);
        assert_eq!(h.counts[255], 1);
        assert_eq!(h.counts[127], 1);
        assert_eq!(h.counts[0x90], 0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.broadcast_like_total(), 2);
        assert_eq!(h.interior_total(), 0);
    }

    #[test]
    fn survey_histogram_attributes_to_most_recent_probe() {
        let records = vec![
            Record::timeout(0x0a000010, 100),   // octet 0x10 probed at 100
            Record::timeout(0x0a0000ff, 430),   // octet 255 probed at 430
            Record::unmatched(0x0a000010, 431), // follows the 255 probe
            Record::unmatched(0x0a000011, 101), // follows the 0x10 probe
        ];
        let h = survey_unmatched_octets(&records);
        assert_eq!(h.counts[255], 1);
        assert_eq!(h.counts[0x10], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn unmatched_before_any_probe_uncounted() {
        let records = vec![Record::unmatched(0x0a000010, 5), Record::timeout(0x0a000010, 100)];
        assert_eq!(survey_unmatched_octets(&records).total(), 0);
    }

    #[test]
    fn unmatched_in_unprobed_block_uncounted() {
        let records = vec![Record::timeout(0x0a000010, 100), Record::unmatched(0x0b000010, 101)];
        assert_eq!(survey_unmatched_octets(&records).total(), 0);
    }

    #[test]
    fn interior_mean_excludes_spikes() {
        let mut h = OctetHistogram::default();
        h.counts[255] = 1000;
        for o in [1usize, 2, 5, 6, 9, 10] {
            h.counts[o] = 10;
        }
        let m = h.interior_mean();
        assert!(m < 1.0, "mean {m}");
        assert_eq!(h.broadcast_like_total(), 1000);
    }
}
