//! Empirical CDF/CCDF series — the form every figure in the paper takes.

/// An empirical distribution over a set of values.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from unsorted values.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| v.is_finite()), "non-finite value in CDF");
        values.sort_by(f64::total_cmp);
        Cdf { sorted: values }
    }

    /// Number of underlying values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no values.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of values ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// `1 − F(x)`: fraction of values > `x`.
    pub fn ccdf_at(&self, x: f64) -> f64 {
        1.0 - self.fraction_at(x)
    }

    /// Inverse: the smallest value `v` with `F(v) ≥ q`, `q ∈ (0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::percentile::percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Sampled `(x, F(x))` series with `points` evenly spaced ranks —
    /// what a plotting tool ingests.
    pub fn to_series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        (1..=points)
            .map(|i| {
                let rank = ((i as f64 / points as f64) * n as f64).ceil() as usize;
                let idx = rank.clamp(1, n) - 1;
                (self.sorted[idx], rank.min(n) as f64 / n as f64)
            })
            .collect()
    }

    /// `(x, 1−F(x))` pairs at each distinct value — the CCDF form of
    /// Figure 5, usually plotted log-log.
    pub fn to_ccdf_series(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < n {
            let v = self.sorted[i];
            let mut j = i;
            while j < n && self.sorted[j] == v {
                j += 1;
            }
            // Fraction strictly greater than v.
            out.push((v, (n - j) as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Minimum value.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum value.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(2.0), 0.5);
        assert_eq!(c.fraction_at(9.0), 1.0);
        assert_eq!(c.ccdf_at(2.0), 0.5);
        assert_eq!(c.quantile(0.5), Some(2.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(4.0));
    }

    #[test]
    fn empty_cdf_is_sane() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert!(c.to_series(10).is_empty());
        assert!(c.to_ccdf_series().is_empty());
    }

    #[test]
    fn series_is_monotone() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 501) as f64).collect();
        let c = Cdf::new(values);
        let series = c.to_series(50);
        assert_eq!(series.len(), 50);
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_series_handles_ties() {
        let c = Cdf::new(vec![1.0, 1.0, 2.0, 5.0]);
        let s = c.to_ccdf_series();
        assert_eq!(s, vec![(1.0, 0.5), (2.0, 0.25), (5.0, 0.0)]);
    }
}
