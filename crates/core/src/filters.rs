//! Artifact filters (Section 3.3): broadcast responders and duplicate/DoS
//! reflectors both masquerade as "delayed responses" under source-address
//! matching and must be removed before any latency conclusion is drawn.

pub mod broadcast;
pub mod duplicates;

pub use broadcast::{detect_broadcast_responders, BroadcastFilterCfg};
pub use duplicates::{duplicate_offenders, max_responses_per_request};
