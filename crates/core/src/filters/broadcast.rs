//! The EWMA broadcast-responder filter (Section 3.3.1).
//!
//! A broadcast responder answers the ping sent to its subnet's broadcast
//! address each round; under source-address matching this manufactures a
//! stable high latency (330 s, or 165/495 s for smaller subnets) round
//! after round. Genuine congestion-delayed responses vary; broadcast
//! artifacts repeat. The paper's filter: for every unmatched response with
//! latency ≥ 10 s, check whether the same source produced a similar
//! latency in the *previous* round; feed that indicator into an
//! exponentially weighted moving average (α = 0.01) per source, and mark
//! the source as a broadcast responder if the EWMA ever exceeds 0.2.

use crate::matching::DelayedResponse;
use std::collections::{BTreeSet, HashMap};

/// Filter parameters; defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BroadcastFilterCfg {
    /// Probing round length in seconds (ISI: 660).
    pub round_secs: u32,
    /// Only latencies at least this large are considered (paper: 10 s —
    /// genuine sub-10 s delays are too common to fingerprint).
    pub min_latency_s: u32,
    /// "Similar latency" tolerance between rounds, seconds.
    pub tolerance_s: u32,
    /// EWMA smoothing factor.
    pub alpha: f64,
    /// Mark a source when its EWMA maximum exceeds this ("most broadcast
    /// responders have the maximum > 0.9, but probe loss can decrease
    /// this, so we mark addresses with values > 0.2").
    pub mark_threshold: f64,
}

impl Default for BroadcastFilterCfg {
    fn default() -> Self {
        BroadcastFilterCfg {
            round_secs: 660,
            min_latency_s: 10,
            tolerance_s: 2,
            alpha: 0.01,
            mark_threshold: 0.2,
        }
    }
}

/// Detect broadcast responders among the delayed responses. Returns the
/// set of source addresses whose **every** response should be discarded.
pub fn detect_broadcast_responders(
    delayed: &[DelayedResponse],
    cfg: &BroadcastFilterCfg,
) -> BTreeSet<u32> {
    assert!(cfg.round_secs > 0, "round length must be positive");
    // Per address, per round: the qualifying latencies observed.
    let mut by_addr: HashMap<u32, HashMap<u32, Vec<u32>>> = HashMap::new();
    for d in delayed {
        if d.latency_s >= cfg.min_latency_s {
            let round = d.sent_s / cfg.round_secs;
            by_addr.entry(d.addr).or_default().entry(round).or_default().push(d.latency_s);
        }
    }

    let mut marked = BTreeSet::new();
    for (addr, rounds) in by_addr {
        let mut round_ids: Vec<u32> = rounds.keys().copied().collect();
        round_ids.sort_unstable();
        let mut ewma = 0.0f64;
        let mut max_ewma = 0.0f64;
        for &round in &round_ids {
            let prev = rounds.get(&round.wrapping_sub(1));
            for &lat in &rounds[&round] {
                let hit =
                    prev.is_some_and(|p| p.iter().any(|&pl| pl.abs_diff(lat) <= cfg.tolerance_s));
                ewma = (1.0 - cfg.alpha) * ewma + cfg.alpha * f64::from(u8::from(hit));
                max_ewma = max_ewma.max(ewma);
            }
        }
        if max_ewma > cfg.mark_threshold {
            marked.insert(addr);
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delayed(addr: u32, round: u32, latency_s: u32) -> DelayedResponse {
        DelayedResponse { addr, sent_s: round * 660 + 17, latency_s }
    }

    /// A classic broadcast responder: 330 s latency, every round.
    fn steady_responder(addr: u32, rounds: u32) -> Vec<DelayedResponse> {
        (0..rounds).map(|r| delayed(addr, r, 330)).collect()
    }

    #[test]
    fn steady_broadcast_responder_is_marked_with_paper_params() {
        // With α = 0.01, a hit every round pushes the EWMA past 0.2 after
        // ~23 rounds; give it a survey-scale 100 rounds.
        let d = steady_responder(7, 100);
        let marked = detect_broadcast_responders(&d, &BroadcastFilterCfg::default());
        assert!(marked.contains(&7));
    }

    #[test]
    fn congestion_varied_latency_is_not_marked() {
        // High latencies that vary a lot between rounds: not broadcast.
        let d: Vec<DelayedResponse> =
            (0..100).map(|r| delayed(9, r, 10 + (r * 37) % 300)).collect();
        let marked = detect_broadcast_responders(&d, &BroadcastFilterCfg::default());
        assert!(!marked.contains(&9));
    }

    #[test]
    fn sub_threshold_latencies_ignored() {
        // Sub-10 s latencies, even if perfectly stable, are not eligible.
        let d: Vec<DelayedResponse> = (0..200).map(|r| delayed(5, r, 6)).collect();
        let marked = detect_broadcast_responders(&d, &BroadcastFilterCfg::default());
        assert!(marked.is_empty());
    }

    #[test]
    fn tolerance_allows_second_quantization_wobble() {
        // Latency alternates 330/331 (timestamp truncation): still marked.
        let d: Vec<DelayedResponse> = (0..100).map(|r| delayed(3, r, 330 + r % 2)).collect();
        let marked = detect_broadcast_responders(&d, &BroadcastFilterCfg::default());
        assert!(marked.contains(&3));
    }

    #[test]
    fn occasional_responder_evades_default_filter() {
        // The paper's observed false negatives: responses only once every
        // ~50 rounds never accumulate EWMA (the previous round is empty).
        let d: Vec<DelayedResponse> =
            (0..200).filter(|r| r % 50 == 0).map(|r| delayed(11, r, 330)).collect();
        let marked = detect_broadcast_responders(&d, &BroadcastFilterCfg::default());
        assert!(!marked.contains(&11), "sparse responder should pass undetected");
    }

    #[test]
    fn loss_tolerated_once_ewma_accumulated() {
        // Respond rounds 0..60, lose rounds 60..63, respond again: the
        // EWMA decays but the *maximum* stays above the mark.
        let mut d = steady_responder(13, 60);
        d.extend((63..80).map(|r| delayed(13, r, 330)));
        let marked = detect_broadcast_responders(&d, &BroadcastFilterCfg::default());
        assert!(marked.contains(&13));
    }

    #[test]
    fn short_survey_needs_larger_alpha() {
        // 10 rounds is too short for α = 0.01...
        let d = steady_responder(21, 10);
        assert!(detect_broadcast_responders(&d, &BroadcastFilterCfg::default()).is_empty());
        // ...but a test-scale α catches it.
        let cfg = BroadcastFilterCfg { alpha: 0.1, ..Default::default() };
        assert!(detect_broadcast_responders(&d, &cfg).contains(&21));
    }

    #[test]
    fn multiple_addresses_independent() {
        let mut d = steady_responder(1, 100);
        d.extend((0..100).map(|r| delayed(2, r, 10 + (r * 53) % 400)));
        let marked = detect_broadcast_responders(&d, &BroadcastFilterCfg::default());
        assert!(marked.contains(&1));
        assert!(!marked.contains(&2));
    }
}
