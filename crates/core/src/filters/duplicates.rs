//! The duplicate/DoS filter (Section 3.3.2, Figure 5).
//!
//! Some addresses answer one echo request with thousands — in the paper's
//! data, up to ~11 million — echo responses; these are misconfigurations
//! or retaliatory DoS floods, and their latencies are untrustworthy. The
//! filter counts, per address, the maximum number of responses attributable
//! to a single echo request, and discards addresses exceeding four:
//! "Even if a response from the probed IP address is duplicated and a
//! broadcast response is also duplicated, there should be only 4 echo
//! responses."

use beware_dataset::{Record, RecordKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Per-address maximum number of responses observed for a single echo
/// request. A matched response counts toward its own request; every
/// unmatched response counts toward the most recent request to that
/// address at its receive time.
pub fn max_responses_per_request(records: &[Record]) -> BTreeMap<u32, u32> {
    // Request send times per address (matched, timeout and error records
    // all represent requests).
    let mut requests: HashMap<u32, Vec<u32>> = HashMap::new();
    for r in records {
        match r.kind {
            RecordKind::Matched { .. } | RecordKind::Timeout | RecordKind::IcmpError { .. } => {
                requests.entry(r.addr).or_default().push(r.time_s);
            }
            RecordKind::Unmatched { .. } => {}
        }
    }
    for times in requests.values_mut() {
        times.sort_unstable();
    }

    // Response counts per (address, request index).
    let mut counts: HashMap<u32, HashMap<usize, u32>> = HashMap::new();
    for r in records {
        match r.kind {
            RecordKind::Matched { .. } => {
                let reqs = &requests[&r.addr];
                let idx = reqs.partition_point(|&t| t <= r.time_s).saturating_sub(1);
                *counts.entry(r.addr).or_default().entry(idx).or_insert(0) += 1;
            }
            RecordKind::Unmatched { recv_s } => {
                let Some(reqs) = requests.get(&r.addr) else {
                    // A response with no request at all: count it against a
                    // virtual request 0 — it is certainly not trustworthy.
                    *counts.entry(r.addr).or_default().entry(0).or_insert(0) += 1;
                    continue;
                };
                let i = reqs.partition_point(|&t| t <= recv_s);
                let idx = i.saturating_sub(1);
                *counts.entry(r.addr).or_default().entry(idx).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    counts
        .into_iter()
        .map(|(addr, per_req)| (addr, per_req.into_values().max().unwrap_or(0)))
        .collect()
}

/// Addresses whose maximum per-request response count exceeds
/// `threshold` (paper: 4). Their records must be discarded entirely.
pub fn duplicate_offenders(max_counts: &BTreeMap<u32, u32>, threshold: u32) -> BTreeSet<u32> {
    max_counts.iter().filter(|&(_, &max)| max > threshold).map(|(&addr, _)| addr).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u32 = 0x0a000001;
    const B: u32 = 0x0a000002;

    #[test]
    fn single_match_counts_one() {
        let records = vec![Record::matched(A, 100, 50_000)];
        let m = max_responses_per_request(&records);
        assert_eq!(m[&A], 1);
        assert!(duplicate_offenders(&m, 4).is_empty());
    }

    #[test]
    fn match_plus_duplicates_accumulate() {
        let records = vec![
            Record::matched(A, 100, 50_000),
            Record::unmatched(A, 101),
            Record::unmatched(A, 102),
        ];
        let m = max_responses_per_request(&records);
        assert_eq!(m[&A], 3);
    }

    #[test]
    fn flood_is_flagged() {
        let mut records = vec![Record::timeout(A, 100)];
        for i in 0..50 {
            records.push(Record::unmatched(A, 101 + i % 300));
        }
        let m = max_responses_per_request(&records);
        assert_eq!(m[&A], 50);
        assert_eq!(duplicate_offenders(&m, 4), BTreeSet::from([A]));
    }

    #[test]
    fn responses_split_across_requests_not_flagged() {
        // One late response per round: each request gets exactly one.
        let mut records = Vec::new();
        for round in 0..20 {
            records.push(Record::timeout(A, round * 660));
            records.push(Record::unmatched(A, round * 660 + 30));
        }
        let m = max_responses_per_request(&records);
        assert_eq!(m[&A], 1);
        assert!(duplicate_offenders(&m, 4).is_empty());
    }

    #[test]
    fn exactly_threshold_passes_above_fails() {
        let mk = |n: u32| {
            let mut records = vec![Record::timeout(B, 0)];
            for i in 0..n {
                records.push(Record::unmatched(B, 1 + i));
            }
            max_responses_per_request(&records)
        };
        assert!(duplicate_offenders(&mk(4), 4).is_empty());
        assert_eq!(duplicate_offenders(&mk(5), 4), BTreeSet::from([B]));
    }

    #[test]
    fn response_with_no_requests_counted() {
        let records = vec![Record::unmatched(A, 5), Record::unmatched(A, 6)];
        let m = max_responses_per_request(&records);
        assert_eq!(m[&A], 2);
    }

    #[test]
    fn addresses_independent() {
        let records =
            vec![Record::timeout(A, 0), Record::unmatched(A, 1), Record::matched(B, 0, 10)];
        let m = max_responses_per_request(&records);
        assert_eq!(m[&A], 1);
        assert_eq!(m[&B], 1);
    }
}
