//! The "first ping" analysis of Section 6.3 (Figures 12, 13, 14).
//!
//! Given 10-probe 1 Hz trains against high-median-latency addresses, the
//! paper classifies each address by how the first RTT compares to the
//! rest: for ~2/3 the first exceeds the maximum of the rest — the radio
//! wake-up signature — and the wake-up duration is estimated as
//! `RTT₁ − min(RTT₂..RTTₙ)` (median ≈ 1.37 s, 90% < 4 s).

use crate::cdf::Cdf;
use crate::percentile::percentile_sorted;
use std::collections::BTreeMap;

/// How an address's first RTT relates to the rest of its train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FirstPingClass {
    /// `RTT₁ > max(RTT₂..RTTₙ)` — the wake-up signature.
    AboveMax,
    /// `median < RTT₁ ≤ max` of the rest.
    AboveMedian,
    /// `RTT₁ ≤ median` of the rest.
    AtOrBelowMedian,
}

/// One analyzed address.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamVerdict {
    /// Probed address.
    pub dst: u32,
    /// First-probe RTT.
    pub rtt1: f64,
    /// Second-probe RTT if answered.
    pub rtt2: Option<f64>,
    /// Minimum of the remaining RTTs.
    pub min_rest: f64,
    /// Maximum of the remaining RTTs.
    pub max_rest: f64,
    /// Classification.
    pub class: FirstPingClass,
}

/// Aggregate counts, mirroring the paper's prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FirstPingCounts {
    /// First exceeded the max of the rest (paper: 51,646 of 83,174).
    pub above_max: usize,
    /// First between median and max (paper: 11,874).
    pub above_median: usize,
    /// First at or below the median (paper: 10,910).
    pub at_or_below_median: usize,
    /// Omitted: no response to the first probe (paper: 8,329).
    pub omitted_no_first: usize,
    /// Omitted: fewer than 4 responses total (paper: 415).
    pub omitted_too_few: usize,
}

impl FirstPingCounts {
    /// Addresses that were classified.
    pub fn classified(&self) -> usize {
        self.above_max + self.above_median + self.at_or_below_median
    }

    /// Fraction of classified addresses with the wake-up signature.
    pub fn above_max_fraction(&self) -> f64 {
        let n = self.classified();
        if n == 0 {
            0.0
        } else {
            self.above_max as f64 / n as f64
        }
    }
}

/// Result of the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstPingAnalysis {
    /// Per-address verdicts, classification inputs included.
    pub verdicts: Vec<StreamVerdict>,
    /// Aggregates.
    pub counts: FirstPingCounts,
}

/// Analyze per-address probe trains; `streams` holds `(dst, per-probe
/// RTTs)` where `None` marks an unanswered probe. Requires `n ≥ 4`
/// responses including the first, as the paper does.
pub fn analyze(streams: &[(u32, Vec<Option<f64>>)]) -> FirstPingAnalysis {
    let mut verdicts = Vec::new();
    let mut counts = FirstPingCounts::default();
    for (dst, rtts) in streams {
        let Some(Some(rtt1)) = rtts.first().copied() else {
            counts.omitted_no_first += 1;
            continue;
        };
        let mut rest: Vec<f64> = rtts[1..].iter().flatten().copied().collect();
        if rest.len() + 1 < 4 {
            counts.omitted_too_few += 1;
            continue;
        }
        rest.sort_by(f64::total_cmp);
        let min_rest = rest[0];
        let max_rest = *rest.last().expect("non-empty rest");
        let median = percentile_sorted(&rest, 50.0).expect("non-empty rest");
        let class = if rtt1 > max_rest {
            counts.above_max += 1;
            FirstPingClass::AboveMax
        } else if rtt1 > median {
            counts.above_median += 1;
            FirstPingClass::AboveMedian
        } else {
            counts.at_or_below_median += 1;
            FirstPingClass::AtOrBelowMedian
        };
        let rtt2 = rtts.get(1).copied().flatten();
        verdicts.push(StreamVerdict { dst: *dst, rtt1, rtt2, min_rest, max_rest, class });
    }
    let verdicts = {
        let mut v = verdicts;
        v.sort_by_key(|s| s.dst);
        v
    };
    FirstPingAnalysis { verdicts, counts }
}

impl FirstPingAnalysis {
    /// Figure 12 (bottom): CDF of `RTT₁ − RTT₂` for all addresses with
    /// both responses, and for the `AboveMax` subset.
    pub fn fig12_diff_cdfs(&self) -> (Cdf, Cdf) {
        let all: Vec<f64> =
            self.verdicts.iter().filter_map(|v| v.rtt2.map(|r2| v.rtt1 - r2)).collect();
        let above: Vec<f64> = self
            .verdicts
            .iter()
            .filter(|v| v.class == FirstPingClass::AboveMax)
            .filter_map(|v| v.rtt2.map(|r2| v.rtt1 - r2))
            .collect();
        (Cdf::new(all), Cdf::new(above))
    }

    /// Figure 12 (top): `P(RTT₁ > max rest | RTT₁ − RTT₂ ∈ bucket)` over
    /// equal-width buckets spanning `[lo, hi]`.
    pub fn fig12_probability_curve(&self, lo: f64, hi: f64, buckets: usize) -> Vec<(f64, f64)> {
        assert!(buckets > 0 && hi > lo);
        let width = (hi - lo) / buckets as f64;
        let mut hit = vec![0usize; buckets];
        let mut total = vec![0usize; buckets];
        for v in &self.verdicts {
            let Some(r2) = v.rtt2 else { continue };
            let d = v.rtt1 - r2;
            if d < lo || d >= hi {
                continue;
            }
            let b = ((d - lo) / width) as usize;
            let b = b.min(buckets - 1);
            total[b] += 1;
            if v.class == FirstPingClass::AboveMax {
                hit[b] += 1;
            }
        }
        (0..buckets)
            .filter(|&b| total[b] > 0)
            .map(|b| (lo + (b as f64 + 0.5) * width, hit[b] as f64 / total[b] as f64))
            .collect()
    }

    /// Figure 13: CDF of `RTT₁ − min(rest)` over the `AboveMax` subset —
    /// the wake-up/negotiation duration estimate.
    pub fn fig13_setup_time_cdf(&self) -> Cdf {
        Cdf::new(
            self.verdicts
                .iter()
                .filter(|v| v.class == FirstPingClass::AboveMax)
                .map(|v| v.rtt1 - v.min_rest)
                .collect(),
        )
    }

    /// Figure 14: per-/24 fraction of classified addresses with the
    /// wake-up signature, as a CDF over prefixes.
    pub fn fig14_prefix_fractions(&self) -> Vec<(u32, f64)> {
        let mut per_prefix: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
        for v in &self.verdicts {
            let e = per_prefix.entry(v.dst >> 8).or_default();
            e.1 += 1;
            if v.class == FirstPingClass::AboveMax {
                e.0 += 1;
            }
        }
        per_prefix.into_iter().map(|(p, (above, total))| (p, above as f64 / total as f64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(dst: u32, rtts: &[f64]) -> (u32, Vec<Option<f64>>) {
        (dst, rtts.iter().map(|&r| Some(r)).collect())
    }

    #[test]
    fn classification_basics() {
        let streams = vec![
            stream(1, &[3.0, 0.2, 0.3, 0.25, 0.2]),  // above max
            stream(2, &[0.26, 0.2, 0.3, 0.25, 0.2]), // between median (0.25?) and max
            stream(3, &[0.1, 0.2, 0.3, 0.25, 0.2]),  // below median
        ];
        let a = analyze(&streams);
        assert_eq!(a.counts.above_max, 1);
        assert_eq!(a.counts.above_median, 1);
        assert_eq!(a.counts.at_or_below_median, 1);
        assert_eq!(a.verdicts[0].class, FirstPingClass::AboveMax);
        assert!((a.counts.above_max_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn omission_rules() {
        let streams = vec![
            (1u32, vec![None, Some(0.2), Some(0.2), Some(0.2), Some(0.2)]), // no first
            (2u32, vec![Some(0.2), Some(0.2), None, None, None]),           // too few (2)
            (3u32, vec![Some(0.2), Some(0.2), Some(0.2), Some(0.2)]),       // exactly 4: kept
        ];
        let a = analyze(&streams);
        assert_eq!(a.counts.omitted_no_first, 1);
        assert_eq!(a.counts.omitted_too_few, 1);
        assert_eq!(a.counts.classified(), 1);
    }

    #[test]
    fn fig13_setup_estimate() {
        // Wake-up of exactly 2 s: rtt1 = 2.2, min rest = 0.2.
        let streams = vec![stream(1, &[2.2, 0.25, 0.2, 0.22, 0.21])];
        let a = analyze(&streams);
        let cdf = a.fig13_setup_time_cdf();
        assert_eq!(cdf.len(), 1);
        assert!((cdf.max().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig12_diff_and_probability() {
        let streams = vec![
            stream(1, &[2.0, 1.0, 0.2, 0.2, 0.2]), // diff 1.0, above max
            stream(2, &[0.2, 0.2, 0.2, 0.2, 0.3]), // diff 0, not above max
        ];
        let a = analyze(&streams);
        let (all, above) = a.fig12_diff_cdfs();
        assert_eq!(all.len(), 2);
        assert_eq!(above.len(), 1);
        let curve = a.fig12_probability_curve(-1.0, 1.5, 5);
        // Bucket containing diff 1.0 has probability 1; bucket with 0 has 0.
        let p_at = |x: f64| {
            curve.iter().min_by(|a, b| (a.0 - x).abs().total_cmp(&(b.0 - x).abs())).unwrap().1
        };
        assert_eq!(p_at(1.0), 1.0);
        assert_eq!(p_at(0.0), 0.0);
    }

    #[test]
    fn fig14_prefix_grouping() {
        let streams = vec![
            stream(0x0a000001, &[2.0, 0.2, 0.2, 0.2, 0.2]),
            stream(0x0a000002, &[0.2, 0.2, 0.3, 0.2, 0.2]),
            stream(0x0b000001, &[5.0, 0.2, 0.2, 0.2, 0.2]),
        ];
        let a = analyze(&streams);
        let fracs = a.fig14_prefix_fractions();
        assert_eq!(fracs.len(), 2);
        assert_eq!(fracs[0], (0x0a0000, 0.5));
        assert_eq!(fracs[1], (0x0b0000, 1.0));
    }

    #[test]
    fn missing_second_response_excluded_from_fig12_only() {
        let streams = vec![(1u32, vec![Some(2.0), None, Some(0.2), Some(0.2), Some(0.2)])];
        let a = analyze(&streams);
        assert_eq!(a.counts.classified(), 1);
        let (all, _) = a.fig12_diff_cdfs();
        assert!(all.is_empty());
    }
}
