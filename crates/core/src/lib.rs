//! # beware-core
//!
//! The analysis pipeline of *Timeouts: Beware Surprisingly High Delay*
//! (IMC 2015) — the paper's primary contribution, reimplemented as a
//! library. Given survey records (`beware-dataset`), zmap scans, and
//! scamper probe trains, it reproduces every analytical step of the paper:
//!
//! * [`matching`] — recover responses that arrived after the prober's
//!   timeout by source-address matching (Section 3.3);
//! * [`filters`] — remove broadcast responders (EWMA fingerprint of
//!   stable 165/330/495 s artifacts) and duplicate/DoS reflectors
//!   (Sections 3.3.1–3.3.2);
//! * [`pipeline`] — the end-to-end combination with Table 1 accounting;
//! * [`percentile`] / [`cdf`] — per-address percentile-of-percentile
//!   aggregation;
//! * [`timeout_table`] — Table 2, the minimum-timeout matrix;
//! * [`recommend`] — the practitioner API: pick a timeout, quantify the
//!   false loss any timeout induces;
//! * [`trend`] — the 2006–2015 longitudinal series (Figure 9) with the
//!   broken-survey screen;
//! * [`broadcast_octets`] — the last-octet evidence (Figures 2–3);
//! * [`turtles`] — AS and continent attribution (Tables 4–6);
//! * [`satellite`] — the satellite split (Figure 11);
//! * [`firstping`] — the wake-up analysis (Figures 12–14);
//! * [`patterns`] — the >100 s event taxonomy (Table 7);
//! * [`protocols`] — ICMP/UDP/TCP parity and firewall RSTs (Figure 10);
//! * [`report`] — table/series rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast_octets;
pub mod cdf;
pub mod filters;
pub mod firstping;
pub mod matching;
pub mod patterns;
pub mod percentile;
pub mod pipeline;
pub mod protocols;
pub mod recommend;
pub mod report;
pub mod satellite;
pub mod sketch;
pub mod timeout_table;
pub mod trend;
pub mod turtles;

pub use cdf::Cdf;
pub use matching::{match_unmatched, DelayedResponse, MatchOutcome};
pub use percentile::{nearest_rank, percentile_sorted, LatencySamples, PAPER_PERCENTILES};
pub use pipeline::{run_pipeline, run_pipeline_with, survey_samples, PipelineCfg, PipelineOutput};
pub use recommend::{recommend_timeout, Recommendation};
pub use timeout_table::TimeoutTable;
