//! Matching unmatched responses to timed-out requests — Section 3.3's
//! source-address scheme.
//!
//! "Given an unmatched response having a source IP address, we look for
//! the last request sent to that IP address. If the last request timed out
//! and has not been matched, the latency is then the difference between
//! the timestamp of the response and the timestamp of the request."
//!
//! The ISI data records neither ICMP id/seq nor payload for unmatched
//! responses, so source address is all there is; latencies recovered this
//! way are precise only to whole seconds. Responses whose "last request"
//! was already matched are returned separately — they are the raw material
//! of the duplicate-response analysis (Figure 5).

use beware_dataset::Record;
use std::collections::HashMap;

/// A response recovered after the prober's timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayedResponse {
    /// The probed (and responding) address.
    pub addr: u32,
    /// Send time of the matched request, seconds since survey start.
    pub sent_s: u32,
    /// Recovered latency, whole seconds.
    pub latency_s: u32,
}

/// Result of the matching pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchOutcome {
    /// Unmatched responses successfully paired with a timed-out request.
    pub delayed: Vec<DelayedResponse>,
    /// Responses whose last request was already consumed (duplicates,
    /// floods) or that preceded any request, as `(addr, recv_s)`.
    pub leftovers: Vec<(u32, u32)>,
}

/// Run the source-address matching scheme over a survey's records.
///
/// ```
/// use beware_core::matching::match_unmatched;
/// use beware_dataset::Record;
///
/// let records = vec![
///     Record::timeout(0x0a000001, 660),    // probe timed out at t=660
///     Record::unmatched(0x0a000001, 680),  // its response, 20 s late
/// ];
/// let out = match_unmatched(&records);
/// assert_eq!(out.delayed[0].latency_s, 20);
/// ```
///
/// Only `Timeout` records are eligible targets: a request that was matched
/// within the window already has its response, and requests answered by an
/// ICMP error are excluded by the paper's methodology.
pub fn match_unmatched(records: &[Record]) -> MatchOutcome {
    // Per-address timed-out request times, in send order.
    let mut requests: HashMap<u32, Vec<u32>> = HashMap::new();
    // Per-address unmatched response times, in receive order.
    let mut responses: HashMap<u32, Vec<u32>> = HashMap::new();
    for r in records {
        match r.kind {
            beware_dataset::RecordKind::Timeout => {
                requests.entry(r.addr).or_default().push(r.time_s);
            }
            beware_dataset::RecordKind::Unmatched { recv_s } => {
                responses.entry(r.addr).or_default().push(recv_s);
            }
            _ => {}
        }
    }

    let mut out = MatchOutcome::default();
    // Deterministic order: by address.
    let mut addrs: Vec<u32> = responses.keys().copied().collect();
    addrs.sort_unstable();
    for addr in addrs {
        let mut resp = responses.remove(&addr).expect("key from map");
        resp.sort_unstable();
        let mut reqs = requests.remove(&addr).unwrap_or_default();
        reqs.sort_unstable();
        // Index of the most recently *consumed* request; each request
        // matches at most one response.
        let mut consumed: Option<usize> = None;
        for recv in resp {
            // Last request at or before the response.
            let i = reqs.partition_point(|&sent| sent <= recv);
            if i == 0 {
                out.leftovers.push((addr, recv));
                continue;
            }
            let idx = i - 1;
            if consumed.is_some_and(|c| idx <= c) {
                out.leftovers.push((addr, recv));
            } else {
                consumed = Some(idx);
                out.delayed.push(DelayedResponse {
                    addr,
                    sent_s: reqs[idx],
                    latency_s: recv - reqs[idx],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_dataset::Record;

    const A: u32 = 0x0a000001;
    const B: u32 = 0x0a000002;

    #[test]
    fn pairs_response_with_last_timed_out_request() {
        let records = vec![
            Record::timeout(A, 100),
            Record::timeout(A, 760), // next round
            Record::unmatched(A, 790),
        ];
        let m = match_unmatched(&records);
        assert_eq!(m.delayed, vec![DelayedResponse { addr: A, sent_s: 760, latency_s: 30 }]);
        assert!(m.leftovers.is_empty());
    }

    #[test]
    fn each_request_matches_at_most_once() {
        let records = vec![
            Record::timeout(A, 100),
            Record::unmatched(A, 105),
            Record::unmatched(A, 106), // duplicate: request consumed
        ];
        let m = match_unmatched(&records);
        assert_eq!(m.delayed.len(), 1);
        assert_eq!(m.delayed[0].latency_s, 5);
        assert_eq!(m.leftovers, vec![(A, 106)]);
    }

    #[test]
    fn response_before_any_request_is_leftover() {
        let records = vec![Record::unmatched(A, 50), Record::timeout(A, 100)];
        let m = match_unmatched(&records);
        assert!(m.delayed.is_empty());
        assert_eq!(m.leftovers, vec![(A, 50)]);
    }

    #[test]
    fn broadcast_style_330s_latency_recovered() {
        // The Figure 4 scenario: probe to .254 at 660 lost; broadcast ping
        // to .255 at 990 triggers a response from .254 — matched to the
        // 660 request, yielding the spurious 330 s latency the filter must
        // later remove. The matcher itself reports what the data says.
        let records = vec![Record::timeout(A, 660), Record::unmatched(A, 990)];
        let m = match_unmatched(&records);
        assert_eq!(m.delayed[0].latency_s, 330);
    }

    #[test]
    fn addresses_are_independent() {
        let records = vec![
            Record::timeout(A, 100),
            Record::timeout(B, 101),
            Record::unmatched(B, 130),
            Record::unmatched(A, 120),
        ];
        let m = match_unmatched(&records);
        assert_eq!(m.delayed.len(), 2);
        assert_eq!(m.delayed[0], DelayedResponse { addr: A, sent_s: 100, latency_s: 20 });
        assert_eq!(m.delayed[1], DelayedResponse { addr: B, sent_s: 101, latency_s: 29 });
    }

    #[test]
    fn matched_records_are_not_eligible_targets() {
        // A matched request already has its response; an unmatched
        // response from the same address must not pair with it.
        let records = vec![Record::matched(A, 100, 50_000), Record::unmatched(A, 101)];
        let m = match_unmatched(&records);
        assert!(m.delayed.is_empty());
        assert_eq!(m.leftovers, vec![(A, 101)]);
    }

    #[test]
    fn interleaved_rounds_resolve_in_order() {
        let records = vec![
            Record::timeout(A, 0),
            Record::timeout(A, 660),
            Record::timeout(A, 1320),
            Record::unmatched(A, 10),   // pairs with 0 (lat 10)
            Record::unmatched(A, 700),  // pairs with 660 (lat 40)
            Record::unmatched(A, 1321), // pairs with 1320 (lat 1)
            Record::unmatched(A, 1322), // duplicate
        ];
        let m = match_unmatched(&records);
        let lats: Vec<u32> = m.delayed.iter().map(|d| d.latency_s).collect();
        assert_eq!(lats, vec![10, 40, 1]);
        assert_eq!(m.leftovers.len(), 1);
    }

    #[test]
    fn empty_input() {
        let m = match_unmatched(&[]);
        assert!(m.delayed.is_empty() && m.leftovers.is_empty());
    }
}
