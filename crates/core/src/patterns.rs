//! Classification of the contexts in which >100 s RTTs occur —
//! Section 6.4 and Table 7.
//!
//! The paper probes 1,400 extreme addresses with 2,000 pings at 1 Hz and
//! finds the >100 s samples embedded in four distinct patterns:
//!
//! * **Low latency, then decay** — a normal response, then a backlog flush
//!   in which "every subsequent response's round-trip latency was 1 second
//!   lower than the previous";
//! * **Loss, then decay** — the same staircase, preceded by losses;
//! * **Sustained high latency and loss** — minutes of >10 s latencies
//!   mixed with loss;
//! * **High latency between loss** — a single >100 s response sandwiched
//!   in loss.
//!
//! The decay staircase has an exact signature under 1 Hz probing: all the
//! buffered responses arrive together, so `send_index + RTT` is constant
//! across the run. The classifier keys on that invariant.

use std::collections::BTreeSet;

/// The four patterns of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HighRttPattern {
    /// A low-latency response immediately precedes the decay staircase.
    LowLatencyThenDecay,
    /// Losses precede the decay staircase.
    LossThenDecay,
    /// Minutes of high latency mixed with loss, no staircase.
    SustainedHighLatencyAndLoss,
    /// An isolated >100 s response between losses.
    HighLatencyBetweenLoss,
}

impl HighRttPattern {
    /// All patterns in Table 7 order.
    pub const ALL: [HighRttPattern; 4] = [
        HighRttPattern::LowLatencyThenDecay,
        HighRttPattern::LossThenDecay,
        HighRttPattern::SustainedHighLatencyAndLoss,
        HighRttPattern::HighLatencyBetweenLoss,
    ];

    /// Row label as printed in Table 7.
    pub fn label(self) -> &'static str {
        match self {
            HighRttPattern::LowLatencyThenDecay => "Low latency, then decay",
            HighRttPattern::LossThenDecay => "Loss, then decay",
            HighRttPattern::SustainedHighLatencyAndLoss => "Sustained high latency and loss",
            HighRttPattern::HighLatencyBetweenLoss => "High latency between loss",
        }
    }
}

/// One classified event in one address's probe train.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HighRttEvent {
    /// The address.
    pub addr: u32,
    /// Index of the first >threshold ping in the event.
    pub start_idx: usize,
    /// Index of the last >threshold ping in the event.
    pub end_idx: usize,
    /// Number of pings above the threshold inside the event.
    pub high_pings: usize,
    /// The pattern.
    pub pattern: HighRttPattern,
}

/// Table 7: per-pattern totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PatternTable {
    /// Every classified event.
    pub events: Vec<HighRttEvent>,
}

impl PatternTable {
    /// `(pings, events, addresses)` for one pattern.
    pub fn totals(&self, pattern: HighRttPattern) -> (usize, usize, usize) {
        let evs: Vec<&HighRttEvent> = self.events.iter().filter(|e| e.pattern == pattern).collect();
        let pings = evs.iter().map(|e| e.high_pings).sum();
        let addrs: BTreeSet<u32> = evs.iter().map(|e| e.addr).collect();
        (pings, evs.len(), addrs.len())
    }
}

/// Probe spacing is 1 s, so this many *indices* of gap still belong to the
/// same underlying network event.
const EVENT_GAP: usize = 30;
/// Arrivals within this many seconds of each other count as "simultaneous"
/// for the staircase test.
const DECAY_TOLERANCE: f64 = 2.0;
/// "Higher than normal" per the paper's prose.
const HIGH_LATENCY: f64 = 10.0;

/// Classify every >`threshold` event in a set of 1 Hz probe trains.
/// `streams` holds `(addr, per-probe RTTs)`; `None` is an unanswered probe.
pub fn classify_streams(streams: &[(u32, Vec<Option<f64>>)], threshold: f64) -> PatternTable {
    let mut table = PatternTable::default();
    for (addr, rtts) in streams {
        classify_one(*addr, rtts, threshold, &mut table.events);
    }
    table
}

fn classify_one(addr: u32, rtts: &[Option<f64>], threshold: f64, out: &mut Vec<HighRttEvent>) {
    // Indices of pings above the threshold.
    let high: Vec<usize> = rtts
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.filter(|&v| v > threshold).map(|_| i))
        .collect();
    if high.is_empty() {
        return;
    }
    // Group into events by gap.
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut start = high[0];
    let mut prev = high[0];
    for &i in &high[1..] {
        if i - prev > EVENT_GAP {
            groups.push((start, prev));
            start = i;
        }
        prev = i;
    }
    groups.push((start, prev));

    for (s, e) in groups {
        let high_pings = high.iter().filter(|&&i| i >= s && i <= e).count();
        let pattern = classify_event(rtts, s, e);
        out.push(HighRttEvent { addr, start_idx: s, end_idx: e, high_pings, pattern });
    }
}

fn classify_event(rtts: &[Option<f64>], s: usize, e: usize) -> HighRttPattern {
    // The decay staircase: find the maximal run of answered, high-latency
    // probes containing [s, e] whose arrival instants (index + RTT) agree.
    // Probes dropped *inside* the staircase (the buffer is lossy) must not
    // terminate it, so the extension tolerates gaps of unanswered probes
    // up to `MAX_GAP`; only a conflicting answered RTT breaks the run.
    const MAX_GAP: usize = 10;
    let arrival_at_s = s as f64 + rtts[s].expect("s indexes an answered ping");
    let on_staircase = |i: usize| -> Option<bool> {
        // Some(true) = matches the staircase; Some(false) = conflicts;
        // None = no response at i.
        rtts[i].map(|r| r > 1.5 && (i as f64 + r - arrival_at_s).abs() <= DECAY_TOLERANCE)
    };
    // Extend backwards (the staircase includes probes below the event
    // threshold: a 136 s flush ends in 1 s responses).
    let mut run_start = s;
    let mut gap = 0usize;
    for i in (0..s).rev() {
        match on_staircase(i) {
            Some(true) => {
                run_start = i;
                gap = 0;
            }
            Some(false) => break,
            None => {
                gap += 1;
                if gap > MAX_GAP {
                    break;
                }
            }
        }
    }
    // Extend forwards likewise.
    let mut run_end = s;
    gap = 0;
    for i in s + 1..rtts.len() {
        match on_staircase(i) {
            Some(true) => {
                run_end = i;
                gap = 0;
            }
            Some(false) => break,
            None => {
                gap += 1;
                if gap > MAX_GAP {
                    break;
                }
            }
        }
    }
    let run_len = run_end - run_start + 1;
    let answered_in_run = (run_start..=run_end).filter(|&i| rtts[i].is_some()).count();

    if run_len >= 3 && answered_in_run >= 3 && run_end >= e {
        // A genuine staircase covering the whole event. What preceded it?
        let lookback = run_start.saturating_sub(20)..run_start;
        let last_answered = lookback.rev().find_map(|i| rtts[i].map(|r| (i, r)));
        return match last_answered {
            Some((i, r)) if r < HIGH_LATENCY && run_start - i <= 3 => {
                HighRttPattern::LowLatencyThenDecay
            }
            _ => HighRttPattern::LossThenDecay,
        };
    }

    // Not a staircase. Isolated single high ping between losses?
    let answered_highs = (s..=e).filter(|&i| rtts[i].is_some_and(|r| r > HIGH_LATENCY)).count();
    if answered_highs == 1 {
        let before_lost = s == 0 || rtts[s - 1].is_none();
        let after_lost = s + 1 >= rtts.len() || rtts[s + 1].is_none();
        if before_lost && after_lost {
            return HighRttPattern::HighLatencyBetweenLoss;
        }
    }
    HighRttPattern::SustainedHighLatencyAndLoss
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a train of `len` probes at `base` RTT.
    fn base_train(len: usize, base: f64) -> Vec<Option<f64>> {
        vec![Some(base); len]
    }

    /// Install a backlog flush: probes in `range` all arrive at
    /// `flush_at` (seconds = index units).
    fn install_decay(rtts: &mut [Option<f64>], range: std::ops::Range<usize>, flush_at: usize) {
        for i in range {
            rtts[i] = Some(flush_at as f64 - i as f64 + 0.3);
        }
    }

    #[test]
    fn low_latency_then_decay_detected() {
        let mut rtts = base_train(400, 0.3);
        // Probes 100..240 buffered, flushed at 240: RTTs 140.3 down to 1.3.
        install_decay(&mut rtts, 100..240, 240);
        let t = classify_streams(&[(1, rtts)], 100.0);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].pattern, HighRttPattern::LowLatencyThenDecay);
        // Pings over 100 s: indices 100..=140 (RTT 140.3 down to 100.3).
        assert_eq!(t.events[0].high_pings, 41);
    }

    #[test]
    fn loss_then_decay_detected() {
        let mut rtts = base_train(400, 0.3);
        // Losses 80..100, then the flush.
        for r in rtts.iter_mut().take(100).skip(80) {
            *r = None;
        }
        install_decay(&mut rtts, 100..240, 240);
        let t = classify_streams(&[(2, rtts)], 100.0);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].pattern, HighRttPattern::LossThenDecay);
    }

    #[test]
    fn lossy_staircase_still_classified_as_decay() {
        // Real episode buffers drop ~20% of probes: holes inside the
        // staircase must not break the classification.
        let mut rtts = base_train(400, 0.3);
        install_decay(&mut rtts, 100..240, 240);
        for i in (100..240).step_by(5) {
            rtts[i] = None;
        }
        rtts[150] = None;
        rtts[151] = None;
        rtts[152] = None;
        let t = classify_streams(&[(1, rtts)], 100.0);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].pattern, HighRttPattern::LowLatencyThenDecay);
    }

    #[test]
    fn conflicting_rtt_breaks_staircase() {
        // A genuinely different high RTT adjacent to the staircase means
        // the arrivals do not line up: not a clean decay.
        let mut rtts = base_train(400, 0.3);
        install_decay(&mut rtts, 100..140, 240);
        // Conflicting high latencies after the staircase region.
        for i in 141..240 {
            rtts[i] = if i % 2 == 0 { Some(120.0 + (i % 17) as f64) } else { None };
        }
        let t = classify_streams(&[(1, rtts)], 100.0);
        assert!(t.events.iter().any(|e| e.pattern == HighRttPattern::SustainedHighLatencyAndLoss));
    }

    #[test]
    fn sustained_high_latency_detected() {
        let mut rtts = base_train(600, 0.3);
        // Minutes of 90–150 s latencies with half the probes lost; the
        // arrival instants do not line up.
        for i in 100..400 {
            rtts[i] = if i % 2 == 0 { Some(90.0 + ((i * 37) % 60) as f64) } else { None };
        }
        let t = classify_streams(&[(3, rtts)], 100.0);
        assert!(!t.events.is_empty());
        assert!(t.events.iter().all(|e| e.pattern == HighRttPattern::SustainedHighLatencyAndLoss));
    }

    #[test]
    fn isolated_high_between_loss_detected() {
        let mut rtts = base_train(300, 0.3);
        rtts[149] = None;
        rtts[150] = Some(130.0);
        rtts[151] = None;
        let t = classify_streams(&[(4, rtts)], 100.0);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].pattern, HighRttPattern::HighLatencyBetweenLoss);
        assert_eq!(t.events[0].high_pings, 1);
    }

    #[test]
    fn no_high_pings_no_events() {
        let rtts = base_train(100, 5.0);
        let t = classify_streams(&[(5, rtts)], 100.0);
        assert!(t.events.is_empty());
    }

    #[test]
    fn totals_aggregate_per_pattern() {
        let mut a = base_train(400, 0.3);
        install_decay(&mut a, 100..240, 240);
        let mut b = base_train(400, 0.3);
        install_decay(&mut b, 50..190, 190);
        let mut c = base_train(300, 0.3);
        c[149] = None;
        c[150] = Some(130.0);
        c[151] = None;
        let t = classify_streams(&[(1, a), (2, b), (3, c)], 100.0);
        let (pings, events, addrs) = t.totals(HighRttPattern::LowLatencyThenDecay);
        assert_eq!((pings, events, addrs), (82, 2, 2));
        let (pings, events, addrs) = t.totals(HighRttPattern::HighLatencyBetweenLoss);
        assert_eq!((pings, events, addrs), (1, 1, 1));
        let (p, e, a2) = t.totals(HighRttPattern::SustainedHighLatencyAndLoss);
        assert_eq!((p, e, a2), (0, 0, 0));
    }

    #[test]
    fn separate_events_in_one_stream_counted_separately() {
        let mut rtts = base_train(900, 0.3);
        install_decay(&mut rtts, 100..240, 240);
        install_decay(&mut rtts, 500..640, 640);
        let t = classify_streams(&[(9, rtts)], 100.0);
        assert_eq!(t.events.len(), 2);
    }

    #[test]
    fn paper_136s_example_reproduces() {
        // "After 136 seconds of no response from 191.225.110.96, we
        // received all 136 responses over a one second interval."
        let mut rtts = base_train(400, 0.4);
        for r in rtts.iter_mut().take(236).skip(100) {
            *r = None;
        }
        // They *did* arrive though — the paper's tcpdump caught them: all
        // 136 probes answered at t=236.
        install_decay(&mut rtts, 100..236, 236);
        let t = classify_streams(&[(7, rtts)], 100.0);
        assert_eq!(t.events.len(), 1);
        // Last answered before the run is the low-latency probe at 99.
        assert_eq!(t.events[0].pattern, HighRttPattern::LowLatencyThenDecay);
    }
}
