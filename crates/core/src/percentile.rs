//! Percentile machinery.
//!
//! The paper aggregates "in terms of the distribution of latency values
//! per IP address ... so that well-connected hosts that reply reliably are
//! not over-represented relative to hosts that reply infrequently". The
//! central object is therefore a per-address sample set
//! ([`LatencySamples`]) and percentiles *of* per-address percentiles.
//!
//! Percentiles use the nearest-rank definition (the smallest sample such
//! that at least `p`% of samples are ≤ it), which is exact, monotone in
//! `p`, and always returns an observed value — the right choice when the
//! resulting number is read as "the timeout that would have captured p% of
//! pings".

use std::borrow::Cow;

/// The percentile levels the paper's tables use.
pub const PAPER_PERCENTILES: [f64; 7] = [1.0, 50.0, 80.0, 90.0, 95.0, 98.0, 99.0];

/// Nearest-rank index (1-based) for fraction `q ∈ (0, 1]` of `n` samples:
/// `⌈q·n⌉`, clamped into `1..=n`.
///
/// The product is snapped to the nearest integer before the ceiling when
/// it lands within float error of one: `0.9 * 10` evaluates to
/// `9.000000000000002` in f64, and a plain `ceil()` would quote rank 10 —
/// one sample higher than the nearest-rank definition asks for. Every
/// quantile consumer in the repo (offline tables, the CoDel window, the
/// loadgen report) must route through this so on- and offline ranks agree.
pub fn nearest_rank(q: f64, n: usize) -> usize {
    let scaled = q * n as f64;
    let snapped = scaled.round();
    let rank =
        if (scaled - snapped).abs() <= scaled.abs() * 1e-12 { snapped } else { scaled.ceil() };
    (rank as usize).clamp(1, n)
}

/// Nearest-rank percentile of a **sorted** slice. `p` in `(0, 100]`.
/// Returns `None` on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(p > 0.0 && p <= 100.0, "percentile {p} out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "slice not sorted");
    Some(sorted[nearest_rank(p / 100.0, sorted.len()) - 1])
}

/// Don't bother merging the tail into the run below this size: reads scan
/// or sort a tail this small essentially for free.
const TAIL_MIN_MERGE: usize = 64;

/// Latency samples of one address.
///
/// Ingestion is amortized O(log n) per [`push`](Self::push): values land
/// in an unsorted tail that is merged into the sorted run whenever it
/// grows past a fraction of the run (so the total merge work over n
/// pushes is O(n log n), not the O(n²) of a sorted `Vec::insert` — flood
/// addresses receive 20k+ responses). Reads see the merged view; call
/// [`flush`](Self::flush) after bulk ingestion so repeated reads hit the
/// zero-cost sorted path.
///
/// ```
/// use beware_core::percentile::LatencySamples;
///
/// let s = LatencySamples::from_values(vec![0.1, 0.2, 0.2, 5.0]);
/// assert_eq!(s.percentile(50.0), Some(0.2));
/// assert_eq!(s.percentile(100.0), Some(5.0));
/// // A 3-second timeout would lose a quarter of this host's pings:
/// assert!((s.fraction_above(3.0) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencySamples {
    /// Sorted run.
    run: Vec<f64>,
    /// Unsorted recently-appended values, merged into `run` lazily.
    tail: Vec<f64>,
}

impl LatencySamples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted values (non-finite values are rejected —
    /// latencies come from subtraction of timestamps and must be real).
    pub fn from_values(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| v.is_finite()), "non-finite latency sample");
        values.sort_by(f64::total_cmp);
        LatencySamples { run: values, tail: Vec::new() }
    }

    /// Build by k-way merging already-sorted runs (ascending each), as
    /// produced by [`into_sorted_vec`](Self::into_sorted_vec). Avoids the
    /// concat-and-resort cost when combining surveys.
    pub fn from_sorted_runs(runs: Vec<Vec<f64>>) -> Self {
        LatencySamples { run: merge_sorted_runs(runs), tail: Vec::new() }
    }

    /// Append one value. Amortized cheap: the value goes into the tail,
    /// which is merged into the sorted run only when it has grown past a
    /// quarter of the run's size.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "non-finite latency sample");
        self.tail.push(value);
        if self.tail.len() >= TAIL_MIN_MERGE && self.tail.len() * 4 >= self.run.len() {
            self.flush();
        }
    }

    /// Merge the unsorted tail into the sorted run. Reads work without
    /// this, but pay to re-merge the tail each time; call it once after
    /// bulk ingestion.
    pub fn flush(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        self.tail.sort_by(f64::total_cmp);
        self.run = merge_two(&self.run, &self.tail);
        self.tail.clear();
    }

    /// The sorted samples: borrowed straight from the run when the tail
    /// is empty, otherwise merged into a fresh vector.
    fn sorted_view(&self) -> Cow<'_, [f64]> {
        if self.tail.is_empty() {
            Cow::Borrowed(&self.run)
        } else {
            let mut tail = self.tail.clone();
            tail.sort_by(f64::total_cmp);
            Cow::Owned(merge_two(&self.run, &tail))
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.run.len() + self.tail.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty() && self.tail.is_empty()
    }

    /// Nearest-rank percentile.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        percentile_sorted(&self.sorted_view(), p)
    }

    /// The sorted samples. Borrowed (free) when the set is flushed.
    pub fn values(&self) -> Cow<'_, [f64]> {
        self.sorted_view()
    }

    /// Consume into a sorted vector.
    pub fn into_sorted_vec(mut self) -> Vec<f64> {
        self.flush();
        self.run
    }

    /// Fraction of samples strictly greater than `x` (used for "what loss
    /// rate would a timeout of `x` infer"). Never needs a merge: binary
    /// search on the run plus a linear scan of the tail.
    pub fn fraction_above(&self, x: f64) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        let below_or_eq =
            self.run.partition_point(|&v| v <= x) + self.tail.iter().filter(|&&v| v <= x).count();
        (n - below_or_eq) as f64 / n as f64
    }

    /// The percentile profile at the paper's levels
    /// (1/50/80/90/95/98/99). `None` when empty.
    pub fn paper_profile(&self) -> Option<[f64; 7]> {
        if self.is_empty() {
            return None;
        }
        let view = self.sorted_view();
        let mut out = [0.0; 7];
        for (i, &p) in PAPER_PERCENTILES.iter().enumerate() {
            out[i] = percentile_sorted(&view, p).expect("non-empty");
        }
        Some(out)
    }
}

/// Equality is observational — the run/tail split is a cache detail.
impl PartialEq for LatencySamples {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.sorted_view() == other.sorted_view()
    }
}

/// Merge two sorted slices into a fresh sorted vector.
fn merge_two(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].total_cmp(&b[j]).is_le() {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// K-way merge of sorted runs. The k in play is small (two surveys, a
/// handful of chunks), so a linear scan over run heads beats a heap.
fn merge_sorted_runs(mut runs: Vec<Vec<f64>>) -> Vec<f64> {
    runs.retain(|r| !r.is_empty());
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.pop().expect("one run"),
        2 => return merge_two(&runs[0], &runs[1]),
        _ => {}
    }
    let total = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heads = vec![0usize; runs.len()];
    loop {
        let mut best: Option<usize> = None;
        for (k, run) in runs.iter().enumerate() {
            if heads[k] >= run.len() {
                continue;
            }
            best = match best {
                Some(b) if runs[b][heads[b]].total_cmp(&run[heads[k]]).is_le() => Some(b),
                _ => Some(k),
            };
        }
        let Some(b) = best else { break };
        out.push(runs[b][heads[b]]);
        heads[b] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_basics() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&s, 25.0), Some(1.0));
        assert_eq!(percentile_sorted(&s, 50.0), Some(2.0));
        assert_eq!(percentile_sorted(&s, 75.0), Some(3.0));
        assert_eq!(percentile_sorted(&s, 100.0), Some(4.0));
        assert_eq!(percentile_sorted(&s, 1.0), Some(1.0));
        assert_eq!(percentile_sorted(&[], 50.0), None);
    }

    #[test]
    fn integral_rank_products_do_not_drift_up() {
        // 0.9 * 10 is 9.000000000000002 in f64; a plain ceil() quotes
        // rank 10. Nearest-rank says rank 9.
        let s: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile_sorted(&s, 90.0), Some(9.0));
        assert_eq!(percentile_sorted(&s, 30.0), Some(3.0));
        assert_eq!(percentile_sorted(&s, 70.0), Some(7.0));
    }

    #[test]
    fn nearest_rank_boundaries_at_small_n() {
        // Pin the exact rank for every window fill a fresh tracker walks
        // through: q = 0.5 and q = 0.95 at n = 1..5.
        let half: Vec<usize> = (1..=5).map(|n| nearest_rank(0.5, n)).collect();
        assert_eq!(half, vec![1, 1, 2, 2, 3]);
        let p95: Vec<usize> = (1..=5).map(|n| nearest_rank(0.95, n)).collect();
        assert_eq!(p95, vec![1, 2, 3, 4, 5]);
        // q = 1.0 is always the max; tiny q clamps up to rank 1.
        assert_eq!(nearest_rank(1.0, 5), 5);
        assert_eq!(nearest_rank(0.001, 5), 1);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for p in PAPER_PERCENTILES {
            assert_eq!(percentile_sorted(&[7.5], p), Some(7.5));
        }
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let s: Vec<f64> = (0..997).map(|i| (i as f64 * 13.7) % 100.0).collect();
        let samples = LatencySamples::from_values(s);
        let mut last = f64::MIN;
        for p in 1..=100 {
            let v = samples.percentile(f64::from(p)).unwrap();
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn push_keeps_sorted_and_matches_from_values() {
        let mut a = LatencySamples::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0, 2.0] {
            a.push(v);
        }
        let b = LatencySamples::from_values(vec![5.0, 1.0, 3.0, 2.0, 4.0, 2.0]);
        assert_eq!(a, b);
        assert_eq!(a.values().as_ref(), &[1.0, 2.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn lazy_tail_reads_match_flushed_reads() {
        // Enough pushes to cross the merge threshold several times, with
        // reads in between — the unsorted tail must stay invisible.
        let mut lazy = LatencySamples::new();
        let mut values = Vec::new();
        for i in 0..500u32 {
            let v = f64::from(i.wrapping_mul(2_654_435_761).wrapping_add(i) % 1000) / 7.0;
            lazy.push(v);
            values.push(v);
            if i % 17 == 0 {
                let eager = LatencySamples::from_values(values.clone());
                assert_eq!(lazy.percentile(50.0), eager.percentile(50.0), "i={i}");
                assert_eq!(lazy.len(), eager.len());
                assert!((lazy.fraction_above(70.0) - eager.fraction_above(70.0)).abs() < 1e-12);
            }
        }
        let eager = LatencySamples::from_values(values);
        assert_eq!(lazy, eager);
        lazy.flush();
        assert_eq!(lazy, eager);
        assert!(lazy.values().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sorted_runs_merge_matches_resort() {
        let runs =
            vec![vec![0.1, 0.4, 0.4, 9.0], vec![], vec![0.2], vec![0.0, 0.3, 0.35, 0.5, 12.0]];
        let mut flat: Vec<f64> = runs.iter().flatten().copied().collect();
        flat.sort_by(f64::total_cmp);
        assert_eq!(LatencySamples::from_sorted_runs(runs).into_sorted_vec(), flat);
        assert!(LatencySamples::from_sorted_runs(Vec::new()).is_empty());
        assert_eq!(
            LatencySamples::from_sorted_runs(vec![vec![1.0, 2.0]]).into_sorted_vec(),
            vec![1.0, 2.0]
        );
    }

    #[test]
    fn fraction_above() {
        let s = LatencySamples::from_values(vec![0.1, 0.2, 0.3, 5.0, 10.0]);
        assert!((s.fraction_above(1.0) - 0.4).abs() < 1e-12);
        assert!((s.fraction_above(10.0) - 0.0).abs() < 1e-12);
        assert!((s.fraction_above(0.05) - 1.0).abs() < 1e-12);
        assert_eq!(LatencySamples::new().fraction_above(1.0), 0.0);
    }

    #[test]
    fn paper_profile_levels() {
        let s = LatencySamples::from_values((1..=100).map(f64::from).collect());
        let prof = s.paper_profile().unwrap();
        assert_eq!(prof[0], 1.0); // p1
        assert_eq!(prof[1], 50.0); // p50
        assert_eq!(prof[6], 99.0); // p99
        assert!(LatencySamples::new().paper_profile().is_none());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        LatencySamples::from_values(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_push_rejected() {
        LatencySamples::new().push(f64::INFINITY);
    }
}
