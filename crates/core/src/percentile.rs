//! Percentile machinery.
//!
//! The paper aggregates "in terms of the distribution of latency values
//! per IP address ... so that well-connected hosts that reply reliably are
//! not over-represented relative to hosts that reply infrequently". The
//! central object is therefore a per-address sample set
//! ([`LatencySamples`]) and percentiles *of* per-address percentiles.
//!
//! Percentiles use the nearest-rank definition (the smallest sample such
//! that at least `p`% of samples are ≤ it), which is exact, monotone in
//! `p`, and always returns an observed value — the right choice when the
//! resulting number is read as "the timeout that would have captured p% of
//! pings".

/// The percentile levels the paper's tables use.
pub const PAPER_PERCENTILES: [f64; 7] = [1.0, 50.0, 80.0, 90.0, 95.0, 98.0, 99.0];

/// Nearest-rank percentile of a **sorted** slice. `p` in `(0, 100]`.
/// Returns `None` on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(p > 0.0 && p <= 100.0, "percentile {p} out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "slice not sorted");
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

/// Latency samples of one address, kept sorted.
///
/// ```
/// use beware_core::percentile::LatencySamples;
///
/// let s = LatencySamples::from_values(vec![0.1, 0.2, 0.2, 5.0]);
/// assert_eq!(s.percentile(50.0), Some(0.2));
/// assert_eq!(s.percentile(100.0), Some(5.0));
/// // A 3-second timeout would lose a quarter of this host's pings:
/// assert!((s.fraction_above(3.0) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencySamples {
    sorted: Vec<f64>,
}

impl LatencySamples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted values (non-finite values are rejected —
    /// latencies come from subtraction of timestamps and must be real).
    pub fn from_values(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| v.is_finite()), "non-finite latency sample");
        values.sort_by(f64::total_cmp);
        LatencySamples { sorted: values }
    }

    /// Insert one value, keeping order.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "non-finite latency sample");
        let idx = self.sorted.partition_point(|&x| x <= value);
        self.sorted.insert(idx, value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Nearest-rank percentile.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        percentile_sorted(&self.sorted, p)
    }

    /// The sorted samples.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples strictly greater than `x` (used for "what loss
    /// rate would a timeout of `x` infer").
    pub fn fraction_above(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below_or_eq = self.sorted.partition_point(|&v| v <= x);
        (self.sorted.len() - below_or_eq) as f64 / self.sorted.len() as f64
    }

    /// The percentile profile at the paper's levels
    /// (1/50/80/90/95/98/99). `None` when empty.
    pub fn paper_profile(&self) -> Option<[f64; 7]> {
        if self.sorted.is_empty() {
            return None;
        }
        let mut out = [0.0; 7];
        for (i, &p) in PAPER_PERCENTILES.iter().enumerate() {
            out[i] = self.percentile(p).expect("non-empty");
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_basics() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&s, 25.0), Some(1.0));
        assert_eq!(percentile_sorted(&s, 50.0), Some(2.0));
        assert_eq!(percentile_sorted(&s, 75.0), Some(3.0));
        assert_eq!(percentile_sorted(&s, 100.0), Some(4.0));
        assert_eq!(percentile_sorted(&s, 1.0), Some(1.0));
        assert_eq!(percentile_sorted(&[], 50.0), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for p in PAPER_PERCENTILES {
            assert_eq!(percentile_sorted(&[7.5], p), Some(7.5));
        }
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let s: Vec<f64> = (0..997).map(|i| (i as f64 * 13.7) % 100.0).collect();
        let samples = LatencySamples::from_values(s);
        let mut last = f64::MIN;
        for p in 1..=100 {
            let v = samples.percentile(f64::from(p)).unwrap();
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn push_keeps_sorted_and_matches_from_values() {
        let mut a = LatencySamples::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0, 2.0] {
            a.push(v);
        }
        let b = LatencySamples::from_values(vec![5.0, 1.0, 3.0, 2.0, 4.0, 2.0]);
        assert_eq!(a, b);
        assert_eq!(a.values(), &[1.0, 2.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn fraction_above() {
        let s = LatencySamples::from_values(vec![0.1, 0.2, 0.3, 5.0, 10.0]);
        assert!((s.fraction_above(1.0) - 0.4).abs() < 1e-12);
        assert!((s.fraction_above(10.0) - 0.0).abs() < 1e-12);
        assert!((s.fraction_above(0.05) - 1.0).abs() < 1e-12);
        assert_eq!(LatencySamples::new().fraction_above(1.0), 0.0);
    }

    #[test]
    fn paper_profile_levels() {
        let s = LatencySamples::from_values((1..=100).map(f64::from).collect());
        let prof = s.paper_profile().unwrap();
        assert_eq!(prof[0], 1.0); // p1
        assert_eq!(prof[1], 50.0); // p50
        assert_eq!(prof[6], 99.0); // p99
        assert!(LatencySamples::new().paper_profile().is_none());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        LatencySamples::from_values(vec![1.0, f64::NAN]);
    }
}
