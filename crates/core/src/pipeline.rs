//! The end-to-end analysis pipeline of Section 4.1: recover delayed
//! responses, filter artifacts, and produce the per-address latency
//! samples plus the accounting of the paper's Table 1.

use crate::filters::broadcast::{detect_broadcast_responders, BroadcastFilterCfg};
use crate::filters::duplicates::{duplicate_offenders, max_responses_per_request};
use crate::matching::match_unmatched;
use crate::percentile::LatencySamples;
use beware_dataset::Record;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Pipeline parameters; defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineCfg {
    /// Broadcast filter configuration.
    pub broadcast: BroadcastFilterCfg,
    /// Duplicate filter threshold. `None` uses the paper's value (4): an
    /// address is discarded once any single request drew more than this
    /// many responses.
    pub dup_threshold: Option<u32>,
}

/// The paper's duplicate-filter threshold (Section 3.3.2).
const PAPER_DUP_THRESHOLD: u32 = 4;

impl PipelineCfg {
    /// The configuration the paper's analysis used. Identical to
    /// [`Default`], spelled explicitly.
    pub fn paper() -> Self {
        PipelineCfg::default()
    }

    fn dup_threshold(&self) -> u32 {
        self.dup_threshold.unwrap_or(PAPER_DUP_THRESHOLD)
    }
}

/// One `(packets, addresses)` row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountRow {
    /// Response packets.
    pub packets: u64,
    /// Distinct addresses.
    pub addresses: u64,
}

/// The accounting of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accounting {
    /// Responses matched by the prober itself.
    pub survey_detected: CountRow,
    /// Survey-detected plus naively recovered delayed responses, before
    /// filtering.
    pub naive_matching: CountRow,
    /// Responses discarded because their source is a broadcast responder.
    pub broadcast_responses: CountRow,
    /// Responses discarded because their source exceeded the duplicate
    /// threshold.
    pub duplicate_responses: CountRow,
    /// The final combined dataset: survey-detected plus delayed, filtered.
    pub survey_plus_delayed: CountRow,
}

/// Full pipeline output.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutput {
    /// Per-address latency samples of the **filtered combined** dataset:
    /// matched RTTs (µs precision) plus recovered delayed latencies
    /// (second precision), for addresses that survived both filters.
    pub samples: BTreeMap<u32, LatencySamples>,
    /// Samples of the addresses the filters removed. Disjoint from
    /// `samples`; the union of the two is the naive (pre-filter) dataset —
    /// see [`naive_samples`](Self::naive_samples). Partitioning by move
    /// avoids cloning every surviving sample set.
    pub rejected_samples: BTreeMap<u32, LatencySamples>,
    /// Addresses marked as broadcast responders.
    pub broadcast_responders: BTreeSet<u32>,
    /// Addresses exceeding the duplicate threshold (excluding those
    /// already marked as broadcast responders, matching the paper's
    /// disjoint accounting).
    pub duplicate_offenders: BTreeSet<u32>,
    /// Per-address maximum responses to a single request (Figure 5).
    pub max_responses: BTreeMap<u32, u32>,
    /// Table 1.
    pub accounting: Accounting,
}

impl PipelineOutput {
    /// The naive (pre-filter) view — the "before" curve of Figure 6 with
    /// its 165/330/495 s bumps: every address, surviving or rejected,
    /// with its unfiltered samples. Filtering removes whole addresses,
    /// never individual samples, so survivors' naive samples are their
    /// filtered ones.
    pub fn naive_samples(&self) -> impl Iterator<Item = (u32, &LatencySamples)> {
        self.samples.iter().chain(self.rejected_samples.iter()).map(|(&a, s)| (a, s))
    }

    /// Naive samples of one address, surviving or rejected.
    pub fn naive_sample(&self, addr: u32) -> Option<&LatencySamples> {
        self.samples.get(&addr).or_else(|| self.rejected_samples.get(&addr))
    }
}

/// Accumulate matched RTTs per address. Hash-addressed: the B-tree's
/// ordered structure is only needed at output, so ingestion avoids its
/// per-record node traffic.
fn accumulate_matched(records: &[Record]) -> HashMap<u32, LatencySamples> {
    let mut out: HashMap<u32, LatencySamples> = HashMap::new();
    for r in records {
        if let Some(rtt) = r.rtt_secs() {
            out.entry(r.addr).or_default().push(rtt);
        }
    }
    out
}

/// Flush each sample set and emit in address order.
fn extract_sorted(map: HashMap<u32, LatencySamples>) -> BTreeMap<u32, LatencySamples> {
    map.into_iter()
        .map(|(a, mut s)| {
            s.flush();
            (a, s)
        })
        .collect()
}

/// Per-address samples from **survey-detected responses only** (Figure 1's
/// view of the data, clipped at the prober timeout).
pub fn survey_samples(records: &[Record]) -> BTreeMap<u32, LatencySamples> {
    extract_sorted(accumulate_matched(records))
}

/// Run matching, filtering and accounting over one survey's records.
pub fn run_pipeline(records: &[Record], cfg: &PipelineCfg) -> PipelineOutput {
    run_pipeline_with(records, cfg, &mut beware_telemetry::Registry::disabled())
}

/// Like [`run_pipeline`], additionally flushing per-stage counters under
/// `pipeline/` into `metrics`: input size, each Table 1 row
/// (`pipeline/stage/<row>/{packets,addresses}`), match-window outcomes
/// (`pipeline/match/...`, including a histogram of recovered latencies)
/// and filter hit counts (`pipeline/filter/...`). Telemetry never alters
/// the output: the returned [`PipelineOutput`] is identical whether
/// `metrics` is enabled, disabled, or shared across calls.
pub fn run_pipeline_with(
    records: &[Record],
    cfg: &PipelineCfg,
    metrics: &mut beware_telemetry::Registry,
) -> PipelineOutput {
    // 1. Survey-detected responses.
    let mut acc = accumulate_matched(records);
    let survey_detected = CountRow {
        packets: records.iter().filter(|r| r.is_matched()).count() as u64,
        addresses: acc.len() as u64,
    };

    // 2. Naive matching of unmatched responses.
    let outcome = match_unmatched(records);
    for d in &outcome.delayed {
        acc.entry(d.addr).or_default().push(f64::from(d.latency_s));
    }
    let naive_matching = CountRow {
        packets: survey_detected.packets + outcome.delayed.len() as u64,
        addresses: acc.len() as u64,
    };

    // 3. Filters.
    let broadcast_responders = detect_broadcast_responders(&outcome.delayed, &cfg.broadcast);
    let max_responses = max_responses_per_request(records);
    let mut dup_set = duplicate_offenders(&max_responses, cfg.dup_threshold());
    // Disjoint accounting, as in the paper: an address that is both is
    // counted under broadcast.
    dup_set.retain(|a| !broadcast_responders.contains(a));

    // 4. Partition into survivors and rejects by move — no sample set is
    // cloned.
    let mut samples: BTreeMap<u32, LatencySamples> = BTreeMap::new();
    let mut rejected_samples: BTreeMap<u32, LatencySamples> = BTreeMap::new();
    for (a, mut s) in acc {
        s.flush();
        if broadcast_responders.contains(&a) || dup_set.contains(&a) {
            rejected_samples.insert(a, s);
        } else {
            samples.insert(a, s);
        }
    }

    // 5. Accounting of the discarded responses and the final dataset.
    let count_rejected_packets = |addrs: &BTreeSet<u32>| -> u64 {
        addrs.iter().filter_map(|a| rejected_samples.get(a)).map(|s| s.len() as u64).sum()
    };
    let broadcast_responses = CountRow {
        packets: count_rejected_packets(&broadcast_responders),
        addresses: broadcast_responders.len() as u64,
    };
    let duplicate_responses =
        CountRow { packets: count_rejected_packets(&dup_set), addresses: dup_set.len() as u64 };
    let survey_plus_delayed = CountRow {
        packets: samples.values().map(|s| s.len() as u64).sum(),
        addresses: samples.len() as u64,
    };

    let accounting = Accounting {
        survey_detected,
        naive_matching,
        broadcast_responses,
        duplicate_responses,
        survey_plus_delayed,
    };

    // 6. Telemetry, flushed once so the hot path above stays untouched.
    if metrics.enabled() {
        fn stage_row(stage: &mut beware_telemetry::Scope<'_>, name: &str, row: CountRow) {
            let mut s = stage.scope(name);
            s.add("packets", row.packets);
            s.add("addresses", row.addresses);
        }
        let mut p = metrics.scope("pipeline");
        p.add("runs", 1);
        p.add("records_in", records.len() as u64);
        {
            let mut m = p.scope("match");
            m.add("delayed", outcome.delayed.len() as u64);
            m.add("leftovers", outcome.leftovers.len() as u64);
            for d in &outcome.delayed {
                m.observe("latency_s", u64::from(d.latency_s));
            }
        }
        {
            let mut f = p.scope("filter");
            f.add("broadcast_addresses", accounting.broadcast_responses.addresses);
            f.add("duplicate_addresses", accounting.duplicate_responses.addresses);
            f.add("rejected_addresses", rejected_samples.len() as u64);
        }
        let mut stage = p.scope("stage");
        stage_row(&mut stage, "survey_detected", accounting.survey_detected);
        stage_row(&mut stage, "naive_matching", accounting.naive_matching);
        stage_row(&mut stage, "broadcast_responses", accounting.broadcast_responses);
        stage_row(&mut stage, "duplicate_responses", accounting.duplicate_responses);
        stage_row(&mut stage, "survey_plus_delayed", accounting.survey_plus_delayed);
    }

    PipelineOutput {
        samples,
        rejected_samples,
        broadcast_responders,
        duplicate_offenders: dup_set,
        max_responses,
        accounting,
    }
}

/// Merge per-address samples from several surveys (the paper combines
/// IT63w and IT63c before computing Table 2). Each input set is already
/// sorted, so per address this is a k-way merge of sorted runs rather
/// than a concat-and-resort.
pub fn merge_samples(parts: Vec<BTreeMap<u32, LatencySamples>>) -> BTreeMap<u32, LatencySamples> {
    let mut runs: HashMap<u32, Vec<Vec<f64>>> = HashMap::new();
    for part in parts {
        for (addr, samples) in part {
            runs.entry(addr).or_default().push(samples.into_sorted_vec());
        }
    }
    runs.into_iter().map(|(a, r)| (a, LatencySamples::from_sorted_runs(r))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u32 = 0x0a000010; // well-behaved
    const B: u32 = 0x0a000020; // slow (delayed responses)
    const C: u32 = 0x0a000030; // broadcast responder
    const D: u32 = 0x0a000040; // flood

    fn fixture() -> Vec<Record> {
        let mut r = Vec::new();
        for round in 0..100u32 {
            let t = round * 660;
            // A: always matched at 50 ms.
            r.push(Record::matched(A, t, 50_000));
            // B: times out, answers 15–40 s late — genuinely delayed, so
            // the latency *varies* between rounds (unlike broadcast
            // artifacts, which repeat exactly).
            r.push(Record::timeout(B, t + 3));
            r.push(Record::unmatched(B, t + 3 + 15 + (round * 7) % 25));
            // C: broadcast responder — stable 330 s artifact.
            r.push(Record::timeout(C, t + 5));
            r.push(Record::unmatched(C, t + 335));
        }
        // D: one request, a flood of responses.
        r.push(Record::timeout(D, 40));
        for i in 0..500u32 {
            r.push(Record::unmatched(D, 41 + i % 200));
        }
        r
    }

    #[test]
    fn accounting_matches_fixture() {
        let out = run_pipeline(&fixture(), &PipelineCfg::default());
        let acc = out.accounting;
        assert_eq!(acc.survey_detected, CountRow { packets: 100, addresses: 1 });
        // Naive adds B's 100, C's 100, and D's first-delayed 1.
        assert_eq!(acc.naive_matching.packets, 100 + 100 + 100 + 1);
        assert_eq!(acc.naive_matching.addresses, 4);
        assert_eq!(acc.broadcast_responses, CountRow { packets: 100, addresses: 1 });
        assert_eq!(acc.duplicate_responses, CountRow { packets: 1, addresses: 1 });
        assert_eq!(acc.survey_plus_delayed, CountRow { packets: 200, addresses: 2 });
    }

    #[test]
    fn filtered_samples_keep_real_latency() {
        let out = run_pipeline(&fixture(), &PipelineCfg::default());
        assert!(out.samples.contains_key(&A));
        assert!(out.samples.contains_key(&B));
        assert!(!out.samples.contains_key(&C));
        assert!(!out.samples.contains_key(&D));
        // B's recovered latencies are the genuine 15–39 s spread.
        let b = &out.samples[&B];
        assert_eq!(b.len(), 100);
        let med = b.percentile(50.0).unwrap();
        assert!((15.0..=39.0).contains(&med), "median {med}");
        // The naive (pre-filter) view still shows C's 330 s artifact.
        let c = out.naive_sample(C).expect("C rejected but visible naively");
        assert!((c.percentile(50.0).unwrap() - 330.0).abs() < 1e-9);
        // And the naive view is the disjoint union of both partitions.
        assert_eq!(out.naive_samples().count(), 4);
        assert!(out.naive_sample(A).is_some());
    }

    #[test]
    fn sets_are_disjoint() {
        let out = run_pipeline(&fixture(), &PipelineCfg::default());
        assert!(out.broadcast_responders.is_disjoint(&out.duplicate_offenders));
        assert_eq!(out.broadcast_responders, BTreeSet::from([C]));
        assert_eq!(out.duplicate_offenders, BTreeSet::from([D]));
        let sample_addrs: BTreeSet<u32> = out.samples.keys().copied().collect();
        let rejected_addrs: BTreeSet<u32> = out.rejected_samples.keys().copied().collect();
        assert!(sample_addrs.is_disjoint(&rejected_addrs));
    }

    #[test]
    fn fig5_distribution_available() {
        let out = run_pipeline(&fixture(), &PipelineCfg::default());
        assert_eq!(out.max_responses[&D], 500);
        assert_eq!(out.max_responses[&A], 1);
    }

    #[test]
    fn survey_samples_only_matched() {
        let s = survey_samples(&fixture());
        assert_eq!(s.len(), 1);
        assert_eq!(s[&A].len(), 100);
    }

    #[test]
    fn merge_combines_addresses() {
        let mut p1 = BTreeMap::new();
        p1.insert(1u32, LatencySamples::from_values(vec![0.1, 0.2]));
        let mut p2 = BTreeMap::new();
        p2.insert(1u32, LatencySamples::from_values(vec![0.3]));
        p2.insert(2u32, LatencySamples::from_values(vec![1.0]));
        let merged = merge_samples(vec![p1, p2]);
        assert_eq!(merged[&1].len(), 3);
        assert_eq!(merged[&1].values().as_ref(), &[0.1, 0.2, 0.3]);
        assert_eq!(merged[&2].len(), 1);
    }

    #[test]
    fn paper_cfg_is_the_default() {
        assert_eq!(PipelineCfg::paper(), PipelineCfg::default());
        assert_eq!(PipelineCfg::paper().dup_threshold(), 4);
        assert_eq!(
            PipelineCfg { dup_threshold: Some(9), ..PipelineCfg::paper() }.dup_threshold(),
            9
        );
    }

    #[test]
    fn explicit_low_threshold_is_honored() {
        // With Option, a threshold of 1 is expressible (the old zero
        // sentinel silently promoted nothing — but made 0 unusable and
        // easy to conflate with "default").
        let cfg = PipelineCfg { dup_threshold: Some(1), ..PipelineCfg::default() };
        let out = run_pipeline(&fixture(), &cfg);
        // B answers once per round but its *request* draws one response —
        // max_responses 1, which never exceeds 1, so B survives.
        assert!(out.samples.contains_key(&B));
        assert!(out.duplicate_offenders.contains(&D));
    }

    #[test]
    fn telemetry_mirrors_accounting() {
        let records = fixture();
        let mut metrics = beware_telemetry::Registry::new();
        let out = run_pipeline_with(&records, &PipelineCfg::paper(), &mut metrics);
        let acc = out.accounting;
        assert_eq!(metrics.counter("pipeline/runs"), Some(1));
        assert_eq!(metrics.counter("pipeline/records_in"), Some(records.len() as u64));
        assert_eq!(
            metrics.counter("pipeline/stage/survey_detected/packets"),
            Some(acc.survey_detected.packets)
        );
        assert_eq!(
            metrics.counter("pipeline/stage/naive_matching/addresses"),
            Some(acc.naive_matching.addresses)
        );
        assert_eq!(
            metrics.counter("pipeline/stage/survey_plus_delayed/packets"),
            Some(acc.survey_plus_delayed.packets)
        );
        assert_eq!(
            metrics.counter("pipeline/filter/broadcast_addresses"),
            Some(acc.broadcast_responses.addresses)
        );
        assert_eq!(
            metrics.counter("pipeline/filter/rejected_addresses"),
            Some(out.rejected_samples.len() as u64)
        );
        // The recovered-latency histogram counts every delayed response.
        let delayed = acc.naive_matching.packets - acc.survey_detected.packets;
        assert_eq!(metrics.counter("pipeline/match/delayed"), Some(delayed));
        match metrics.get("pipeline/match/latency_s") {
            Some(beware_telemetry::Metric::Histogram(h)) => assert_eq!(h.count, delayed),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_does_not_change_output() {
        let records = fixture();
        let plain = run_pipeline(&records, &PipelineCfg::paper());
        let mut metrics = beware_telemetry::Registry::new();
        let instrumented = run_pipeline_with(&records, &PipelineCfg::paper(), &mut metrics);
        assert_eq!(plain, instrumented);
        assert!(!metrics.is_empty());
    }

    #[test]
    fn empty_records_yield_empty_output() {
        let out = run_pipeline(&[], &PipelineCfg::default());
        assert!(out.samples.is_empty());
        assert!(out.rejected_samples.is_empty());
        assert_eq!(out.accounting.survey_detected, CountRow::default());
    }
}
