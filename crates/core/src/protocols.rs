//! The protocol-parity experiment — Section 5.3, Figure 10.
//!
//! Triplets of ICMP, UDP and TCP-ACK probes against high-latency
//! addresses test whether ICMP is deprioritized (it is not). Two artifacts
//! must be handled:
//!
//! * the **first probe** of a triplet is slower (the wake-up effect — the
//!   paper plots seq 0 and seq 1,2 separately), and
//! * a cluster of **TCP responses near 200 ms with identical TTLs across
//!   whole /24s** — firewalls RST-ing on behalf of their networks — must
//!   be identified and set aside before comparing protocols.

use crate::cdf::Cdf;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Probe protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    /// ICMP echo.
    Icmp,
    /// UDP to an unlikely port.
    Udp,
    /// TCP ACK.
    Tcp,
}

impl Proto {
    /// All protocols, plot order.
    pub const ALL: [Proto; 3] = [Proto::Icmp, Proto::Udp, Proto::Tcp];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Proto::Icmp => "ICMP",
            Proto::Udp => "UDP",
            Proto::Tcp => "TCP",
        }
    }
}

/// One address × protocol triplet outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripletResult {
    /// Probed address.
    pub addr: u32,
    /// Protocol used.
    pub proto: Proto,
    /// RTTs of the three probes (1 s apart).
    pub rtts: [Option<f64>; 3],
    /// TTLs of the responses as received.
    pub ttls: [Option<u8>; 3],
}

/// The Figure 10 data.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolComparison {
    /// Per protocol: CDF over addresses of the first-probe RTT ("seq 0").
    pub seq0: BTreeMap<Proto, Cdf>,
    /// Per protocol: CDF over addresses of the worst of probes 2–3
    /// ("seq 1, 2" — with three samples the 98th percentile is the max).
    pub rest: BTreeMap<Proto, Cdf>,
    /// /24 blocks identified as firewall-fronted for TCP.
    pub firewall_blocks: BTreeSet<u32>,
    /// TCP seq-0 CDF with firewall-fronted blocks removed.
    pub tcp_seq0_no_firewall: Cdf,
    /// TCP rest CDF with firewall-fronted blocks removed.
    pub tcp_rest_no_firewall: Cdf,
}

/// Identify firewall-fronted /24s: at least `min_addrs` TCP-responding
/// addresses in the block, and **every** TCP response TTL in the block is
/// identical (the paper: "this cluster of responses all had the same TTL
/// and applied to all probes to entire /24 blocks").
pub fn detect_firewall_blocks(results: &[TripletResult], min_addrs: usize) -> BTreeSet<u32> {
    let mut per_block: HashMap<u32, (BTreeSet<u32>, BTreeSet<u8>)> = HashMap::new();
    for r in results.iter().filter(|r| r.proto == Proto::Tcp) {
        let ttls: Vec<u8> = r.ttls.iter().flatten().copied().collect();
        if ttls.is_empty() {
            continue;
        }
        let e = per_block.entry(r.addr >> 8).or_default();
        e.0.insert(r.addr);
        e.1.extend(ttls);
    }
    per_block
        .into_iter()
        .filter(|(_, (addrs, ttls))| addrs.len() >= min_addrs && ttls.len() == 1)
        .map(|(block, _)| block)
        .collect()
}

/// Build the Figure 10 comparison.
pub fn compare(results: &[TripletResult]) -> ProtocolComparison {
    let firewall_blocks = detect_firewall_blocks(results, 2);
    let mut seq0: BTreeMap<Proto, Vec<f64>> = BTreeMap::new();
    let mut rest: BTreeMap<Proto, Vec<f64>> = BTreeMap::new();
    let mut tcp_seq0_nf = Vec::new();
    let mut tcp_rest_nf = Vec::new();

    for r in results {
        let first = r.rtts[0];
        let worst_rest = match (r.rtts[1], r.rtts[2]) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        if let Some(v) = first {
            seq0.entry(r.proto).or_default().push(v);
            if r.proto == Proto::Tcp && !firewall_blocks.contains(&(r.addr >> 8)) {
                tcp_seq0_nf.push(v);
            }
        }
        if let Some(v) = worst_rest {
            rest.entry(r.proto).or_default().push(v);
            if r.proto == Proto::Tcp && !firewall_blocks.contains(&(r.addr >> 8)) {
                tcp_rest_nf.push(v);
            }
        }
    }

    ProtocolComparison {
        seq0: seq0.into_iter().map(|(p, v)| (p, Cdf::new(v))).collect(),
        rest: rest.into_iter().map(|(p, v)| (p, Cdf::new(v))).collect(),
        firewall_blocks,
        tcp_seq0_no_firewall: Cdf::new(tcp_seq0_nf),
        tcp_rest_no_firewall: Cdf::new(tcp_rest_nf),
    }
}

impl ProtocolComparison {
    /// Median of a protocol's seq-0 distribution, for quick parity checks.
    pub fn seq0_median(&self, proto: Proto) -> Option<f64> {
        self.seq0.get(&proto)?.quantile(0.5)
    }

    /// Median of a protocol's rest distribution.
    pub fn rest_median(&self, proto: Proto) -> Option<f64> {
        self.rest.get(&proto)?.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triplet(addr: u32, proto: Proto, rtts: [f64; 3], ttl: u8) -> TripletResult {
        TripletResult { addr, proto, rtts: rtts.map(Some), ttls: [Some(ttl); 3] }
    }

    #[test]
    fn firewall_blocks_detected_by_constant_ttl() {
        let results = vec![
            // Block 0x0a0000: two addresses, identical TTL 243 → firewall.
            triplet(0x0a000001, Proto::Tcp, [0.2, 0.21, 0.19], 243),
            triplet(0x0a000002, Proto::Tcp, [0.2, 0.2, 0.22], 243),
            // Block 0x0b0000: two addresses, differing TTLs → genuine.
            triplet(0x0b000001, Proto::Tcp, [1.0, 0.9, 1.1], 57),
            triplet(0x0b000002, Proto::Tcp, [1.2, 1.0, 0.8], 112),
            // Block 0x0c0000: single address → insufficient evidence.
            triplet(0x0c000001, Proto::Tcp, [0.2, 0.2, 0.2], 243),
        ];
        let fw = detect_firewall_blocks(&results, 2);
        assert_eq!(fw, BTreeSet::from([0x0a0000]));
    }

    #[test]
    fn comparison_splits_seq0_from_rest() {
        let results = vec![
            triplet(1, Proto::Icmp, [3.0, 0.3, 0.4], 50),
            triplet(1, Proto::Udp, [2.8, 0.35, 0.3], 50),
        ];
        let c = compare(&results);
        assert_eq!(c.seq0_median(Proto::Icmp), Some(3.0));
        assert_eq!(c.rest_median(Proto::Icmp), Some(0.4)); // max of 0.3, 0.4
        assert_eq!(c.seq0_median(Proto::Udp), Some(2.8));
        assert!(c.seq0.get(&Proto::Tcp).is_none());
    }

    #[test]
    fn firewall_excluded_tcp_distributions() {
        let results = vec![
            // Firewall block: fast constant-TTL RSTs.
            triplet(0x0a000001, Proto::Tcp, [0.2, 0.2, 0.2], 243),
            triplet(0x0a000002, Proto::Tcp, [0.2, 0.2, 0.2], 243),
            // Genuine slow host.
            triplet(0x0b000001, Proto::Tcp, [4.0, 1.0, 1.2], 57),
            triplet(0x0b000002, Proto::Tcp, [4.1, 0.9, 1.2], 101),
        ];
        let c = compare(&results);
        // All four addresses in the raw CDF...
        assert_eq!(c.seq0[&Proto::Tcp].len(), 4);
        // ...only the genuine two without the firewall block.
        assert_eq!(c.tcp_seq0_no_firewall.len(), 2);
        assert!(c.tcp_seq0_no_firewall.min().unwrap() > 3.0);
        assert_eq!(c.tcp_rest_no_firewall.len(), 2);
    }

    #[test]
    fn missing_responses_handled() {
        let results = vec![TripletResult {
            addr: 9,
            proto: Proto::Icmp,
            rtts: [None, Some(0.5), None],
            ttls: [None, Some(60), None],
        }];
        let c = compare(&results);
        assert!(c.seq0.get(&Proto::Icmp).is_none());
        assert_eq!(c.rest_median(Proto::Icmp), Some(0.5));
    }

    #[test]
    fn protocol_parity_visible() {
        // Same host latency model across protocols → similar medians.
        let mut results = Vec::new();
        for a in 0..50u32 {
            let lat = 1.0 + f64::from(a % 7) * 0.3;
            for proto in Proto::ALL {
                results.push(triplet(a, proto, [lat + 2.0, lat, lat * 1.01], 60));
            }
        }
        let c = compare(&results);
        let med: Vec<f64> = Proto::ALL.iter().map(|&p| c.rest_median(p).unwrap()).collect();
        let spread = med.iter().cloned().fold(f64::MIN, f64::max)
            - med.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.1, "protocols diverge: {med:?}");
    }
}
