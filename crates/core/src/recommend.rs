//! The user-facing deliverable: given measured per-address latency
//! distributions, what timeout should a prober use, and what false-loss
//! rate does any given timeout imply?
//!
//! The paper's own conclusion: keep the 3 s retransmission trigger but
//! *continue listening* — 60 s "easily covers 98% of pings to 98% of
//! addresses, yet does not seem long enough to slow measurements
//! unnecessarily".

use crate::percentile::LatencySamples;
use crate::timeout_table::TimeoutTable;
use std::collections::BTreeMap;

/// A timeout recommendation with its coverage evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The recommended listen timeout, seconds.
    pub timeout_secs: f64,
    /// The address-percentile coverage target used.
    pub address_pct: f64,
    /// The ping-percentile coverage target used.
    pub ping_pct: f64,
    /// Number of addresses the evidence rests on.
    pub addresses: usize,
}

/// Compute the minimum timeout capturing `ping_pct`% of pings from
/// `address_pct`% of addresses. `None` when there is no data.
pub fn recommend_timeout(
    samples: &BTreeMap<u32, LatencySamples>,
    address_pct: f64,
    ping_pct: f64,
) -> Option<Recommendation> {
    let table = TimeoutTable::compute_at(samples, &[address_pct], &[ping_pct])?;
    Some(Recommendation {
        timeout_secs: table.cells[0][0],
        address_pct,
        ping_pct,
        addresses: table.addresses,
    })
}

/// For a candidate `timeout`, the fraction of addresses whose inferred
/// false loss rate would exceed `loss_threshold` (e.g. the paper's
/// headline: with a 5 s timeout, 5% of addresses see ≥ 5% false loss).
pub fn addresses_with_false_loss_above(
    samples: &BTreeMap<u32, LatencySamples>,
    timeout: f64,
    loss_threshold: f64,
) -> f64 {
    let total = samples.values().filter(|s| !s.is_empty()).count();
    if total == 0 {
        return 0.0;
    }
    let affected = samples
        .values()
        .filter(|s| !s.is_empty())
        .filter(|s| s.fraction_above(timeout) >= loss_threshold)
        .count();
    affected as f64 / total as f64
}

/// Sweep candidate timeouts and report the induced false-loss profile —
/// the data a practitioner needs to pick a point on the
/// responsiveness/accuracy curve.
pub fn false_loss_sweep(
    samples: &BTreeMap<u32, LatencySamples>,
    timeouts: &[f64],
    loss_threshold: f64,
) -> Vec<(f64, f64)> {
    timeouts
        .iter()
        .map(|&t| (t, addresses_with_false_loss_above(samples, t, loss_threshold)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> BTreeMap<u32, LatencySamples> {
        let mut m = BTreeMap::new();
        // 90 fast addresses.
        for a in 0..90u32 {
            m.insert(a, LatencySamples::from_values(vec![0.05; 100]));
        }
        // 10 turtles: 10% of pings over 8 s.
        for a in 90..100u32 {
            let mut v = vec![0.3; 90];
            v.extend(vec![8.5; 10]);
            m.insert(a, LatencySamples::from_values(v));
        }
        m
    }

    #[test]
    fn recommendation_tracks_targets() {
        let p = population();
        let fast = recommend_timeout(&p, 50.0, 95.0).unwrap();
        assert!(fast.timeout_secs < 1.0);
        let safe = recommend_timeout(&p, 99.0, 95.0).unwrap();
        assert!(safe.timeout_secs > 5.0);
        assert_eq!(safe.addresses, 100);
        assert!(recommend_timeout(&BTreeMap::new(), 95.0, 95.0).is_none());
    }

    #[test]
    fn false_loss_headline_shape() {
        let p = population();
        // With a 5 s timeout, exactly the 10 turtles see 10% ≥ 5% loss.
        let frac = addresses_with_false_loss_above(&p, 5.0, 0.05);
        assert!((frac - 0.10).abs() < 1e-9);
        // With a 60 s timeout, nobody does.
        assert_eq!(addresses_with_false_loss_above(&p, 60.0, 0.05), 0.0);
    }

    #[test]
    fn sweep_is_monotone_decreasing() {
        let p = population();
        let sweep = false_loss_sweep(&p, &[0.1, 1.0, 5.0, 10.0, 60.0], 0.05);
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        // A 100 ms timeout fails all 10 turtles (their floor is 300 ms)
        // but none of the 50 ms fast addresses.
        assert!((sweep[0].1 - 0.10).abs() < 1e-9);
        assert_eq!(sweep.last().unwrap().1, 0.0);
    }

    #[test]
    fn empty_population() {
        assert_eq!(addresses_with_false_loss_above(&BTreeMap::new(), 1.0, 0.05), 0.0);
    }
}
