//! Rendering: aligned text tables (for the paper's tables) and data series
//! (for its figures), plus a small ASCII plotter for terminal inspection.

use std::fmt::Write as _;

/// A text table with a title, column headers and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        if ncols == 0 {
            return format!("# {}\n(empty table)\n", self.title);
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.len());
                // Right-align numeric-looking cells, left-align text.
                let numeric =
                    cell.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '.');
                if numeric {
                    s.push_str(&" ".repeat(pad));
                    s.push_str(cell);
                } else {
                    s.push_str(cell);
                    s.push_str(&" ".repeat(pad));
                }
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A named `(x, y)` series — one curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

/// Render series as CSV: `series,x,y` rows with a header.
pub fn series_to_csv(series: &[Series]) -> String {
    let mut out = String::from("series,x,y\n");
    for s in series {
        for &(x, y) in &s.points {
            let _ = writeln!(out, "{},{x},{y}", s.name);
        }
    }
    out
}

/// A rough ASCII plot of up to 8 series, for terminal inspection. Linear
/// axes; each series gets its own glyph; overlapping points show the
/// later series.
pub fn ascii_plot(title: &str, series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let width = width.clamp(16, 200);
    let height = height.clamp(4, 60);
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    let mut out = format!("== {title} ==\n");
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::MAX, f64::MIN);
    let (mut ymin, mut ymax) = (f64::MAX, f64::MIN);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate().take(GLYPHS.len()) {
        for &(x, y) in &s.points {
            let cx = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            let cy = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy.min(height - 1)][cx.min(width - 1)] = GLYPHS[si];
        }
    }
    let _ = writeln!(out, "y: [{ymin:.3}, {ymax:.3}]");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    let _ = writeln!(out, "x: [{xmin:.3}, {xmax:.3}]");
    for (si, s) in series.iter().enumerate().take(GLYPHS.len()) {
        let _ = writeln!(out, "  {} = {}", GLYPHS[si], s.name);
    }
    out
}

/// Format seconds the way the paper's Table 2 does: sub-second values with
/// two decimals, seconds ≥ 3 as integers (their precision is 1 s anyway).
pub fn fmt_timeout_secs(v: f64) -> String {
    if v < 3.0 {
        format!("{v:.2}")
    } else {
        format!("{}", v.round() as i64)
    }
}

/// Format a count with thousands separators (`9,644,670,150` style).
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "count"]);
        t.row(vec!["alpha".into(), "5".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let r = t.render();
        assert!(r.starts_with("# Demo\n"));
        let lines: Vec<&str> = r.lines().collect();
        // All data lines align on the count column (right-aligned digits).
        assert!(lines[3].ends_with('5'));
        assert!(lines[4].ends_with("12345"));
    }

    #[test]
    fn zero_column_table_renders_without_panic() {
        let t = Table::new("empty", &[]);
        assert!(t.render().contains("(empty table)"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_width_panics() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_output() {
        let s = vec![Series::new("c1", vec![(1.0, 2.0), (3.0, 4.0)])];
        let csv = series_to_csv(&s);
        assert_eq!(csv, "series,x,y\nc1,1,2\nc1,3,4\n");
    }

    #[test]
    fn ascii_plot_contains_glyphs_and_bounds() {
        let s = vec![
            Series::new("up", (0..10).map(|i| (f64::from(i), f64::from(i))).collect()),
            Series::new("down", (0..10).map(|i| (f64::from(i), f64::from(9 - i))).collect()),
        ];
        let plot = ascii_plot("test", &s, 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("x: [0.000, 9.000]"));
        assert!(plot.contains("up"));
    }

    #[test]
    fn ascii_plot_empty() {
        assert!(ascii_plot("none", &[], 40, 10).contains("(no data)"));
    }

    #[test]
    fn timeout_formatting_matches_table2_style() {
        assert_eq!(fmt_timeout_secs(0.19), "0.19");
        assert_eq!(fmt_timeout_secs(2.38), "2.38");
        assert_eq!(fmt_timeout_secs(5.0), "5");
        assert_eq!(fmt_timeout_secs(144.7), "145");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(9_644_670_150), "9,644,670,150");
    }
}
