//! The satellite split — Section 6.1, Figure 11.
//!
//! Hypothesis tested by the paper: do satellite links, famous for high
//! *minimum* latency, explain the high *maximum* latencies? Answer: no —
//! satellite addresses have 1st percentiles above 500 ms (double the
//! geosynchronous theoretical minimum of ~250 ms) but 99th percentiles
//! predominantly below 3 s, while the worst offenders live elsewhere.

use crate::percentile::LatencySamples;
use beware_asdb::{AsDb, AsKind};
use std::collections::BTreeMap;

/// One point of the Figure 11 scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPoint {
    /// The address.
    pub addr: u32,
    /// 1st percentile latency (seconds).
    pub p1: f64,
    /// 99th percentile latency (seconds).
    pub p99: f64,
    /// Whether the address belongs to a satellite-only ISP.
    pub satellite: bool,
    /// Owning AS name (empty when unattributed).
    pub as_name: String,
}

/// The scatter, split the way the paper plots it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SatelliteSplit {
    /// Addresses of satellite-only ISPs (right panel).
    pub satellite: Vec<ScatterPoint>,
    /// Everyone else with high 1st percentile (left panel).
    pub other: Vec<ScatterPoint>,
}

impl SatelliteSplit {
    /// Minimum satellite 1st-percentile latency — the paper reports this
    /// "exceeds 500ms in all cases".
    pub fn satellite_p1_floor(&self) -> Option<f64> {
        self.satellite.iter().map(|p| p.p1).min_by(f64::total_cmp)
    }

    /// Fraction of satellite addresses with `p99 < limit` (the paper:
    /// "predominantly below 3 s").
    pub fn satellite_p99_below(&self, limit: f64) -> f64 {
        if self.satellite.is_empty() {
            return 0.0;
        }
        self.satellite.iter().filter(|p| p.p99 < limit).count() as f64 / self.satellite.len() as f64
    }
}

/// Build the Figure 11 scatter from filtered per-address samples.
///
/// Only addresses with `p1 ≥ min_p1` are plotted (the paper restricts the
/// panels to addresses "with high values of both" percentiles; 0.3 s
/// reproduces its x-axis). `min_samples` guards against meaningless
/// percentiles from barely-responsive addresses.
pub fn split_by_satellite(
    samples: &BTreeMap<u32, LatencySamples>,
    db: &AsDb,
    min_p1: f64,
    min_samples: usize,
) -> SatelliteSplit {
    let mut out = SatelliteSplit::default();
    for (&addr, s) in samples {
        if s.len() < min_samples.max(2) {
            continue;
        }
        let p1 = s.percentile(1.0).expect("non-empty");
        let p99 = s.percentile(99.0).expect("non-empty");
        if p1 < min_p1 {
            continue;
        }
        let info = db.lookup(addr);
        let satellite = info.is_some_and(|i| i.kind == AsKind::Satellite);
        let point = ScatterPoint {
            addr,
            p1,
            p99,
            satellite,
            as_name: info.map(|i| i.name.clone()).unwrap_or_default(),
        };
        if satellite {
            out.satellite.push(point);
        } else {
            out.other.push(point);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_asdb::{AsInfo, AsRegistry, Asn, Continent, PrefixAllocation};

    fn db() -> AsDb {
        let mut reg = AsRegistry::new();
        reg.insert(AsInfo::new(
            Asn(1),
            "GeoBird",
            AsKind::Satellite,
            "US",
            Continent::NorthAmerica,
        ));
        reg.insert(AsInfo::new(
            Asn(2),
            "SlowCell",
            AsKind::Cellular,
            "BR",
            Continent::SouthAmerica,
        ));
        AsDb::new(
            reg,
            [
                PrefixAllocation { prefix: 0x0a000000, len: 16, asn: Asn(1) },
                PrefixAllocation { prefix: 0x0b000000, len: 16, asn: Asn(2) },
            ],
        )
    }

    fn samples_of(values: Vec<f64>) -> LatencySamples {
        LatencySamples::from_values(values)
    }

    #[test]
    fn split_separates_satellite_from_other() {
        let mut m = BTreeMap::new();
        // Satellite: floor 0.55, p99 1.2.
        m.insert(
            0x0a000001u32,
            samples_of((0..100).map(|i| 0.55 + 0.0066 * f64::from(i)).collect()),
        );
        // Cellular turtle: floor 0.4, p99 40.
        m.insert(0x0b000001u32, samples_of((0..100).map(|i| 0.4 + 0.4 * f64::from(i)).collect()));
        // Fast address: excluded by min_p1.
        m.insert(0x0b000002u32, samples_of(vec![0.02; 50]));
        let split = split_by_satellite(&m, &db(), 0.3, 10);
        assert_eq!(split.satellite.len(), 1);
        assert_eq!(split.other.len(), 1);
        assert_eq!(split.satellite[0].as_name, "GeoBird");
        assert!(split.satellite_p1_floor().unwrap() > 0.5);
        assert_eq!(split.satellite_p99_below(3.0), 1.0);
        assert!(split.other[0].p99 > 30.0);
    }

    #[test]
    fn min_samples_guard() {
        let mut m = BTreeMap::new();
        m.insert(0x0a000001u32, samples_of(vec![0.6, 0.7]));
        let split = split_by_satellite(&m, &db(), 0.3, 10);
        assert!(split.satellite.is_empty());
    }

    #[test]
    fn unattributed_addresses_fall_in_other() {
        let mut m = BTreeMap::new();
        m.insert(0x0c000001u32, samples_of(vec![0.5; 20]));
        let split = split_by_satellite(&m, &db(), 0.3, 10);
        assert_eq!(split.other.len(), 1);
        assert_eq!(split.other[0].as_name, "");
    }

    #[test]
    fn empty_input() {
        let split = split_by_satellite(&BTreeMap::new(), &db(), 0.3, 10);
        assert!(split.satellite_p1_floor().is_none());
        assert_eq!(split.satellite_p99_below(3.0), 0.0);
    }
}
