//! A mergeable quantile sketch (t-digest) for aggregate latency
//! distributions at full survey scale.
//!
//! Per-address sample sets stay exact (each address answers at most a few
//! thousand pings), but *aggregate* views — "the RTT CDF of a 9.64-billion
//! ping survey", Figure 7 over 350 M responders — cannot hold every sample.
//! The t-digest keeps a bounded number of centroids with tighter spacing
//! near the tails, which is exactly where this paper lives.
//!
//! This implementation uses the scale function `k(q) = δ/2π · asin(2q−1)`
//! (the original Dunning design): centroid capacity shrinks toward q → 0
//! and q → 1, giving sub-percent relative error at p99/p99.9 with a few
//! hundred centroids.

/// One centroid: a weighted point of the compressed distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// A t-digest quantile sketch.
///
/// ```
/// use beware_core::sketch::TDigest;
///
/// let mut d = TDigest::new(200.0);
/// for i in 0..10_000 {
///     d.add(f64::from(i) / 10_000.0);
/// }
/// let p99 = d.quantile(0.99).unwrap();
/// assert!((p99 - 0.99).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct TDigest {
    /// Compression parameter δ: more = finer (memory ∝ δ).
    delta: f64,
    centroids: Vec<Centroid>,
    /// Unmerged incoming points.
    buffer: Vec<f64>,
    count: u64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// A sketch with the given compression (typical: 100–500).
    pub fn new(delta: f64) -> Self {
        assert!(delta >= 10.0, "compression too small to be meaningful");
        TDigest {
            delta,
            centroids: Vec::new(),
            buffer: Vec::with_capacity(512),
            count: 0,
            min: f64::MAX,
            max: f64::MIN,
        }
    }

    /// Number of values folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no values have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest value seen.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest value seen.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Current number of centroids (after a flush).
    pub fn centroid_count(&mut self) -> usize {
        self.flush();
        self.centroids.len()
    }

    /// Fold one value in.
    pub fn add(&mut self, value: f64) {
        assert!(value.is_finite(), "non-finite value in sketch");
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buffer.push(value);
        if self.buffer.len() >= 512 {
            self.flush();
        }
    }

    /// Merge another sketch into this one.
    pub fn merge(&mut self, other: &TDigest) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Fold the other's centroids in as weighted points via the merge
        // path: append and recompress.
        self.flush();
        let mut all: Vec<Centroid> = self.centroids.clone();
        all.extend(other.centroids.iter().copied());
        all.extend(other.buffer.iter().map(|&v| Centroid { mean: v, weight: 1.0 }));
        self.centroids = Self::compress(all, self.delta);
    }

    /// The scale function k(q).
    fn k(q: f64, delta: f64) -> f64 {
        delta / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).clamp(-1.0, 1.0).asin()
    }

    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut all = std::mem::take(&mut self.centroids);
        all.extend(self.buffer.drain(..).map(|v| Centroid { mean: v, weight: 1.0 }));
        self.centroids = Self::compress(all, self.delta);
    }

    fn compress(mut points: Vec<Centroid>, delta: f64) -> Vec<Centroid> {
        if points.is_empty() {
            return points;
        }
        points.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        let total: f64 = points.iter().map(|c| c.weight).sum();
        let mut out: Vec<Centroid> = Vec::with_capacity((delta as usize) + 8);
        let mut acc = points[0];
        let mut w_before = 0.0f64;
        for &p in &points[1..] {
            let q0 = w_before / total;
            let q1 = (w_before + acc.weight + p.weight) / total;
            // Mergeable iff the combined centroid spans less than one unit
            // of k-space.
            if Self::k(q1, delta) - Self::k(q0, delta) <= 1.0 {
                let w = acc.weight + p.weight;
                acc.mean += (p.mean - acc.mean) * p.weight / w;
                acc.weight = w;
            } else {
                w_before += acc.weight;
                out.push(acc);
                acc = p;
            }
        }
        out.push(acc);
        out
    }

    /// Estimate the `q`-quantile, `q ∈ [0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        self.flush();
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let total: f64 = self.centroids.iter().map(|c| c.weight).sum();
        let target = q * total;
        let mut cum = 0.0;
        for (i, c) in self.centroids.iter().enumerate() {
            let mid = cum + c.weight / 2.0;
            if target <= mid {
                // Interpolate with the previous centroid (or the min).
                let (prev_mid, prev_mean) = if i == 0 {
                    (0.0, self.min)
                } else {
                    let p = self.centroids[i - 1];
                    (cum - p.weight / 2.0, p.mean)
                };
                let span = mid - prev_mid;
                let t = if span > 0.0 { (target - prev_mid) / span } else { 1.0 };
                return Some(prev_mean + t * (c.mean - prev_mean));
            }
            cum += c.weight;
        }
        Some(self.max)
    }

    /// Estimate the fraction of values ≤ `x`.
    pub fn cdf(&mut self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.flush();
        if x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        let total: f64 = self.centroids.iter().map(|c| c.weight).sum();
        let mut cum = 0.0;
        for (i, c) in self.centroids.iter().enumerate() {
            if x < c.mean {
                let (prev_mid, prev_mean) = if i == 0 {
                    (0.0, self.min)
                } else {
                    let p = self.centroids[i - 1];
                    (cum - p.weight / 2.0, p.mean)
                };
                let mid = cum + c.weight / 2.0;
                let span = c.mean - prev_mean;
                let t = if span > 0.0 { (x - prev_mean) / span } else { 1.0 };
                return ((prev_mid + t.clamp(0.0, 1.0) * (mid - prev_mid)) / total).clamp(0.0, 1.0);
            }
            cum += c.weight;
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_digest(n: usize) -> TDigest {
        let mut d = TDigest::new(200.0);
        // Deterministic scrambled order.
        for i in 0..n {
            let v = ((i as u64).wrapping_mul(2_654_435_761) % n as u64) as f64 / n as f64;
            d.add(v);
        }
        d
    }

    #[test]
    fn quantiles_of_uniform_are_accurate() {
        let mut d = uniform_digest(100_000);
        for q in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let est = d.quantile(q).unwrap();
            assert!((est - q).abs() < 0.01, "q={q}: {est}");
        }
        assert_eq!(d.quantile(0.0), Some(d.min().unwrap()));
        assert_eq!(d.quantile(1.0), Some(d.max().unwrap()));
    }

    #[test]
    fn tail_accuracy_is_tight() {
        // A latency-like mixture: 95% fast, 5% heavy tail.
        let mut d = TDigest::new(300.0);
        for i in 0..200_000usize {
            let u = (i as f64 + 0.5) / 200_000.0;
            let v = if i % 20 == 0 { 1.0 + 100.0 * u } else { 0.05 + 0.1 * u };
            d.add(v);
        }
        // p99.9 must be deep in the tail, not near the bulk.
        let p999 = d.quantile(0.999).unwrap();
        assert!(p999 > 50.0, "p99.9 {p999}");
        let p50 = d.quantile(0.5).unwrap();
        assert!((0.05..0.2).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn memory_is_bounded() {
        let mut d = uniform_digest(500_000);
        let n = d.centroid_count();
        assert!(n < 500, "{n} centroids for delta 200");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = TDigest::new(200.0);
        let mut b = TDigest::new(200.0);
        let mut whole = TDigest::new(200.0);
        for i in 0..50_000usize {
            let v = ((i * 37) % 1000) as f64;
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            whole.add(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            let ma = a.quantile(q).unwrap();
            let mw = whole.quantile(q).unwrap();
            assert!((ma - mw).abs() <= 12.0, "q={q}: merged {ma} vs whole {mw}");
        }
    }

    #[test]
    fn cdf_and_quantile_are_inverse_ish() {
        let mut d = uniform_digest(100_000);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let x = d.quantile(q).unwrap();
            let back = d.cdf(x);
            assert!((back - q).abs() < 0.02, "q={q} -> x={x} -> {back}");
        }
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(2.0), 1.0);
    }

    #[test]
    fn empty_and_single() {
        let mut d = TDigest::new(100.0);
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.cdf(1.0), 0.0);
        d.add(42.0);
        assert_eq!(d.quantile(0.5), Some(42.0));
        assert_eq!(d.min(), Some(42.0));
        assert_eq!(d.max(), Some(42.0));
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut a = uniform_digest(1000);
        let before = a.quantile(0.5);
        let b = TDigest::new(100.0);
        a.merge(&b);
        assert_eq!(a.quantile(0.5), before);
        assert_eq!(a.count(), 1000);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        TDigest::new(100.0).add(f64::NAN);
    }
}
