//! Table 2: "minimum timeout in seconds that would have captured c% of
//! pings from r% of IP addresses" — the paper's headline deliverable.
//!
//! For each address, compute its per-ping latency percentiles (the
//! columns); then, across addresses, take the row percentile of each
//! column. Cell `(r, c)` therefore reads: if you set your timeout to this
//! value, `r`% of addresses would have ≥ `c`% of their pings answered
//! within it.

use crate::percentile::{percentile_sorted, LatencySamples, PAPER_PERCENTILES};
use crate::report::{fmt_timeout_secs, Table};
use std::collections::BTreeMap;

/// The computed matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeoutTable {
    /// Row percentile levels (% of addresses).
    pub address_percentiles: Vec<f64>,
    /// Column percentile levels (% of pings).
    pub ping_percentiles: Vec<f64>,
    /// `cells[r][c]`: minimum timeout in seconds.
    pub cells: Vec<Vec<f64>>,
    /// Number of addresses that contributed.
    pub addresses: usize,
}

impl TimeoutTable {
    /// Compute at the paper's percentile levels.
    pub fn compute(samples: &BTreeMap<u32, LatencySamples>) -> Option<Self> {
        Self::compute_at(samples, &PAPER_PERCENTILES, &PAPER_PERCENTILES)
    }

    /// Compute at caller-chosen levels. Returns `None` when no address has
    /// samples.
    pub fn compute_at(
        samples: &BTreeMap<u32, LatencySamples>,
        address_percentiles: &[f64],
        ping_percentiles: &[f64],
    ) -> Option<Self> {
        // Column-major: per ping-percentile, the per-address values.
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); ping_percentiles.len()];
        for s in samples.values() {
            if s.is_empty() {
                continue;
            }
            for (ci, &c) in ping_percentiles.iter().enumerate() {
                columns[ci].push(s.percentile(c).expect("non-empty"));
            }
        }
        let addresses = columns.first()?.len();
        if addresses == 0 {
            return None;
        }
        for col in &mut columns {
            col.sort_by(f64::total_cmp);
        }
        let cells = address_percentiles
            .iter()
            .map(|&r| {
                ping_percentiles
                    .iter()
                    .enumerate()
                    .map(|(ci, _)| percentile_sorted(&columns[ci], r).expect("non-empty"))
                    .collect()
            })
            .collect();
        Some(TimeoutTable {
            address_percentiles: address_percentiles.to_vec(),
            ping_percentiles: ping_percentiles.to_vec(),
            cells,
            addresses,
        })
    }

    /// The cell at given levels, if present.
    pub fn cell(&self, addr_pct: f64, ping_pct: f64) -> Option<f64> {
        let r = self.address_percentiles.iter().position(|&p| p == addr_pct)?;
        let c = self.ping_percentiles.iter().position(|&p| p == ping_pct)?;
        Some(self.cells[r][c])
    }

    /// Render in the paper's layout.
    pub fn render(&self, title: &str) -> String {
        let mut headers: Vec<String> = vec!["% addrs \\ % pings".to_string()];
        headers.extend(self.ping_percentiles.iter().map(|p| format!("{p}%")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(title, &header_refs);
        for (ri, row) in self.cells.iter().enumerate() {
            let mut cells = vec![format!("{}%", self.address_percentiles[ri])];
            cells.extend(row.iter().map(|&v| fmt_timeout_secs(v)));
            t.row(cells);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_addr(lo: f64, hi: f64, n: usize) -> LatencySamples {
        LatencySamples::from_values(
            (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect(),
        )
    }

    #[test]
    fn homogeneous_population_gives_flat_rows() {
        // Every address identical: rows are identical too.
        let mut samples = BTreeMap::new();
        for a in 0..20u32 {
            samples.insert(a, uniform_addr(0.0, 1.0, 101));
        }
        let t = TimeoutTable::compute(&samples).unwrap();
        assert_eq!(t.addresses, 20);
        for row in &t.cells {
            assert_eq!(row, &t.cells[0]);
        }
        // Column c ≈ c/100 seconds for uniform [0,1] latencies.
        assert!((t.cell(95.0, 95.0).unwrap() - 0.95).abs() < 0.02);
    }

    #[test]
    fn cells_monotone_in_both_axes() {
        // Heterogeneous: address k has latencies centered at k.
        let mut samples = BTreeMap::new();
        for a in 0..50u32 {
            let base = f64::from(a);
            samples.insert(a, uniform_addr(base, base + 1.0, 33));
        }
        let t = TimeoutTable::compute(&samples).unwrap();
        for row in &t.cells {
            for w in row.windows(2) {
                assert!(w[1] >= w[0], "not monotone across ping percentiles");
            }
        }
        for c in 0..t.ping_percentiles.len() {
            for r in 1..t.address_percentiles.len() {
                assert!(
                    t.cells[r][c] >= t.cells[r - 1][c],
                    "not monotone across address percentiles"
                );
            }
        }
    }

    #[test]
    fn tail_population_lifts_only_high_cells() {
        // 95 fast addresses + 5 turtles with 10 s latencies.
        let mut samples = BTreeMap::new();
        for a in 0..95u32 {
            samples.insert(a, uniform_addr(0.02, 0.2, 50));
        }
        for a in 95..100u32 {
            samples.insert(a, uniform_addr(5.0, 20.0, 50));
        }
        let t = TimeoutTable::compute(&samples).unwrap();
        // The median address is fast...
        assert!(t.cell(50.0, 95.0).unwrap() < 0.3);
        // ...but the 98th-percentile address needs many seconds.
        assert!(t.cell(98.0, 95.0).unwrap() > 4.0);
    }

    #[test]
    fn cell_lookup_and_render() {
        let mut samples = BTreeMap::new();
        samples.insert(1u32, uniform_addr(0.1, 0.2, 10));
        let t = TimeoutTable::compute(&samples).unwrap();
        assert!(t.cell(95.0, 95.0).is_some());
        assert!(t.cell(42.0, 95.0).is_none());
        let rendered = t.render("Table 2");
        assert!(rendered.contains("Table 2"));
        assert!(rendered.contains("99%"));
    }

    #[test]
    fn empty_input_gives_none() {
        assert!(TimeoutTable::compute(&BTreeMap::new()).is_none());
        let mut only_empty = BTreeMap::new();
        only_empty.insert(1u32, LatencySamples::new());
        assert!(TimeoutTable::compute(&only_empty).is_none());
    }
}
