//! The longitudinal view — Section 5.2, Figure 9.
//!
//! For every survey: the minimum timeout capturing the cᵗʰ-percentile
//! ping latency of the cᵗʰ-percentile address (the diagonal of Table 2),
//! plus the survey's response rate. Plotted over 2006–2015 this shows the
//! growth of the high-latency population — and the response-rate panel is
//! the data-quality screen that exposed the broken `j`/`g` surveys (20%
//! response rates collapsing to 0.02–0.2%).

use crate::percentile::{LatencySamples, PAPER_PERCENTILES};
use crate::timeout_table::TimeoutTable;
use beware_dataset::{SurveyMeta, SurveyStats};
use std::collections::BTreeMap;

/// One survey's point in Figure 9.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyPoint {
    /// Survey identity.
    pub meta: SurveyMeta,
    /// Diagonal timeouts at the paper's percentile levels
    /// (1/50/80/90/95/98/99), seconds. `None` when the survey produced no
    /// usable samples.
    pub diagonal: Option<[f64; 7]>,
    /// Fraction of probes that received a matched response.
    pub response_rate: f64,
}

impl SurveyPoint {
    /// Compute from a survey's filtered per-address samples and stats.
    pub fn compute(
        meta: SurveyMeta,
        samples: &BTreeMap<u32, LatencySamples>,
        stats: &SurveyStats,
    ) -> Self {
        let diagonal = TimeoutTable::compute(samples).map(|t| {
            let mut d = [0.0; 7];
            for (i, &p) in PAPER_PERCENTILES.iter().enumerate() {
                d[i] = t.cell(p, p).expect("paper percentile present");
            }
            d
        });
        SurveyPoint { meta, diagonal, response_rate: stats.response_rate() }
    }

    /// The diagonal value at a paper percentile level, if computed.
    pub fn diagonal_at(&self, pct: f64) -> Option<f64> {
        let idx = PAPER_PERCENTILES.iter().position(|&p| p == pct)?;
        self.diagonal.map(|d| d[idx])
    }

    /// The screening rule of Section 5.2: surveys whose response rate
    /// collapsed should not be considered for latency conclusions.
    pub fn is_usable(&self, min_response_rate: f64) -> bool {
        self.diagonal.is_some() && self.response_rate >= min_response_rate
    }
}

/// The Figure 9 series: one curve per percentile level across surveys, in
/// input (chronological) order, skipping unusable surveys.
pub fn timeout_series(points: &[SurveyPoint], min_response_rate: f64) -> Vec<(f64, Vec<f64>)> {
    PAPER_PERCENTILES
        .iter()
        .map(|&pct| {
            let values = points
                .iter()
                .filter(|p| p.is_usable(min_response_rate))
                .map(|p| p.diagonal_at(pct).expect("usable implies diagonal"))
                .collect();
            (pct, values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, year: u16) -> SurveyMeta {
        SurveyMeta { name: name.into(), vantage: 'w', year, date_label: 20150101 }
    }

    fn stats(matched: u64, timeouts: u64) -> SurveyStats {
        SurveyStats { matched, timeouts, unmatched: 0, errors: 0 }
    }

    fn uniform_samples(n_addrs: u32, max_latency: f64) -> BTreeMap<u32, LatencySamples> {
        (0..n_addrs)
            .map(|a| {
                let values = (0..100).map(|i| max_latency * f64::from(i) / 99.0).collect();
                (a, LatencySamples::from_values(values))
            })
            .collect()
    }

    #[test]
    fn diagonal_scales_with_latency() {
        let fast =
            SurveyPoint::compute(meta("IT50w", 2012), &uniform_samples(10, 1.0), &stats(80, 20));
        let slow =
            SurveyPoint::compute(meta("IT63w", 2015), &uniform_samples(10, 10.0), &stats(80, 20));
        assert!(slow.diagonal_at(95.0).unwrap() > fast.diagonal_at(95.0).unwrap());
        assert!((fast.response_rate - 0.8).abs() < 1e-12);
    }

    #[test]
    fn broken_survey_screened_out() {
        let broken =
            SurveyPoint::compute(meta("IT59j", 2014), &uniform_samples(10, 1.0), &stats(2, 9998));
        assert!(!broken.is_usable(0.05));
        let healthy = SurveyPoint::compute(
            meta("IT63w", 2015),
            &uniform_samples(10, 1.0),
            &stats(2000, 8000),
        );
        assert!(healthy.is_usable(0.05));
        let series = timeout_series(&[broken, healthy], 0.05);
        assert_eq!(series.len(), 7);
        for (_, values) in &series {
            assert_eq!(values.len(), 1, "broken survey must be skipped");
        }
    }

    #[test]
    fn empty_survey_has_no_diagonal() {
        let p = SurveyPoint::compute(meta("ITx", 2010), &BTreeMap::new(), &stats(0, 0));
        assert!(p.diagonal.is_none());
        assert!(!p.is_usable(0.0));
        assert_eq!(p.diagonal_at(95.0), None);
    }

    #[test]
    fn diagonal_levels_are_monotone() {
        let p = SurveyPoint::compute(meta("IT63w", 2015), &uniform_samples(50, 5.0), &stats(1, 1));
        let d = p.diagonal.unwrap();
        for w in d.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
