//! Turtle attribution — Section 6.2, Tables 4, 5 and 6.
//!
//! "Turtles" are addresses whose scan RTT exceeds one second;
//! "sleepy turtles" exceed one hundred seconds. The paper ranks
//! Autonomous Systems and continents by how many of their responding
//! addresses are turtles across three Zmap scans, and finds cellular
//! carriers dominating both rankings.

use beware_asdb::{AsDb, AsKind, Asn, Continent};
use beware_dataset::ZmapScan;
use std::collections::HashMap;

/// Per-scan turtle numbers for one AS (or continent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanEntry {
    /// Addresses above the threshold.
    pub turtles: u64,
    /// All responding addresses attributed to this entity.
    pub responding: u64,
    /// Rank within this scan (1 = most turtles). Zero when unranked.
    pub rank: usize,
}

impl ScanEntry {
    /// Percent of responding addresses that are turtles.
    pub fn percent(&self) -> f64 {
        if self.responding == 0 {
            0.0
        } else {
            100.0 * self.turtles as f64 / self.responding as f64
        }
    }
}

/// One AS row of Table 4 / Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct AsRank {
    /// The AS number.
    pub asn: Asn,
    /// Organization name.
    pub name: String,
    /// Access technology.
    pub kind: AsKind,
    /// One entry per input scan, in input order.
    pub per_scan: Vec<ScanEntry>,
    /// Turtles summed across scans (the sort key).
    pub total_turtles: u64,
}

/// One continent row of Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinentRank {
    /// The continent.
    pub continent: Continent,
    /// One entry per input scan.
    pub per_scan: Vec<ScanEntry>,
    /// Turtles summed across scans.
    pub total_turtles: u64,
}

/// Per-responder best RTT from direct responses only (cross-address
/// broadcast responses do not attribute a latency to the *responder*'s
/// own path).
fn responder_rtts(scan: &ZmapScan) -> HashMap<u32, f64> {
    let mut out: HashMap<u32, f64> = HashMap::new();
    for r in &scan.records {
        if r.is_cross_address() {
            continue;
        }
        let rtt = r.rtt_secs();
        out.entry(r.responder).and_modify(|v| *v = v.min(rtt)).or_insert(rtt);
    }
    out
}

/// Rank Autonomous Systems by turtle count across `scans`
/// (Table 4 with `threshold_secs = 1.0`, Table 6 with `100.0`).
pub fn rank_ases(scans: &[ZmapScan], db: &AsDb, threshold_secs: f64) -> Vec<AsRank> {
    let mut per_as: HashMap<Asn, Vec<ScanEntry>> = HashMap::new();
    for (scan_idx, scan) in scans.iter().enumerate() {
        let mut counts: HashMap<Asn, ScanEntry> = HashMap::new();
        for (addr, rtt) in responder_rtts(scan) {
            let Some(info) = db.lookup(addr) else { continue };
            let e =
                counts.entry(info.asn).or_insert(ScanEntry { turtles: 0, responding: 0, rank: 0 });
            e.responding += 1;
            if rtt > threshold_secs {
                e.turtles += 1;
            }
        }
        // Rank within the scan by turtle count (ties by ASN for
        // determinism).
        let mut order: Vec<(Asn, u64)> = counts.iter().map(|(&a, e)| (a, e.turtles)).collect();
        order.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        for (rank0, (asn, _)) in order.iter().enumerate() {
            counts.get_mut(asn).expect("asn from counts").rank = rank0 + 1;
        }
        for (asn, entry) in counts {
            let v = per_as.entry(asn).or_insert_with(|| {
                vec![ScanEntry { turtles: 0, responding: 0, rank: 0 }; scans.len()]
            });
            v[scan_idx] = entry;
        }
    }

    let mut rows: Vec<AsRank> = per_as
        .into_iter()
        .filter_map(|(asn, per_scan)| {
            let info = db.as_info(asn)?;
            let total_turtles = per_scan.iter().map(|e| e.turtles).sum();
            Some(AsRank { asn, name: info.name.clone(), kind: info.kind, per_scan, total_turtles })
        })
        .collect();
    rows.sort_by(|a, b| b.total_turtles.cmp(&a.total_turtles).then(a.asn.cmp(&b.asn)));
    rows
}

/// Rank continents by turtle count across `scans` (Table 5).
pub fn rank_continents(scans: &[ZmapScan], db: &AsDb, threshold_secs: f64) -> Vec<ContinentRank> {
    let mut per_ct: HashMap<Continent, Vec<ScanEntry>> = HashMap::new();
    for (scan_idx, scan) in scans.iter().enumerate() {
        for (addr, rtt) in responder_rtts(scan) {
            let Some(info) = db.lookup(addr) else { continue };
            let v = per_ct.entry(info.continent).or_insert_with(|| {
                vec![ScanEntry { turtles: 0, responding: 0, rank: 0 }; scans.len()]
            });
            v[scan_idx].responding += 1;
            if rtt > threshold_secs {
                v[scan_idx].turtles += 1;
            }
        }
    }
    let mut rows: Vec<ContinentRank> = per_ct
        .into_iter()
        .map(|(continent, per_scan)| ContinentRank {
            continent,
            total_turtles: per_scan.iter().map(|e| e.turtles).sum(),
            per_scan,
        })
        .collect();
    rows.sort_by(|a, b| b.total_turtles.cmp(&a.total_turtles).then(a.continent.cmp(&b.continent)));
    rows
}

/// Overall turtle fraction of one scan: the share of responding addresses
/// above the threshold (the "around 5% of addresses observed RTTs greater
/// than a second in each scan" number).
pub fn turtle_fraction(scan: &ZmapScan, threshold_secs: f64) -> f64 {
    let rtts = responder_rtts(scan);
    if rtts.is_empty() {
        return 0.0;
    }
    rtts.values().filter(|&&r| r > threshold_secs).count() as f64 / rtts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_asdb::{AsInfo, AsRegistry, PrefixAllocation};
    use beware_dataset::{ScanMeta, ScanRecord};

    fn db() -> AsDb {
        let mut reg = AsRegistry::new();
        reg.insert(AsInfo::new(
            Asn(100),
            "Slow Cellular",
            AsKind::Cellular,
            "BR",
            Continent::SouthAmerica,
        ));
        reg.insert(AsInfo::new(
            Asn(200),
            "Fast Cable",
            AsKind::Broadband,
            "US",
            Continent::NorthAmerica,
        ));
        AsDb::new(
            reg,
            [
                PrefixAllocation { prefix: 0x0a000000, len: 16, asn: Asn(100) },
                PrefixAllocation { prefix: 0x0b000000, len: 16, asn: Asn(200) },
            ],
        )
    }

    fn scan(records: Vec<(u32, f64)>) -> ZmapScan {
        let mut s =
            ZmapScan::new(ScanMeta { label: "t".into(), day: "Mon".into(), begin: "12:00".into() });
        for (addr, rtt) in records {
            s.records.push(ScanRecord {
                probed: addr,
                responder: addr,
                rtt_us: (rtt * 1e6) as u32,
            });
        }
        s
    }

    #[test]
    fn as_ranking_orders_by_turtles() {
        // Cellular AS: 3 of 4 addrs are turtles; cable: 0 of 3.
        let s = scan(vec![
            (0x0a000001, 2.0),
            (0x0a000002, 3.0),
            (0x0a000003, 1.5),
            (0x0a000004, 0.2),
            (0x0b000001, 0.05),
            (0x0b000002, 0.04),
            (0x0b000003, 0.9),
        ]);
        let rows = rank_ases(&[s], &db(), 1.0);
        assert_eq!(rows[0].asn, Asn(100));
        assert_eq!(rows[0].per_scan[0].turtles, 3);
        assert_eq!(rows[0].per_scan[0].responding, 4);
        assert_eq!(rows[0].per_scan[0].rank, 1);
        assert!((rows[0].per_scan[0].percent() - 75.0).abs() < 1e-9);
        assert_eq!(rows[1].asn, Asn(200));
        assert_eq!(rows[1].per_scan[0].turtles, 0);
        assert_eq!(rows[1].per_scan[0].rank, 2);
    }

    #[test]
    fn totals_sum_across_scans() {
        let s1 = scan(vec![(0x0a000001, 2.0)]);
        let s2 = scan(vec![(0x0a000001, 2.0), (0x0a000002, 5.0)]);
        let rows = rank_ases(&[s1, s2], &db(), 1.0);
        assert_eq!(rows[0].total_turtles, 3);
        assert_eq!(rows[0].per_scan.len(), 2);
    }

    #[test]
    fn continent_ranking() {
        let s = scan(vec![
            (0x0a000001, 2.0),
            (0x0a000002, 0.1),
            (0x0b000001, 1.4),
            (0x0b000002, 0.1),
            (0x0b000003, 0.1),
        ]);
        let rows = rank_continents(&[s], &db(), 1.0);
        assert_eq!(rows.len(), 2);
        // Equal turtle counts (1 each): tie broken by continent order.
        assert_eq!(rows[0].total_turtles, 1);
        let sa = rows.iter().find(|r| r.continent == Continent::SouthAmerica).unwrap();
        assert!((sa.per_scan[0].percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cross_address_responses_excluded() {
        let mut s = scan(vec![(0x0a000001, 0.1)]);
        // A broadcast response with an absurd implied latency must not
        // make 0x0a000002 a turtle.
        s.records.push(ScanRecord {
            probed: 0x0a0000ff,
            responder: 0x0a000002,
            rtt_us: 300_000_000,
        });
        let rows = rank_ases(&[s], &db(), 1.0);
        assert_eq!(rows[0].per_scan[0].turtles, 0);
        assert_eq!(rows[0].per_scan[0].responding, 1);
    }

    #[test]
    fn unrouted_responders_skipped() {
        let s = scan(vec![(0x0c000001, 9.0)]);
        assert!(rank_ases(&[s], &db(), 1.0).iter().all(|r| r.total_turtles == 0));
    }

    #[test]
    fn turtle_fraction_counts() {
        let s =
            scan(vec![(0x0a000001, 2.0), (0x0a000002, 0.2), (0x0b000001, 0.3), (0x0b000002, 1.2)]);
        assert!((turtle_fraction(&s, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(turtle_fraction(&scan(vec![]), 1.0), 0.0);
    }

    #[test]
    fn duplicate_responses_take_min_rtt() {
        let mut s = scan(vec![(0x0a000001, 5.0)]);
        s.records.push(ScanRecord { probed: 0x0a000001, responder: 0x0a000001, rtt_us: 100_000 });
        // Min RTT 0.1 s: not a turtle.
        let rows = rank_ases(&[s], &db(), 1.0);
        assert_eq!(rows[0].per_scan[0].turtles, 0);
    }
}
