//! Property tests over the analysis pipeline: statistical invariants that
//! must hold for *any* input, not just the simulated Internet.

use beware_core::cdf::Cdf;
use beware_core::matching::match_unmatched;
use beware_core::percentile::{percentile_sorted, LatencySamples};
use beware_core::pipeline::{run_pipeline, run_pipeline_with, PipelineCfg};
use beware_core::sketch::TDigest;
use beware_core::timeout_table::TimeoutTable;
use beware_dataset::{Record, RecordKind};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_latencies() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..700.0, 1..200)
}

fn arb_records() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec((0u32..64, 0u32..100_000, arb_kind()), 0..300).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(addr, time_s, kind)| match kind {
                // Normalize Unmatched so recv == time (constructor invariant).
                RecordKind::Unmatched { .. } => Record::unmatched(addr, time_s),
                k => Record { addr, time_s, kind: k },
            })
            .collect()
    })
}

fn arb_kind() -> impl Strategy<Value = RecordKind> {
    prop_oneof![
        (0u32..10_000_000).prop_map(|rtt_us| RecordKind::Matched { rtt_us }),
        Just(RecordKind::Timeout),
        Just(RecordKind::Unmatched { recv_s: 0 }),
        (0u8..16).prop_map(|code| RecordKind::IcmpError { code }),
    ]
}

proptest! {
    #[test]
    fn percentile_bounded_by_extremes(values in arb_latencies(), p in 1.0f64..=100.0) {
        let s = LatencySamples::from_values(values.clone());
        let v = s.percentile(p).unwrap();
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v >= min && v <= max);
    }

    #[test]
    fn percentile_monotone(values in arb_latencies(), a in 1.0f64..=100.0, b in 1.0f64..=100.0) {
        let s = LatencySamples::from_values(values);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(s.percentile(lo).unwrap() <= s.percentile(hi).unwrap());
    }

    /// The lazy-sort representation (sorted run + unsorted tail) must be
    /// observationally identical to an eagerly-sorted reference under any
    /// interleaving of `push` with reads — the reads must never see the
    /// tail, whether or not a merge happened to run, and an explicit
    /// `flush` anywhere in the sequence must change nothing observable.
    #[test]
    fn lazy_samples_match_eager_reference(
        ops in proptest::collection::vec((0.0f64..700.0, 0u8..5), 1..250),
        p in 1.0f64..=100.0,
        x in 0.0f64..700.0,
    ) {
        let mut lazy = LatencySamples::new();
        let mut pushed: Vec<f64> = Vec::new();
        for (v, op) in ops {
            lazy.push(v);
            pushed.push(v);
            let eager = LatencySamples::from_values(pushed.clone());
            match op {
                0 => prop_assert_eq!(lazy.percentile(p), eager.percentile(p)),
                1 => prop_assert!(
                    (lazy.fraction_above(x) - eager.fraction_above(x)).abs() < 1e-12
                ),
                2 => prop_assert_eq!(lazy.values().as_ref(), eager.values().as_ref()),
                3 => lazy.flush(),
                _ => {} // push-only step
            }
            prop_assert_eq!(lazy.len(), eager.len());
        }
        let eager = LatencySamples::from_values(pushed);
        prop_assert_eq!(&lazy, &eager);
        prop_assert_eq!(
            lazy.clone().into_sorted_vec(),
            eager.clone().into_sorted_vec()
        );
        prop_assert_eq!(lazy.paper_profile(), eager.paper_profile());
    }

    #[test]
    fn fraction_above_agrees_with_direct_count(values in arb_latencies(), x in 0.0f64..700.0) {
        let s = LatencySamples::from_values(values.clone());
        let direct = values.iter().filter(|&&v| v > x).count() as f64 / values.len() as f64;
        prop_assert!((s.fraction_above(x) - direct).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantile_inverse_bound(values in arb_latencies(), q in 0.01f64..=1.0) {
        let cdf = Cdf::new(values);
        let x = cdf.quantile(q).unwrap();
        // By nearest-rank definition, at least q of the mass is ≤ x.
        prop_assert!(cdf.fraction_at(x) + 1e-12 >= q);
    }

    #[test]
    fn matching_conserves_responses(records in arb_records()) {
        let unmatched = records.iter().filter(|r| r.is_unmatched()).count();
        let timeouts = records.iter().filter(|r| r.is_timeout()).count();
        let m = match_unmatched(&records);
        prop_assert_eq!(m.delayed.len() + m.leftovers.len(), unmatched);
        prop_assert!(m.delayed.len() <= timeouts, "each delayed consumes a timeout");
        // Latency is never negative and requests are never double-used.
        let mut used = std::collections::HashSet::new();
        for d in &m.delayed {
            prop_assert!(used.insert((d.addr, d.sent_s)), "request reused");
        }
    }

    #[test]
    fn pipeline_counts_consistent(records in arb_records()) {
        let out = run_pipeline(&records, &PipelineCfg::default());
        let acc = out.accounting;
        prop_assert!(acc.naive_matching.packets >= acc.survey_detected.packets);
        prop_assert!(acc.survey_plus_delayed.packets <= acc.naive_matching.packets);
        prop_assert!(acc.survey_plus_delayed.addresses <= acc.naive_matching.addresses);
        // The final sample count equals the sum of per-address samples.
        let total: u64 = out.samples.values().map(|s| s.len() as u64).sum();
        prop_assert_eq!(total, acc.survey_plus_delayed.packets);
        // Filters are disjoint and filtered addresses truly absent.
        prop_assert!(out.broadcast_responders.is_disjoint(&out.duplicate_offenders));
        for a in out.broadcast_responders.iter().chain(&out.duplicate_offenders) {
            prop_assert!(!out.samples.contains_key(a));
        }
    }

    /// Telemetry is observation only: for any input, running the pipeline
    /// with an enabled registry must produce bit-for-bit the same output
    /// as running it without one.
    #[test]
    fn pipeline_output_unaffected_by_telemetry(records in arb_records()) {
        let plain = run_pipeline(&records, &PipelineCfg::paper());
        let mut metrics = beware_telemetry::Registry::new();
        let instrumented = run_pipeline_with(&records, &PipelineCfg::paper(), &mut metrics);
        prop_assert_eq!(&plain, &instrumented);
        // And the stage counters agree with the returned accounting.
        prop_assert_eq!(
            metrics.counter("pipeline/stage/survey_plus_delayed/packets"),
            Some(plain.accounting.survey_plus_delayed.packets)
        );
        prop_assert_eq!(metrics.counter("pipeline/records_in"), Some(records.len() as u64));
    }

    #[test]
    fn timeout_table_monotone_everywhere(
        addr_latencies in proptest::collection::vec(arb_latencies(), 1..20)
    ) {
        let samples: BTreeMap<u32, LatencySamples> = addr_latencies
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u32, LatencySamples::from_values(v)))
            .collect();
        let t = TimeoutTable::compute(&samples).unwrap();
        for row in &t.cells {
            for w in row.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
        }
        for c in 0..t.ping_percentiles.len() {
            for r in 1..t.address_percentiles.len() {
                prop_assert!(t.cells[r][c] >= t.cells[r - 1][c]);
            }
        }
    }

    #[test]
    fn tdigest_quantiles_within_range_and_ordered(values in arb_latencies()) {
        let mut d = TDigest::new(100.0);
        for &v in &values {
            d.add(v);
        }
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let mut last = f64::MIN;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = d.quantile(q).unwrap();
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "q={q}: {v} outside [{min},{max}]");
            prop_assert!(v + 1e-9 >= last, "quantiles not monotone");
            last = v;
        }
    }

    #[test]
    fn tdigest_median_matches_interpolated_reference(values in arb_latencies()) {
        let mut d = TDigest::new(300.0);
        for &v in &values {
            d.add(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        // Reference: the *interpolating* median (the t-digest's own
        // definition), not nearest-rank — they legitimately differ by up
        // to half the central gap on tiny samples.
        let n = sorted.len();
        let reference = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let est = d.quantile(0.5).unwrap();
        let spread = sorted.last().unwrap() - sorted.first().unwrap();
        prop_assert!((est - reference).abs() <= spread * 0.15 + 1e-9,
            "median {est} vs reference {reference} (spread {spread})");
        // Sanity: nearest-rank stays a valid bracket too.
        let nr = percentile_sorted(&sorted, 50.0).unwrap();
        prop_assert!(nr >= sorted[0] && nr <= *sorted.last().unwrap());
    }
}
