//! Compact binary codec for survey records.
//!
//! Layout (all little-endian):
//!
//! ```text
//! header:  magic "BWSV" | version u16 | reserved u16 | record count u64
//! record:  tag u8 | addr u32 | time_s u32 | tag-specific payload
//!   tag 0 Matched:   rtt_us u32
//!   tag 1 Timeout:   (nothing)
//!   tag 2 Unmatched: recv_s u32
//!   tag 3 IcmpError: code u8
//! trailer: fletcher-64 checksum u64 over all record bytes
//! ```
//!
//! The variable-width records average ~10 bytes, so a 10 M-probe survey
//! stays near 100 MB — the reason this exists instead of serde to JSON.

use crate::record::{Record, RecordKind};
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BWSV";
const VERSION: u16 = 1;

/// Errors arising while decoding a binary survey stream.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Magic/version mismatch or a malformed record.
    Corrupt(&'static str),
    /// Checksum mismatch over the record payload.
    Checksum {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the records read.
        computed: u64,
    },
    /// The payload decoded and checksummed cleanly but failed semantic
    /// validation (snapshot/delta canonical-form invariants — produced
    /// by [`crate::snapshot`], never by the record codec itself).
    Invalid(crate::snapshot::SnapshotError),
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o error: {e}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt survey stream: {what}"),
            DecodeError::Checksum { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            DecodeError::Invalid(e) => write!(f, "invalid snapshot: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Fletcher-64-style running checksum (two u64 accumulators over u32
/// words; simple, fast, and order-sensitive). Shared with the snapshot
/// codec ([`crate::snapshot`]), which frames its payload the same way.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Fletcher {
    a: u64,
    b: u64,
}

impl Fletcher {
    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(4) {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            self.a = (self.a + u64::from(u32::from_le_bytes(word))) % 0xffff_ffff;
            self.b = (self.b + self.a) % 0xffff_ffff;
        }
    }

    pub(crate) fn finish(self) -> u64 {
        (self.b << 32) | self.a
    }
}

fn encode_record(r: &Record, buf: &mut Vec<u8>) {
    match r.kind {
        RecordKind::Matched { rtt_us } => {
            buf.put_u8(0);
            buf.put_u32_le(r.addr);
            buf.put_u32_le(r.time_s);
            buf.put_u32_le(rtt_us);
        }
        RecordKind::Timeout => {
            buf.put_u8(1);
            buf.put_u32_le(r.addr);
            buf.put_u32_le(r.time_s);
        }
        RecordKind::Unmatched { recv_s } => {
            buf.put_u8(2);
            buf.put_u32_le(r.addr);
            buf.put_u32_le(r.time_s);
            buf.put_u32_le(recv_s);
        }
        RecordKind::IcmpError { code } => {
            buf.put_u8(3);
            buf.put_u32_le(r.addr);
            buf.put_u32_le(r.time_s);
            buf.put_u8(code);
        }
    }
}

/// Serialize `records` to `out`.
///
/// ```
/// use beware_dataset::{binfmt, Record};
///
/// let records = vec![Record::matched(0x0a000001, 0, 250_000)];
/// let mut buf = Vec::new();
/// binfmt::write_records(&mut buf, &records).unwrap();
/// assert_eq!(binfmt::read_records(&mut &buf[..]).unwrap(), records);
/// ```
pub fn write_records<W: Write>(out: &mut W, records: &[Record]) -> io::Result<()> {
    let mut header = Vec::with_capacity(16);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION);
    header.put_u16_le(0);
    header.put_u64_le(records.len() as u64);
    out.write_all(&header)?;

    let mut checksum = Fletcher::default();
    let mut buf = Vec::with_capacity(16);
    for r in records {
        buf.clear();
        encode_record(r, &mut buf);
        checksum.update(&buf);
        out.write_all(&buf)?;
    }
    out.write_all(&checksum.finish().to_le_bytes())?;
    Ok(())
}

/// Deserialize records previously written by [`write_records`].
pub fn read_records<R: Read>(input: &mut R) -> Result<Vec<Record>, DecodeError> {
    let mut header = [0u8; 16];
    input.read_exact(&mut header)?;
    let mut h = &header[..];
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::Corrupt("bad magic"));
    }
    if h.get_u16_le() != VERSION {
        return Err(DecodeError::Corrupt("unsupported version"));
    }
    let _reserved = h.get_u16_le();
    let count = h.get_u64_le();

    let mut checksum = Fletcher::default();
    let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut scratch = [0u8; 13];
    for _ in 0..count {
        input.read_exact(&mut scratch[..1])?;
        let tag = scratch[0];
        let body_len = match tag {
            0 | 2 => 12,
            1 => 8,
            3 => 9,
            _ => return Err(DecodeError::Corrupt("unknown record tag")),
        };
        input.read_exact(&mut scratch[1..1 + body_len])?;
        checksum.update(&scratch[..1 + body_len]);
        let mut b = &scratch[1..1 + body_len];
        let addr = b.get_u32_le();
        let time_s = b.get_u32_le();
        let kind = match tag {
            0 => RecordKind::Matched { rtt_us: b.get_u32_le() },
            1 => RecordKind::Timeout,
            2 => RecordKind::Unmatched { recv_s: b.get_u32_le() },
            3 => RecordKind::IcmpError { code: b.get_u8() },
            _ => unreachable!("tag validated above"),
        };
        records.push(Record { addr, time_s, kind });
    }

    let mut trailer = [0u8; 8];
    input.read_exact(&mut trailer)?;
    let stored = u64::from_le_bytes(trailer);
    let computed = checksum.finish();
    if stored != computed {
        return Err(DecodeError::Checksum { stored, computed });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::matched(0x0a000001, 0, 123_456),
            Record::timeout(0x0a000002, 3),
            Record::unmatched(0x0a000002, 333),
            Record::icmp_error(0x0a000003, 4, 1),
            Record::matched(0xffffffff, u32::MAX, u32::MAX),
        ]
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        let back = read_records(&mut &buf[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_roundtrip() {
        let mut buf = Vec::new();
        write_records(&mut buf, &[]).unwrap();
        assert_eq!(read_records(&mut &buf[..]).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_records(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_records(&mut &buf[..]), Err(DecodeError::Corrupt("bad magic"))));
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut buf = Vec::new();
        write_records(&mut buf, &sample()).unwrap();
        // Flip a byte inside a record's addr field (not the tag — a tag
        // flip changes framing and surfaces as Corrupt/Io instead).
        buf[16 + 1] ^= 0x01;
        match read_records(&mut &buf[..]) {
            Err(DecodeError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_io_error() {
        let mut buf = Vec::new();
        write_records(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 12);
        assert!(matches!(read_records(&mut &buf[..]), Err(DecodeError::Io(_))));
    }

    #[test]
    fn size_is_compact() {
        let records: Vec<Record> = (0..1000).map(|i| Record::matched(i, i, i * 3)).collect();
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        // 13 bytes/record + 24 framing.
        assert_eq!(buf.len(), 13 * 1000 + 24);
    }
}
