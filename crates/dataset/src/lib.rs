//! # beware-dataset
//!
//! The record model of the ISI Internet survey data, as described in
//! Section 3.1 of *Timeouts: Beware Surprisingly High Delay* and the
//! LANDER binary-format notes the paper cites — reproduced faithfully in
//! its *semantics*, which is what the analysis depends on:
//!
//! * an echo response arriving **within the prober's timeout** is merged
//!   with its request into a single *matched* record carrying a
//!   **microsecond**-precision RTT;
//! * a request whose response misses the timeout produces a *timeout*
//!   record, and the late response (if it ever arrives) a separate
//!   *unmatched* record — both timestamped only to **whole seconds**,
//!   which is why recovered latencies are second-precise;
//! * ICMP error responses are recorded but excluded from latency analysis.
//!
//! [`record`] defines the types, [`survey`] the per-survey container and
//! the [`survey::RecordSink`] streaming interface probers write into,
//! [`binfmt`] a compact binary codec, [`stream`] its incremental
//! (unbounded-survey) variant, [`textfmt`] a line-oriented text codec, and [`zmap`] the stateless-scanner record model (RTT computed
//! from the payload-embedded send time; original destination recovered
//! from the payload). [`snapshot`] is the downstream face of the stack:
//! the canonical binary format of per-prefix timeout tables that the
//! `beware-serve` oracle daemon loads and answers queries from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod record;
pub mod snapshot;
pub mod stream;
pub mod survey;
pub mod textfmt;
pub mod zmap;

pub use record::{Record, RecordKind};
pub use snapshot::{SnapshotDelta, SnapshotEntry, SnapshotError, TimeoutSnapshot};
pub use survey::{RecordSink, Survey, SurveyMeta, SurveyStats};
pub use zmap::{ScanMeta, ScanRecord, ZmapScan};
