//! Survey record types.
//!
//! Field widths follow the data's real dynamic range: RTTs are stored in
//! microseconds as `u32` (caps at ~4295 s — the largest latency the paper
//! reports is 517 s), survey-relative timestamps in whole seconds as `u32`
//! (a survey spans two weeks ≈ 1.2 M s).

/// What happened to one probe (or one stray response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// The response arrived within the prober's match window; RTT is
    /// microsecond-precise ("survey-detected response").
    Matched {
        /// Round-trip time in microseconds.
        rtt_us: u32,
    },
    /// No response arrived within the match window.
    Timeout,
    /// A response with no outstanding request (it timed out earlier, or
    /// was never asked for). Timestamped to whole seconds only.
    Unmatched {
        /// Receive time, whole seconds since survey start.
        recv_s: u32,
    },
    /// An ICMP error (e.g. host unreachable) came back for the probe; the
    /// analysis ignores the latency of these.
    IcmpError {
        /// ICMP destination-unreachable code.
        code: u8,
    },
}

/// One record of the survey dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Record {
    /// The probed address for `Matched`/`Timeout`/`IcmpError`; the
    /// **source** address of the response for `Unmatched` (the prober
    /// cannot know more — matching them up is the analysis's job).
    pub addr: u32,
    /// Probe send time (or, for `Unmatched`, response receive time),
    /// whole seconds since survey start.
    pub time_s: u32,
    /// What happened.
    pub kind: RecordKind,
}

impl Record {
    /// A matched (survey-detected) response.
    pub fn matched(addr: u32, time_s: u32, rtt_us: u32) -> Self {
        Record { addr, time_s, kind: RecordKind::Matched { rtt_us } }
    }

    /// A timed-out probe.
    pub fn timeout(addr: u32, time_s: u32) -> Self {
        Record { addr, time_s, kind: RecordKind::Timeout }
    }

    /// An unmatched response from `src` received at `recv_s`.
    pub fn unmatched(src: u32, recv_s: u32) -> Self {
        Record { addr: src, time_s: recv_s, kind: RecordKind::Unmatched { recv_s } }
    }

    /// An ICMP error for a probe.
    pub fn icmp_error(addr: u32, time_s: u32, code: u8) -> Self {
        Record { addr, time_s, kind: RecordKind::IcmpError { code } }
    }

    /// RTT in seconds for a matched record, `None` otherwise.
    pub fn rtt_secs(&self) -> Option<f64> {
        match self.kind {
            RecordKind::Matched { rtt_us } => Some(f64::from(rtt_us) / 1e6),
            _ => None,
        }
    }

    /// True for records the latency analysis may use directly.
    pub fn is_matched(&self) -> bool {
        matches!(self.kind, RecordKind::Matched { .. })
    }

    /// True for timeout records.
    pub fn is_timeout(&self) -> bool {
        matches!(self.kind, RecordKind::Timeout)
    }

    /// True for unmatched responses.
    pub fn is_unmatched(&self) -> bool {
        matches!(self.kind, RecordKind::Unmatched { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let m = Record::matched(1, 100, 250_000);
        assert!(m.is_matched() && !m.is_timeout() && !m.is_unmatched());
        assert_eq!(m.rtt_secs(), Some(0.25));

        let t = Record::timeout(2, 101);
        assert!(t.is_timeout());
        assert_eq!(t.rtt_secs(), None);

        let u = Record::unmatched(3, 105);
        assert!(u.is_unmatched());
        assert_eq!(u.time_s, 105);

        let e = Record::icmp_error(4, 106, 1);
        assert!(!e.is_matched() && !e.is_timeout() && !e.is_unmatched());
    }

    #[test]
    fn rtt_range_supports_paper_extremes() {
        // 517 s — the largest satellite RTT the paper mentions.
        let m = Record::matched(1, 0, 517_000_000);
        assert_eq!(m.rtt_secs(), Some(517.0));
    }
}
