//! Timeout-oracle snapshot: per-prefix timeout tables in a compact,
//! canonical binary format — plus a delta format for hot reloads.
//!
//! A snapshot is what `beware serve` loads at startup: the offline
//! pipeline's per-address latency distributions, grouped by prefix and
//! reduced to `TimeoutTable`-style cells ("minimum timeout capturing c%
//! of pings from r% of addresses"), plus a global fallback table for
//! addresses no prefix covers. Cells are stored as raw `f64` bits so a
//! served answer can byte-match the offline computation exactly.
//!
//! Layout (all little-endian):
//!
//! ```text
//! header:  magic "BWTS" | version u16 | reserved u16
//! body:    r_count u16 | c_count u16 | entry count u32
//!          address-percentile levels   u16 × r_count   (tenths of a %)
//!          ping-percentile levels      u16 × c_count   (tenths of a %)
//!          fallback cells              u64 × r·c       (f64 bits, row-major)
//!          entries, each: prefix u32 | len u8 | cells u64 × r·c
//! trailer: fletcher-64 checksum u64 over all body bytes
//! ```
//!
//! The encoding is **canonical**: [`TimeoutSnapshot::validate`] enforces
//! strictly increasing percentile levels, entries sorted strictly
//! ascending by `(prefix, len)` with sub-prefix bits zeroed, and exact
//! cell counts. A snapshot that decodes therefore re-encodes to the same
//! bytes — the property the dataset proptests pin down. The trailer
//! checksum of that canonical encoding doubles as the snapshot's
//! **identity** ([`snapshot_checksum`]): two snapshots are byte-identical
//! iff their checksums agree, which is what the delta format and the
//! serve path's `SnapshotInfo` admin op key on.
//!
//! # Deltas
//!
//! A recomputed snapshot usually changes a handful of prefixes; shipping
//! the full table for every reload wastes bandwidth and reload time.
//! [`SnapshotDelta`] carries only the difference against a **base**
//! snapshot, pinned by checksum on both ends:
//!
//! ```text
//! header:  magic "BWTD" | version u16 | reserved u16
//! body:    base_checksum u64 | target_checksum u64
//!          r_count u16 | c_count u16
//!          removed count u32 | upsert count u32 | fallback flag u8
//!          fallback cells u64 × r·c                (only when flag = 1)
//!          removed, each: prefix u32 | len u8      (strictly ascending)
//!          upserts, each: prefix u32 | len u8 | cells u64 × r·c (ascending)
//! trailer: fletcher-64 checksum u64 over all body bytes
//! ```
//!
//! The delta carries only the grid's *shape* (`r_count × c_count`), not
//! the level values — `base_checksum` covers the base's level vectors, so
//! a delta can never silently apply across a grid change. Application is
//! validate-on-apply end to end: [`SnapshotDelta::apply`] refuses a stale
//! base ([`SnapshotError::StaleDelta`]), re-validates the merged result,
//! and finally checks the result's checksum against `target_checksum` —
//! `apply(base, diff(base, target))` is byte-identical to `target` or it
//! is an error, never something in between.

use crate::binfmt::{DecodeError, Fletcher};
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BWTS";
const DELTA_MAGIC: &[u8; 4] = b"BWTD";
const VERSION: u16 = 1;

/// Hard cap on entries accepted by the decoder — a full /16 split into
/// host routes is far beyond any realistic survey, and the cap keeps a
/// corrupt count field from provoking a huge allocation.
const MAX_ENTRIES: u64 = 1 << 26;

/// Percentile levels are carried as tenths of a percent (`950` = 95.0%),
/// exact for every level the paper uses and free of float comparisons on
/// the wire. This bound (`1000` = 100.0%) is the largest valid level.
pub const MAX_PCT_TENTHS: u16 = 1000;

/// Why a snapshot or snapshot delta failed validation, construction, or
/// application.
///
/// Implements [`std::error::Error`]; `#[non_exhaustive]` so future
/// invariants can gain variants without a breaking change. The
/// stale/mismatch variants carry both checksums so an operator log line
/// states exactly which snapshot generation was expected.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A percentile axis has no levels.
    EmptyLevels,
    /// A percentile level is outside `(0, 100.0]` (tenths of a percent).
    LevelOutOfRange(u16),
    /// Percentile levels are not strictly increasing.
    LevelsNotIncreasing,
    /// The fallback table's cell count does not match the grid.
    FallbackCellCount {
        /// Cells the grid requires (`r × c`).
        expected: usize,
        /// Cells actually present.
        got: usize,
    },
    /// A prefix length exceeds 32.
    PrefixTooLong(u8),
    /// A prefix has bits set below its length.
    PrefixHostBits {
        /// The offending prefix bits.
        prefix: u32,
        /// Its declared length.
        len: u8,
    },
    /// An entry's cell count does not match the grid.
    EntryCellCount {
        /// The entry's prefix.
        prefix: u32,
        /// The entry's prefix length.
        len: u8,
        /// Cells the grid requires (`r × c`).
        expected: usize,
        /// Cells actually present.
        got: usize,
    },
    /// Entries (or delta keys) are not strictly ascending by
    /// `(prefix, len)`.
    EntriesNotAscending,
    /// No address had usable samples (snapshot builder).
    NoSamples,
    /// A delta's grid shape does not match the snapshot it is diffed
    /// from or applied to.
    GridMismatch,
    /// The delta was computed against a different base snapshot than the
    /// one it is being applied to.
    StaleDelta {
        /// Base checksum the delta declares.
        expected: u64,
        /// Checksum of the snapshot it was applied to.
        got: u64,
    },
    /// Applying the delta did not reproduce the declared target snapshot.
    TargetMismatch {
        /// Target checksum the delta declares.
        expected: u64,
        /// Checksum of the snapshot the merge produced.
        got: u64,
    },
    /// The delta removes a prefix the base snapshot does not contain.
    RemovedKeyAbsent {
        /// The absent prefix.
        prefix: u32,
        /// Its declared length.
        len: u8,
    },
    /// The delta both removes and upserts the same key.
    RemoveUpsertOverlap {
        /// The doubly-claimed prefix.
        prefix: u32,
        /// Its declared length.
        len: u8,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::EmptyLevels => f.write_str("empty percentile levels"),
            SnapshotError::LevelOutOfRange(l) => {
                write!(f, "percentile level {l} out of (0, 100.0] range")
            }
            SnapshotError::LevelsNotIncreasing => {
                f.write_str("percentile levels not strictly increasing")
            }
            SnapshotError::FallbackCellCount { expected, got } => {
                write!(f, "fallback cell count {got} does not match levels (expected {expected})")
            }
            SnapshotError::PrefixTooLong(len) => write!(f, "prefix length {len} exceeds 32"),
            SnapshotError::PrefixHostBits { prefix, len } => {
                write!(f, "prefix {prefix:#010x}/{len} has bits below its length")
            }
            SnapshotError::EntryCellCount { prefix, len, expected, got } => write!(
                f,
                "entry {prefix:#010x}/{len} cell count {got} does not match levels (expected {expected})"
            ),
            SnapshotError::EntriesNotAscending => {
                f.write_str("entries not strictly ascending by (prefix, len)")
            }
            SnapshotError::NoSamples => f.write_str("no usable samples"),
            SnapshotError::GridMismatch => {
                f.write_str("delta grid shape does not match the base snapshot")
            }
            SnapshotError::StaleDelta { expected, got } => write!(
                f,
                "stale delta: computed against base {expected:#018x}, applied to {got:#018x}"
            ),
            SnapshotError::TargetMismatch { expected, got } => write!(
                f,
                "delta apply produced {got:#018x}, delta declares target {expected:#018x}"
            ),
            SnapshotError::RemovedKeyAbsent { prefix, len } => {
                write!(f, "delta removes {prefix:#010x}/{len}, absent from the base")
            }
            SnapshotError::RemoveUpsertOverlap { prefix, len } => {
                write!(f, "delta both removes and upserts {prefix:#010x}/{len}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One prefix's timeout table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Network-order prefix bits; bits below `len` are zero.
    pub prefix: u32,
    /// Prefix length, 0–32.
    pub len: u8,
    /// Row-major `r × c` cells as `f64` bits.
    pub cells: Vec<u64>,
}

impl SnapshotEntry {
    /// The cell at row `ri`, column `ci`, as a float.
    pub fn cell(&self, ri: usize, ci: usize, c_count: usize) -> f64 {
        f64::from_bits(self.cells[ri * c_count + ci])
    }
}

/// A complete oracle snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeoutSnapshot {
    /// Address-percentile (row) levels, tenths of a percent, strictly
    /// increasing.
    pub address_pct_tenths: Vec<u16>,
    /// Ping-percentile (column) levels, tenths of a percent, strictly
    /// increasing.
    pub ping_pct_tenths: Vec<u16>,
    /// Global fallback table (`r × c` cells, `f64` bits, row-major) used
    /// when no prefix covers a queried address.
    pub fallback: Vec<u64>,
    /// Per-prefix tables, sorted strictly ascending by `(prefix, len)`.
    pub entries: Vec<SnapshotEntry>,
}

impl TimeoutSnapshot {
    /// Cells per table (`r × c`).
    pub fn cell_count(&self) -> usize {
        self.address_pct_tenths.len() * self.ping_pct_tenths.len()
    }

    /// Check the canonical-form invariants the codec relies on.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        validate_levels(&self.address_pct_tenths)?;
        validate_levels(&self.ping_pct_tenths)?;
        let cells = self.cell_count();
        if self.fallback.len() != cells {
            return Err(SnapshotError::FallbackCellCount {
                expected: cells,
                got: self.fallback.len(),
            });
        }
        let mut prev: Option<(u32, u8)> = None;
        for e in &self.entries {
            validate_key(e.prefix, e.len, &mut prev)?;
            if e.cells.len() != cells {
                return Err(SnapshotError::EntryCellCount {
                    prefix: e.prefix,
                    len: e.len,
                    expected: cells,
                    got: e.cells.len(),
                });
            }
        }
        Ok(())
    }
}

fn validate_levels(levels: &[u16]) -> Result<(), SnapshotError> {
    if levels.is_empty() {
        return Err(SnapshotError::EmptyLevels);
    }
    if let Some(&l) = levels.iter().find(|&&l| l == 0 || l > MAX_PCT_TENTHS) {
        return Err(SnapshotError::LevelOutOfRange(l));
    }
    if levels.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SnapshotError::LevelsNotIncreasing);
    }
    Ok(())
}

/// Shared key validation for snapshot entries and delta key lists:
/// length in range, host bits clear, strictly ascending after `prev`.
fn validate_key(prefix: u32, len: u8, prev: &mut Option<(u32, u8)>) -> Result<(), SnapshotError> {
    if len > 32 {
        return Err(SnapshotError::PrefixTooLong(len));
    }
    if prefix & !prefix_mask(len) != 0 {
        return Err(SnapshotError::PrefixHostBits { prefix, len });
    }
    if prev.is_some_and(|p| p >= (prefix, len)) {
        return Err(SnapshotError::EntriesNotAscending);
    }
    *prev = Some((prefix, len));
    Ok(())
}

/// All-ones mask of the top `len` bits (`len` ≤ 32).
pub fn prefix_mask(len: u8) -> u32 {
    match len {
        0 => 0,
        32 => u32::MAX,
        n => !(u32::MAX >> n),
    }
}

/// Encode the body section (everything between header and trailer) —
/// the bytes the trailer checksum covers.
fn encode_body(snap: &TimeoutSnapshot) -> Vec<u8> {
    let cells = snap.cell_count();
    let mut body = Vec::with_capacity(
        8 + 2 * (snap.address_pct_tenths.len() + snap.ping_pct_tenths.len())
            + 8 * cells * (1 + snap.entries.len())
            + 5 * snap.entries.len(),
    );
    body.put_u16_le(snap.address_pct_tenths.len() as u16);
    body.put_u16_le(snap.ping_pct_tenths.len() as u16);
    body.put_u32_le(snap.entries.len() as u32);
    for &l in &snap.address_pct_tenths {
        body.put_u16_le(l);
    }
    for &l in &snap.ping_pct_tenths {
        body.put_u16_le(l);
    }
    for &c in &snap.fallback {
        body.put_u64_le(c);
    }
    for e in &snap.entries {
        body.put_u32_le(e.prefix);
        body.put_u8(e.len);
        for &c in &e.cells {
            body.put_u64_le(c);
        }
    }
    body
}

/// The snapshot's identity: the fletcher-64 digest of its canonical body
/// encoding — exactly the trailer checksum [`write_snapshot`] emits, so
/// the identity of a snapshot file can be read off its last 8 bytes.
/// Two snapshots encode byte-identically iff their checksums agree.
pub fn snapshot_checksum(snap: &TimeoutSnapshot) -> u64 {
    let mut checksum = Fletcher::default();
    checksum.update(&encode_body(snap));
    checksum.finish()
}

/// Serialize a snapshot. Fails with `InvalidInput` when the snapshot is
/// not in canonical form (see [`TimeoutSnapshot::validate`]).
pub fn write_snapshot<W: Write>(out: &mut W, snap: &TimeoutSnapshot) -> io::Result<()> {
    snap.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let mut header = Vec::with_capacity(8);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION);
    header.put_u16_le(0);
    out.write_all(&header)?;

    let body = encode_body(snap);
    let mut checksum = Fletcher::default();
    checksum.update(&body);
    out.write_all(&body)?;
    out.write_all(&checksum.finish().to_le_bytes())?;
    Ok(())
}

/// Deserialize a snapshot previously written by [`write_snapshot`].
/// The decoded snapshot is re-validated, so `read → write` reproduces the
/// input bytes exactly.
pub fn read_snapshot<R: Read>(input: &mut R) -> Result<TimeoutSnapshot, DecodeError> {
    let mut header = [0u8; 8];
    input.read_exact(&mut header)?;
    let mut h = &header[..];
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::Corrupt("bad snapshot magic"));
    }
    if h.get_u16_le() != VERSION {
        return Err(DecodeError::Corrupt("unsupported snapshot version"));
    }

    // `Fletcher::update` pads each call to 4-byte words, so the digest
    // depends on call boundaries; buffer the body and hash it in one call
    // exactly as the writer does.
    let mut body = Vec::new();
    let mut counts = [0u8; 8];
    input.read_exact(&mut counts)?;
    body.extend_from_slice(&counts);
    let mut c = &counts[..];
    let r_count = c.get_u16_le() as usize;
    let c_count = c.get_u16_le() as usize;
    let entry_count = u64::from(c.get_u32_le());
    if r_count == 0 || c_count == 0 {
        return Err(DecodeError::Corrupt("empty percentile levels"));
    }
    if entry_count > MAX_ENTRIES {
        return Err(DecodeError::Corrupt("entry count exceeds sanity cap"));
    }
    let cells = r_count * c_count;

    let mut levels = vec![0u8; 2 * (r_count + c_count)];
    input.read_exact(&mut levels)?;
    body.extend_from_slice(&levels);
    let mut l = &levels[..];
    let address_pct_tenths: Vec<u16> = (0..r_count).map(|_| l.get_u16_le()).collect();
    let ping_pct_tenths: Vec<u16> = (0..c_count).map(|_| l.get_u16_le()).collect();

    let read_cells = |input: &mut R, body: &mut Vec<u8>| -> Result<Vec<u64>, DecodeError> {
        let mut raw = vec![0u8; 8 * cells];
        input.read_exact(&mut raw)?;
        body.extend_from_slice(&raw);
        let mut b = &raw[..];
        Ok((0..cells).map(|_| b.get_u64_le()).collect())
    };
    let fallback = read_cells(input, &mut body)?;

    let mut entries = Vec::with_capacity(entry_count.min(1 << 16) as usize);
    let mut head = [0u8; 5];
    for _ in 0..entry_count {
        input.read_exact(&mut head)?;
        body.extend_from_slice(&head);
        let mut b = &head[..];
        let prefix = b.get_u32_le();
        let len = b.get_u8();
        entries.push(SnapshotEntry { prefix, len, cells: read_cells(input, &mut body)? });
    }

    let mut trailer = [0u8; 8];
    input.read_exact(&mut trailer)?;
    let stored = u64::from_le_bytes(trailer);
    let mut checksum = Fletcher::default();
    checksum.update(&body);
    let computed = checksum.finish();
    if stored != computed {
        return Err(DecodeError::Checksum { stored, computed });
    }

    let snap = TimeoutSnapshot { address_pct_tenths, ping_pct_tenths, fallback, entries };
    snap.validate().map_err(DecodeError::Invalid)?;
    Ok(snap)
}

/// The difference between two snapshots sharing a percentile grid: the
/// payload of a hot *delta reload*. See the module docs for the wire
/// layout and the validate-on-apply contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Identity ([`snapshot_checksum`]) of the snapshot this delta was
    /// diffed against. [`apply`](SnapshotDelta::apply) refuses any other
    /// base.
    pub base_checksum: u64,
    /// Identity of the snapshot applying this delta must reproduce,
    /// bit for bit.
    pub target_checksum: u64,
    /// Address-percentile (row) level count of both snapshots.
    pub r_count: u16,
    /// Ping-percentile (column) level count of both snapshots.
    pub c_count: u16,
    /// Replacement fallback table, when the fallback changed.
    pub new_fallback: Option<Vec<u64>>,
    /// `(prefix, len)` keys present in the base but not the target,
    /// strictly ascending.
    pub removed: Vec<(u32, u8)>,
    /// Entries added or changed in the target, strictly ascending by
    /// `(prefix, len)`.
    pub upserts: Vec<SnapshotEntry>,
}

impl SnapshotDelta {
    /// Number of per-prefix changes the delta carries (removals plus
    /// upserts; the fallback, when it changed, counts as one more).
    pub fn change_count(&self) -> usize {
        self.removed.len() + self.upserts.len() + usize::from(self.new_fallback.is_some())
    }

    /// Check the delta's own canonical-form invariants (key ordering,
    /// cell counts, no remove/upsert overlap). Base compatibility is
    /// checked by [`apply`](SnapshotDelta::apply), not here.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        if self.r_count == 0 || self.c_count == 0 {
            return Err(SnapshotError::EmptyLevels);
        }
        let cells = usize::from(self.r_count) * usize::from(self.c_count);
        if let Some(fb) = &self.new_fallback {
            if fb.len() != cells {
                return Err(SnapshotError::FallbackCellCount { expected: cells, got: fb.len() });
            }
        }
        let mut prev: Option<(u32, u8)> = None;
        for &(prefix, len) in &self.removed {
            validate_key(prefix, len, &mut prev)?;
        }
        prev = None;
        for e in &self.upserts {
            validate_key(e.prefix, e.len, &mut prev)?;
            if e.cells.len() != cells {
                return Err(SnapshotError::EntryCellCount {
                    prefix: e.prefix,
                    len: e.len,
                    expected: cells,
                    got: e.cells.len(),
                });
            }
        }
        // Both lists are now known sorted; a merge walk finds overlap.
        let mut ri = self.removed.iter().peekable();
        for e in &self.upserts {
            let key = (e.prefix, e.len);
            while ri.next_if(|&&r| r < key).is_some() {}
            if ri.peek().is_some_and(|&&r| r == key) {
                return Err(SnapshotError::RemoveUpsertOverlap { prefix: e.prefix, len: e.len });
            }
        }
        Ok(())
    }

    /// Apply the delta to `base`, producing the target snapshot.
    ///
    /// Validate-on-apply, end to end: the base's checksum must equal
    /// [`base_checksum`](Self::base_checksum) (else
    /// [`SnapshotError::StaleDelta`]), every removed key must exist in
    /// the base, the merged result is re-validated, and its checksum must
    /// equal [`target_checksum`](Self::target_checksum) — so a successful
    /// apply is **byte-identical** to the full rebuilt snapshot.
    pub fn apply(&self, base: &TimeoutSnapshot) -> Result<TimeoutSnapshot, SnapshotError> {
        self.validate()?;
        base.validate()?;
        if base.address_pct_tenths.len() != usize::from(self.r_count)
            || base.ping_pct_tenths.len() != usize::from(self.c_count)
        {
            return Err(SnapshotError::GridMismatch);
        }
        let got = snapshot_checksum(base);
        if got != self.base_checksum {
            return Err(SnapshotError::StaleDelta { expected: self.base_checksum, got });
        }

        let mut entries = Vec::with_capacity(base.entries.len() + self.upserts.len());
        let mut removed = self.removed.iter().copied().peekable();
        let mut upserts = self.upserts.iter().cloned().peekable();
        for e in &base.entries {
            let key = (e.prefix, e.len);
            while upserts.peek().is_some_and(|u| (u.prefix, u.len) < key) {
                entries.push(upserts.next().expect("peeked"));
            }
            if let Some(&(prefix, len)) = removed.peek() {
                if (prefix, len) < key {
                    return Err(SnapshotError::RemovedKeyAbsent { prefix, len });
                }
                if (prefix, len) == key {
                    removed.next();
                    continue;
                }
            }
            if upserts.peek().is_some_and(|u| (u.prefix, u.len) == key) {
                entries.push(upserts.next().expect("peeked"));
                continue;
            }
            entries.push(e.clone());
        }
        entries.extend(upserts);
        if let Some(&(prefix, len)) = removed.peek() {
            return Err(SnapshotError::RemovedKeyAbsent { prefix, len });
        }

        let out = TimeoutSnapshot {
            address_pct_tenths: base.address_pct_tenths.clone(),
            ping_pct_tenths: base.ping_pct_tenths.clone(),
            fallback: self.new_fallback.clone().unwrap_or_else(|| base.fallback.clone()),
            entries,
        };
        out.validate()?;
        let got = snapshot_checksum(&out);
        if got != self.target_checksum {
            return Err(SnapshotError::TargetMismatch { expected: self.target_checksum, got });
        }
        Ok(out)
    }
}

/// Compute the delta that turns `base` into `target`. Both snapshots
/// must be canonical and share the same percentile grid — a grid change
/// is a full reload, not a delta.
pub fn diff_snapshot(
    base: &TimeoutSnapshot,
    target: &TimeoutSnapshot,
) -> Result<SnapshotDelta, SnapshotError> {
    base.validate()?;
    target.validate()?;
    if base.address_pct_tenths != target.address_pct_tenths
        || base.ping_pct_tenths != target.ping_pct_tenths
    {
        return Err(SnapshotError::GridMismatch);
    }

    let mut removed = Vec::new();
    let mut upserts = Vec::new();
    let mut b = base.entries.iter().peekable();
    let mut t = target.entries.iter().peekable();
    loop {
        match (b.peek(), t.peek()) {
            (Some(be), Some(te)) => {
                let bk = (be.prefix, be.len);
                let tk = (te.prefix, te.len);
                match bk.cmp(&tk) {
                    std::cmp::Ordering::Less => {
                        removed.push(bk);
                        b.next();
                    }
                    std::cmp::Ordering::Greater => {
                        upserts.push((*te).clone());
                        t.next();
                    }
                    std::cmp::Ordering::Equal => {
                        if be.cells != te.cells {
                            upserts.push((*te).clone());
                        }
                        b.next();
                        t.next();
                    }
                }
            }
            (Some(be), None) => {
                removed.push((be.prefix, be.len));
                b.next();
            }
            (None, Some(te)) => {
                upserts.push((*te).clone());
                t.next();
            }
            (None, None) => break,
        }
    }

    Ok(SnapshotDelta {
        base_checksum: snapshot_checksum(base),
        target_checksum: snapshot_checksum(target),
        r_count: base.address_pct_tenths.len() as u16,
        c_count: base.ping_pct_tenths.len() as u16,
        new_fallback: (base.fallback != target.fallback).then(|| target.fallback.clone()),
        removed,
        upserts,
    })
}

/// Serialize a delta. Fails with `InvalidInput` when the delta is not in
/// canonical form (see [`SnapshotDelta::validate`]).
pub fn write_delta<W: Write>(out: &mut W, delta: &SnapshotDelta) -> io::Result<()> {
    delta.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let mut header = Vec::with_capacity(8);
    header.put_slice(DELTA_MAGIC);
    header.put_u16_le(VERSION);
    header.put_u16_le(0);
    out.write_all(&header)?;

    let cells = usize::from(delta.r_count) * usize::from(delta.c_count);
    let mut body = Vec::with_capacity(
        29 + 8 * cells * (usize::from(delta.new_fallback.is_some()) + delta.upserts.len())
            + 5 * (delta.removed.len() + delta.upserts.len()),
    );
    body.put_u64_le(delta.base_checksum);
    body.put_u64_le(delta.target_checksum);
    body.put_u16_le(delta.r_count);
    body.put_u16_le(delta.c_count);
    body.put_u32_le(delta.removed.len() as u32);
    body.put_u32_le(delta.upserts.len() as u32);
    body.put_u8(u8::from(delta.new_fallback.is_some()));
    if let Some(fb) = &delta.new_fallback {
        for &c in fb {
            body.put_u64_le(c);
        }
    }
    for &(prefix, len) in &delta.removed {
        body.put_u32_le(prefix);
        body.put_u8(len);
    }
    for e in &delta.upserts {
        body.put_u32_le(e.prefix);
        body.put_u8(e.len);
        for &c in &e.cells {
            body.put_u64_le(c);
        }
    }
    let mut checksum = Fletcher::default();
    checksum.update(&body);
    out.write_all(&body)?;
    out.write_all(&checksum.finish().to_le_bytes())?;
    Ok(())
}

/// Deserialize a delta previously written by [`write_delta`]. The decoded
/// delta is re-validated, so `read → write` reproduces the input bytes
/// exactly.
pub fn read_delta<R: Read>(input: &mut R) -> Result<SnapshotDelta, DecodeError> {
    let mut header = [0u8; 8];
    input.read_exact(&mut header)?;
    let mut h = &header[..];
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if &magic != DELTA_MAGIC {
        return Err(DecodeError::Corrupt("bad delta magic"));
    }
    if h.get_u16_le() != VERSION {
        return Err(DecodeError::Corrupt("unsupported delta version"));
    }

    let mut body = Vec::new();
    let mut fixed = [0u8; 29];
    input.read_exact(&mut fixed)?;
    body.extend_from_slice(&fixed);
    let mut c = &fixed[..];
    let base_checksum = c.get_u64_le();
    let target_checksum = c.get_u64_le();
    let r_count = c.get_u16_le();
    let c_count = c.get_u16_le();
    let removed_count = u64::from(c.get_u32_le());
    let upsert_count = u64::from(c.get_u32_le());
    let fallback_flag = c.get_u8();
    if r_count == 0 || c_count == 0 {
        return Err(DecodeError::Corrupt("empty percentile levels"));
    }
    if removed_count > MAX_ENTRIES || upsert_count > MAX_ENTRIES {
        return Err(DecodeError::Corrupt("entry count exceeds sanity cap"));
    }
    if fallback_flag > 1 {
        return Err(DecodeError::Corrupt("bad fallback flag"));
    }
    let cells = usize::from(r_count) * usize::from(c_count);

    let read_cells = |input: &mut R, body: &mut Vec<u8>| -> Result<Vec<u64>, DecodeError> {
        let mut raw = vec![0u8; 8 * cells];
        input.read_exact(&mut raw)?;
        body.extend_from_slice(&raw);
        let mut b = &raw[..];
        Ok((0..cells).map(|_| b.get_u64_le()).collect())
    };
    let new_fallback = if fallback_flag == 1 { Some(read_cells(input, &mut body)?) } else { None };

    let mut removed = Vec::with_capacity(removed_count.min(1 << 16) as usize);
    let mut head = [0u8; 5];
    for _ in 0..removed_count {
        input.read_exact(&mut head)?;
        body.extend_from_slice(&head);
        let mut b = &head[..];
        let prefix = b.get_u32_le();
        removed.push((prefix, b.get_u8()));
    }
    let mut upserts = Vec::with_capacity(upsert_count.min(1 << 16) as usize);
    for _ in 0..upsert_count {
        input.read_exact(&mut head)?;
        body.extend_from_slice(&head);
        let mut b = &head[..];
        let prefix = b.get_u32_le();
        let len = b.get_u8();
        upserts.push(SnapshotEntry { prefix, len, cells: read_cells(input, &mut body)? });
    }

    let mut trailer = [0u8; 8];
    input.read_exact(&mut trailer)?;
    let stored = u64::from_le_bytes(trailer);
    let mut checksum = Fletcher::default();
    checksum.update(&body);
    let computed = checksum.finish();
    if stored != computed {
        return Err(DecodeError::Checksum { stored, computed });
    }

    let delta = SnapshotDelta {
        base_checksum,
        target_checksum,
        r_count,
        c_count,
        new_fallback,
        removed,
        upserts,
    };
    delta.validate().map_err(DecodeError::Invalid)?;
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeoutSnapshot {
        TimeoutSnapshot {
            address_pct_tenths: vec![500, 950, 990],
            ping_pct_tenths: vec![950, 980],
            fallback: vec![1.0f64.to_bits(); 6],
            entries: vec![
                SnapshotEntry {
                    prefix: 0x0a000000,
                    len: 8,
                    cells: (0..6).map(|i| (i as f64 * 0.25).to_bits()).collect(),
                },
                SnapshotEntry { prefix: 0x0a010000, len: 16, cells: vec![3.5f64.to_bits(); 6] },
                SnapshotEntry { prefix: 0xc0000207, len: 32, cells: vec![60.0f64.to_bits(); 6] },
            ],
        }
    }

    /// `sample()` with one entry changed, one removed, one added, and a
    /// new fallback — every kind of difference a delta can carry.
    fn sample_v2() -> TimeoutSnapshot {
        let mut s = sample();
        s.entries[0].cells[3] = 9.75f64.to_bits();
        s.entries.remove(2);
        s.entries.push(SnapshotEntry {
            prefix: 0xc0a80000,
            len: 16,
            cells: vec![2.25f64.to_bits(); 6],
        });
        s.fallback = vec![4.0f64.to_bits(); 6];
        s
    }

    #[test]
    fn roundtrip_and_canonical_rewrite() {
        let snap = sample();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let back = read_snapshot(&mut &buf[..]).unwrap();
        assert_eq!(back, snap);
        let mut again = Vec::new();
        write_snapshot(&mut again, &back).unwrap();
        assert_eq!(again, buf, "re-encode must be byte-identical");
    }

    #[test]
    fn checksum_is_the_trailer_and_the_identity() {
        let snap = sample();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let trailer = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
        assert_eq!(snapshot_checksum(&snap), trailer);
        assert_ne!(snapshot_checksum(&snap), snapshot_checksum(&sample_v2()));
    }

    #[test]
    fn default_route_only_snapshot() {
        let snap = TimeoutSnapshot {
            address_pct_tenths: vec![950],
            ping_pct_tenths: vec![950],
            fallback: vec![2.0f64.to_bits()],
            entries: vec![SnapshotEntry { prefix: 0, len: 0, cells: vec![1.0f64.to_bits()] }],
        };
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        assert_eq!(read_snapshot(&mut &buf[..]).unwrap(), snap);
    }

    #[test]
    fn non_canonical_rejected_on_write() {
        let mut unsorted = sample();
        unsorted.entries.swap(0, 1);
        assert_eq!(unsorted.validate(), Err(SnapshotError::EntriesNotAscending));
        assert!(write_snapshot(&mut Vec::new(), &unsorted).is_err());

        let mut dirty_bits = sample();
        dirty_bits.entries[0].prefix |= 1;
        assert!(matches!(dirty_bits.validate(), Err(SnapshotError::PrefixHostBits { len: 8, .. })));
        assert!(write_snapshot(&mut Vec::new(), &dirty_bits).is_err());

        let mut bad_levels = sample();
        bad_levels.ping_pct_tenths = vec![950, 950];
        assert_eq!(bad_levels.validate(), Err(SnapshotError::LevelsNotIncreasing));
        assert!(write_snapshot(&mut Vec::new(), &bad_levels).is_err());

        let mut overlong = sample();
        overlong.entries[2].len = 33;
        assert_eq!(overlong.validate(), Err(SnapshotError::PrefixTooLong(33)));
        assert!(write_snapshot(&mut Vec::new(), &overlong).is_err());
    }

    #[test]
    fn corruption_detected() {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_snapshot(&mut &buf[..]),
            Err(DecodeError::Corrupt("bad snapshot magic"))
        ));

        let mut buf = Vec::new();
        write_snapshot(&mut buf, &sample()).unwrap();
        // Flip a bit inside a fallback cell: framing survives, the
        // checksum must not.
        let idx = 8 + 8 + 2 * 5 + 3;
        buf[idx] ^= 0x01;
        assert!(matches!(read_snapshot(&mut &buf[..]), Err(DecodeError::Checksum { .. })));

        let mut buf = Vec::new();
        write_snapshot(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(read_snapshot(&mut &buf[..]), Err(DecodeError::Io(_))));
    }

    #[test]
    fn prefix_masks() {
        assert_eq!(prefix_mask(0), 0);
        assert_eq!(prefix_mask(8), 0xff00_0000);
        assert_eq!(prefix_mask(24), 0xffff_ff00);
        assert_eq!(prefix_mask(32), u32::MAX);
    }

    #[test]
    fn delta_diff_apply_reproduces_target_bit_for_bit() {
        let base = sample();
        let target = sample_v2();
        let delta = diff_snapshot(&base, &target).unwrap();
        assert_eq!(delta.removed, vec![(0xc0000207, 32)]);
        assert_eq!(delta.upserts.len(), 2, "one change + one add");
        assert!(delta.new_fallback.is_some());
        assert_eq!(delta.change_count(), 4);

        let applied = delta.apply(&base).unwrap();
        assert_eq!(applied, target);
        let mut full = Vec::new();
        write_snapshot(&mut full, &target).unwrap();
        let mut via_delta = Vec::new();
        write_snapshot(&mut via_delta, &applied).unwrap();
        assert_eq!(via_delta, full, "apply must be byte-identical to the full rebuild");
    }

    #[test]
    fn empty_delta_applies_to_identity() {
        let base = sample();
        let delta = diff_snapshot(&base, &base).unwrap();
        assert_eq!(delta.change_count(), 0);
        assert_eq!(delta.base_checksum, delta.target_checksum);
        assert_eq!(delta.apply(&base).unwrap(), base);
    }

    #[test]
    fn empty_delta_roundtrips_through_the_codec() {
        // base == target: zero removals, zero upserts, no fallback flag —
        // the smallest legal delta must survive the wire unchanged.
        let base = sample();
        let delta = diff_snapshot(&base, &base).unwrap();
        let mut buf = Vec::new();
        write_delta(&mut buf, &delta).unwrap();
        let back = read_delta(&mut &buf[..]).unwrap();
        assert_eq!(back, delta);
        assert_eq!(back.apply(&base).unwrap(), base);
    }

    #[test]
    fn fallback_only_delta_applies_and_roundtrips() {
        // Only the fallback table differs: the delta must carry the new
        // fallback and nothing else, and apply must reproduce the target.
        let base = sample();
        let mut target = base.clone();
        target.fallback = vec![7.5f64.to_bits(); 6];
        let delta = diff_snapshot(&base, &target).unwrap();
        assert_eq!(delta.change_count(), 1);
        assert!(delta.removed.is_empty(), "no entry changed");
        assert!(delta.upserts.is_empty(), "no entry changed");
        assert_eq!(delta.new_fallback.as_deref(), Some(target.fallback.as_slice()));
        assert_eq!(delta.apply(&base).unwrap(), target);

        let mut buf = Vec::new();
        write_delta(&mut buf, &delta).unwrap();
        assert_eq!(read_delta(&mut &buf[..]).unwrap(), delta);
    }

    #[test]
    fn removal_past_the_last_base_entry_rejected() {
        // The absent key sorts *after* every base entry, so the merge walk
        // exhausts the base with the removal still pending — the tail
        // check must answer with the typed error, not a panic or a silent
        // no-op.
        let base = sample();
        let delta = SnapshotDelta {
            base_checksum: snapshot_checksum(&base),
            target_checksum: 0xdead_beef,
            r_count: 3,
            c_count: 2,
            new_fallback: None,
            removed: vec![(0xe000_0000, 8)],
            upserts: Vec::new(),
        };
        delta.validate().unwrap();
        match delta.apply(&base) {
            Err(SnapshotError::RemovedKeyAbsent { prefix: 0xe000_0000, len: 8 }) => {}
            other => panic!("expected RemovedKeyAbsent for the tail key, got {other:?}"),
        }
    }

    #[test]
    fn delta_roundtrips_through_the_codec() {
        let delta = diff_snapshot(&sample(), &sample_v2()).unwrap();
        let mut buf = Vec::new();
        write_delta(&mut buf, &delta).unwrap();
        let back = read_delta(&mut &buf[..]).unwrap();
        assert_eq!(back, delta);
        let mut again = Vec::new();
        write_delta(&mut again, &back).unwrap();
        assert_eq!(again, buf, "re-encode must be byte-identical");
    }

    #[test]
    fn delta_corruption_detected() {
        let delta = diff_snapshot(&sample(), &sample_v2()).unwrap();
        let mut buf = Vec::new();
        write_delta(&mut buf, &delta).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_delta(&mut &bad[..]), Err(DecodeError::Corrupt("bad delta magic"))));

        let mut bad = buf.clone();
        // Flip a bit inside the new fallback cells (after the 8-byte
        // header and 29-byte fixed body section).
        bad[8 + 29 + 3] ^= 0x01;
        assert!(matches!(read_delta(&mut &bad[..]), Err(DecodeError::Checksum { .. })));

        buf.truncate(buf.len() - 4);
        assert!(matches!(read_delta(&mut &buf[..]), Err(DecodeError::Io(_))));
    }

    #[test]
    fn stale_base_rejected() {
        let base = sample();
        let target = sample_v2();
        let delta = diff_snapshot(&base, &target).unwrap();
        // Applying to the *target* (or any other snapshot) is stale.
        match delta.apply(&target) {
            Err(SnapshotError::StaleDelta { expected, got }) => {
                assert_eq!(expected, snapshot_checksum(&base));
                assert_eq!(got, snapshot_checksum(&target));
            }
            other => panic!("expected StaleDelta, got {other:?}"),
        }
    }

    #[test]
    fn grid_mismatch_rejected() {
        let base = sample();
        let mut other_grid = sample();
        other_grid.address_pct_tenths = vec![500, 950];
        other_grid.fallback = vec![1.0f64.to_bits(); 4];
        for e in &mut other_grid.entries {
            e.cells.truncate(4);
        }
        other_grid.validate().unwrap();
        assert_eq!(diff_snapshot(&base, &other_grid), Err(SnapshotError::GridMismatch));

        let mut delta = diff_snapshot(&base, &sample_v2()).unwrap();
        delta.r_count = 2;
        delta.new_fallback = Some(vec![4.0f64.to_bits(); 4]);
        delta.upserts.clear();
        assert_eq!(delta.apply(&base), Err(SnapshotError::GridMismatch));
    }

    #[test]
    fn removed_key_absent_rejected() {
        let base = sample();
        let mut delta = diff_snapshot(&base, &base).unwrap();
        delta.removed = vec![(0x7f000000, 8)];
        match delta.apply(&base) {
            Err(SnapshotError::RemovedKeyAbsent { prefix: 0x7f000000, len: 8 }) => {}
            other => panic!("expected RemovedKeyAbsent, got {other:?}"),
        }
    }

    #[test]
    fn tampered_delta_fails_target_check() {
        let base = sample();
        let mut delta = diff_snapshot(&base, &sample_v2()).unwrap();
        // Tamper with an upsert cell: structurally valid, semantically
        // not the declared target.
        delta.upserts[0].cells[0] ^= 1;
        assert!(matches!(delta.apply(&base), Err(SnapshotError::TargetMismatch { .. })));
    }

    #[test]
    fn remove_upsert_overlap_rejected() {
        let base = sample();
        let mut delta = diff_snapshot(&base, &base).unwrap();
        delta.removed = vec![(0x0a000000, 8)];
        delta.upserts = vec![SnapshotEntry { prefix: 0x0a000000, len: 8, cells: vec![0u64; 6] }];
        assert_eq!(
            delta.validate(),
            Err(SnapshotError::RemoveUpsertOverlap { prefix: 0x0a000000, len: 8 })
        );
        assert!(write_delta(&mut Vec::new(), &delta).is_err());
    }
}
