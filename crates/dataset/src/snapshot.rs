//! Timeout-oracle snapshot: per-prefix timeout tables in a compact,
//! canonical binary format.
//!
//! A snapshot is what `beware serve` loads at startup: the offline
//! pipeline's per-address latency distributions, grouped by prefix and
//! reduced to `TimeoutTable`-style cells ("minimum timeout capturing c%
//! of pings from r% of addresses"), plus a global fallback table for
//! addresses no prefix covers. Cells are stored as raw `f64` bits so a
//! served answer can byte-match the offline computation exactly.
//!
//! Layout (all little-endian):
//!
//! ```text
//! header:  magic "BWTS" | version u16 | reserved u16
//! body:    r_count u16 | c_count u16 | entry count u32
//!          address-percentile levels   u16 × r_count   (tenths of a %)
//!          ping-percentile levels      u16 × c_count   (tenths of a %)
//!          fallback cells              u64 × r·c       (f64 bits, row-major)
//!          entries, each: prefix u32 | len u8 | cells u64 × r·c
//! trailer: fletcher-64 checksum u64 over all body bytes
//! ```
//!
//! The encoding is **canonical**: [`TimeoutSnapshot::validate`] enforces
//! strictly increasing percentile levels, entries sorted strictly
//! ascending by `(prefix, len)` with sub-prefix bits zeroed, and exact
//! cell counts. A snapshot that decodes therefore re-encodes to the same
//! bytes — the property the dataset proptests pin down.

use crate::binfmt::{DecodeError, Fletcher};
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BWTS";
const VERSION: u16 = 1;

/// Hard cap on entries accepted by the decoder — a full /16 split into
/// host routes is far beyond any realistic survey, and the cap keeps a
/// corrupt count field from provoking a huge allocation.
const MAX_ENTRIES: u64 = 1 << 26;

/// Percentile levels are carried as tenths of a percent (`950` = 95.0%),
/// exact for every level the paper uses and free of float comparisons on
/// the wire. This bound (`1000` = 100.0%) is the largest valid level.
pub const MAX_PCT_TENTHS: u16 = 1000;

/// One prefix's timeout table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Network-order prefix bits; bits below `len` are zero.
    pub prefix: u32,
    /// Prefix length, 0–32.
    pub len: u8,
    /// Row-major `r × c` cells as `f64` bits.
    pub cells: Vec<u64>,
}

impl SnapshotEntry {
    /// The cell at row `ri`, column `ci`, as a float.
    pub fn cell(&self, ri: usize, ci: usize, c_count: usize) -> f64 {
        f64::from_bits(self.cells[ri * c_count + ci])
    }
}

/// A complete oracle snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeoutSnapshot {
    /// Address-percentile (row) levels, tenths of a percent, strictly
    /// increasing.
    pub address_pct_tenths: Vec<u16>,
    /// Ping-percentile (column) levels, tenths of a percent, strictly
    /// increasing.
    pub ping_pct_tenths: Vec<u16>,
    /// Global fallback table (`r × c` cells, `f64` bits, row-major) used
    /// when no prefix covers a queried address.
    pub fallback: Vec<u64>,
    /// Per-prefix tables, sorted strictly ascending by `(prefix, len)`.
    pub entries: Vec<SnapshotEntry>,
}

impl TimeoutSnapshot {
    /// Cells per table (`r × c`).
    pub fn cell_count(&self) -> usize {
        self.address_pct_tenths.len() * self.ping_pct_tenths.len()
    }

    /// Check the canonical-form invariants the codec relies on.
    pub fn validate(&self) -> Result<(), &'static str> {
        validate_levels(&self.address_pct_tenths)?;
        validate_levels(&self.ping_pct_tenths)?;
        let cells = self.cell_count();
        if self.fallback.len() != cells {
            return Err("fallback cell count does not match levels");
        }
        let mut prev: Option<(u32, u8)> = None;
        for e in &self.entries {
            if e.len > 32 {
                return Err("prefix length exceeds 32");
            }
            if e.prefix & !prefix_mask(e.len) != 0 {
                return Err("prefix has bits below its length");
            }
            if e.cells.len() != cells {
                return Err("entry cell count does not match levels");
            }
            if prev.is_some_and(|p| p >= (e.prefix, e.len)) {
                return Err("entries not strictly ascending by (prefix, len)");
            }
            prev = Some((e.prefix, e.len));
        }
        Ok(())
    }
}

fn validate_levels(levels: &[u16]) -> Result<(), &'static str> {
    if levels.is_empty() {
        return Err("empty percentile levels");
    }
    if levels.iter().any(|&l| l == 0 || l > MAX_PCT_TENTHS) {
        return Err("percentile level out of (0, 100.0] range");
    }
    if levels.windows(2).any(|w| w[0] >= w[1]) {
        return Err("percentile levels not strictly increasing");
    }
    Ok(())
}

/// All-ones mask of the top `len` bits (`len` ≤ 32).
pub fn prefix_mask(len: u8) -> u32 {
    match len {
        0 => 0,
        32 => u32::MAX,
        n => !(u32::MAX >> n),
    }
}

/// Serialize a snapshot. Fails with `InvalidInput` when the snapshot is
/// not in canonical form (see [`TimeoutSnapshot::validate`]).
pub fn write_snapshot<W: Write>(out: &mut W, snap: &TimeoutSnapshot) -> io::Result<()> {
    snap.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let mut header = Vec::with_capacity(8);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION);
    header.put_u16_le(0);
    out.write_all(&header)?;

    let cells = snap.cell_count();
    let mut body = Vec::with_capacity(
        8 + 2 * (snap.address_pct_tenths.len() + snap.ping_pct_tenths.len())
            + 8 * cells * (1 + snap.entries.len())
            + 5 * snap.entries.len(),
    );
    body.put_u16_le(snap.address_pct_tenths.len() as u16);
    body.put_u16_le(snap.ping_pct_tenths.len() as u16);
    body.put_u32_le(snap.entries.len() as u32);
    for &l in &snap.address_pct_tenths {
        body.put_u16_le(l);
    }
    for &l in &snap.ping_pct_tenths {
        body.put_u16_le(l);
    }
    for &c in &snap.fallback {
        body.put_u64_le(c);
    }
    for e in &snap.entries {
        body.put_u32_le(e.prefix);
        body.put_u8(e.len);
        for &c in &e.cells {
            body.put_u64_le(c);
        }
    }
    let mut checksum = Fletcher::default();
    checksum.update(&body);
    out.write_all(&body)?;
    out.write_all(&checksum.finish().to_le_bytes())?;
    Ok(())
}

/// Deserialize a snapshot previously written by [`write_snapshot`].
/// The decoded snapshot is re-validated, so `read → write` reproduces the
/// input bytes exactly.
pub fn read_snapshot<R: Read>(input: &mut R) -> Result<TimeoutSnapshot, DecodeError> {
    let mut header = [0u8; 8];
    input.read_exact(&mut header)?;
    let mut h = &header[..];
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::Corrupt("bad snapshot magic"));
    }
    if h.get_u16_le() != VERSION {
        return Err(DecodeError::Corrupt("unsupported snapshot version"));
    }

    // `Fletcher::update` pads each call to 4-byte words, so the digest
    // depends on call boundaries; buffer the body and hash it in one call
    // exactly as the writer does.
    let mut body = Vec::new();
    let mut counts = [0u8; 8];
    input.read_exact(&mut counts)?;
    body.extend_from_slice(&counts);
    let mut c = &counts[..];
    let r_count = c.get_u16_le() as usize;
    let c_count = c.get_u16_le() as usize;
    let entry_count = u64::from(c.get_u32_le());
    if r_count == 0 || c_count == 0 {
        return Err(DecodeError::Corrupt("empty percentile levels"));
    }
    if entry_count > MAX_ENTRIES {
        return Err(DecodeError::Corrupt("entry count exceeds sanity cap"));
    }
    let cells = r_count * c_count;

    let mut levels = vec![0u8; 2 * (r_count + c_count)];
    input.read_exact(&mut levels)?;
    body.extend_from_slice(&levels);
    let mut l = &levels[..];
    let address_pct_tenths: Vec<u16> = (0..r_count).map(|_| l.get_u16_le()).collect();
    let ping_pct_tenths: Vec<u16> = (0..c_count).map(|_| l.get_u16_le()).collect();

    let read_cells = |input: &mut R, body: &mut Vec<u8>| -> Result<Vec<u64>, DecodeError> {
        let mut raw = vec![0u8; 8 * cells];
        input.read_exact(&mut raw)?;
        body.extend_from_slice(&raw);
        let mut b = &raw[..];
        Ok((0..cells).map(|_| b.get_u64_le()).collect())
    };
    let fallback = read_cells(input, &mut body)?;

    let mut entries = Vec::with_capacity(entry_count.min(1 << 16) as usize);
    let mut head = [0u8; 5];
    for _ in 0..entry_count {
        input.read_exact(&mut head)?;
        body.extend_from_slice(&head);
        let mut b = &head[..];
        let prefix = b.get_u32_le();
        let len = b.get_u8();
        entries.push(SnapshotEntry { prefix, len, cells: read_cells(input, &mut body)? });
    }

    let mut trailer = [0u8; 8];
    input.read_exact(&mut trailer)?;
    let stored = u64::from_le_bytes(trailer);
    let mut checksum = Fletcher::default();
    checksum.update(&body);
    let computed = checksum.finish();
    if stored != computed {
        return Err(DecodeError::Checksum { stored, computed });
    }

    let snap = TimeoutSnapshot { address_pct_tenths, ping_pct_tenths, fallback, entries };
    snap.validate().map_err(DecodeError::Corrupt)?;
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeoutSnapshot {
        TimeoutSnapshot {
            address_pct_tenths: vec![500, 950, 990],
            ping_pct_tenths: vec![950, 980],
            fallback: vec![1.0f64.to_bits(); 6],
            entries: vec![
                SnapshotEntry {
                    prefix: 0x0a000000,
                    len: 8,
                    cells: (0..6).map(|i| (i as f64 * 0.25).to_bits()).collect(),
                },
                SnapshotEntry { prefix: 0x0a010000, len: 16, cells: vec![3.5f64.to_bits(); 6] },
                SnapshotEntry { prefix: 0xc0000207, len: 32, cells: vec![60.0f64.to_bits(); 6] },
            ],
        }
    }

    #[test]
    fn roundtrip_and_canonical_rewrite() {
        let snap = sample();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let back = read_snapshot(&mut &buf[..]).unwrap();
        assert_eq!(back, snap);
        let mut again = Vec::new();
        write_snapshot(&mut again, &back).unwrap();
        assert_eq!(again, buf, "re-encode must be byte-identical");
    }

    #[test]
    fn default_route_only_snapshot() {
        let snap = TimeoutSnapshot {
            address_pct_tenths: vec![950],
            ping_pct_tenths: vec![950],
            fallback: vec![2.0f64.to_bits()],
            entries: vec![SnapshotEntry { prefix: 0, len: 0, cells: vec![1.0f64.to_bits()] }],
        };
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        assert_eq!(read_snapshot(&mut &buf[..]).unwrap(), snap);
    }

    #[test]
    fn non_canonical_rejected_on_write() {
        let mut unsorted = sample();
        unsorted.entries.swap(0, 1);
        assert!(write_snapshot(&mut Vec::new(), &unsorted).is_err());

        let mut dirty_bits = sample();
        dirty_bits.entries[0].prefix |= 1;
        assert!(write_snapshot(&mut Vec::new(), &dirty_bits).is_err());

        let mut bad_levels = sample();
        bad_levels.ping_pct_tenths = vec![950, 950];
        assert!(write_snapshot(&mut Vec::new(), &bad_levels).is_err());

        let mut overlong = sample();
        overlong.entries[2].len = 33;
        assert!(write_snapshot(&mut Vec::new(), &overlong).is_err());
    }

    #[test]
    fn corruption_detected() {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_snapshot(&mut &buf[..]),
            Err(DecodeError::Corrupt("bad snapshot magic"))
        ));

        let mut buf = Vec::new();
        write_snapshot(&mut buf, &sample()).unwrap();
        // Flip a bit inside a fallback cell: framing survives, the
        // checksum must not.
        let idx = 8 + 8 + 2 * 5 + 3;
        buf[idx] ^= 0x01;
        assert!(matches!(read_snapshot(&mut &buf[..]), Err(DecodeError::Checksum { .. })));

        let mut buf = Vec::new();
        write_snapshot(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(read_snapshot(&mut &buf[..]), Err(DecodeError::Io(_))));
    }

    #[test]
    fn prefix_masks() {
        assert_eq!(prefix_mask(0), 0);
        assert_eq!(prefix_mask(8), 0xff00_0000);
        assert_eq!(prefix_mask(24), 0xffff_ff00);
        assert_eq!(prefix_mask(32), u32::MAX);
    }
}
