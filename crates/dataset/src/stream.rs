//! Streaming binary survey I/O.
//!
//! [`binfmt`](crate::binfmt) requires the record count up front, which
//! forces buffering a whole survey in memory. Long-running probers instead
//! write through [`StreamWriter`] — a [`RecordSink`] that emits records as
//! they happen — and analyses read back through [`StreamReader`], an
//! iterator, so a multi-gigabyte survey never has to fit in RAM.
//!
//! Layout (little-endian):
//!
//! ```text
//! header:  magic "BWSS" | version u16 | reserved u16
//! records: tag u8 | addr u32 | time_s u32 | tag payload   (as binfmt)
//! trailer: tag 0xFF | record count u64 | fletcher-64 checksum u64
//! ```

use crate::record::{Record, RecordKind};
use crate::survey::RecordSink;
use bytes::BufMut;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BWSS";
const VERSION: u16 = 1;
const END_TAG: u8 = 0xFF;

/// Fletcher-64-style running checksum, identical to the one `binfmt` uses.
#[derive(Debug, Clone, Copy, Default)]
struct Fletcher {
    a: u64,
    b: u64,
}

impl Fletcher {
    fn update(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(4) {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            self.a = (self.a + u64::from(u32::from_le_bytes(word))) % 0xffff_ffff;
            self.b = (self.b + self.a) % 0xffff_ffff;
        }
    }

    fn finish(self) -> u64 {
        (self.b << 32) | self.a
    }
}

fn encode_record(r: &Record, buf: &mut Vec<u8>) {
    match r.kind {
        RecordKind::Matched { rtt_us } => {
            buf.put_u8(0);
            buf.put_u32_le(r.addr);
            buf.put_u32_le(r.time_s);
            buf.put_u32_le(rtt_us);
        }
        RecordKind::Timeout => {
            buf.put_u8(1);
            buf.put_u32_le(r.addr);
            buf.put_u32_le(r.time_s);
        }
        RecordKind::Unmatched { recv_s } => {
            buf.put_u8(2);
            buf.put_u32_le(r.addr);
            buf.put_u32_le(r.time_s);
            buf.put_u32_le(recv_s);
        }
        RecordKind::IcmpError { code } => {
            buf.put_u8(3);
            buf.put_u32_le(r.addr);
            buf.put_u32_le(r.time_s);
            buf.put_u8(code);
        }
    }
}

/// Incremental survey writer. Must be [`StreamWriter::finish`]ed — dropping
/// it without finishing leaves a truncated stream, which [`StreamReader`]
/// will reject rather than silently accept.
#[derive(Debug)]
pub struct StreamWriter<W: Write> {
    out: W,
    checksum: Fletcher,
    count: u64,
    scratch: Vec<u8>,
    /// I/O error deferred from `push` (the `RecordSink` trait is
    /// infallible); surfaced by `finish`.
    deferred: Option<io::Error>,
}

impl<W: Write> StreamWriter<W> {
    /// Start a stream on `out`.
    pub fn new(mut out: W) -> io::Result<Self> {
        let mut header = Vec::with_capacity(8);
        header.put_slice(MAGIC);
        header.put_u16_le(VERSION);
        header.put_u16_le(0);
        out.write_all(&header)?;
        Ok(StreamWriter {
            out,
            checksum: Fletcher::default(),
            count: 0,
            scratch: Vec::with_capacity(16),
            deferred: None,
        })
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Write the trailer and return the underlying writer. Surfaces any
    /// I/O error deferred from pushes.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        let mut trailer = Vec::with_capacity(17);
        trailer.put_u8(END_TAG);
        trailer.put_u64_le(self.count);
        trailer.put_u64_le(self.checksum.finish());
        self.out.write_all(&trailer)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> RecordSink for StreamWriter<W> {
    fn push(&mut self, record: Record) {
        if self.deferred.is_some() {
            return;
        }
        self.scratch.clear();
        encode_record(&record, &mut self.scratch);
        self.checksum.update(&self.scratch);
        self.count += 1;
        if let Err(e) = self.out.write_all(&self.scratch) {
            self.deferred = Some(e);
        }
    }
}

/// Streaming reader: an iterator of records that verifies the trailer when
/// the stream ends.
#[derive(Debug)]
pub struct StreamReader<R: Read> {
    input: R,
    checksum: Fletcher,
    read_count: u64,
    done: bool,
}

/// Errors from the streaming reader.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying I/O failure (including truncation).
    Io(io::Error),
    /// Structural problem.
    Corrupt(&'static str),
    /// Trailer count or checksum mismatch.
    TrailerMismatch,
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error: {e}"),
            StreamError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            StreamError::TrailerMismatch => write!(f, "trailer count/checksum mismatch"),
        }
    }
}

impl std::error::Error for StreamError {}

impl<R: Read> StreamReader<R> {
    /// Open a stream, validating the header.
    pub fn new(mut input: R) -> Result<Self, StreamError> {
        let mut header = [0u8; 8];
        input.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(StreamError::Corrupt("bad magic"));
        }
        if u16::from_le_bytes([header[4], header[5]]) != VERSION {
            return Err(StreamError::Corrupt("unsupported version"));
        }
        Ok(StreamReader { input, checksum: Fletcher::default(), read_count: 0, done: false })
    }

    fn read_one(&mut self) -> Result<Option<Record>, StreamError> {
        let mut scratch = [0u8; 16];
        self.input.read_exact(&mut scratch[..1])?;
        let tag = scratch[0];
        if tag == END_TAG {
            let mut trailer = [0u8; 16];
            self.input.read_exact(&mut trailer)?;
            let count = u64::from_le_bytes(trailer[0..8].try_into().expect("length"));
            let stored = u64::from_le_bytes(trailer[8..16].try_into().expect("length"));
            self.done = true;
            if count != self.read_count || stored != self.checksum.finish() {
                return Err(StreamError::TrailerMismatch);
            }
            return Ok(None);
        }
        let body_len = match tag {
            0 | 2 => 12,
            1 => 8,
            3 => 9,
            _ => return Err(StreamError::Corrupt("unknown record tag")),
        };
        self.input.read_exact(&mut scratch[1..1 + body_len])?;
        self.checksum.update(&scratch[..1 + body_len]);
        self.read_count += 1;
        let addr = u32::from_le_bytes(scratch[1..5].try_into().expect("length"));
        let time_s = u32::from_le_bytes(scratch[5..9].try_into().expect("length"));
        let kind = match tag {
            0 => RecordKind::Matched {
                rtt_us: u32::from_le_bytes(scratch[9..13].try_into().expect("length")),
            },
            1 => RecordKind::Timeout,
            2 => RecordKind::Unmatched {
                recv_s: u32::from_le_bytes(scratch[9..13].try_into().expect("length")),
            },
            3 => RecordKind::IcmpError { code: scratch[9] },
            _ => unreachable!("tag validated above"),
        };
        Ok(Some(Record { addr, time_s, kind }))
    }
}

impl<R: Read> Iterator for StreamReader<R> {
    type Item = Result<Record, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_one() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::matched(0x0a000001, 0, 123_456),
            Record::timeout(0x0a000002, 3),
            Record::unmatched(0x0a000002, 333),
            Record::icmp_error(0x0a000003, 4, 1),
        ]
    }

    fn write_stream(records: &[Record]) -> Vec<u8> {
        let mut w = StreamWriter::new(Vec::new()).unwrap();
        for &r in records {
            w.push(r);
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let records = sample();
        let bytes = write_stream(&records);
        let reader = StreamReader::new(&bytes[..]).unwrap();
        let back: Result<Vec<Record>, StreamError> = reader.collect();
        assert_eq!(back.unwrap(), records);
    }

    #[test]
    fn empty_stream_roundtrip() {
        let bytes = write_stream(&[]);
        let back: Vec<Record> =
            StreamReader::new(&bytes[..]).unwrap().map(Result::unwrap).collect();
        assert!(back.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_silence() {
        let bytes = write_stream(&sample());
        // Chop off the trailer entirely.
        let cut = &bytes[..bytes.len() - 17];
        let reader = StreamReader::new(cut).unwrap();
        let result: Result<Vec<Record>, StreamError> = reader.collect();
        assert!(result.is_err(), "truncated stream must not read cleanly");
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = write_stream(&sample());
        bytes[10] ^= 0x40; // inside the first record
        let reader = StreamReader::new(&bytes[..]).unwrap();
        let result: Result<Vec<Record>, StreamError> = reader.collect();
        match result {
            Err(StreamError::TrailerMismatch)
            | Err(StreamError::Io(_))
            | Err(StreamError::Corrupt(_)) => {}
            other => panic!("corruption slipped through: {other:?}"),
        }
    }

    #[test]
    fn count_is_tracked() {
        let mut w = StreamWriter::new(Vec::new()).unwrap();
        assert_eq!(w.count(), 0);
        for r in sample() {
            w.push(r);
        }
        assert_eq!(w.count(), 4);
    }

    #[test]
    fn compatible_with_large_streams() {
        let records: Vec<Record> = (0..50_000u32).map(|i| Record::matched(i, i, i * 2)).collect();
        let bytes = write_stream(&records);
        let n = StreamReader::new(&bytes[..]).unwrap().map(Result::unwrap).count();
        assert_eq!(n, 50_000);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write_stream(&sample());
        bytes[0] = b'X';
        assert!(matches!(StreamReader::new(&bytes[..]), Err(StreamError::Corrupt("bad magic"))));
    }
}
