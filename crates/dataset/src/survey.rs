//! Survey container, metadata and the streaming sink probers write into.

use crate::record::{Record, RecordKind};

/// Identity of one survey, mirroring ISI's naming (`IT63w` = survey 63
/// from vantage `w`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyMeta {
    /// Survey name, e.g. `IT63w`.
    pub name: String,
    /// Vantage-point code letter (`w`, `c`, `j`, `g`).
    pub vantage: char,
    /// Calendar year the survey models.
    pub year: u16,
    /// Label date, `YYYYMMDD` as ISI names them (e.g. 20150117).
    pub date_label: u32,
}

impl SurveyMeta {
    /// Compose the ISI-style display name, e.g. `IT63w (20150117)`.
    pub fn display_name(&self) -> String {
        format!("{} ({})", self.name, self.date_label)
    }
}

/// Anything that accepts a stream of records. Probers write through this
/// so large runs can stream to disk instead of accumulating in memory.
pub trait RecordSink {
    /// Append one record.
    fn push(&mut self, record: Record);
}

impl RecordSink for Vec<Record> {
    fn push(&mut self, record: Record) {
        Vec::push(self, record);
    }
}

/// Counting sink: keeps only aggregate statistics (for huge runs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SurveyStats {
    /// Matched (survey-detected) responses.
    pub matched: u64,
    /// Timed-out probes.
    pub timeouts: u64,
    /// Unmatched responses.
    pub unmatched: u64,
    /// ICMP errors.
    pub errors: u64,
}

impl SurveyStats {
    /// Total probes that were answered or timed out (excludes unmatched,
    /// which are responses, not probes).
    pub fn probes(&self) -> u64 {
        self.matched + self.timeouts + self.errors
    }

    /// Fraction of probes that were matched — the "response rate" plotted
    /// in the lower panel of the paper's Figure 9.
    pub fn response_rate(&self) -> f64 {
        let probes = self.probes();
        if probes == 0 {
            0.0
        } else {
            self.matched as f64 / probes as f64
        }
    }

    /// Fold in one record.
    pub fn count(&mut self, record: &Record) {
        match record.kind {
            RecordKind::Matched { .. } => self.matched += 1,
            RecordKind::Timeout => self.timeouts += 1,
            RecordKind::Unmatched { .. } => self.unmatched += 1,
            RecordKind::IcmpError { .. } => self.errors += 1,
        }
    }
}

impl RecordSink for SurveyStats {
    fn push(&mut self, record: Record) {
        self.count(&record);
    }
}

/// A survey: metadata plus its records, with derived statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Survey {
    /// Identity.
    pub meta: SurveyMeta,
    /// All records, in prober emission order.
    pub records: Vec<Record>,
}

impl Survey {
    /// An empty survey.
    pub fn new(meta: SurveyMeta) -> Self {
        Survey { meta, records: Vec::new() }
    }

    /// Aggregate statistics over the records.
    pub fn stats(&self) -> SurveyStats {
        let mut s = SurveyStats::default();
        for r in &self.records {
            s.count(r);
        }
        s
    }

    /// Distinct addresses with at least one matched response.
    pub fn responsive_addresses(&self) -> usize {
        let mut addrs: Vec<u32> =
            self.records.iter().filter(|r| r.is_matched()).map(|r| r.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len()
    }
}

impl RecordSink for Survey {
    fn push(&mut self, record: Record) {
        self.records.push(record);
    }
}

/// A sink that duplicates records into two sinks (e.g. a file writer plus
/// running statistics).
#[derive(Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: RecordSink, B: RecordSink> RecordSink for TeeSink<A, B> {
    fn push(&mut self, record: Record) {
        self.0.push(record);
        self.1.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> SurveyMeta {
        SurveyMeta { name: "IT63w".into(), vantage: 'w', year: 2015, date_label: 2015_01_17 }
    }

    #[test]
    fn display_name_matches_isi_style() {
        assert_eq!(meta().display_name(), "IT63w (20150117)");
    }

    #[test]
    fn stats_count_kinds_and_rate() {
        let mut s = Survey::new(meta());
        s.push(Record::matched(1, 0, 100));
        s.push(Record::matched(1, 660, 120));
        s.push(Record::timeout(2, 0));
        s.push(Record::unmatched(2, 7));
        s.push(Record::icmp_error(3, 1, 1));
        let st = s.stats();
        assert_eq!(st.matched, 2);
        assert_eq!(st.timeouts, 1);
        assert_eq!(st.unmatched, 1);
        assert_eq!(st.errors, 1);
        assert_eq!(st.probes(), 4);
        assert!((st.response_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.responsive_addresses(), 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = SurveyStats::default();
        assert_eq!(st.probes(), 0);
        assert_eq!(st.response_rate(), 0.0);
    }

    #[test]
    fn tee_sink_duplicates() {
        let mut tee = TeeSink(Vec::new(), SurveyStats::default());
        tee.push(Record::matched(9, 1, 5));
        tee.push(Record::timeout(9, 2));
        assert_eq!(tee.0.len(), 2);
        assert_eq!(tee.1.matched, 1);
        assert_eq!(tee.1.timeouts, 1);
    }
}
