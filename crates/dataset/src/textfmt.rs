//! Line-oriented text codec for survey records.
//!
//! One record per line, tab-separated, designed to be greppable and to
//! round-trip exactly:
//!
//! ```text
//! M\t<addr dotted-quad>\t<time_s>\t<rtt_us>
//! T\t<addr>\t<time_s>
//! U\t<src addr>\t<recv_s>
//! E\t<addr>\t<time_s>\t<code>
//! ```

use crate::record::{Record, RecordKind};
use std::fmt::Write as _;

/// Render one record as its text line (no trailing newline).
pub fn to_line(r: &Record) -> String {
    let ip = beware_addr_fmt(r.addr);
    let mut s = String::with_capacity(32);
    match r.kind {
        RecordKind::Matched { rtt_us } => {
            write!(s, "M\t{ip}\t{}\t{rtt_us}", r.time_s).expect("write to String");
        }
        RecordKind::Timeout => write!(s, "T\t{ip}\t{}", r.time_s).expect("write to String"),
        RecordKind::Unmatched { recv_s } => {
            write!(s, "U\t{ip}\t{recv_s}").expect("write to String");
        }
        RecordKind::IcmpError { code } => {
            write!(s, "E\t{ip}\t{}\t{code}", r.time_s).expect("write to String");
        }
    }
    s
}

/// Parse one line produced by [`to_line`].
pub fn from_line(line: &str) -> Result<Record, ParseError> {
    let mut fields = line.split('\t');
    let tag = fields.next().ok_or(ParseError::MissingField("tag"))?;
    let addr = parse_ip(fields.next().ok_or(ParseError::MissingField("addr"))?)?;
    let num = |name: &'static str, f: Option<&str>| -> Result<u32, ParseError> {
        f.ok_or(ParseError::MissingField(name))?
            .parse::<u32>()
            .map_err(|_| ParseError::BadNumber(name))
    };
    let record = match tag {
        "M" => {
            let time_s = num("time_s", fields.next())?;
            let rtt_us = num("rtt_us", fields.next())?;
            Record::matched(addr, time_s, rtt_us)
        }
        "T" => Record::timeout(addr, num("time_s", fields.next())?),
        "U" => Record::unmatched(addr, num("recv_s", fields.next())?),
        "E" => {
            let time_s = num("time_s", fields.next())?;
            let code = num("code", fields.next())?;
            let code = u8::try_from(code).map_err(|_| ParseError::BadNumber("code"))?;
            Record::icmp_error(addr, time_s, code)
        }
        _ => return Err(ParseError::BadTag),
    };
    if fields.next().is_some() {
        return Err(ParseError::TrailingFields);
    }
    Ok(record)
}

/// Serialize many records to a text blob.
pub fn to_text(records: &[Record]) -> String {
    let mut out = String::with_capacity(records.len() * 28);
    for r in records {
        out.push_str(&to_line(r));
        out.push('\n');
    }
    out
}

/// Parse a blob produced by [`to_text`]. Empty lines are skipped.
pub fn from_text(text: &str) -> Result<Vec<Record>, ParseError> {
    text.lines().filter(|l| !l.is_empty()).map(from_line).collect()
}

fn beware_addr_fmt(addr: u32) -> String {
    std::net::Ipv4Addr::from(addr).to_string()
}

fn parse_ip(s: &str) -> Result<u32, ParseError> {
    s.parse::<std::net::Ipv4Addr>().map(u32::from).map_err(|_| ParseError::BadAddr)
}

/// Text-codec parse failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Unknown record tag letter.
    BadTag,
    /// Address failed to parse as a dotted quad.
    BadAddr,
    /// A required field is absent.
    MissingField(&'static str),
    /// A numeric field failed to parse.
    BadNumber(&'static str),
    /// Extra fields after the record.
    TrailingFields,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadTag => write!(f, "unknown record tag"),
            ParseError::BadAddr => write!(f, "bad address"),
            ParseError::MissingField(name) => write!(f, "missing field {name}"),
            ParseError::BadNumber(name) => write!(f, "bad numeric field {name}"),
            ParseError::TrailingFields => write!(f, "trailing fields"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_stable_and_readable() {
        assert_eq!(to_line(&Record::matched(0x0a000001, 660, 250_000)), "M\t10.0.0.1\t660\t250000");
        assert_eq!(to_line(&Record::timeout(0x0a000002, 3)), "T\t10.0.0.2\t3");
        assert_eq!(to_line(&Record::unmatched(0x0a000002, 333)), "U\t10.0.0.2\t333");
        assert_eq!(to_line(&Record::icmp_error(0x0a000003, 4, 1)), "E\t10.0.0.3\t4\t1");
    }

    #[test]
    fn roundtrip_all_kinds() {
        let records = vec![
            Record::matched(0x0a000001, 0, 1),
            Record::timeout(0xffffffff, u32::MAX),
            Record::unmatched(0x01020304, 99),
            Record::icmp_error(0, 0, 255),
        ];
        let text = to_text(&records);
        assert_eq!(from_text(&text).unwrap(), records);
    }

    #[test]
    fn parse_errors_are_specific() {
        assert_eq!(from_line("X\t1.2.3.4\t0"), Err(ParseError::BadTag));
        assert_eq!(from_line("M\tnot-an-ip\t0\t0"), Err(ParseError::BadAddr));
        assert_eq!(from_line("M\t1.2.3.4\t0"), Err(ParseError::MissingField("rtt_us")));
        assert_eq!(from_line("M\t1.2.3.4\tzero\t0"), Err(ParseError::BadNumber("time_s")));
        assert_eq!(from_line("T\t1.2.3.4\t0\textra"), Err(ParseError::TrailingFields));
        assert_eq!(from_line("E\t1.2.3.4\t0\t999"), Err(ParseError::BadNumber("code")));
    }

    #[test]
    fn empty_lines_skipped() {
        let text = "\nM\t1.2.3.4\t0\t7\n\nT\t1.2.3.4\t1\n";
        assert_eq!(from_text(text).unwrap().len(), 2);
    }
}
