//! Records of the stateless (zmap-style) scanner.
//!
//! The authors' zmap extension embeds the probed destination and the send
//! timestamp in the echo payload, so each response yields a self-contained
//! record: who was probed, who answered (they differ for broadcast
//! responders), and the RTT — no per-probe state at the scanner.

/// One response observed by a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScanRecord {
    /// Destination originally probed (recovered from the payload).
    pub probed: u32,
    /// Source address of the response.
    pub responder: u32,
    /// Round-trip time in microseconds (send time from payload).
    pub rtt_us: u32,
}

impl ScanRecord {
    /// RTT in seconds.
    pub fn rtt_secs(&self) -> f64 {
        f64::from(self.rtt_us) / 1e6
    }

    /// True when the response came from a different address than the one
    /// probed — the broadcast-responder signature (Figure 2).
    pub fn is_cross_address(&self) -> bool {
        self.probed != self.responder
    }
}

/// Scan identity, mirroring the paper's Table 3 columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanMeta {
    /// Human label, e.g. `Apr 17, 2015`.
    pub label: String,
    /// Day of week, e.g. `Fri`.
    pub day: String,
    /// Scan begin time `HH:MM` (UTC).
    pub begin: String,
}

/// One complete scan: metadata plus every response.
#[derive(Debug, Clone, PartialEq)]
pub struct ZmapScan {
    /// Identity.
    pub meta: ScanMeta,
    /// All responses.
    pub records: Vec<ScanRecord>,
}

impl ZmapScan {
    /// An empty scan.
    pub fn new(meta: ScanMeta) -> Self {
        ZmapScan { meta, records: Vec::new() }
    }

    /// Number of echo responses (the Table 3 "Echo Responses" column).
    pub fn response_count(&self) -> usize {
        self.records.len()
    }

    /// Distinct responding addresses.
    pub fn responder_count(&self) -> usize {
        let mut addrs: Vec<u32> = self.records.iter().map(|r| r.responder).collect();
        addrs.sort_unstable();
        addrs.dedup();
        addrs.len()
    }

    /// Responses that came from a different address than probed —
    /// broadcast responders and friends.
    pub fn cross_address_records(&self) -> impl Iterator<Item = &ScanRecord> {
        self.records.iter().filter(|r| r.is_cross_address())
    }

    /// Per-responder best (minimum) RTT in seconds, deduplicating
    /// multi-response addresses. Sorted by address.
    pub fn min_rtt_per_responder(&self) -> Vec<(u32, f64)> {
        let mut pairs: Vec<(u32, u32)> =
            self.records.iter().map(|r| (r.responder, r.rtt_us)).collect();
        pairs.sort_unstable();
        let mut out: Vec<(u32, f64)> = Vec::new();
        for (addr, rtt) in pairs {
            match out.last_mut() {
                Some((last, _)) if *last == addr => {}
                _ => out.push((addr, f64::from(rtt) / 1e6)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ScanMeta {
        ScanMeta { label: "Apr 17, 2015".into(), day: "Fri".into(), begin: "02:44".into() }
    }

    #[test]
    fn cross_address_detection() {
        let same = ScanRecord { probed: 1, responder: 1, rtt_us: 100 };
        let diff = ScanRecord { probed: 0xff, responder: 0x10, rtt_us: 100 };
        assert!(!same.is_cross_address());
        assert!(diff.is_cross_address());
    }

    #[test]
    fn scan_aggregates() {
        let mut scan = ZmapScan::new(meta());
        scan.records.push(ScanRecord { probed: 1, responder: 1, rtt_us: 200_000 });
        scan.records.push(ScanRecord { probed: 1, responder: 1, rtt_us: 100_000 });
        scan.records.push(ScanRecord { probed: 255, responder: 7, rtt_us: 50_000 });
        assert_eq!(scan.response_count(), 3);
        assert_eq!(scan.responder_count(), 2);
        assert_eq!(scan.cross_address_records().count(), 1);
        let min = scan.min_rtt_per_responder();
        assert_eq!(min.len(), 2);
        assert_eq!(min[0], (1, 0.1));
        assert_eq!(min[1], (7, 0.05));
    }

    #[test]
    fn rtt_seconds() {
        let r = ScanRecord { probed: 1, responder: 1, rtt_us: 1_500_000 };
        assert!((r.rtt_secs() - 1.5).abs() < 1e-12);
    }
}
