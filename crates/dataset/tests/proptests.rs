//! Property tests: both codecs round-trip arbitrary records, and the
//! binary codec detects arbitrary single-byte corruption of record bytes.
//! The timeout-oracle snapshot codec gets the same treatment, plus its
//! canonical-form guarantee: write → read → re-write is byte-identical.

use beware_dataset::snapshot::{self, prefix_mask, SnapshotEntry, TimeoutSnapshot};
use beware_dataset::{binfmt, textfmt, Record, RecordKind};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (any::<u32>(), any::<u32>(), arb_kind()).prop_map(|(addr, time_s, kind)| Record {
        addr,
        time_s,
        kind,
    })
}

fn arb_kind() -> impl Strategy<Value = RecordKind> {
    prop_oneof![
        any::<u32>().prop_map(|rtt_us| RecordKind::Matched { rtt_us }),
        Just(RecordKind::Timeout),
        any::<u32>().prop_map(|recv_s| RecordKind::Unmatched { recv_s }),
        any::<u8>().prop_map(|code| RecordKind::IcmpError { code }),
    ]
}

proptest! {
    #[test]
    fn binary_roundtrip(records in proptest::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        binfmt::write_records(&mut buf, &records).unwrap();
        let back = binfmt::read_records(&mut &buf[..]).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn text_roundtrip(records in proptest::collection::vec(arb_record(), 0..200)) {
        // The text format stores Unmatched recv_s as the single timestamp,
        // so normalize records the way the constructor does.
        let records: Vec<Record> = records
            .into_iter()
            .map(|r| match r.kind {
                RecordKind::Unmatched { recv_s } => Record::unmatched(r.addr, recv_s),
                _ => r,
            })
            .collect();
        let text = textfmt::to_text(&records);
        let back = textfmt::from_text(&text).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn binary_detects_payload_corruption(
        records in proptest::collection::vec(arb_record(), 1..50),
        byte in any::<u8>(),
        pos in any::<proptest::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        binfmt::write_records(&mut buf, &records).unwrap();
        // Corrupt somewhere strictly inside the record region (skip the
        // 16-byte header and 8-byte trailer).
        let lo = 16;
        let hi = buf.len() - 8;
        let idx = lo + pos.index(hi - lo);
        prop_assume!(buf[idx] != byte);
        buf[idx] = byte;
        // Either the framing breaks (Corrupt/Io) or the checksum catches
        // it; silently succeeding with different records is the only
        // unacceptable outcome.
        match binfmt::read_records(&mut &buf[..]) {
            Ok(back) => prop_assert_eq!(back, records, "corruption silently accepted"),
            Err(_) => {}
        }
    }

    #[test]
    fn text_lines_have_no_newlines(r in arb_record()) {
        let line = textfmt::to_line(&r);
        prop_assert!(!line.contains('\n'));
        prop_assert!(line.split('\t').count() >= 3);
    }

    #[test]
    fn snapshot_roundtrip_is_lossless_and_canonical(snap in arb_snapshot()) {
        let mut buf = Vec::new();
        snapshot::write_snapshot(&mut buf, &snap).unwrap();
        let back = snapshot::read_snapshot(&mut &buf[..]).unwrap();
        prop_assert_eq!(&back, &snap, "decode must be lossless");
        let mut again = Vec::new();
        snapshot::write_snapshot(&mut again, &back).unwrap();
        prop_assert_eq!(again, buf, "re-encode must be byte-identical");
    }

    #[test]
    fn delta_roundtrips_and_applies_bit_identically((base, target) in arb_snapshot_pair()) {
        let delta = snapshot::diff_snapshot(&base, &target).unwrap();

        // The wire form is canonical and lossless.
        let mut buf = Vec::new();
        snapshot::write_delta(&mut buf, &delta).unwrap();
        let back = snapshot::read_delta(&mut &buf[..]).unwrap();
        prop_assert_eq!(&back, &delta, "delta decode must be lossless");
        let mut again = Vec::new();
        snapshot::write_delta(&mut again, &back).unwrap();
        prop_assert_eq!(again, buf, "delta re-encode must be byte-identical");

        // Applying the decoded delta reproduces the target snapshot
        // byte-for-byte: same encoding, same identity checksum.
        let applied = back.apply(&base).unwrap();
        prop_assert_eq!(&applied, &target);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        snapshot::write_snapshot(&mut a, &applied).unwrap();
        snapshot::write_snapshot(&mut b, &target).unwrap();
        prop_assert_eq!(a, b, "apply(base, delta) must equal the full rebuild");
    }

    #[test]
    fn delta_rejects_a_stale_base((base, target) in arb_snapshot_pair()) {
        prop_assume!(snapshot::snapshot_checksum(&base) != snapshot::snapshot_checksum(&target));
        let delta = snapshot::diff_snapshot(&base, &target).unwrap();
        // The target shares the base's grid but not its checksum — the
        // shape of a delta arriving after the snapshot already moved on.
        match delta.apply(&target) {
            Err(beware_dataset::SnapshotError::StaleDelta { expected, got }) => {
                prop_assert_eq!(expected, snapshot::snapshot_checksum(&base));
                prop_assert_eq!(got, snapshot::snapshot_checksum(&target));
            }
            other => prop_assert!(false, "stale base accepted: {other:?}"),
        }
    }

    #[test]
    fn snapshot_detects_single_byte_corruption(
        snap in arb_snapshot(),
        byte in any::<u8>(),
        pos in any::<proptest::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        snapshot::write_snapshot(&mut buf, &snap).unwrap();
        // Corrupt anywhere past the 8-byte header (header corruption is
        // caught by magic/version checks, exercised in unit tests).
        let idx = 8 + pos.index(buf.len() - 8);
        prop_assume!(buf[idx] != byte);
        buf[idx] = byte;
        match snapshot::read_snapshot(&mut &buf[..]) {
            // Accepting the corrupted bytes is only sound if they decode
            // to the very same snapshot (impossible here since one byte
            // differs and the encoding is canonical — so any Ok must
            // compare unequal and fail the test).
            Ok(back) => prop_assert_eq!(back, snap, "corruption silently accepted"),
            Err(_) => {}
        }
    }
}

/// Arbitrary *canonical* snapshot: strictly increasing levels in
/// `(0, 1000]`, entries strictly ascending by `(prefix, len)` with host
/// bits masked off, and arbitrary `f64`-bit cells (including NaNs and
/// infinities — the codec must not care).
/// A base snapshot and a same-grid target: some base entries carried
/// over verbatim (absent from the delta), some rewritten or added with
/// fresh cells (upserts), the rest dropped (removals), and the fallback
/// kept or replaced — every shape a delta can take.
fn arb_snapshot_pair() -> impl Strategy<Value = (TimeoutSnapshot, TimeoutSnapshot)> {
    (
        arb_snapshot(),
        proptest::collection::vec((any::<u32>(), 0..=32u8), 0..12),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(base, raw_keys, cell_seed, keep_fallback)| {
            let cells = base.address_pct_tenths.len() * base.ping_pct_tenths.len();
            let mut rng = beware_runtime::rng::SplitMix64::new(cell_seed);
            // Keep every other base entry bit-for-bit; the rest vanish
            // unless a fresh key below resurrects them (as an upsert).
            let mut map = std::collections::BTreeMap::new();
            for e in base.entries.iter().step_by(2) {
                map.insert((e.prefix, e.len), e.cells.clone());
            }
            for (p, l) in raw_keys {
                let key = (p & prefix_mask(l), l);
                map.entry(key).or_insert_with(|| (0..cells).map(|_| rng.next_u64()).collect());
            }
            let target = TimeoutSnapshot {
                address_pct_tenths: base.address_pct_tenths.clone(),
                ping_pct_tenths: base.ping_pct_tenths.clone(),
                fallback: if keep_fallback {
                    base.fallback.clone()
                } else {
                    (0..cells).map(|_| rng.next_u64()).collect()
                },
                entries: map
                    .into_iter()
                    .map(|((prefix, len), cells)| SnapshotEntry { prefix, len, cells })
                    .collect(),
            };
            (base, target)
        })
}

fn arb_snapshot() -> impl Strategy<Value = TimeoutSnapshot> {
    (
        proptest::collection::vec(1..=1000u16, 1..5),
        proptest::collection::vec(1..=1000u16, 1..5),
        proptest::collection::vec((any::<u32>(), 0..=32u8), 0..12),
        any::<u64>(),
    )
        .prop_map(|(mut r, mut c, raw_entries, cell_seed)| {
            r.sort_unstable();
            r.dedup();
            c.sort_unstable();
            c.dedup();
            let cells = r.len() * c.len();

            let mut keys: Vec<(u32, u8)> =
                raw_entries.into_iter().map(|(p, l)| (p & prefix_mask(l), l)).collect();
            keys.sort_unstable();
            keys.dedup();

            // Arbitrary cell bits from the canonical SplitMix64 stream —
            // the codec treats them as opaque u64s.
            let mut rng = beware_runtime::rng::SplitMix64::new(cell_seed);
            let mut next = move || rng.next_u64();
            TimeoutSnapshot {
                address_pct_tenths: r,
                ping_pct_tenths: c,
                fallback: (0..cells).map(|_| next()).collect(),
                entries: keys
                    .into_iter()
                    .map(|(prefix, len)| SnapshotEntry {
                        prefix,
                        len,
                        cells: (0..cells).map(|_| next()).collect(),
                    })
                    .collect(),
            }
        })
}
