//! Property tests: both codecs round-trip arbitrary records, and the
//! binary codec detects arbitrary single-byte corruption of record bytes.

use beware_dataset::{binfmt, textfmt, Record, RecordKind};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (any::<u32>(), any::<u32>(), arb_kind())
        .prop_map(|(addr, time_s, kind)| Record { addr, time_s, kind })
}

fn arb_kind() -> impl Strategy<Value = RecordKind> {
    prop_oneof![
        any::<u32>().prop_map(|rtt_us| RecordKind::Matched { rtt_us }),
        Just(RecordKind::Timeout),
        any::<u32>().prop_map(|recv_s| RecordKind::Unmatched { recv_s }),
        any::<u8>().prop_map(|code| RecordKind::IcmpError { code }),
    ]
}

proptest! {
    #[test]
    fn binary_roundtrip(records in proptest::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        binfmt::write_records(&mut buf, &records).unwrap();
        let back = binfmt::read_records(&mut &buf[..]).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn text_roundtrip(records in proptest::collection::vec(arb_record(), 0..200)) {
        // The text format stores Unmatched recv_s as the single timestamp,
        // so normalize records the way the constructor does.
        let records: Vec<Record> = records
            .into_iter()
            .map(|r| match r.kind {
                RecordKind::Unmatched { recv_s } => Record::unmatched(r.addr, recv_s),
                _ => r,
            })
            .collect();
        let text = textfmt::to_text(&records);
        let back = textfmt::from_text(&text).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn binary_detects_payload_corruption(
        records in proptest::collection::vec(arb_record(), 1..50),
        byte in any::<u8>(),
        pos in any::<proptest::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        binfmt::write_records(&mut buf, &records).unwrap();
        // Corrupt somewhere strictly inside the record region (skip the
        // 16-byte header and 8-byte trailer).
        let lo = 16;
        let hi = buf.len() - 8;
        let idx = lo + pos.index(hi - lo);
        prop_assume!(buf[idx] != byte);
        buf[idx] = byte;
        // Either the framing breaks (Corrupt/Io) or the checksum catches
        // it; silently succeeding with different records is the only
        // unacceptable outcome.
        match binfmt::read_records(&mut &buf[..]) {
            Ok(back) => prop_assert_eq!(back, records, "corruption silently accepted"),
            Err(_) => {}
        }
    }

    #[test]
    fn text_lines_have_no_newlines(r in arb_record()) {
        let line = textfmt::to_line(&r);
        prop_assert!(!line.contains('\n'));
        prop_assert!(line.split('\t').count() >= 3);
    }
}
