//! # beware-faultsim
//!
//! Deterministic fault injection for the serving stack. The paper's whole
//! point is that real networks deliver bytes late, in pieces, or not at
//! all — this crate makes our own TCP control plane meet such networks on
//! demand, reproducibly.
//!
//! Three layers:
//!
//! * [`FaultyTransport`] wraps any `Read + Write` transport and applies a
//!   seeded schedule of byte-level faults: writes split at arbitrary
//!   boundaries, reads that time out, corrupted bytes, mid-stream
//!   truncation, abrupt closes. It is pure and in-process — the right tool
//!   for unit tests of codec and client robustness.
//! * [`ChaosProxy`](proxy::ChaosProxy) is an in-process TCP proxy that
//!   sits between a real client and a real server and injects the same
//!   fault repertoire into live traffic — the right tool for end-to-end
//!   chaos suites (`tests/chaos.rs`, `beware chaos`).
//! * [`topology`] generates seeded [`LinkEvent`](beware_netsim::LinkEvent)
//!   schedules — partitions and capacity degrades of the netsim's shared
//!   links — so a fault hits every host behind a link at once instead of
//!   one connection's byte stream. The right tool for the in-sim campaign
//!   (`beware simserve`).
//!
//! Every decision is drawn from the workspace's canonical SplitMix64
//! stream (`beware_runtime::rng`), derived with the shared
//! seed-derivation discipline: connection *i* of a run seeded `s` draws
//! from `derive_seed(s, i)`, so the *sequence* of fault decisions per
//! connection is a pure function of `(seed, connection index)`. What
//! wall-clock moment each decision lands on depends on the
//! [`Clock`](beware_runtime::Clock) in use — real time by default, or a
//! [`VirtualClock`](beware_runtime::VirtualClock) under which a 145 s
//! delay schedule replays in microseconds (see DESIGN.md §10). Under a
//! wall clock the landing moments still depend on kernel scheduling,
//! which is why every fault counter lives in the nondeterministic
//! `faults/` telemetry family (see DESIGN.md §9).
//!
//! The contract this crate exists to enforce is stated once, here: under
//! any fault schedule, a request either completes with a correct answer
//! or fails with a **typed** error in bounded time. No hangs, no silently
//! wrong answers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proxy;
pub mod topology;
mod transport;

/// The seeding discipline, re-exported from `beware-runtime` — the single
/// canonical SplitMix64 in the workspace. This crate used to carry its
/// own character-for-character copy; `beware_runtime::rng`'s tests pin
/// today's streams to that retired copy bit for bit.
pub mod rng {
    pub use beware_runtime::rng::{derive_seed, SplitMix64};

    /// The decision-stream type's historical name in this crate.
    pub type SplitMix = SplitMix64;
}

pub use proxy::ChaosProxy;
pub use topology::{chaos_schedule, mid_campaign_partitions, TopologyFaultCfg};
pub use transport::FaultyTransport;

/// Fault-injection parameters shared by [`FaultyTransport`] and
/// [`ChaosProxy`]. All probabilities are per *decision point* (one chunk
/// of bytes moved, or one connection-lifetime event), in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct FaultCfg {
    /// Root seed; connection `i` draws from `rng::derive_seed(seed, i)`.
    pub seed: u64,
    /// Forward/write at most this many bytes per chunk, with the actual
    /// chunk length drawn uniformly from `1..=max_chunk`. `0` disables
    /// splitting (chunks pass through whole).
    pub max_chunk: usize,
    /// Probability a chunk is delayed before being forwarded.
    pub delay_prob: f64,
    /// Upper bound on one injected delay, milliseconds (drawn uniformly
    /// from `1..=max_delay_ms`).
    pub max_delay_ms: u64,
    /// Probability one byte of a chunk is corrupted (XOR with a nonzero
    /// mask) before being forwarded.
    pub corrupt_prob: f64,
    /// Per-chunk probability the connection is truncated: the chunk and
    /// everything after it is swallowed and the connection closed, i.e. a
    /// frame can be cut anywhere, including inside its length prefix.
    pub truncate_prob: f64,
    /// Per-chunk probability of an abrupt close (RST-like: both
    /// directions die immediately, nothing is flushed).
    pub close_prob: f64,
    /// Per-chunk probability a direction stalls: bytes keep being
    /// accepted but nothing is forwarded ever again — the "peer stops
    /// reading" case that must not hang anyone.
    pub stall_prob: f64,
}

impl FaultCfg {
    /// No faults at all: traffic passes through verbatim (the proxy still
    /// counts connections and bytes).
    pub fn disabled(seed: u64) -> FaultCfg {
        FaultCfg {
            seed,
            max_chunk: 0,
            delay_prob: 0.0,
            max_delay_ms: 0,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            close_prob: 0.0,
            stall_prob: 0.0,
        }
    }

    /// The standard chaos mix used by `beware chaos` and the chaos test
    /// suite: aggressive splitting, occasional delays, and a steady trickle
    /// of corruption, truncation, stalls and aborts.
    pub fn chaos(seed: u64) -> FaultCfg {
        FaultCfg {
            seed,
            max_chunk: 7,
            delay_prob: 0.05,
            max_delay_ms: 3,
            corrupt_prob: 0.02,
            truncate_prob: 0.005,
            close_prob: 0.005,
            stall_prob: 0.003,
        }
    }

    /// Splitting only: every frame arrives in dribbles but intact — for
    /// exercising reassembly paths without any failures.
    pub fn split_only(seed: u64) -> FaultCfg {
        FaultCfg { max_chunk: 3, ..FaultCfg::disabled(seed) }
    }
}

#[cfg(test)]
mod tests {
    use super::rng::{derive_seed, SplitMix};

    #[test]
    fn reexported_rng_is_the_retired_fault_stream() {
        // The values this crate's private copy produced before the dedup,
        // frozen here: fault schedules must survive the re-export.
        assert_eq!(derive_seed(7, 1), 0xf75f_04cb_b5a1_a1dd);
        let mut r = SplitMix::new(derive_seed(0xbe0a, 3));
        assert_eq!(r.next_u64(), 0x9357_2081_16c5_6e3c);
        assert!(r.unit() < 1.0);
    }
}
