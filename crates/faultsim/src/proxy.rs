//! In-process TCP chaos proxy.
//!
//! `ChaosProxy` binds an ephemeral port, forwards each accepted
//! connection to the upstream address, and injects the [`FaultCfg`]
//! repertoire into the forwarded bytes in both directions. Connection
//! *i* draws its fault decisions from `derive_seed(cfg.seed, i)`;
//! per-connection telemetry registries are merged **in connection index
//! order** at [`join`](ChaosProxy::join), mirroring the shard-merge
//! discipline of the server itself.
//!
//! The proxy is itself held to the no-hang contract it exists to test:
//! every socket is nonblocking, every forward retry is bounded, and a
//! stalled direction parks until the proxy is stopped rather than
//! spinning. `join` always returns.
//!
//! Injected delays are **deferred releases**, not inline sleeps: a
//! delayed chunk is scheduled on a [`DeadlineWheel`] and held while the
//! *other* direction keeps flowing — a delay on the response path must
//! not freeze the request path, exactly the head-of-line distinction the
//! paper's measurements turn on. All waiting goes through a
//! [`Clock`](beware_runtime::Clock), so a virtual clock replays
//! multi-minute delay schedules in microseconds of wall time
//! ([`start_with_clock`](ChaosProxy::start_with_clock)).

use crate::rng::{derive_seed, SplitMix};
use crate::FaultCfg;
use beware_runtime::clock::{SharedClock, WallClock};
use beware_runtime::wheel::DeadlineWheel;
use beware_telemetry::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running chaos proxy. Stop it with [`stop`](ChaosProxy::stop) /
/// [`join`](ChaosProxy::join); dropping the handle leaves the threads
/// running detached.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<(Registry, Vec<JoinHandle<Registry>>)>>,
}

impl ChaosProxy {
    /// Bind `127.0.0.1:0` and start proxying to `upstream` with the given
    /// fault schedule. All waits are real time; see
    /// [`start_with_clock`](ChaosProxy::start_with_clock).
    pub fn start(upstream: SocketAddr, cfg: FaultCfg) -> io::Result<ChaosProxy> {
        ChaosProxy::start_with_clock(upstream, cfg, WallClock::shared())
    }

    /// Like [`start`](ChaosProxy::start), but every nap, retry backoff
    /// and injected-delay release deadline runs on `clock` — hand in a
    /// [`VirtualClock`](beware_runtime::VirtualClock) handle to replay a
    /// long delay schedule without waiting it out.
    pub fn start_with_clock(
        upstream: SocketAddr,
        cfg: FaultCfg,
        clock: SharedClock,
    ) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_a = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            let mut reg = Registry::new();
            let mut handlers: Vec<JoinHandle<Registry>> = Vec::new();
            let mut index = 0u64;
            loop {
                if stop_a.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((client, _)) => {
                        reg.scope("faults").scope("proxy").incr("connections");
                        let seed = derive_seed(cfg.seed, index);
                        index += 1;
                        let cfg = cfg.clone();
                        let stop = Arc::clone(&stop_a);
                        let clock = Arc::clone(&clock);
                        handlers.push(std::thread::spawn(move || {
                            pump_connection(client, upstream, &cfg, seed, &stop, &clock)
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        clock.sleep(Duration::from_millis(1));
                    }
                    Err(_) => {
                        reg.scope("faults").scope("proxy").incr("accept_errors");
                        clock.sleep(Duration::from_millis(1));
                    }
                }
            }
            (reg, handlers)
        });
        Ok(ChaosProxy { addr, stop, acceptor: Some(acceptor) })
    }

    /// The proxy's listening address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask every proxy thread to wind down.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stop and collect the merged fault telemetry: acceptor first, then
    /// every connection handler in accept order.
    pub fn join(mut self) -> Registry {
        self.stop();
        let (mut reg, handlers) =
            self.acceptor.take().expect("join called once").join().expect("acceptor panicked");
        for h in handlers {
            reg.merge(&h.join().expect("connection handler panicked"));
        }
        reg
    }
}

/// One direction of a proxied connection.
struct Pipe {
    /// Bytes read from the source but not yet forwarded.
    pending: Vec<u8>,
    /// Offset of the unforwarded suffix of `pending`.
    pos: usize,
    /// Source reached EOF (forward the tail, then half-close).
    src_eof: bool,
    /// A stall fault fired: accept (and discard) source bytes forever,
    /// forward nothing.
    stalled: bool,
    /// Length of the chunk whose fault decisions are already drawn but
    /// which has not finished forwarding — held while a deferred delay
    /// for this direction is live on the wheel.
    planned: Option<usize>,
    /// Telemetry suffix: `"up"` (client→server) or `"down"`.
    label: &'static str,
}

impl Pipe {
    fn new(label: &'static str) -> Pipe {
        Pipe { pending: Vec::new(), pos: 0, src_eof: false, stalled: false, planned: None, label }
    }

    fn done(&self) -> bool {
        self.src_eof && (self.stalled || self.pos >= self.pending.len())
    }
}

/// Forward traffic between `client` and a fresh upstream connection,
/// injecting faults, until both directions drain, a fault kills the
/// connection, or the proxy stops. Returns this connection's fault
/// counters.
fn pump_connection(
    client: TcpStream,
    upstream: SocketAddr,
    cfg: &FaultCfg,
    seed: u64,
    stop: &AtomicBool,
    clock: &SharedClock,
) -> Registry {
    let mut reg = Registry::new();
    let mut rng = SplitMix::new(seed);
    let mut client = client;
    let mut server: TcpStream = match TcpStream::connect_timeout(&upstream, Duration::from_secs(2))
    {
        Ok(s) => s,
        Err(_) => {
            reg.scope("faults").scope("proxy").incr("upstream_connect_errors");
            return reg;
        }
    };
    for s in [&client, &server] {
        let _ = s.set_nodelay(true);
        let _ = s.set_nonblocking(true);
    }

    let mut up = Pipe::new("up"); // client → server
    let mut down = Pipe::new("down"); // server → client
                                      // Deferred-delay release deadlines, keyed by direction. A live entry
                                      // for a pipe's label means its planned chunk is being held.
    let mut wheel: DeadlineWheel<&'static str> = DeadlineWheel::new();

    while !stop.load(Ordering::SeqCst) {
        // Release any direction whose injected delay has elapsed.
        while wheel.pop_expired(clock.now()).is_some() {}
        let moved_up = match pump_dir(
            &mut client,
            &mut server,
            &mut up,
            cfg,
            &mut rng,
            &mut reg,
            &mut wheel,
            clock,
        ) {
            Ok(m) => m,
            Err(()) => break,
        };
        let moved_down = match pump_dir(
            &mut server,
            &mut client,
            &mut down,
            cfg,
            &mut rng,
            &mut reg,
            &mut wheel,
            clock,
        ) {
            Ok(m) => m,
            Err(()) => break,
        };
        if up.done() && down.done() {
            break;
        }
        if !(moved_up || moved_down) {
            clock.sleep(Duration::from_micros(500));
        }
    }
    reg
}

/// Move bytes one hop in one direction. `Err(())` means the connection is
/// dead (abrupt-close fault, or a peer error) and the pump should end.
#[allow(clippy::too_many_arguments)]
fn pump_dir(
    src: &mut TcpStream,
    dst: &mut TcpStream,
    pipe: &mut Pipe,
    cfg: &FaultCfg,
    rng: &mut SplitMix,
    reg: &mut Registry,
    wheel: &mut DeadlineWheel<&'static str>,
    clock: &SharedClock,
) -> Result<bool, ()> {
    let mut moved = false;
    let mut scratch = [0u8; 2048];

    // Ingest whatever the source has.
    if !pipe.src_eof {
        loop {
            match src.read(&mut scratch) {
                Ok(0) => {
                    pipe.src_eof = true;
                    break;
                }
                Ok(n) => {
                    moved = true;
                    reg.scope("faults")
                        .scope("proxy")
                        .add(&format!("bytes_{}", pipe.label), n as u64);
                    if !pipe.stalled {
                        pipe.pending.extend_from_slice(&scratch[..n]);
                    }
                    // Cap ingest per pump round so one firehose direction
                    // cannot monopolize the handler.
                    if pipe.pending.len() - pipe.pos > 64 * 1024 {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    pipe.src_eof = true;
                    break;
                }
            }
        }
    }

    if pipe.stalled {
        pipe.pending.clear();
        pipe.pos = 0;
        return Ok(moved);
    }

    // Forward the backlog, one faulted chunk at a time. Decisions for a
    // chunk are drawn once (`pipe.planned`); a delay fault schedules a
    // release deadline on the wheel and *holds this direction only* —
    // the caller keeps pumping the opposite direction meanwhile, so an
    // injected response delay cannot freeze the request path the way the
    // old inline sleep did.
    while pipe.pos < pipe.pending.len() {
        let avail = pipe.pending.len() - pipe.pos;
        let n = match pipe.planned {
            Some(n) => n.min(avail),
            None => {
                if rng.coin(cfg.close_prob) {
                    reg.scope("faults").scope("injected").incr("closes");
                    let _ = src.shutdown(std::net::Shutdown::Both);
                    let _ = dst.shutdown(std::net::Shutdown::Both);
                    return Err(());
                }
                if rng.coin(cfg.truncate_prob) {
                    // Swallow the rest and half-close downstream: the peer
                    // sees a stream that ends, possibly mid-frame.
                    reg.scope("faults").scope("injected").incr("truncations");
                    pipe.pending.clear();
                    pipe.pos = 0;
                    pipe.src_eof = true;
                    let _ = dst.shutdown(std::net::Shutdown::Write);
                    return Ok(true);
                }
                if !pipe.stalled && rng.coin(cfg.stall_prob) {
                    reg.scope("faults").scope("injected").incr("stalls");
                    pipe.stalled = true;
                    pipe.pending.clear();
                    pipe.pos = 0;
                    return Ok(moved);
                }
                let drawn = rng.one_to(cfg.max_chunk as u64) as usize;
                let n = if cfg.max_chunk == 0 { avail } else { drawn.min(avail) };
                if n < avail {
                    reg.scope("faults").scope("injected").incr("splits");
                }
                if rng.coin(cfg.delay_prob) {
                    let ms = rng.one_to(cfg.max_delay_ms.max(1));
                    reg.scope("faults").scope("injected").incr("delays");
                    wheel.schedule(pipe.label, clock.now() + Duration::from_millis(ms));
                }
                if rng.coin(cfg.corrupt_prob) {
                    let at = pipe.pos + (rng.next_u64() as usize) % n;
                    let mask = rng.one_to(255) as u8;
                    pipe.pending[at] ^= mask;
                    reg.scope("faults").scope("injected").incr("corruptions");
                }
                pipe.planned = Some(n);
                n
            }
        };
        if wheel.deadline_of(&pipe.label).is_some() {
            // The planned chunk is held by a deferred delay; nothing more
            // moves in this direction until the wheel releases it.
            break;
        }
        match write_bounded(dst, &pipe.pending[pipe.pos..pipe.pos + n], clock) {
            Ok(written) => {
                if written == 0 {
                    // Downstream is not draining; try again next round.
                    break;
                }
                pipe.pos += written;
                pipe.planned = None;
                moved = true;
            }
            Err(_) => return Err(()),
        }
    }
    if pipe.pos >= pipe.pending.len() {
        pipe.pending.clear();
        pipe.pos = 0;
        if pipe.src_eof {
            let _ = dst.shutdown(std::net::Shutdown::Write);
        }
    }
    Ok(moved)
}

/// Write with a *bounded* nonblocking retry: up to 8 attempts, 1 ms
/// apart. Returns how many bytes went through (possibly 0 when the
/// destination's buffer stays full — the caller retries next round, so
/// the proxy never blocks on a slow reader).
fn write_bounded(dst: &mut TcpStream, buf: &[u8], clock: &SharedClock) -> io::Result<usize> {
    let mut written = 0;
    let mut tries = 0;
    while written < buf.len() && tries < 8 {
        match dst.write(&buf[written..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "peer gone")),
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                tries += 1;
                clock.sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial upstream echo server for proxy tests.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            // Serve exactly the connections the tests open, then exit.
            for stream in listener.incoming().flatten() {
                let mut stream = stream;
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if stream.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
                break; // one connection per test server
            }
        });
        (addr, h)
    }

    #[test]
    fn disabled_proxy_passes_bytes_verbatim() {
        let (upstream, server) = echo_server();
        let proxy = ChaosProxy::start(upstream, FaultCfg::disabled(1)).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let payload: Vec<u8> = (0..=255u8).collect();
        c.write_all(&payload).unwrap();
        let mut got = vec![0u8; payload.len()];
        c.read_exact(&mut got).unwrap();
        assert_eq!(got, payload);
        drop(c);
        server.join().unwrap();
        let reg = proxy.join();
        assert_eq!(reg.counter("faults/proxy/connections"), Some(1));
        assert!(reg.counter("faults/proxy/bytes_up").unwrap() >= 256);
    }

    #[test]
    fn split_proxy_preserves_content() {
        let (upstream, server) = echo_server();
        let proxy = ChaosProxy::start(upstream, FaultCfg::split_only(7)).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        c.write_all(&payload).unwrap();
        let mut got = vec![0u8; payload.len()];
        c.read_exact(&mut got).unwrap();
        assert_eq!(got, payload);
        drop(c);
        server.join().unwrap();
        let reg = proxy.join();
        assert!(reg.counter("faults/injected/splits").unwrap() > 0);
    }

    #[test]
    fn deferred_delays_release_and_deliver() {
        let (upstream, server) = echo_server();
        let cfg = FaultCfg { delay_prob: 1.0, max_delay_ms: 5, ..FaultCfg::disabled(9) };
        let proxy = ChaosProxy::start(upstream, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"delayed but intact").unwrap();
        let mut got = [0u8; 18];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"delayed but intact");
        drop(c);
        server.join().unwrap();
        let reg = proxy.join();
        assert!(reg.counter("faults/injected/delays").unwrap() > 0, "every chunk is delayed");
    }

    #[test]
    fn join_returns_even_with_stalled_connection() {
        let (upstream, _server) = echo_server();
        let cfg = FaultCfg { stall_prob: 1.0, ..FaultCfg::disabled(3) };
        let proxy = ChaosProxy::start(upstream, cfg).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
        c.write_all(b"never forwarded").unwrap();
        let mut buf = [0u8; 16];
        assert!(c.read(&mut buf).is_err(), "stalled direction must yield a read timeout");
        // The handler is parked on the stall; join must still return.
        let reg = proxy.join();
        assert_eq!(reg.counter("faults/injected/stalls"), Some(1));
    }
}
