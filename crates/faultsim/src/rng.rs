//! The seeding discipline, copied character-for-character from
//! `beware_netsim::rng`: splitmix64 as both the stream generator and the
//! seed-derivation finalizer. Duplicated (like `beware-serve::loadgen`
//! already does) so the fault layer does not pull in the simulator.

/// Derive a child seed from a parent seed and a stream index — the same
/// finalizer constants as `beware_netsim::rng::derive_seed`, so fault
/// schedules compose with the rest of the workspace's seed tree.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut x = parent ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A splitmix64 decision stream. One instance per connection; every fault
/// decision consumes exactly one draw, so the decision *sequence* is a
/// pure function of the seed.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Stream seeded directly.
    pub fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial. `p <= 0` never fires, `p >= 1` always fires; both
    /// edges still consume one draw so schedules stay aligned across
    /// configurations.
    pub fn coin(&mut self, p: f64) -> bool {
        let u = self.unit();
        p > 0.0 && (p >= 1.0 || u < p)
    }

    /// Uniform in `[1, n]`; `n == 0` yields 1 (still consumes a draw).
    pub fn one_to(&mut self, n: u64) -> u64 {
        let v = self.next_u64();
        if n == 0 {
            1
        } else {
            1 + v % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_matches_netsim_constants() {
        // Pinned values: if beware_netsim::rng::derive_seed ever changes,
        // this test flags the divergence in the fault layer.
        assert_eq!(derive_seed(7, 1), {
            let mut x: u64 = 7 ^ 1u64.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        });
        assert_ne!(derive_seed(7, 1), derive_seed(7, 2));
    }

    #[test]
    fn streams_are_deterministic_and_aligned() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Edge-probability coins still consume exactly one draw.
        let mut c = SplitMix::new(9);
        let mut d = SplitMix::new(9);
        assert!(!c.coin(0.0));
        assert!(d.coin(1.0));
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn one_to_bounds() {
        let mut r = SplitMix::new(3);
        for _ in 0..1000 {
            let v = r.one_to(7);
            assert!((1..=7).contains(&v));
        }
        assert_eq!(r.one_to(0), 1);
    }

    #[test]
    fn unit_in_range() {
        let mut r = SplitMix::new(5);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
