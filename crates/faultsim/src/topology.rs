//! Topology-level fault schedules: faults as *link events*, not byte
//! mangling.
//!
//! [`FaultyTransport`](crate::FaultyTransport) and the chaos proxy attack
//! the byte stream of one connection; this module attacks the *network* —
//! it emits seeded [`LinkEvent`] windows (partitions and capacity
//! degrades) for the netsim's shared link layer, so a fault hits every
//! host and every connection behind the affected link at once, the way
//! real outages do. `beware simserve` replays these schedules against the
//! in-sim oracle server: a partitioned access link black-holes a whole
//! /16 of clients mid-campaign, and the acceptance bar is the same as the
//! proxy's — bounded errors, zero wrong answers, no hangs.
//!
//! Schedules are pure functions of their configuration. Window `i` draws
//! from `derive_seed(cfg.seed, i)` (the workspace discipline: one
//! SplitMix64 stream per unit of work), so inserting or removing a window
//! never reshuffles the others.

use crate::rng::{derive_seed, SplitMix64};
use beware_netsim::{LinkEvent, LinkEventKind, LinkId};

/// Parameters for a seeded schedule of topology fault windows.
#[derive(Debug, Clone)]
pub struct TopologyFaultCfg {
    /// Root seed; window `i` draws from `derive_seed(seed, i)`.
    pub seed: u64,
    /// Campaign length: every window fits inside `[0, duration_secs)`.
    pub duration_secs: f64,
    /// Number of partition windows (black-holed link).
    pub partitions: usize,
    /// Number of degrade windows (scaled-down capacity).
    pub degrades: usize,
    /// Shortest fault window, seconds.
    pub min_window_secs: f64,
    /// Longest fault window, seconds.
    pub max_window_secs: f64,
    /// Capacity multiplier range `[lo, hi)` for degrade windows (e.g.
    /// `(0.01, 0.1)` = 10–100× slower).
    pub degrade_scale: (f64, f64),
}

impl TopologyFaultCfg {
    /// The standard chaos mix for a campaign of `duration_secs`: a couple
    /// of partitions and a handful of heavy degrades, each lasting
    /// roughly 2–10% of the campaign.
    pub fn chaos(seed: u64, duration_secs: f64) -> TopologyFaultCfg {
        TopologyFaultCfg {
            seed,
            duration_secs,
            partitions: 2,
            degrades: 4,
            min_window_secs: duration_secs * 0.02,
            max_window_secs: duration_secs * 0.10,
            degrade_scale: (0.01, 0.1),
        }
    }
}

/// Generate the schedule: `cfg.partitions + cfg.degrades` windows, each
/// over a link drawn from `targets`, sorted by start time (ties keep
/// draw order). Empty `targets` yields an empty schedule.
///
/// Partitions occupy window indices `0..partitions` and degrades the
/// rest, so changing one count never redraws the other kind's windows.
pub fn chaos_schedule(cfg: &TopologyFaultCfg, targets: &[LinkId]) -> Vec<LinkEvent> {
    if targets.is_empty() {
        return Vec::new();
    }
    let total = cfg.partitions + cfg.degrades;
    let mut events = Vec::with_capacity(total);
    let span = (cfg.max_window_secs - cfg.min_window_secs).max(0.0);
    for i in 0..total {
        let mut rng = SplitMix64::new(derive_seed(cfg.seed, i as u64));
        let link = targets[(rng.next_u64() % targets.len() as u64) as usize];
        let len = (cfg.min_window_secs + rng.unit() * span).min(cfg.duration_secs);
        let at_secs = rng.unit() * (cfg.duration_secs - len).max(0.0);
        let kind = if i < cfg.partitions {
            LinkEventKind::Partition
        } else {
            let (lo, hi) = cfg.degrade_scale;
            LinkEventKind::Degrade { capacity_scale: lo + rng.unit() * (hi - lo).max(0.0) }
        };
        events.push(LinkEvent { link, at_secs, until_secs: at_secs + len, kind });
    }
    events.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
    events
}

/// The simserve acceptance scenario: partition each listed link during
/// the middle fifth of the campaign (`[0.4·D, 0.6·D)`). Deterministic
/// and seed-free — the window is part of the campaign's identity, not a
/// random draw.
pub fn mid_campaign_partitions(links: &[LinkId], duration_secs: f64) -> Vec<LinkEvent> {
    links
        .iter()
        .map(|&link| LinkEvent {
            link,
            at_secs: duration_secs * 0.4,
            until_secs: duration_secs * 0.6,
            kind: LinkEventKind::Partition,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> Vec<LinkId> {
        vec![LinkId::Access(1), LinkId::Access(2), LinkId::Core(64500), LinkId::Spine(0)]
    }

    #[test]
    fn schedule_is_a_pure_function_of_cfg() {
        let cfg = TopologyFaultCfg::chaos(42, 300.0);
        assert_eq!(chaos_schedule(&cfg, &targets()), chaos_schedule(&cfg, &targets()));
        let other = TopologyFaultCfg::chaos(43, 300.0);
        assert_ne!(chaos_schedule(&cfg, &targets()), chaos_schedule(&other, &targets()));
    }

    #[test]
    fn windows_fit_the_campaign_and_counts_match() {
        let cfg = TopologyFaultCfg::chaos(7, 120.0);
        let events = chaos_schedule(&cfg, &targets());
        assert_eq!(events.len(), cfg.partitions + cfg.degrades);
        let partitions = events.iter().filter(|e| e.kind == LinkEventKind::Partition).count();
        assert_eq!(partitions, cfg.partitions);
        for ev in &events {
            assert!(ev.at_secs >= 0.0 && ev.until_secs <= 120.0 + 1e-9, "{ev:?}");
            assert!(ev.until_secs > ev.at_secs, "{ev:?}");
            let len = ev.until_secs - ev.at_secs;
            assert!(
                (cfg.min_window_secs - 1e-9..=cfg.max_window_secs + 1e-9).contains(&len),
                "{ev:?}"
            );
            if let LinkEventKind::Degrade { capacity_scale } = ev.kind {
                assert!((0.01..0.1).contains(&capacity_scale), "{ev:?}");
            }
        }
        assert!(events.windows(2).all(|w| w[0].at_secs <= w[1].at_secs), "sorted by start");
    }

    #[test]
    fn degrade_draws_survive_partition_count_changes() {
        // Window index is the stream id, partitions first: adding a
        // partition shifts which indices are degrades, but a degrade at
        // the same index draws identically.
        let base = TopologyFaultCfg { partitions: 0, ..TopologyFaultCfg::chaos(9, 100.0) };
        let more = TopologyFaultCfg { degrades: base.degrades + 2, ..base.clone() };
        let a = chaos_schedule(&base, &targets());
        let b = chaos_schedule(&more, &targets());
        for ev in &a {
            assert!(b.contains(ev), "original degrade windows must persist: {ev:?}");
        }
    }

    #[test]
    fn no_targets_no_events() {
        let cfg = TopologyFaultCfg::chaos(1, 60.0);
        assert!(chaos_schedule(&cfg, &[]).is_empty());
    }

    #[test]
    fn mid_campaign_partition_covers_the_middle_fifth() {
        let events = mid_campaign_partitions(&[LinkId::Access(3), LinkId::Spine(1)], 200.0);
        assert_eq!(events.len(), 2);
        for ev in &events {
            assert_eq!(ev.kind, LinkEventKind::Partition);
            assert_eq!((ev.at_secs, ev.until_secs), (80.0, 120.0));
        }
    }
}
