//! Byte-level fault wrapper over any `Read + Write` transport.

use crate::rng::{derive_seed, SplitMix};
use crate::FaultCfg;
use beware_runtime::clock::{SharedClock, WallClock};
use beware_telemetry::Registry;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Lifecycle of a faulted transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Open,
    /// Mid-stream truncation fired: writes are silently swallowed and
    /// reads report clean EOF — the peer sees a connection that just
    /// stopped, possibly mid-frame.
    Truncated,
    /// Abrupt close fired: every operation fails like a reset socket.
    Closed,
}

/// A `Read + Write` wrapper that injects seeded faults on every byte
/// moved: split writes, delayed and stalled reads, corrupted bytes,
/// mid-stream truncation, abrupt closes.
///
/// The decision sequence is a pure function of `(cfg.seed, stream_index)`
/// — see the crate docs. Injected faults are counted under
/// `faults/injected/` in an internal [`Registry`] ([`metrics`]).
///
/// [`metrics`]: FaultyTransport::metrics
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    cfg: FaultCfg,
    rng: SplitMix,
    state: State,
    /// A fired stall makes every later read time out.
    read_stalled: bool,
    /// Injected delays sleep on this clock — a virtual clock replays a
    /// multi-minute delay schedule with zero real waiting.
    clock: SharedClock,
    reg: Registry,
}

impl<T> FaultyTransport<T> {
    /// Wrap `inner`, drawing decisions from stream `stream_index` of
    /// `cfg.seed`. Delays sleep on real time; see
    /// [`with_clock`](FaultyTransport::with_clock) to substitute a
    /// virtual clock.
    pub fn new(inner: T, cfg: FaultCfg, stream_index: u64) -> FaultyTransport<T> {
        FaultyTransport::with_clock(inner, cfg, stream_index, WallClock::shared())
    }

    /// Like [`new`](FaultyTransport::new), but injected delays sleep on
    /// `clock` — the virtual-time entry point.
    pub fn with_clock(
        inner: T,
        cfg: FaultCfg,
        stream_index: u64,
        clock: SharedClock,
    ) -> FaultyTransport<T> {
        let rng = SplitMix::new(derive_seed(cfg.seed, stream_index));
        FaultyTransport {
            inner,
            cfg,
            rng,
            state: State::Open,
            read_stalled: false,
            clock,
            reg: Registry::new(),
        }
    }

    /// Injected-fault counters (`faults/injected/...`).
    pub fn metrics(&self) -> &Registry {
        &self.reg
    }

    /// Unwrap, returning the inner transport and the fault counters.
    pub fn into_parts(self) -> (T, Registry) {
        (self.inner, self.reg)
    }

    fn count(&mut self, what: &str) {
        self.reg.scope("faults").scope("injected").incr(what);
    }

    /// Chunk length for a transfer of `avail` bytes: uniform in
    /// `1..=max_chunk` when splitting is on, the whole buffer otherwise.
    /// Always consumes one draw so schedules stay aligned.
    fn chunk_len(&mut self, avail: usize) -> usize {
        let drawn = self.rng.one_to(self.cfg.max_chunk as u64) as usize;
        if self.cfg.max_chunk == 0 {
            avail
        } else {
            drawn.min(avail)
        }
    }

    fn maybe_delay(&mut self) {
        let p = self.cfg.delay_prob;
        if self.rng.coin(p) {
            let ms = self.rng.one_to(self.cfg.max_delay_ms.max(1));
            self.count("delays");
            self.clock.sleep(Duration::from_millis(ms));
        }
    }
}

impl<T: Write> Write for FaultyTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.state {
            State::Closed => {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: aborted"))
            }
            State::Truncated => return Ok(buf.len()), // swallowed
            State::Open => {}
        }
        if buf.is_empty() {
            return Ok(0);
        }
        if self.rng.coin(self.cfg.close_prob) {
            self.state = State::Closed;
            self.count("closes");
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: reset"));
        }
        if self.rng.coin(self.cfg.truncate_prob) {
            self.state = State::Truncated;
            self.count("truncations");
            return Ok(buf.len());
        }
        let n = self.chunk_len(buf.len());
        if n < buf.len() {
            self.count("splits");
        }
        self.maybe_delay();
        if self.rng.coin(self.cfg.corrupt_prob) {
            let mut chunk = buf[..n].to_vec();
            let at = (self.rng.next_u64() as usize) % n;
            let mask = (self.rng.one_to(255)) as u8;
            chunk[at] ^= mask;
            self.count("corruptions");
            self.inner.write_all(&chunk)?;
            return Ok(n);
        }
        self.inner.write_all(&buf[..n])?;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<T: Read> Read for FaultyTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.state {
            State::Closed => {
                return Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: reset"))
            }
            State::Truncated => return Ok(0),
            State::Open => {}
        }
        if buf.is_empty() {
            return Ok(0);
        }
        if !self.read_stalled && self.rng.coin(self.cfg.stall_prob) {
            self.read_stalled = true;
            self.count("stalls");
        }
        if self.read_stalled {
            // What a blocking socket's read_timeout firing looks like.
            return Err(io::Error::new(io::ErrorKind::TimedOut, "chaos: stalled"));
        }
        let n = self.chunk_len(buf.len());
        self.maybe_delay();
        let got = self.inner.read(&mut buf[..n])?;
        if got > 0 && self.rng.coin(self.cfg.corrupt_prob) {
            let at = (self.rng.next_u64() as usize) % got;
            let mask = (self.rng.one_to(255)) as u8;
            buf[at] ^= mask;
            self.count("corruptions");
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// In-memory loopback: writes append, reads pop.
    #[derive(Debug, Default)]
    struct Loopback(VecDeque<u8>);

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.extend(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.0.len());
            for b in buf.iter_mut().take(n) {
                *b = self.0.pop_front().unwrap();
            }
            Ok(n)
        }
    }

    fn pump_through(cfg: FaultCfg, stream: u64, data: &[u8]) -> io::Result<Vec<u8>> {
        let mut t = FaultyTransport::new(Loopback::default(), cfg, stream);
        let mut sent = 0;
        while sent < data.len() {
            sent += t.write(&data[sent..])?;
        }
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match t.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    #[test]
    fn split_only_preserves_bytes() {
        let data: Vec<u8> = (0..=255u8).collect();
        let out = pump_through(FaultCfg::split_only(11), 0, &data).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn splitting_actually_splits() {
        let mut t = FaultyTransport::new(Loopback::default(), FaultCfg::split_only(1), 0);
        let wrote = t.write(&[0u8; 100]).unwrap();
        assert!(wrote < 100, "split_only must chunk large writes, wrote {wrote}");
        assert!(t.metrics().counter("faults/injected/splits").unwrap() > 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let data = vec![0xabu8; 4096];
        let cfg = FaultCfg { corrupt_prob: 0.1, ..FaultCfg::split_only(77) };
        let a = pump_through(cfg.clone(), 3, &data).map_err(|e| e.kind());
        let b = pump_through(cfg, 3, &data).map_err(|e| e.kind());
        assert_eq!(a, b);
    }

    #[test]
    fn corruption_changes_bytes_and_is_counted() {
        let data = vec![0u8; 4096];
        let cfg = FaultCfg { corrupt_prob: 0.2, ..FaultCfg::split_only(5) };
        let out = pump_through(cfg, 0, &data).unwrap();
        assert_eq!(out.len(), data.len(), "corruption must not add or drop bytes");
        assert_ne!(out, data, "0.2 corruption over 4 KiB must flip something");
    }

    #[test]
    fn stall_reads_as_timeout() {
        let cfg = FaultCfg { stall_prob: 1.0, ..FaultCfg::disabled(2) };
        let mut t = FaultyTransport::new(Loopback::default(), cfg, 0);
        t.write(b"hello").unwrap();
        let mut buf = [0u8; 8];
        let err = t.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // Stalls are sticky: the next read times out too.
        assert_eq!(t.read(&mut buf).unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(t.metrics().counter("faults/injected/stalls"), Some(1));
    }

    #[test]
    fn delays_sleep_on_the_injected_clock() {
        use beware_runtime::{Clock, VirtualClock};
        let vc = VirtualClock::new();
        let cfg = FaultCfg { delay_prob: 1.0, max_delay_ms: 150_000, ..FaultCfg::disabled(8) };
        let mut t = FaultyTransport::with_clock(Loopback::default(), cfg, 0, vc.handle());
        let wall = std::time::Instant::now();
        t.write(b"x").unwrap();
        assert!(vc.now() >= Duration::from_millis(1), "the delay advanced virtual time");
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "a (up to) 150 s injected delay must not consume wall time"
        );
        assert_eq!(t.metrics().counter("faults/injected/delays"), Some(1));
    }

    #[test]
    fn abrupt_close_is_typed_and_sticky() {
        let cfg = FaultCfg { close_prob: 1.0, ..FaultCfg::disabled(4) };
        let mut t = FaultyTransport::new(Loopback::default(), cfg, 0);
        let err = t.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let mut buf = [0u8; 4];
        assert_eq!(t.read(&mut buf).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(t.write(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn truncation_swallows_then_eofs() {
        let cfg = FaultCfg { truncate_prob: 1.0, ..FaultCfg::disabled(6) };
        let mut t = FaultyTransport::new(Loopback::default(), cfg, 0);
        assert_eq!(t.write(b"doomed").unwrap(), 6);
        let mut buf = [0u8; 8];
        assert_eq!(t.read(&mut buf).unwrap(), 0, "truncated stream reads as EOF");
        let (inner, reg) = t.into_parts();
        assert!(inner.0.is_empty(), "truncated bytes must never reach the wire");
        assert_eq!(reg.counter("faults/injected/truncations"), Some(1));
    }
}
