//! The discrete-event queue at the heart of the simulator — a thin
//! adapter over [`beware_runtime::DeadlineWheel`].
//!
//! Until PR 10 this module carried its own binary heap keyed
//! `(time, sequence)`. The wheel orders by `(deadline, generation)` with
//! the generation unique per schedule call, which is the *same* total
//! order when every event is scheduled exactly once — so the simulator's
//! determinism contract (time order, FIFO among same-nanosecond ties) is
//! inherited rather than re-implemented, and the workspace converges on
//! one scheduling substrate. What the adapter adds on top:
//!
//! * payload storage (the wheel schedules bare keys),
//! * [`EventKey`]-based cancellation — the seam behind
//!   [`Ctx::cancel_timer`](crate::sim::Ctx::cancel_timer), retiring the
//!   generation-counter idiom agents used to fake it,
//! * the peak-pending gauge the run summaries report.

use crate::time::SimTime;
use beware_runtime::DeadlineWheel;
use std::collections::HashMap;
use std::time::Duration;

/// Handle to one scheduled event, returned by [`EventQueue::push`] and
/// accepted by [`EventQueue::cancel`]. Keys are never reused within a
/// queue, so a stale handle is harmlessly inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: DeadlineWheel<u64>,
    payloads: HashMap<u64, E>,
    next_seq: u64,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { wheel: DeadlineWheel::new(), payloads: HashMap::new(), next_seq: 0, peak: 0 }
    }

    /// Schedule `event` at `at`. Events pushed for the same instant pop
    /// in push order.
    pub fn push(&mut self, at: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.schedule(seq, Duration::from(at));
        self.payloads.insert(seq, event);
        if self.payloads.len() > self.peak {
            self.peak = self.payloads.len();
        }
        EventKey(seq)
    }

    /// Cancel a scheduled event, returning its payload if it was still
    /// pending. Popped, already-cancelled, or foreign keys return `None`.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let event = self.payloads.remove(&key.0)?;
        self.wheel.cancel(&key.0);
        Some(event)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let (seq, at) = self.wheel.pop_next()?;
            // A cancelled key may linger in the wheel's lazy heap; its
            // payload is gone, which is how we know to skip it.
            if let Some(event) = self.payloads.remove(&seq) {
                let at = SimTime::try_from(at).expect("deadline came from a SimTime");
                return Some((at, event));
            }
        }
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let at = self.wheel.next_deadline()?;
        Some(SimTime::try_from(at).expect("deadline came from a SimTime"))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// High-water mark: the largest number of events ever pending at once.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_nanosecond_ties_break_by_insertion_order() {
        // Sub-second resolution: many events on one exact nanosecond.
        let at = SimTime::from_ns(1_234_567_891);
        let mut q = EventQueue::new();
        for i in 0..64 {
            q.push(at, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| {
            q.pop().map(|(at_pop, e)| {
                assert_eq!(at_pop, at);
                e
            })
        })
        .collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        q.push(t(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak(), 0);
        q.push(t(1), ());
        q.push(t(2), ());
        q.push(t(3), ());
        q.pop();
        q.pop();
        q.push(t(4), ());
        // Peak stays at 3 even though only 2 are pending now.
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 3);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(t(5), 5);
        q.push(t(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_removes_exactly_one_event() {
        let mut q = EventQueue::new();
        let _a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        let _c = q.push(t(3), "c");
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.cancel(b), None, "double cancel is inert");
        assert_eq!(q.len(), 2);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn cancel_after_pop_is_inert_and_peak_counts_live_only() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        let b = q.push(t(2), 2);
        assert_eq!(q.peak(), 2);
        assert_eq!(q.cancel(a), Some(1));
        // A cancelled slot frees capacity: pushing again does not bump
        // the peak past the true simultaneous maximum.
        q.push(t(3), 3);
        assert_eq!(q.peak(), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.cancel(b), None, "popped event can no longer be cancelled");
    }

    #[test]
    fn cancelled_head_never_surfaces() {
        let mut q = EventQueue::new();
        let head = q.push(t(1), "head");
        q.push(t(5), "tail");
        assert_eq!(q.cancel(head), Some("head"));
        assert_eq!(q.peek_time(), Some(t(5)), "peek skips the cancelled head");
        assert_eq!(q.pop(), Some((t(5), "tail")));
        assert!(q.pop().is_none());
    }
}
