//! The discrete-event queue at the heart of the simulator.
//!
//! A binary heap keyed by `(time, sequence)`: the sequence number breaks
//! ties in insertion order, which makes event ordering — and therefore the
//! whole simulation — fully deterministic even when many packets land on
//! the same nanosecond.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    peak: usize,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, peak: 0 }
    }

    /// Schedule `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { key: Reverse((at, seq)), event });
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark: the largest number of events ever pending at once.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        q.push(t(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak(), 0);
        q.push(t(1), ());
        q.push(t(2), ());
        q.push(t(3), ());
        q.pop();
        q.pop();
        q.push(t(4), ());
        // Peak stays at 3 even though only 2 are pending now.
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 3);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(t(5), 5);
        q.push(t(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
        assert!(q.pop().is_none());
    }
}
