//! Deterministic fan-out of independent simulations over a scoped worker
//! pool.
//!
//! The experiment campaigns are embarrassingly parallel at the granularity
//! of whole simulations — one zmap scan, one survey, one chunk of scamper
//! probe trains — while each simulation's event loop stays single-threaded
//! and seeded. This module supplies the one primitive the harness needs:
//! [`run_tasks`], which maps a worker function over an indexed list of
//! task inputs and returns the outputs **in task order**, regardless of
//! the number of worker threads or their scheduling.
//!
//! # Determinism contract
//!
//! * The task decomposition is fixed by the caller and never depends on
//!   the thread count: task `i` receives input `i` of the input vector.
//! * Every task must derive all of its randomness from its own index (the
//!   callers use `beware_runtime::rng::derive_seed` with a per-campaign stream
//!   constant plus the task index), never from shared mutable state.
//! * Results are collected into slot `i` for task `i`; the returned
//!   vector is therefore byte-identical between `threads = 1` and
//!   `threads = N`. The integration suite asserts this end to end.
//!
//! `threads <= 1` bypasses the pool entirely and runs the tasks in order
//! on the calling thread — that path is the reference the parallel path
//! is tested against, and keeps single-core and debugging runs free of
//! any locking.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism, with a serial fallback when the
/// runtime cannot tell (containers without cpuset information).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Run `f` over `items`, returning outputs in input order.
///
/// `f` receives `(task_index, item)`. With `threads <= 1` (or one item or
/// fewer) the calling thread runs every task in order; otherwise a scoped
/// pool of `min(threads, items.len())` workers claims tasks from a shared
/// counter in index order and writes each result into its input's slot.
///
/// A panic inside any task propagates to the caller after the scope
/// unwinds, matching the serial path's behavior.
pub fn run_tasks<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // Feed queue: each slot is taken exactly once, by the worker that
    // claims its index; result slots are written exactly once each.
    let inputs: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("input slot claimed twice");
                let out = f(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("every task ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_runtime::rng::derive_seed;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_tasks(8, items.clone(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        // Per-task seeded streams: the executor's intended usage pattern.
        let job = |i: usize, _: ()| {
            let mut rng = StdRng::seed_from_u64(derive_seed(42, i as u64));
            (0..50).map(|_| rng.gen::<u64>()).collect::<Vec<u64>>()
        };
        let serial = run_tasks(1, vec![(); 17], job);
        for threads in [2, 3, 4, 8, 33] {
            assert_eq!(run_tasks(threads, vec![(); 17], job), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = run_tasks(4, Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(run_tasks(4, vec![7u32], |i, x| x + i as u32), vec![7]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_tasks(64, (0..5u64).collect(), |_, x| x + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn non_send_sync_closure_state_not_required() {
        // The closure only needs Sync; captured shared state is fine.
        let base = 10u64;
        let out = run_tasks(4, (0..20u64).collect(), |_, x| x + base);
        assert_eq!(out[19], 29);
    }
}
