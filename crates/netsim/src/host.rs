//! Per-host behavioral state machines.
//!
//! A [`HostState`] is lazily created the first time an address is probed
//! and evolves deterministically from a per-address seed. It decides, for
//! each arriving probe, the set of responses and their delays. The class
//! of a host (plain / wake-up / congested / intermittent / reflector) is a
//! *static* function of the address and the block profile, so repeated
//! probing of the same address observes consistent behavior — the property
//! the paper leans on when it reports that "around 5% of all responsive
//! addresses observe a greater than one second round-trip time
//! consistently".

use crate::profile::BlockProfile;
use crate::rng::{coin, seeded};
use crate::time::{SimDuration, SimTime};
use beware_runtime::rng::{derive_seed, unit_hash};
use rand::rngs::StdRng;
use rand::Rng;

/// What a host sends back; the world turns this into a concrete packet
/// according to the probe's protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    /// The protocol-appropriate positive response (echo reply / RST /
    /// port-unreachable).
    Normal,
    /// An ICMP host-unreachable error, emitted by the path rather than the
    /// host itself.
    Error,
}

/// One generated response: a delay from the probe's send time plus a kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Response {
    /// Full round-trip delay in seconds.
    pub delay_secs: f64,
    /// What kind of packet to synthesize.
    pub kind: Reply,
}

/// Host class, resolved statically per address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostClass {
    /// Pays radio wake-up delay when idle.
    pub wakeup: bool,
    /// Behind a persistently congested, deep-buffered link.
    pub congested: bool,
    /// Suffers disconnect episodes with network buffering.
    pub intermittent: bool,
    /// Suffers congestion storms (sustained high latency and loss).
    pub stormy: bool,
    /// Responds to a single request with a flood.
    pub reflector: bool,
}

/// Stream indices for per-address derived seeds, so each static decision
/// consumes an independent hash.
mod stream {
    pub const LIVE: u64 = 1;
    pub const WAKEUP: u64 = 2;
    pub const CONGESTED: u64 = 3;
    pub const INTERMITTENT: u64 = 4;
    pub const REFLECTOR: u64 = 5;
    pub const RNG: u64 = 6;
    pub const BCAST_RESPONDER: u64 = 7;
    pub const STORMY: u64 = 8;
    pub const BCAST_SILENT: u64 = 9;
}

/// True if `addr` hosts a live device under `profile` (a pure function —
/// the world uses it without instantiating state). Subnet broadcast and
/// network addresses are never live hosts.
pub fn is_live(world_seed: u64, profile: &BlockProfile, addr: u32) -> bool {
    let hb = u32::from(profile.subnet_host_bits);
    if beware_wire::addr::is_subnet_broadcast(addr, hb)
        || beware_wire::addr::is_subnet_network(addr, hb)
    {
        return false;
    }
    unit_hash(derive_seed(world_seed, u64::from(addr)), stream::LIVE) < profile.density
}

/// True if `addr` sits within three addresses of its subnet's broadcast
/// or network address — where routers and gateways conventionally live.
fn near_subnet_edge(profile: &BlockProfile, addr: u32) -> bool {
    let size = 1u32 << u32::from(profile.subnet_host_bits);
    let offset = addr & (size - 1);
    offset <= 3 || offset >= size - 4
}

/// True if a live `addr` answers pings sent to its subnet's broadcast
/// address (static per address, per Section 3.3.1's observation that the
/// same responders appear round after round). Edge addresses (routers at
/// .254/.1) respond with the configured higher probability.
pub fn answers_broadcast(world_seed: u64, profile: &BlockProfile, addr: u32) -> bool {
    match &profile.broadcast {
        None => false,
        Some(b) => {
            let prob = if near_subnet_edge(profile, addr) {
                b.edge_responder_prob
            } else {
                b.responder_prob
            };
            unit_hash(derive_seed(world_seed, u64::from(addr)), stream::BCAST_RESPONDER) < prob
        }
    }
}

/// True if `addr` is a broadcast responder that does **not** answer
/// unicast probes. Such addresses are the source of the survey's stable
/// false latencies: every round their own probe times out and the
/// broadcast-triggered response is (mis)matched to it.
pub fn broadcast_unicast_silent(world_seed: u64, profile: &BlockProfile, addr: u32) -> bool {
    match &profile.broadcast {
        None => false,
        Some(b) => {
            answers_broadcast(world_seed, profile, addr)
                && unit_hash(derive_seed(world_seed, u64::from(addr)), stream::BCAST_SILENT)
                    < b.unicast_silent_prob
        }
    }
}

/// Resolve the static class of an address.
pub fn class_of(world_seed: u64, profile: &BlockProfile, addr: u32) -> HostClass {
    let s = derive_seed(world_seed, u64::from(addr));
    let p = |st: u64| unit_hash(s, st);
    HostClass {
        wakeup: profile.wakeup.is_some_and(|w| p(stream::WAKEUP) < w.host_prob),
        congested: profile.congestion.is_some_and(|c| p(stream::CONGESTED) < c.host_prob),
        intermittent: profile.episodes.is_some_and(|e| p(stream::INTERMITTENT) < e.host_prob),
        stormy: profile.storms.is_some_and(|s| p(stream::STORMY) < s.host_prob),
        reflector: profile.dos.is_some_and(|d| p(stream::REFLECTOR) < d.addr_prob),
    }
}

#[derive(Debug, Clone)]
struct EpisodeRt {
    /// Current (or most recent) episode end.
    until: SimTime,
    /// Buffering begins here: probes arriving in `[start, buffer_from)`
    /// are dropped (radio blackout before the paging buffer engages).
    buffer_from: SimTime,
    /// Start of the next episode.
    next_at: SimTime,
    /// Probes buffered in the current episode.
    buffered: u32,
}

#[derive(Debug, Clone)]
struct StormRt {
    /// Current (or most recent) storm end.
    until: SimTime,
    /// Start of the next storm.
    next_at: SimTime,
}

#[derive(Debug, Clone)]
struct TokenBucket {
    tokens: f64,
    last: SimTime,
}

/// Mutable state of one probed address.
#[derive(Debug)]
pub struct HostState {
    rng: StdRng,
    class: HostClass,
    /// Fixed per-host base path RTT (seconds).
    base_rtt: f64,
    /// TTL a response carries when it reaches the prober.
    pub recv_ttl: u8,
    /// Radio connected until this instant (wake-up hosts).
    radio_until: SimTime,
    episode: Option<EpisodeRt>,
    storm: Option<StormRt>,
    bucket: Option<TokenBucket>,
}

impl HostState {
    /// Create the state for `addr` under `profile`.
    pub fn new(world_seed: u64, profile: &BlockProfile, addr: u32, now: SimTime) -> Self {
        let seed = derive_seed(world_seed, u64::from(addr));
        let mut rng = seeded(derive_seed(seed, stream::RNG));
        let class = class_of(world_seed, profile, addr);
        let base_rtt = profile.base_rtt.sample(&mut rng).max(0.0005);
        // Initial TTL 64/128/255 by OS-ish mix, minus a hash-stable hop count.
        let initial: u8 = *[64u8, 64, 128, 255].get((seed % 4) as usize).expect("mod 4");
        let hops = 6 + (seed >> 17) as u8 % 18;
        let recv_ttl = initial.saturating_sub(hops).max(1);
        // Renewal processes are initialized in STEADY STATE on the
        // ABSOLUTE timeline: hosts exist before the prober looks at them,
        // so a host created lazily at its first probe must already be
        // mid-cycle — with probability duration/(interval+duration)
        // *inside* an episode. Without this, single-probe scanners (zmap)
        // would never observe an episode. The phase is anchored at the
        // simulation epoch (not at creation), so probers that visit the
        // same host at different times — e.g. repeated scans — observe
        // different moments of the cycle, as in the real Internet.
        let episode = class.intermittent.then(|| {
            let e = profile.episodes.expect("intermittent implies episodes cfg");
            let interval = e.interval.sample(&mut rng).max(1.0);
            let duration = e.duration.sample(&mut rng).clamp(1.0, e.max_duration_secs);
            let pos = rng.gen_range(0.0..interval + duration);
            if pos < interval {
                EpisodeRt {
                    until: SimTime::EPOCH,
                    buffer_from: SimTime::EPOCH,
                    next_at: SimTime::EPOCH + SimDuration::from_secs_f64(interval - pos),
                    buffered: 0,
                }
            } else {
                let elapsed = pos - interval;
                let remaining = duration - elapsed;
                let until = SimTime::EPOCH + SimDuration::from_secs_f64(remaining);
                let blackout =
                    rng.gen_range(0.0..e.blackout_secs_max.max(1e-6)).min(duration * 0.5);
                // Blackout end relative to the (pre-epoch) episode start,
                // saturating at the epoch.
                let buffer_from =
                    SimTime::EPOCH + SimDuration::from_secs_f64((blackout - elapsed).max(0.0));
                EpisodeRt {
                    until,
                    buffer_from,
                    next_at: until + SimDuration::from_secs_f64(e.interval.sample(&mut rng)),
                    buffered: 0,
                }
            }
        });
        let storm = class.stormy.then(|| {
            let s = profile.storms.expect("stormy implies storms cfg");
            let interval = s.interval.sample(&mut rng).max(1.0);
            let duration = s.duration.sample(&mut rng).max(1.0);
            let pos = rng.gen_range(0.0..interval + duration);
            if pos < interval {
                StormRt {
                    until: SimTime::EPOCH,
                    next_at: SimTime::EPOCH + SimDuration::from_secs_f64(interval - pos),
                }
            } else {
                let remaining = duration - (pos - interval);
                let until = SimTime::EPOCH + SimDuration::from_secs_f64(remaining);
                StormRt {
                    until,
                    next_at: until + SimDuration::from_secs_f64(s.interval.sample(&mut rng)),
                }
            }
        });
        let bucket = profile
            .icmp_rate_limit
            .map(|rl| TokenBucket { tokens: f64::from(rl.burst), last: now });
        HostState {
            rng,
            class,
            base_rtt,
            recv_ttl,
            radio_until: SimTime::EPOCH,
            episode,
            storm,
            bucket,
        }
    }

    /// The host's static class.
    pub fn class(&self) -> HostClass {
        self.class
    }

    /// The fixed base RTT in seconds.
    pub fn base_rtt(&self) -> f64 {
        self.base_rtt
    }

    /// Process a probe arriving at `now`; returns the responses to
    /// schedule (possibly none, possibly a flood for reflectors).
    pub fn respond(&mut self, profile: &BlockProfile, now: SimTime) -> Vec<Response> {
        // Reflectors flood regardless of everything else.
        if self.class.reflector {
            if let Some(dos) = &profile.dos {
                let n = (dos.count.sample(&mut self.rng) as u64)
                    .clamp(1, u64::from(dos.max_responses)) as u32;
                let mut out = Vec::with_capacity(n as usize);
                for i in 0..n {
                    // First response at the normal RTT, the flood spread
                    // uniformly over the configured window.
                    let offset = if i == 0 {
                        0.0
                    } else {
                        self.rng.gen_range(0.0..dos.spread_secs.max(0.001))
                    };
                    out.push(Response { delay_secs: self.base_rtt + offset, kind: Reply::Normal });
                }
                return out;
            }
        }

        // Path errors preempt delivery.
        if coin(&mut self.rng, profile.error_prob) {
            return vec![Response { delay_secs: self.base_rtt, kind: Reply::Error }];
        }

        // Disconnect episodes: probes during an episode are buffered by
        // the network and flushed at reconnect, or lost.
        if let Some(delay) = self.episode_delay(profile, now) {
            return match delay {
                EpisodeOutcome::Buffered(d) => {
                    let jitter = profile.jitter.sample(&mut self.rng);
                    vec![Response { delay_secs: d + self.base_rtt + jitter, kind: Reply::Normal }]
                }
                EpisodeOutcome::Dropped => Vec::new(),
            };
        }

        // Congestion storms: heavy loss, and survivors queue for a long
        // time (sustained high latency and loss).
        let mut storm_extra = 0.0;
        if let Some(s_cfg) = profile.storms {
            if self.in_storm(&s_cfg, now) {
                if coin(&mut self.rng, s_cfg.loss) {
                    return Vec::new();
                }
                storm_extra = s_cfg.delay.sample_capped(&mut self.rng, s_cfg.max_delay_secs);
            }
        }

        // Ordinary loss.
        if !coin(&mut self.rng, profile.response_prob) {
            // A lost response still wakes the radio: the probe reached the
            // host with probability ~sqrt(response_prob); approximating
            // with certainty keeps the model simple and errs toward the
            // paper's observation that retries stay slow.
            self.touch_radio(profile, now, 0.0);
            return Vec::new();
        }

        let mut delay = self.base_rtt;

        // Radio wake-up for idle cellular hosts.
        if self.class.wakeup {
            if let Some(w) = &profile.wakeup {
                if now >= self.radio_until {
                    let wake = w.delay.sample(&mut self.rng);
                    delay += wake;
                    self.touch_radio(profile, now, wake);
                } else {
                    self.touch_radio(profile, now, 0.0);
                }
            }
        }

        // Jitter plus persistent congestion, jointly capped for links with
        // bounded queues.
        let mut extra = profile.jitter.sample(&mut self.rng);
        if self.class.congested {
            if let Some(c) = &profile.congestion {
                // Diurnal modulation: heavier queues and loss at the
                // block's local peak hour.
                let load = profile.diurnal.map_or(1.0, |d| d.factor(now.as_secs_f64()));
                if coin(&mut self.rng, (c.busy_loss * load).min(1.0)) {
                    return Vec::new();
                }
                extra += c.extra.sample(&mut self.rng) * load;
            }
        }
        if let Some(cap) = profile.rtt_cap {
            extra = extra.min(cap);
        }
        // Storm queueing is congestion collapse: it is not bounded by the
        // link's normal queue cap.
        delay += extra + storm_extra;

        // Regime shift (COVID-style step change): once `at_secs` passes,
        // the whole path slows down and loses more. The RNG is only
        // consulted while the new regime is active, so profiles without a
        // shift — and probes before it — keep their exact draw sequences.
        if let Some(shift) = profile.shift {
            if now.as_secs_f64() >= shift.at_secs {
                if coin(&mut self.rng, shift.extra_loss) {
                    return Vec::new();
                }
                delay *= shift.rtt_scale;
            }
        }

        // Host-side ICMP rate limiting.
        if let Some(rl) = &profile.icmp_rate_limit {
            let bucket = self.bucket.as_mut().expect("bucket exists when cfg does");
            let dt = now.saturating_since(bucket.last).as_secs_f64();
            bucket.tokens = (bucket.tokens + dt * rl.rate_per_sec).min(f64::from(rl.burst));
            bucket.last = now;
            if bucket.tokens < 1.0 {
                return Vec::new();
            }
            bucket.tokens -= 1.0;
        }

        let mut out = vec![Response { delay_secs: delay, kind: Reply::Normal }];

        // Benign duplication: 1–3 extra copies milliseconds apart.
        if coin(&mut self.rng, profile.dup_prob) {
            let copies = self.rng.gen_range(1..=3);
            for _ in 0..copies {
                let gap = self.rng.gen_range(0.001..0.02);
                out.push(Response { delay_secs: delay + gap, kind: Reply::Normal });
            }
        }
        out
    }

    fn touch_radio(&mut self, profile: &BlockProfile, now: SimTime, wake_secs: f64) {
        if let Some(w) = &profile.wakeup {
            let connected = now + SimDuration::from_secs_f64(wake_secs + w.tail_secs);
            if connected > self.radio_until {
                self.radio_until = connected;
            }
        }
    }

    /// Advance the storm renewal process to `now`; true while storming.
    fn in_storm(&mut self, cfg: &crate::profile::StormCfg, now: SimTime) -> bool {
        let Some(st) = self.storm.as_mut() else { return false };
        loop {
            if now < st.until {
                return true;
            }
            if now < st.next_at {
                return false;
            }
            let dur = cfg.duration.sample(&mut self.rng).max(1.0);
            st.until = st.next_at + SimDuration::from_secs_f64(dur);
            st.next_at = st.until + SimDuration::from_secs_f64(cfg.interval.sample(&mut self.rng));
        }
    }

    /// Advance the episode renewal process to `now` and classify the probe.
    /// Returns `None` when not inside an episode.
    fn episode_delay(&mut self, profile: &BlockProfile, now: SimTime) -> Option<EpisodeOutcome> {
        let cfg = profile.episodes?;
        let ep = self.episode.as_mut()?;
        // Fast-forward the renewal process past episodes that ended before
        // this probe.
        loop {
            if now < ep.until {
                // Inside the current episode. Blackout prefix: dropped.
                if now < ep.buffer_from {
                    return Some(EpisodeOutcome::Dropped);
                }
                if ep.buffered < cfg.buffer_cap && coin(&mut self.rng, cfg.buffer_prob) {
                    ep.buffered += 1;
                    // Flushed at reconnect: remaining episode time plus a
                    // small per-packet drain gap.
                    let remaining = ep.until.saturating_since(now).as_secs_f64();
                    let drain = f64::from(ep.buffered) * 0.005;
                    return Some(EpisodeOutcome::Buffered(remaining + drain));
                }
                return Some(EpisodeOutcome::Dropped);
            }
            if now < ep.next_at {
                return None;
            }
            // Start the episode scheduled at next_at.
            let dur = cfg.duration.sample(&mut self.rng).clamp(1.0, cfg.max_duration_secs);
            let start = ep.next_at;
            ep.until = start + SimDuration::from_secs_f64(dur);
            let blackout = self.rng.gen_range(0.0..cfg.blackout_secs_max.max(1e-6)).min(dur * 0.5);
            ep.buffer_from = start + SimDuration::from_secs_f64(blackout);
            ep.next_at = ep.until + SimDuration::from_secs_f64(cfg.interval.sample(&mut self.rng));
            ep.buffered = 0;
            // Loop: `now` may fall inside, between, or past this episode.
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum EpisodeOutcome {
    /// Buffered; respond after this many seconds (before adding base RTT).
    Buffered(f64),
    Dropped,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CongestionCfg, DosCfg, EpisodeCfg, RateLimitCfg, WakeupCfg};
    use crate::rng::Dist;

    const SEED: u64 = 0x5eed;

    fn t(secs: f64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs_f64(secs)
    }

    fn plain_profile() -> BlockProfile {
        BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            density: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn plain_host_replies_at_base_rtt() {
        let p = plain_profile();
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        let rs = h.respond(&p, t(10.0));
        assert_eq!(rs.len(), 1);
        assert!((rs[0].delay_secs - 0.05).abs() < 1e-9);
        assert_eq!(rs[0].kind, Reply::Normal);
    }

    #[test]
    fn liveness_excludes_broadcast_addresses() {
        let p = BlockProfile { density: 1.0, subnet_host_bits: 8, ..plain_profile() };
        assert!(!is_live(SEED, &p, 0x0a0000ff)); // .255
        assert!(!is_live(SEED, &p, 0x0a000000)); // .0
        assert!(is_live(SEED, &p, 0x0a000017));
        let p = BlockProfile { subnet_host_bits: 7, ..p };
        assert!(!is_live(SEED, &p, 0x0a00007f)); // .127 is /25 broadcast
        assert!(!is_live(SEED, &p, 0x0a000080)); // .128 is /25 network
    }

    #[test]
    fn liveness_respects_density_statistically() {
        let p = BlockProfile { density: 0.25, ..plain_profile() };
        let live = (0u32..10_000).filter(|&a| is_live(SEED, &p, 0x0b000000 + a)).count();
        // Broadcast-looking octets excluded, so a touch below 25%.
        assert!((2_000..2_800).contains(&live), "{live}");
    }

    #[test]
    fn wakeup_applies_when_idle_and_not_when_connected() {
        let p = BlockProfile {
            wakeup: Some(WakeupCfg { host_prob: 1.0, delay: Dist::Constant(2.0), tail_secs: 10.0 }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        assert!(h.class().wakeup);
        // First probe: idle, pays 2 s wake-up.
        let r1 = h.respond(&p, t(100.0));
        assert!((r1[0].delay_secs - 2.05).abs() < 1e-9, "{}", r1[0].delay_secs);
        // One second later: still connected, base RTT only.
        let r2 = h.respond(&p, t(101.0));
        assert!((r2[0].delay_secs - 0.05).abs() < 1e-9);
        // After the tail expires: idle again.
        let r3 = h.respond(&p, t(120.0));
        assert!((r3[0].delay_secs - 2.05).abs() < 1e-9);
    }

    #[test]
    fn congestion_adds_delay_and_loss() {
        let p = BlockProfile {
            congestion: Some(CongestionCfg {
                host_prob: 1.0,
                extra: Dist::Constant(1.5),
                busy_loss: 0.0,
            }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        assert!(h.class().congested);
        let r = h.respond(&p, t(5.0));
        assert!((r[0].delay_secs - 1.55).abs() < 1e-9);
        // With busy_loss = 1, everything drops.
        let p2 = BlockProfile {
            congestion: Some(CongestionCfg {
                host_prob: 1.0,
                extra: Dist::Constant(1.5),
                busy_loss: 1.0,
            }),
            ..plain_profile()
        };
        let mut h2 = HostState::new(SEED, &p2, 0x0a000005, t(0.0));
        assert!(h2.respond(&p2, t(5.0)).is_empty());
    }

    #[test]
    fn diurnal_modulates_congestion_delay() {
        use crate::profile::DiurnalCfg;
        let p = BlockProfile {
            congestion: Some(CongestionCfg {
                host_prob: 1.0,
                extra: Dist::Constant(2.0),
                busy_loss: 0.0,
            }),
            diurnal: Some(DiurnalCfg {
                amplitude: 0.5,
                peak_offset_secs: 0.0,
                period_secs: 86_400.0,
            }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        // At the peak (t = 0): extra ×1.5; at the trough (half period): ×0.5.
        let peak = h.respond(&p, t(0.0))[0].delay_secs;
        let trough = h.respond(&p, t(43_200.0))[0].delay_secs;
        assert!((peak - (0.05 + 3.0)).abs() < 1e-9, "peak {peak}");
        assert!((trough - (0.05 + 1.0)).abs() < 1e-9, "trough {trough}");
    }

    #[test]
    fn shift_scales_delay_and_adds_loss_only_after_onset() {
        use crate::profile::ShiftCfg;
        let p = BlockProfile {
            shift: Some(ShiftCfg { at_secs: 100.0, rtt_scale: 2.0, extra_loss: 0.0 }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        let before = h.respond(&p, t(50.0))[0].delay_secs;
        let after = h.respond(&p, t(150.0))[0].delay_secs;
        assert!((before - 0.05).abs() < 1e-9, "pre-shift {before}");
        assert!((after - 0.10).abs() < 1e-9, "post-shift {after}");

        // Extra loss engages only in the new regime.
        let p2 = BlockProfile {
            shift: Some(ShiftCfg { at_secs: 100.0, rtt_scale: 1.0, extra_loss: 1.0 }),
            ..plain_profile()
        };
        let mut h2 = HostState::new(SEED, &p2, 0x0a000005, t(0.0));
        assert_eq!(h2.respond(&p2, t(50.0)).len(), 1);
        assert!(h2.respond(&p2, t(150.0)).is_empty());
    }

    #[test]
    fn pre_shift_behavior_matches_unshifted_profile() {
        use crate::profile::ShiftCfg;
        let plain = plain_profile();
        let shifted = BlockProfile {
            shift: Some(ShiftCfg { at_secs: 1e6, rtt_scale: 3.0, extra_loss: 0.5 }),
            jitter: Dist::Exponential { mean: 0.004 },
            ..plain_profile()
        };
        let jittery_plain = BlockProfile { jitter: Dist::Exponential { mean: 0.004 }, ..plain };
        let mut a = HostState::new(SEED, &jittery_plain, 0x0a000005, t(0.0));
        let mut b = HostState::new(SEED, &shifted, 0x0a000005, t(0.0));
        // Same seeds, shift far in the future: identical draw sequences.
        for i in 0..50 {
            assert_eq!(
                a.respond(&jittery_plain, t(f64::from(i))),
                b.respond(&shifted, t(f64::from(i)))
            );
        }
    }

    #[test]
    fn rtt_cap_bounds_extras_but_not_base() {
        let p = BlockProfile {
            base_rtt: Dist::Constant(0.6),
            jitter: Dist::Constant(5.0),
            rtt_cap: Some(2.0),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        let r = h.respond(&p, t(1.0));
        assert!((r[0].delay_secs - 2.6).abs() < 1e-9);
    }

    /// Probe once per second from t=0; return per-second delays (None =
    /// dropped), for phase-robust episode/storm assertions.
    fn sample_train(p: &BlockProfile, secs: usize) -> Vec<Option<f64>> {
        let mut h = HostState::new(SEED, p, 0x0a000005, t(0.0));
        (0..secs).map(|i| h.respond(p, t(i as f64)).first().map(|r| r.delay_secs)).collect()
    }

    #[test]
    fn episode_buffers_and_decays() {
        let p = BlockProfile {
            episodes: Some(EpisodeCfg {
                host_prob: 1.0,
                interval: Dist::Constant(50.0),
                duration: Dist::Constant(30.0),
                max_duration_secs: 400.0,
                blackout_secs_max: 1e-9, // no blackout: keep tests exact
                buffer_cap: 100,
                buffer_prob: 1.0,
            }),
            ..plain_profile()
        };
        // The renewal phase is stationary (host-seed dependent), so find
        // an episode empirically: buffered responses have delay ≫ base.
        let train = sample_train(&p, 200);
        let buffered: Vec<(usize, f64)> = train
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.filter(|&v| v > 1.0).map(|v| (i, v)))
            .collect();
        assert!(!buffered.is_empty(), "no episode observed in 200 s of an 80 s cycle");
        // The staircase: all buffered responses of one episode arrive
        // together, so send_index + delay is constant within an episode.
        let (i0, d0) = buffered[0];
        let arrival = i0 as f64 + d0;
        let same_episode: Vec<&(usize, f64)> =
            buffered.iter().filter(|(i, _)| (*i as f64) < arrival).collect();
        for (i, d) in &same_episode {
            assert!(((*i as f64 + d) - arrival).abs() < 0.6, "staircase broken at {i}: {d}");
        }
        // Episodes are bounded: normal responses exist too.
        assert!(train.iter().flatten().any(|&d| d < 0.1), "never returned to normal");
    }

    #[test]
    fn episode_renewal_fast_forwards_over_missed_episodes() {
        let p = BlockProfile {
            episodes: Some(EpisodeCfg {
                host_prob: 1.0,
                interval: Dist::Constant(10.0),
                duration: Dist::Constant(5.0),
                max_duration_secs: 400.0,
                blackout_secs_max: 1e-9, // no blackout: keep tests exact
                buffer_cap: 10,
                buffer_prob: 1.0,
            }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        // Probe far in the future: the renewal must fast-forward over the
        // dozens of missed episodes without hanging, and the response (if
        // buffered) must be bounded by one episode duration.
        let r = h.respond(&p, t(1000.5));
        if let Some(resp) = r.first() {
            assert!(resp.delay_secs < 6.0, "delay {}", resp.delay_secs);
        }
    }

    #[test]
    fn episode_buffer_cap_drops_excess() {
        let p = BlockProfile {
            episodes: Some(EpisodeCfg {
                host_prob: 1.0,
                interval: Dist::Constant(100.0),
                duration: Dist::Constant(50.0),
                max_duration_secs: 400.0,
                blackout_secs_max: 1e-9, // no blackout: keep tests exact
                buffer_cap: 2,
                buffer_prob: 1.0,
            }),
            ..plain_profile()
        };
        // Probing every second, each episode buffers exactly 2 probes and
        // drops the rest: over two full cycles (300 s) the number of
        // buffered (slow) responses is exactly 2 per observed episode and
        // drops occur inside episodes.
        let train = sample_train(&p, 300);
        let slow = train.iter().flatten().filter(|&&d| d > 1.0).count();
        let dropped = train.iter().filter(|d| d.is_none()).count();
        assert!(slow > 0, "no buffered responses at all");
        assert!(slow <= 2 * 3, "more than 2 buffered per episode: {slow}");
        assert!(dropped >= 40, "drops missing: {dropped}");
    }

    #[test]
    fn storm_adds_long_delay_during_window_only() {
        use crate::profile::StormCfg;
        let p = BlockProfile {
            storms: Some(StormCfg {
                host_prob: 1.0,
                interval: Dist::Constant(100.0),
                duration: Dist::Constant(60.0),
                delay: Dist::Constant(120.0),
                max_delay_secs: 250.0,
                loss: 0.0,
            }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        assert!(h.class().stormy);
        // Stationary phase: sample two full cycles (320 s) and check that
        // storm seconds show exactly +120 s and calm seconds are base-RTT,
        // with both phases present and contiguous.
        let delays: Vec<f64> =
            (0..320).map(|i| h.respond(&p, t(f64::from(i)))[0].delay_secs).collect();
        let stormy = delays.iter().filter(|&&d| (d - 120.05).abs() < 1e-6).count();
        let calm = delays.iter().filter(|&&d| (d - 0.05).abs() < 1e-6).count();
        assert_eq!(stormy + calm, 320, "delays outside the two phases");
        // Two cycles of 160 s with 60 s storms: ~120 stormy seconds.
        assert!((90..=150).contains(&stormy), "stormy seconds {stormy}");
    }

    #[test]
    fn storm_loss_drops_probes() {
        use crate::profile::StormCfg;
        let p = BlockProfile {
            storms: Some(StormCfg {
                host_prob: 1.0,
                interval: Dist::Constant(10.0),
                duration: Dist::Constant(1000.0),
                delay: Dist::Constant(120.0),
                max_delay_secs: 250.0,
                loss: 1.0,
            }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        // The renewal phase is stationary, so a single instant can land in
        // the ≤ 10 s inter-storm gap; probe a 200 s window instead. With
        // 1000 s storms at most one gap fits inside it.
        let dropped = (0..200).filter(|i| h.respond(&p, t(f64::from(*i))).is_empty()).count();
        assert!(dropped >= 185, "only {dropped}/200 probes dropped by storm loss");
    }

    #[test]
    fn reflector_floods_with_cap() {
        let p = BlockProfile {
            dos: Some(DosCfg {
                addr_prob: 1.0,
                count: Dist::Constant(1e9),
                max_responses: 500,
                spread_secs: 10.0,
            }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        assert!(h.class().reflector);
        let rs = h.respond(&p, t(1.0));
        assert_eq!(rs.len(), 500);
        assert!((rs[0].delay_secs - 0.05).abs() < 1e-9);
        assert!(rs.iter().all(|r| r.delay_secs <= 10.05 + 1e-9));
    }

    #[test]
    fn rate_limit_enforced_and_refills() {
        let p = BlockProfile {
            icmp_rate_limit: Some(RateLimitCfg { rate_per_sec: 1.0, burst: 2 }),
            ..plain_profile()
        };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        assert_eq!(h.respond(&p, t(10.0)).len(), 1);
        assert_eq!(h.respond(&p, t(10.1)).len(), 1);
        assert!(h.respond(&p, t(10.2)).is_empty(), "bucket exhausted");
        // After 2 s, a token has refilled.
        assert_eq!(h.respond(&p, t(12.2)).len(), 1);
    }

    #[test]
    fn error_probability_yields_error_kind() {
        let p = BlockProfile { error_prob: 1.0, ..plain_profile() };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        let r = h.respond(&p, t(1.0));
        assert_eq!(r[0].kind, Reply::Error);
    }

    #[test]
    fn duplication_emits_two_to_four_copies() {
        let p = BlockProfile { dup_prob: 1.0, ..plain_profile() };
        let mut h = HostState::new(SEED, &p, 0x0a000005, t(0.0));
        for i in 0..20 {
            let rs = h.respond(&p, t(1.0 + f64::from(i)));
            assert!((2..=4).contains(&rs.len()), "{} copies", rs.len());
        }
    }

    #[test]
    fn class_is_deterministic_per_address() {
        let p = BlockProfile {
            wakeup: Some(WakeupCfg { host_prob: 0.5, ..Default::default() }),
            congestion: Some(CongestionCfg { host_prob: 0.5, ..Default::default() }),
            ..plain_profile()
        };
        for a in 0..100u32 {
            assert_eq!(class_of(SEED, &p, a), class_of(SEED, &p, a));
        }
        // And varies across addresses.
        let classes: std::collections::HashSet<bool> =
            (0..100u32).map(|a| class_of(SEED, &p, a).wakeup).collect();
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn recv_ttl_plausible() {
        let p = plain_profile();
        for a in 0..50u32 {
            let h = HostState::new(SEED, &p, 0x0a000000 + a, t(0.0));
            assert!(h.recv_ttl >= 1);
            assert!(h.recv_ttl <= 255 - 6);
        }
    }
}
