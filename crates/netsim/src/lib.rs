//! # beware-netsim
//!
//! A deterministic discrete-event simulator of the Internet as the paper
//! *Timeouts: Beware Surprisingly High Delay* (IMC 2015) measured it. We
//! cannot probe the real Internet from a hermetic build environment, so
//! the probers in `beware-probe` run against this world instead; its
//! behavior models implement the *mechanisms* the paper identifies as the
//! causes of surprisingly high round-trip times:
//!
//! * cellular radio wake-up (first-ping delay, Section 6.3),
//! * network-buffered disconnect episodes producing RTT-decay staircases
//!   and 100 s+ responses (Section 6.4),
//! * persistent deep-buffer congestion (sustained high latency + loss),
//! * geosynchronous-satellite floors with capped queues (Section 6.1),
//! * broadcast responders (Section 3.3.1), reflectors/DoS duplicate floods
//!   (Section 3.3.2), TCP-answering firewalls and ICMP rate limiting
//!   (Section 5.3).
//!
//! Module map: [`time`] and [`event`] are the discrete-event substrate
//! (scheduling through `beware_runtime::DeadlineWheel` and driving a
//! [`SimClock`] — one scheduler for the whole workspace),
//! [`rng`] the seeded distributions, [`packet`] the packet model bridging
//! to `beware-wire` bytes, [`profile`]/[`host`]/[`world`] the behavior
//! models, [`space`] the procedural (resolve-on-demand) address space and
//! bounded host table that let a full-IPv4-scale sweep stream in fixed
//! memory, [`link`] the shared router/link layer that turns one congested
//! uplink into correlated delay across every host behind it, [`sim`] the
//! agent event loop, [`scenario`] the paper-calibrated world builder, and
//! [`exec`] the deterministic worker pool fanning independent simulations
//! across threads.
//!
//! Everything is deterministic under a seed; two runs of the same scenario
//! produce identical packet traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod exec;
pub mod host;
pub mod link;
pub mod packet;
pub mod profile;
pub mod rng;
pub mod scenario;
pub mod sim;
pub mod space;
pub mod time;
pub mod trace;
pub mod world;

pub use exec::{default_threads, run_tasks};
pub use link::{LinkCfg, LinkEvent, LinkEventKind, LinkId};
pub use packet::{Arrival, Packet, L4};
pub use profile::{BlockProfile, PROFILE_KINDS};
pub use scenario::{Scenario, ScenarioCfg, Vantage, VANTAGES};
pub use sim::{Agent, Ctx, RunSummary, Simulation, TimerId};
pub use space::{LazyCfg, ProfileSource, ResolvedBlock};
pub use time::{SimClock, SimDuration, SimTime, TimeOutOfRange};
pub use world::{World, WorldStats};
