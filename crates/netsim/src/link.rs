//! Shared router/link layer: the topology-level cause of correlated
//! delay.
//!
//! Per-host profiles can make *one* address slow; they cannot make every
//! host behind a congested uplink slow **together** — the
//! shared-bottleneck signature that delay-anomaly pinpointing exploits.
//! This module adds a small fat-tree-ish aggregation topology over the
//! address space: every `/16` shares an access link, every AS shares an
//! aggregation (core) link, every continent shares a spine link. A probe
//! traverses its prefix's chain of links, and each link is a passive
//! fluid queue — so back-to-back probes into the same prefix see each
//! other's backlog, and a degraded link inflates delay for *every* host
//! behind it at once.
//!
//! The queue model is deliberately simple (one `drain-at` timestamp per
//! link, no per-packet bookkeeping) and fully deterministic: no RNG, no
//! wall clock, state advanced only by `traverse` calls in probe order.
//! Base capacities get a seeded per-link wobble so no two access links
//! are exactly alike.
//!
//! Scenario events ([`LinkEvent`], the `ShiftCfg` of the link layer)
//! degrade or partition a named link during a time window — the
//! structural cause behind regime-shift studies: a capacity step at time
//! T inflates RTTs for the whole prefix behind the link, and a partition
//! black-holes it.

use crate::time::{SimDuration, SimTime};
use beware_runtime::rng::unit_hash;
use std::collections::HashMap;

/// Identity of a shared link in the aggregation topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Edge link shared by every `/24` under one `/16` (`addr >> 16`).
    Access(u16),
    /// Aggregation link shared by everything one AS announces.
    Core(u32),
    /// Continental spine (index into `Continent::ALL`).
    Spine(u8),
}

/// What a scheduled event does to its link while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkEventKind {
    /// Scale the link's service capacity (e.g. `0.02` = 50× slower), so
    /// queueing delay inflates for every prefix behind the link.
    Degrade {
        /// Multiplier on the link's packets-per-second capacity.
        capacity_scale: f64,
    },
    /// Black-hole everything crossing the link.
    Partition,
}

/// A link-layer scenario event: `kind` applies to `link` during
/// `[at_secs, until_secs)` of sim time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEvent {
    /// The affected link.
    pub link: LinkId,
    /// Window start, seconds since the sim epoch.
    pub at_secs: f64,
    /// Window end (exclusive); `f64::INFINITY` for "until the end".
    pub until_secs: f64,
    /// What happens while the window is active.
    pub kind: LinkEventKind,
}

impl LinkEvent {
    fn active(&self, now_secs: f64) -> bool {
        now_secs >= self.at_secs && now_secs < self.until_secs
    }
}

/// Link-layer parameters: base capacities per tier plus the event
/// schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkCfg {
    /// Seed for the per-link capacity wobble.
    pub seed: u64,
    /// Base service capacity of access (`/16`) links, packets/second.
    pub access_pps: f64,
    /// Base service capacity of AS aggregation links, packets/second.
    pub core_pps: f64,
    /// Base service capacity of continental spines, packets/second.
    pub spine_pps: f64,
    /// Maximum queueing delay a link absorbs before tail-dropping.
    pub queue_cap_secs: f64,
    /// Scheduled degrade/partition windows.
    pub events: Vec<LinkEvent>,
}

impl Default for LinkCfg {
    fn default() -> Self {
        LinkCfg {
            seed: 0,
            access_pps: 25_000.0,
            core_pps: 400_000.0,
            spine_pps: 5_000_000.0,
            queue_cap_secs: 2.0,
            events: Vec::new(),
        }
    }
}

/// Per-link hash streams for the capacity wobble, disjoint from the host
/// and scenario streams by their high bits.
fn link_stream(link: LinkId) -> u64 {
    match link {
        LinkId::Access(p16) => 0x11A0_0000_0000 | u64::from(p16),
        LinkId::Core(asn) => 0x11C0_0000_0000 | u64::from(asn),
        LinkId::Spine(c) => 0x11E0_0000_0000 | u64::from(c),
    }
}

/// The mutable link layer of one world: lazily materialized fluid queues
/// plus drop/backlog accounting.
#[derive(Debug)]
pub struct LinkLayer {
    cfg: LinkCfg,
    /// When each link's queue drains; a link not present is idle.
    queues: HashMap<LinkId, SimTime>,
    drops: u64,
    peak_backlog: SimDuration,
}

impl LinkLayer {
    /// An idle link layer under `cfg`.
    pub fn new(cfg: LinkCfg) -> LinkLayer {
        LinkLayer { cfg, queues: HashMap::new(), drops: 0, peak_backlog: SimDuration::from_ns(0) }
    }

    /// Base capacity of a link: the tier rate with a ±25% seeded wobble.
    fn base_capacity(&self, link: LinkId) -> f64 {
        let tier = match link {
            LinkId::Access(_) => self.cfg.access_pps,
            LinkId::Core(_) => self.cfg.core_pps,
            LinkId::Spine(_) => self.cfg.spine_pps,
        };
        tier * (0.75 + 0.5 * unit_hash(self.cfg.seed, link_stream(link)))
    }

    /// Push one packet through `path` at `now`. Returns the extra delay
    /// the shared queues add, or `None` when a partition or a full queue
    /// drops the packet.
    ///
    /// Fluid approximation: each link charges its current backlog plus
    /// one service time and advances its drain timestamp; downstream
    /// links see the packet at `now` rather than after upstream delay —
    /// a simplification that keeps the hot path O(path) with no event
    /// queue, at the cost of slightly optimistic pipelining.
    pub fn traverse(&mut self, path: &[LinkId], now: SimTime) -> Option<SimDuration> {
        let now_secs = now.as_secs_f64();
        let mut extra = SimDuration::from_ns(0);
        for &link in path {
            let mut capacity = self.base_capacity(link);
            for ev in &self.cfg.events {
                if ev.link != link || !ev.active(now_secs) {
                    continue;
                }
                match ev.kind {
                    LinkEventKind::Degrade { capacity_scale } => capacity *= capacity_scale,
                    LinkEventKind::Partition => {
                        self.drops += 1;
                        return None;
                    }
                }
            }
            let release = self.queues.entry(link).or_insert(SimTime::EPOCH);
            let backlog = release.saturating_since(now);
            if backlog.as_secs_f64() > self.cfg.queue_cap_secs {
                self.drops += 1;
                return None;
            }
            if self.peak_backlog < backlog {
                self.peak_backlog = backlog;
            }
            let service = SimDuration::from_secs_f64(1.0 / capacity.max(1e-9));
            *release = (*release).max(now) + service;
            extra = extra.saturating_add(backlog).saturating_add(service);
        }
        Some(extra)
    }

    /// Packets dropped by partitions and full queues.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// High-water queueing backlog across all links, microseconds.
    pub fn peak_backlog_us(&self) -> u64 {
        self.peak_backlog.as_ns() / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs_f64(secs)
    }

    fn flat_cfg(events: Vec<LinkEvent>) -> LinkCfg {
        // Wobble-free tier rates so service times are exact in tests.
        LinkCfg { seed: 0, access_pps: 1000.0, queue_cap_secs: 0.5, events, ..LinkCfg::default() }
    }

    /// Pin the access capacity to exactly `pps` regardless of the wobble.
    fn exact_access(pps: f64, events: Vec<LinkEvent>) -> LinkLayer {
        let mut layer = LinkLayer::new(flat_cfg(events));
        let wobble = 0.75 + 0.5 * unit_hash(0, link_stream(LinkId::Access(7)));
        layer.cfg.access_pps = pps / wobble;
        layer
    }

    #[test]
    fn backlog_builds_when_arrivals_outpace_service() {
        // 100 pps = 10 ms service. Probes every 1 ms queue behind each
        // other: the k-th probe waits ~k·9 ms more than the first.
        let mut layer = exact_access(100.0, Vec::new());
        let path = [LinkId::Access(7)];
        let first = layer.traverse(&path, t(0.0)).unwrap();
        let mut last = first;
        for k in 1..10u32 {
            last = layer.traverse(&path, t(f64::from(k) * 0.001)).unwrap();
        }
        assert!(
            last.as_secs_f64() > first.as_secs_f64() + 0.07,
            "9 queued probes must add ~81 ms of backlog, got {} → {}",
            first.as_secs_f64(),
            last.as_secs_f64()
        );
        assert!(layer.peak_backlog_us() > 70_000);
    }

    #[test]
    fn idle_links_add_only_service_time() {
        let mut layer = exact_access(100.0, Vec::new());
        let path = [LinkId::Access(7)];
        // Probes 1 s apart never see each other's backlog.
        for k in 0..5u32 {
            let d = layer.traverse(&path, t(f64::from(k))).unwrap();
            assert!((d.as_secs_f64() - 0.01).abs() < 1e-9, "got {}", d.as_secs_f64());
        }
        assert_eq!(layer.drops(), 0);
    }

    #[test]
    fn degrade_window_inflates_then_recovers() {
        let ev = LinkEvent {
            link: LinkId::Access(7),
            at_secs: 10.0,
            until_secs: 20.0,
            kind: LinkEventKind::Degrade { capacity_scale: 0.01 },
        };
        let mut layer = exact_access(100.0, vec![ev]);
        let path = [LinkId::Access(7)];
        let before = layer.traverse(&path, t(5.0)).unwrap();
        let during = layer.traverse(&path, t(15.0)).unwrap();
        let after = layer.traverse(&path, t(30.0)).unwrap();
        assert!((before.as_secs_f64() - 0.01).abs() < 1e-9);
        assert!(during.as_secs_f64() >= 1.0, "100× degrade → 1 s service");
        // Past the window the link serves at full rate again (the backlog
        // built during the window has drained by t=30).
        assert!(after.as_secs_f64() < 0.1, "got {}", after.as_secs_f64());
    }

    #[test]
    fn partition_drops_and_other_links_unaffected() {
        let ev = LinkEvent {
            link: LinkId::Access(7),
            at_secs: 0.0,
            until_secs: f64::INFINITY,
            kind: LinkEventKind::Partition,
        };
        let mut layer = LinkLayer::new(flat_cfg(vec![ev]));
        assert_eq!(layer.traverse(&[LinkId::Access(7)], t(1.0)), None);
        assert_eq!(layer.drops(), 1);
        assert!(layer.traverse(&[LinkId::Access(8)], t(1.0)).is_some());
    }

    #[test]
    fn full_queue_tail_drops() {
        let mut layer = exact_access(10.0, Vec::new()); // 100 ms service
        let path = [LinkId::Access(7)];
        let mut dropped = false;
        for _ in 0..20 {
            // All at t=0: backlog grows 100 ms per packet; cap is 500 ms.
            if layer.traverse(&path, t(0.0)).is_none() {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "queue cap must eventually tail-drop");
        assert!(layer.peak_backlog_us() <= 600_000);
    }

    #[test]
    fn traverse_is_deterministic() {
        let run = || {
            let mut layer = LinkLayer::new(LinkCfg { seed: 42, ..LinkCfg::default() });
            let mut out = Vec::new();
            for k in 0..50u32 {
                let path =
                    [LinkId::Access((k % 3) as u16), LinkId::Core(100 + k % 2), LinkId::Spine(0)];
                out.push(layer.traverse(&path, t(f64::from(k) * 0.0001)));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
