//! The packet representation circulating inside the simulator.
//!
//! Simulation logic operates on this structured form; [`Packet::encode`]
//! and [`Packet::decode`] bridge to real bytes via `beware-wire`, so a
//! prober can be exercised end-to-end at the byte level (the integration
//! tests and the quickstart example do) while the hot simulation path skips
//! redundant serialization.

use crate::time::SimTime;
use beware_wire::icmp::{IcmpKind, IcmpPacket, IcmpRepr};
use beware_wire::ipv4::{Ipv4Header, Ipv4Packet, Protocol};
use beware_wire::tcp::{TcpPacket, TcpRepr};
use beware_wire::udp::{UdpPacket, UdpRepr};
use beware_wire::WireError;

/// Transport-layer content of a simulated packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L4 {
    /// An ICMP message with its payload bytes.
    Icmp {
        /// Message kind.
        kind: IcmpKind,
        /// Echo payload (probe embedding lives here).
        payload: Vec<u8>,
    },
    /// A UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Datagram payload.
        payload: Vec<u8>,
    },
    /// A (data-less) TCP segment.
    Tcp(TcpRepr),
}

impl L4 {
    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            L4::Icmp { payload, .. } => beware_wire::icmp::HEADER_LEN + payload.len(),
            L4::Udp { payload, .. } => beware_wire::udp::HEADER_LEN + payload.len(),
            L4::Tcp(_) => beware_wire::tcp::HEADER_LEN,
        }
    }

    /// The IP protocol number for this content.
    pub fn protocol(&self) -> Protocol {
        match self {
            L4::Icmp { .. } => Protocol::Icmp,
            L4::Udp { .. } => Protocol::Udp,
            L4::Tcp(_) => Protocol::Tcp,
        }
    }
}

/// A simulated IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source address (host order).
    pub src: u32,
    /// Destination address (host order).
    pub dst: u32,
    /// Remaining time-to-live as seen by the receiver.
    pub ttl: u8,
    /// Transport content.
    pub l4: L4,
}

impl Packet {
    /// Convenience constructor for an ICMP echo request probe.
    pub fn echo_request(src: u32, dst: u32, ident: u16, seq: u16, payload: Vec<u8>) -> Self {
        Packet {
            src,
            dst,
            ttl: 64,
            l4: L4::Icmp { kind: IcmpKind::EchoRequest { ident, seq }, payload },
        }
    }

    /// The echo reply a well-behaved host sends for this packet, sourced
    /// from `reply_src` (which differs from `dst` for broadcast probes).
    pub fn echo_reply_from(&self, reply_src: u32) -> Option<Packet> {
        match &self.l4 {
            L4::Icmp { kind, payload } => kind.reply().map(|k| Packet {
                src: reply_src,
                dst: self.src,
                ttl: 64,
                l4: L4::Icmp { kind: k, payload: payload.clone() },
            }),
            _ => None,
        }
    }

    /// The IPv4 header for encoding.
    fn ip_header(&self) -> Ipv4Header {
        Ipv4Header {
            src: self.src,
            dst: self.dst,
            protocol: self.l4.protocol(),
            ttl: self.ttl,
            ident: 0,
            dont_frag: true,
            payload_len: self.l4.wire_len(),
        }
    }

    /// Serialize to wire bytes (IPv4 header + L4).
    pub fn encode(&self) -> Vec<u8> {
        let ip = self.ip_header();
        let mut buf = vec![0u8; ip.total_len()];
        ip.emit(&mut buf).expect("buffer sized from header");
        let body = &mut buf[beware_wire::ipv4::HEADER_LEN..];
        match &self.l4 {
            L4::Icmp { kind, payload } => {
                let repr = IcmpRepr { kind: *kind, payload_len: payload.len() };
                repr.emit(payload, body).expect("buffer sized from repr");
            }
            L4::Udp { src_port, dst_port, payload } => {
                let repr = UdpRepr {
                    src_port: *src_port,
                    dst_port: *dst_port,
                    payload_len: payload.len(),
                };
                repr.emit(&ip, payload, body).expect("buffer sized from repr");
            }
            L4::Tcp(repr) => {
                repr.emit(&ip, body).expect("buffer sized from repr");
            }
        }
        buf
    }

    /// Parse wire bytes back into a structured packet.
    pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
        let ip = Ipv4Packet::parse(bytes)?;
        let hdr = ip.header();
        let l4 = match hdr.protocol {
            Protocol::Icmp => {
                let icmp = IcmpPacket::parse(ip.payload())?;
                L4::Icmp { kind: icmp.kind(), payload: icmp.payload().to_vec() }
            }
            Protocol::Udp => {
                let udp = UdpPacket::parse(ip.payload(), &hdr)?;
                L4::Udp {
                    src_port: udp.src_port(),
                    dst_port: udp.dst_port(),
                    payload: udp.payload().to_vec(),
                }
            }
            Protocol::Tcp => {
                let tcp = TcpPacket::parse(ip.payload(), &hdr)?;
                L4::Tcp(tcp.repr())
            }
            Protocol::Other(_) => return Err(WireError::Malformed("unsupported IP protocol")),
        };
        Ok(Packet { src: hdr.src, dst: hdr.dst, ttl: hdr.ttl, l4 })
    }
}

/// A packet scheduled to arrive at the prober.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Delivery time at the prober's interface.
    pub at: SimTime,
    /// The arriving packet.
    pub pkt: Packet,
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_wire::tcp::TcpFlags;

    #[test]
    fn icmp_encode_decode_roundtrip() {
        let p = Packet::echo_request(0x0a000001, 0xd3040afe, 0x77, 5, vec![9; 24]);
        let bytes = p.encode();
        assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn udp_encode_decode_roundtrip() {
        let p = Packet {
            src: 1,
            dst: 2,
            ttl: 61,
            l4: L4::Udp { src_port: 33000, dst_port: 33001, payload: b"x".to_vec() },
        };
        let bytes = p.encode();
        assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn tcp_encode_decode_roundtrip() {
        let p = Packet {
            src: 3,
            dst: 4,
            ttl: 255,
            l4: L4::Tcp(TcpRepr {
                src_port: 1234,
                dst_port: 80,
                seq: 1,
                ack_no: 2,
                flags: TcpFlags::ACK,
                window: 512,
            }),
        };
        let bytes = p.encode();
        assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn echo_reply_swaps_and_sources() {
        let req = Packet::echo_request(10, 20, 1, 2, vec![7; 4]);
        let rep = req.echo_reply_from(21).unwrap();
        assert_eq!(rep.src, 21);
        assert_eq!(rep.dst, 10);
        match rep.l4 {
            L4::Icmp { kind, ref payload } => {
                assert_eq!(kind, IcmpKind::EchoReply { ident: 1, seq: 2 });
                assert_eq!(payload, &vec![7; 4]);
            }
            _ => panic!("not icmp"),
        }
        // Non-echo packets have no reply.
        let rst = Packet {
            src: 1,
            dst: 2,
            ttl: 3,
            l4: L4::Tcp(TcpRepr {
                src_port: 0,
                dst_port: 0,
                seq: 0,
                ack_no: 0,
                flags: TcpFlags::RST,
                window: 0,
            }),
        };
        assert!(rst.echo_reply_from(9).is_none());
    }

    #[test]
    fn corrupted_bytes_fail_decode() {
        let p = Packet::echo_request(1, 2, 3, 4, vec![0; 8]);
        let mut bytes = p.encode();
        bytes[25] ^= 0xff; // inside the ICMP header
        assert!(Packet::decode(&bytes).is_err());
    }
}
