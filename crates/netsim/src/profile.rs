//! Behavior configuration for a /24 block.
//!
//! A [`BlockProfile`] declares how the addresses of one /24 behave. The
//! ingredients compose: any link class can carry congestion or
//! disconnect-episode behavior, which is how the paper's observations map
//! onto mechanisms:
//!
//! * **wake-up** ([`WakeupCfg`]) — cellular RRC idle→connected negotiation;
//!   produces the "first ping" effect of Section 6.3 (median setup
//!   ≈ 1.37 s, 90% < 4 s, radio stays connected ~10 s after activity).
//! * **congestion** ([`CongestionCfg`]) — oversubscribed links with large
//!   buffers; produces *sustained high latency and loss* (Table 7).
//! * **episodes** ([`EpisodeCfg`]) — intermittent connectivity where the
//!   network pages/buffers packets and flushes them on reconnect; produces
//!   the *loss-then-decay* and *low-latency-then-decay* RTT staircases
//!   (Section 6.4: "after 136 seconds of no response ... we received all
//!   136 responses over a one second interval").
//! * **broadcast** ([`BroadcastCfg`]) — subnet broadcast/network addresses
//!   that solicit responses from neighbors (Section 3.3.1).
//! * **dos** ([`DosCfg`]) — reflectors answering one request with many
//!   responses, up to millions (Section 3.3.2, Figure 5).
//! * **firewall** ([`FirewallCfg`]) — middleboxes synthesizing TCP RSTs
//!   with a constant TTL for a whole /24 (Section 5.3, Figure 10).

use crate::rng::Dist;

/// Cellular radio wake-up (RRC idle → connected) behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeupCfg {
    /// Fraction of the block's live hosts that exhibit wake-up delay.
    pub host_prob: f64,
    /// Negotiation delay in seconds, added when the radio is idle.
    /// The paper measures median 1.37 s with 90% under 4 s.
    pub delay: Dist,
    /// Seconds the radio stays connected after the last activity
    /// (the "tail timer"); probes inside this window skip the wake-up.
    pub tail_secs: f64,
}

impl Default for WakeupCfg {
    fn default() -> Self {
        // LogNormal(median 1.37, sigma 0.84): p90 ≈ 4.0 s, p98 ≈ 7.6 s —
        // the fit to Figure 13.
        WakeupCfg {
            host_prob: 0.78,
            delay: Dist::LogNormal { median: 1.37, sigma: 0.84 },
            tail_secs: 10.0,
        }
    }
}

/// Persistent oversubscription with oversized buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionCfg {
    /// Fraction of the block's live hosts behind such a link.
    pub host_prob: f64,
    /// Queueing delay in seconds added to every probe.
    pub extra: Dist,
    /// Additional loss probability while congested.
    pub busy_loss: f64,
}

impl Default for CongestionCfg {
    fn default() -> Self {
        CongestionCfg {
            host_prob: 0.2,
            extra: Dist::LogNormal { median: 1.2, sigma: 0.9 },
            busy_loss: 0.25,
        }
    }
}

/// Diurnal load modulation: congestion breathes with local time of day.
///
/// The paper's Table 3 scans start at different hours and weekdays
/// precisely to control for this; the model scales the congested hosts'
/// queueing delay and loss by `1 + amplitude·sin(2π·(t − peak)/period)`,
/// peaking at the block's local evening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCfg {
    /// Relative swing, `[0, 1]`: 0.4 means ±40% around the mean.
    pub amplitude: f64,
    /// Seconds after the simulation epoch at which load peaks.
    pub peak_offset_secs: f64,
    /// Cycle length in seconds (a day).
    pub period_secs: f64,
}

impl Default for DiurnalCfg {
    fn default() -> Self {
        DiurnalCfg { amplitude: 0.4, peak_offset_secs: 72_000.0, period_secs: 86_400.0 }
    }
}

impl DiurnalCfg {
    /// The load factor at time `t_secs`.
    pub fn factor(&self, t_secs: f64) -> f64 {
        let phase =
            (t_secs - self.peak_offset_secs) / self.period_secs.max(1.0) * std::f64::consts::TAU;
        1.0 + self.amplitude.clamp(0.0, 1.0) * phase.cos()
    }
}

/// A one-way regime shift at a fixed instant: from `at_secs` on, every
/// response's delay is scaled and extra loss applies.
///
/// This is the COVID-19 lockdown signature the latency studies in
/// PAPERS.md document — residential baseline RTT stepping up by tens of
/// percent essentially overnight and staying there — and the scenario
/// that makes a pre-shift timeout snapshot *stale*. Unlike
/// [`DiurnalCfg`] (periodic, mean-reverting) the shift never reverts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftCfg {
    /// Simulation second at which the new regime begins.
    pub at_secs: f64,
    /// Factor applied to the whole response delay from `at_secs` on
    /// (1.0 = no change; the COVID studies report ~1.2–2× for
    /// oversubscribed residential links).
    pub rtt_scale: f64,
    /// Additional per-probe loss probability in the new regime.
    pub extra_loss: f64,
}

impl Default for ShiftCfg {
    fn default() -> Self {
        ShiftCfg { at_secs: 0.0, rtt_scale: 1.6, extra_loss: 0.05 }
    }
}

/// Congestion storms: bounded periods in which an oversubscribed link
/// holds a near-full queue, so every surviving probe sees tens-to-hundreds
/// of seconds of queueing delay and loss is heavy. This is the mechanism
/// behind the paper's *sustained high latency and loss* pattern (Table 7):
/// "latencies remaining higher than normal (>10 seconds) throughout the
/// duration", usually for several minutes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormCfg {
    /// Fraction of the block's live hosts subject to storms.
    pub host_prob: f64,
    /// Seconds between storms.
    pub interval: Dist,
    /// Storm duration in seconds.
    pub duration: Dist,
    /// Queueing delay added to each surviving probe during a storm.
    pub delay: Dist,
    /// Ceiling on the sampled delay, seconds — a queue is finite.
    pub max_delay_secs: f64,
    /// Per-probe loss probability during a storm.
    pub loss: f64,
}

impl Default for StormCfg {
    fn default() -> Self {
        StormCfg {
            host_prob: 0.07,
            interval: Dist::Exponential { mean: 3600.0 },
            duration: Dist::LogNormal { median: 200.0, sigma: 0.5 },
            delay: Dist::LogNormal { median: 60.0, sigma: 0.6 },
            max_delay_secs: 220.0,
            loss: 0.45,
        }
    }
}

/// Intermittent-connectivity episodes with network-side buffering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeCfg {
    /// Fraction of the block's live hosts subject to episodes.
    pub host_prob: f64,
    /// Seconds between episodes (sampled per episode).
    pub interval: Dist,
    /// Episode duration in seconds.
    pub duration: Dist,
    /// Ceiling on the sampled duration, seconds — paging buffers time out
    /// eventually (the longest RTT the paper ever saw was 517 s).
    pub max_duration_secs: f64,
    /// Maximum number of probes the network buffers during an episode;
    /// the rest are lost.
    pub buffer_cap: u32,
    /// Probability an in-episode probe is buffered rather than dropped.
    pub buffer_prob: f64,
    /// Each episode begins with a *blackout* of a few seconds during
    /// which probes are dropped outright (the radio is gone; the paging
    /// buffer has not engaged); its length is uniform in `[0, this]`
    /// seconds, capped at half the episode. The paper sees six times more
    /// *loss-then-decay* than *low-latency-then-decay* events — most
    /// flushes are preceded by a few losses.
    pub blackout_secs_max: f64,
}

impl Default for EpisodeCfg {
    fn default() -> Self {
        EpisodeCfg {
            host_prob: 0.15,
            interval: Dist::Exponential { mean: 4800.0 },
            duration: Dist::LogNormal { median: 100.0, sigma: 0.55 },
            max_duration_secs: 400.0,
            buffer_cap: 180,
            buffer_prob: 0.8,
            blackout_secs_max: 15.0,
        }
    }
}

/// Subnet broadcast behavior inside the /24.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BroadcastCfg {
    /// Fraction of the subnet's live *interior* hosts that answer a
    /// broadcast ping.
    pub responder_prob: f64,
    /// Same, for hosts within three addresses of the subnet edge —
    /// routers and gateways conventionally sit at .254/.1, and they are
    /// the devices most often configured to answer broadcast. Their
    /// bit-reversed probe slots are what put the paper's false-latency
    /// bumps at exactly 330/165/495 s.
    pub edge_responder_prob: f64,
    /// Fraction of broadcast responders that do **not** answer unicast
    /// probes (filtered or bound to the broadcast path only). These are
    /// the addresses whose every round yields a timeout plus a stable
    /// false "delayed response" — the population the EWMA filter exists
    /// to remove.
    pub unicast_silent_prob: f64,
    /// Whether the all-zeros (network) address also solicits responses
    /// (pre-CIDR "directed broadcast to network address" behavior).
    pub network_addr_responds: bool,
}

impl Default for BroadcastCfg {
    fn default() -> Self {
        BroadcastCfg {
            responder_prob: 0.15,
            edge_responder_prob: 0.8,
            unicast_silent_prob: 0.5,
            network_addr_responds: true,
        }
    }
}

/// A middlebox that answers TCP probes itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirewallCfg {
    /// RST latency in seconds (the paper observes a mode near 200 ms).
    pub rst_delay: Dist,
    /// TTL of the RSTs as received — constant for the whole /24, the
    /// fingerprint the paper uses to separate firewall responses.
    pub ttl: u8,
}

impl Default for FirewallCfg {
    fn default() -> Self {
        FirewallCfg { rst_delay: Dist::LogNormal { median: 0.2, sigma: 0.15 }, ttl: 243 }
    }
}

/// Reflector / DoS-like duplicate-response behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DosCfg {
    /// Fraction of the block's addresses that are reflectors.
    pub addr_prob: f64,
    /// Number of responses per request (heavy-tailed; Figure 5 observes
    /// up to ~11 M in 11 minutes).
    pub count: Dist,
    /// Hard cap on generated responses, so a simulation stays bounded.
    pub max_responses: u32,
    /// Seconds over which the response burst spreads.
    pub spread_secs: f64,
}

impl Default for DosCfg {
    fn default() -> Self {
        DosCfg {
            addr_prob: 0.004,
            count: Dist::Pareto { xm: 5.0, alpha: 0.6 },
            max_responses: 20_000,
            spread_secs: 300.0,
        }
    }
}

/// RFC 1812-style ICMP response rate limiting at the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitCfg {
    /// Sustained responses per second.
    pub rate_per_sec: f64,
    /// Bucket depth.
    pub burst: u32,
}

impl Default for RateLimitCfg {
    fn default() -> Self {
        RateLimitCfg { rate_per_sec: 1.0, burst: 5 }
    }
}

/// Complete behavior description of one /24 block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockProfile {
    /// Per-host base path RTT in seconds, drawn once per host.
    pub base_rtt: Dist,
    /// Per-probe jitter in seconds.
    pub jitter: Dist,
    /// Fraction of addresses that are live hosts.
    pub density: f64,
    /// Per-probe response probability for a live, reachable host.
    pub response_prob: f64,
    /// Host bits of the subnets the /24 is divided into (2–8); defines
    /// which last octets are broadcast/network addresses.
    pub subnet_host_bits: u8,
    /// Cellular wake-up behavior, if any.
    pub wakeup: Option<WakeupCfg>,
    /// Persistent congestion behavior, if any.
    pub congestion: Option<CongestionCfg>,
    /// Disconnect-episode behavior, if any.
    pub episodes: Option<EpisodeCfg>,
    /// Congestion-storm behavior, if any.
    pub storms: Option<StormCfg>,
    /// Diurnal congestion modulation, if any.
    pub diurnal: Option<DiurnalCfg>,
    /// Permanent latency/loss regime shift at a fixed instant, if any.
    pub shift: Option<ShiftCfg>,
    /// Cap in seconds on jitter+congestion extras (satellite modems bound
    /// their queues: Fig. 11 shows 99th percentiles predominantly < 3 s).
    pub rtt_cap: Option<f64>,
    /// Broadcast responder behavior, if any.
    pub broadcast: Option<BroadcastCfg>,
    /// TCP-answering middlebox, if any.
    pub firewall: Option<FirewallCfg>,
    /// Reflector behavior, if any.
    pub dos: Option<DosCfg>,
    /// Probability a response is benignly duplicated (2–4 copies).
    pub dup_prob: f64,
    /// Probability a probe draws an ICMP host-unreachable error instead of
    /// reaching the host.
    pub error_prob: f64,
    /// ICMP rate limiting at the host, if any.
    pub icmp_rate_limit: Option<RateLimitCfg>,
}

impl Default for BlockProfile {
    fn default() -> Self {
        BlockProfile {
            base_rtt: Dist::LogNormal { median: 0.04, sigma: 0.35 },
            jitter: Dist::Exponential { mean: 0.004 },
            density: 0.3,
            response_prob: 0.97,
            subnet_host_bits: 8,
            wakeup: None,
            congestion: None,
            episodes: None,
            storms: None,
            diurnal: None,
            shift: None,
            rtt_cap: None,
            broadcast: None,
            firewall: None,
            dos: None,
            dup_prob: 0.0005,
            error_prob: 0.001,
            icmp_rate_limit: None,
        }
    }
}

/// Coarse behavior classes a profile can fall into, in precedence order:
/// a profile combining several mechanisms is labelled by the first one
/// that applies. Telemetry reports per-kind response counts under
/// `netsim/responses_by_profile/<kind>`.
pub const PROFILE_KINDS: [&str; 9] = [
    "dos",
    "broadcast",
    "firewall",
    "episodes",
    "storms",
    "wakeup",
    "congestion",
    "satellite",
    "plain",
];

impl BlockProfile {
    /// Index into [`PROFILE_KINDS`] of this profile's dominant behavior.
    pub fn kind_index(&self) -> usize {
        if self.dos.is_some() {
            0
        } else if self.broadcast.is_some() {
            1
        } else if self.firewall.is_some() {
            2
        } else if self.episodes.is_some() {
            3
        } else if self.storms.is_some() {
            4
        } else if self.wakeup.is_some() {
            5
        } else if self.congestion.is_some() {
            6
        } else if self.rtt_cap.is_some() {
            7
        } else {
            8
        }
    }

    /// Human label of this profile's dominant behavior.
    pub fn kind_label(&self) -> &'static str {
        PROFILE_KINDS[self.kind_index()]
    }
}

impl BlockProfile {
    /// Validate parameter ranges; called by the world builder so a typo in
    /// a scenario fails fast instead of producing nonsense distributions.
    pub fn validate(&self) -> Result<(), String> {
        fn prob(name: &str, v: f64) -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} = {v} outside [0, 1]"))
            }
        }
        prob("density", self.density)?;
        prob("response_prob", self.response_prob)?;
        prob("dup_prob", self.dup_prob)?;
        prob("error_prob", self.error_prob)?;
        if !(2..=8).contains(&self.subnet_host_bits) {
            return Err(format!("subnet_host_bits = {} outside 2..=8", self.subnet_host_bits));
        }
        if let Some(w) = &self.wakeup {
            prob("wakeup.host_prob", w.host_prob)?;
        }
        if let Some(c) = &self.congestion {
            prob("congestion.host_prob", c.host_prob)?;
            prob("congestion.busy_loss", c.busy_loss)?;
        }
        if let Some(e) = &self.episodes {
            prob("episodes.host_prob", e.host_prob)?;
            prob("episodes.buffer_prob", e.buffer_prob)?;
        }
        if let Some(s) = &self.storms {
            prob("storms.host_prob", s.host_prob)?;
            prob("storms.loss", s.loss)?;
        }
        if let Some(d) = &self.diurnal {
            prob("diurnal.amplitude", d.amplitude)?;
            if d.period_secs <= 0.0 {
                return Err("diurnal.period_secs must be positive".into());
            }
        }
        if let Some(s) = &self.shift {
            prob("shift.extra_loss", s.extra_loss)?;
            if s.rtt_scale <= 0.0 {
                return Err("shift.rtt_scale must be positive".into());
            }
            if s.at_secs < 0.0 {
                return Err("shift.at_secs must be non-negative".into());
            }
        }
        if let Some(b) = &self.broadcast {
            prob("broadcast.responder_prob", b.responder_prob)?;
            prob("broadcast.edge_responder_prob", b.edge_responder_prob)?;
            prob("broadcast.unicast_silent_prob", b.unicast_silent_prob)?;
        }
        if let Some(d) = &self.dos {
            prob("dos.addr_prob", d.addr_prob)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_validates() {
        BlockProfile::default().validate().unwrap();
    }

    #[test]
    fn bad_probability_rejected() {
        let p = BlockProfile { density: 1.5, ..Default::default() };
        assert!(p.validate().unwrap_err().contains("density"));
        let p = BlockProfile { response_prob: -0.1, ..Default::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_subnet_bits_rejected() {
        let p = BlockProfile { subnet_host_bits: 1, ..Default::default() };
        assert!(p.validate().unwrap_err().contains("subnet_host_bits"));
        let p = BlockProfile { subnet_host_bits: 9, ..Default::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn nested_probabilities_checked() {
        let p = BlockProfile {
            wakeup: Some(WakeupCfg { host_prob: 2.0, ..Default::default() }),
            ..Default::default()
        };
        assert!(p.validate().unwrap_err().contains("wakeup"));
        let p = BlockProfile {
            episodes: Some(EpisodeCfg { buffer_prob: -1.0, ..Default::default() }),
            ..Default::default()
        };
        assert!(p.validate().unwrap_err().contains("buffer_prob"));
    }

    #[test]
    fn shift_parameters_checked() {
        let p = BlockProfile {
            shift: Some(ShiftCfg { at_secs: 10.0, rtt_scale: 0.0, extra_loss: 0.0 }),
            ..Default::default()
        };
        assert!(p.validate().unwrap_err().contains("rtt_scale"));
        let p = BlockProfile {
            shift: Some(ShiftCfg { extra_loss: 1.5, ..Default::default() }),
            ..Default::default()
        };
        assert!(p.validate().unwrap_err().contains("extra_loss"));
        let p = BlockProfile { shift: Some(ShiftCfg::default()), ..Default::default() };
        p.validate().unwrap();
        // A shift does not change the profile's dominant-kind label.
        assert_eq!(p.kind_label(), "plain");
    }

    #[test]
    fn kind_labels_follow_precedence() {
        assert_eq!(BlockProfile::default().kind_label(), "plain");
        let p = BlockProfile { rtt_cap: Some(3.0), ..Default::default() };
        assert_eq!(p.kind_label(), "satellite");
        let p = BlockProfile {
            congestion: Some(Default::default()),
            wakeup: Some(Default::default()),
            ..Default::default()
        };
        // Wakeup wins over congestion by precedence.
        assert_eq!(p.kind_label(), "wakeup");
        let p = BlockProfile {
            dos: Some(Default::default()),
            broadcast: Some(Default::default()),
            ..Default::default()
        };
        assert_eq!(p.kind_label(), "dos");
        assert_eq!(PROFILE_KINDS.len(), 9);
    }

    #[test]
    fn wakeup_default_matches_paper_fit() {
        let w = WakeupCfg::default();
        match w.delay {
            Dist::LogNormal { median, .. } => assert!((median - 1.37).abs() < 1e-9),
            _ => panic!("unexpected distribution"),
        }
        assert_eq!(w.tail_secs, 10.0);
    }
}
