//! Deterministic randomness and the latency distributions the behavior
//! models draw from.
//!
//! Everything in the simulator is seeded: the same seed produces the same
//! packet trace, byte for byte, which the integration tests assert. Rather
//! than pull `rand_distr`, the handful of distributions the latency models
//! need are implemented here from `rand`'s uniform source — each is a
//! couple of lines of inverse-transform or Box–Muller sampling, and owning
//! them keeps the workspace at its approved dependency set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build the standard deterministic RNG from an explicit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// Seed derivation and per-entity unit hashing live in
// `beware_runtime::rng` (`derive_seed`, `unit_hash`) — the workspace's
// single SplitMix64 implementation. The delegation re-exports this module
// carried after the PR-5 dedup are gone; call sites import the runtime
// crate directly.

/// Continuous distributions over positive reals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Every sample equals `value`.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (`1/rate`).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal parameterized the way measurement papers quote it:
    /// by its median (`exp(mu)`) and shape `sigma`.
    LogNormal {
        /// Median of the distribution.
        median: f64,
        /// Shape parameter (sigma of the underlying normal).
        sigma: f64,
    },
    /// Pareto with scale (minimum) `xm` and tail index `alpha`.
    Pareto {
        /// Scale: the minimum value.
        xm: f64,
        /// Tail index; smaller is heavier.
        alpha: f64,
    },
    /// Weibull with the given scale and shape.
    Weibull {
        /// Scale parameter.
        scale: f64,
        /// Shape parameter.
        shape: f64,
    },
}

impl Dist {
    /// Draw one sample. All variants return finite, non-negative values.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => v.max(0.0),
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo.max(0.0)
                } else {
                    rng.gen_range(lo..hi).max(0.0)
                }
            }
            Dist::Exponential { mean } => {
                // Inverse transform; guard the log against u == 0.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (-u.ln() * mean).max(0.0)
            }
            Dist::LogNormal { median, sigma } => {
                (median.max(f64::MIN_POSITIVE).ln() + sigma * standard_normal(rng)).exp()
            }
            Dist::Pareto { xm, alpha } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                xm / u.powf(1.0 / alpha.max(1e-9))
            }
            Dist::Weibull { scale, shape } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                scale * (-u.ln()).powf(1.0 / shape.max(1e-9))
            }
        }
    }

    /// Draw a sample clamped to `[0, cap]`, for models with a physical
    /// ceiling (e.g. a satellite modem's bounded queue).
    pub fn sample_capped<R: Rng + ?Sized>(&self, rng: &mut R, cap: f64) -> f64 {
        self.sample(rng).min(cap)
    }
}

/// One standard normal variate via Box–Muller (the single-variate form; the
/// simulator draws rarely enough that discarding the cosine twin is fine).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A Bernoulli trial.
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_runtime::rng::{derive_seed, unit_hash};

    fn mean_of(dist: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = seeded(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn determinism_across_runs() {
        let d = Dist::LogNormal { median: 1.37, sigma: 0.84 };
        let a: Vec<f64> = {
            let mut rng = seeded(42);
            (0..32).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = seeded(42);
            (0..32).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(7, 2);
        assert_ne!(s1, s2);
        assert_eq!(derive_seed(7, 1), s1);
    }

    #[test]
    fn unit_hash_in_range_and_spread() {
        let mut lo = 0usize;
        for e in 0..10_000u64 {
            let h = unit_hash(99, e);
            assert!((0.0..1.0).contains(&h));
            if h < 0.5 {
                lo += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo), "uniformity failed: {lo}");
    }

    #[test]
    fn exponential_mean_converges() {
        let m = mean_of(Dist::Exponential { mean: 3.0 }, 40_000, 1);
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn lognormal_median_converges() {
        let d = Dist::LogNormal { median: 1.37, sigma: 0.84 };
        let mut rng = seeded(5);
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[10_000];
        assert!((median - 1.37).abs() < 0.08, "median {median}");
        // The paper's wake-up fit: 90% below 4 s.
        let p90 = samples[18_000];
        assert!((3.0..5.2).contains(&p90), "p90 {p90}");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Dist::Pareto { xm: 2.0, alpha: 1.5 };
        let mut rng = seeded(9);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn weibull_shape1_is_exponential() {
        let w = mean_of(Dist::Weibull { scale: 2.0, shape: 1.0 }, 40_000, 11);
        assert!((w - 2.0).abs() < 0.1, "mean {w}");
    }

    #[test]
    fn uniform_bounds_and_degenerate() {
        let d = Dist::Uniform { lo: 1.0, hi: 2.0 };
        let mut rng = seeded(3);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((1.0..2.0).contains(&v));
        }
        assert_eq!(Dist::Uniform { lo: 5.0, hi: 5.0 }.sample(&mut rng), 5.0);
    }

    #[test]
    fn capped_sampling() {
        let d = Dist::Pareto { xm: 1.0, alpha: 0.5 };
        let mut rng = seeded(13);
        for _ in 0..1_000 {
            assert!(d.sample_capped(&mut rng, 10.0) <= 10.0);
        }
    }

    #[test]
    fn coin_edges() {
        let mut rng = seeded(17);
        assert!(!coin(&mut rng, 0.0));
        assert!(coin(&mut rng, 1.0));
        let heads = (0..10_000).filter(|_| coin(&mut rng, 0.3)).count();
        assert!((2_700..3_300).contains(&heads), "{heads}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(23);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
