//! Scenario construction: from a synthetic Internet plan to a populated
//! simulation world.
//!
//! This is where the paper's *causal* findings are encoded as behavior
//! parameters, per Autonomous System kind:
//!
//! * cellular blocks get radio wake-up (Section 6.3), deep-buffer
//!   congestion and disconnect episodes (Section 6.4);
//! * satellite blocks get a ≥ 500 ms propagation floor with capped queues
//!   (Figure 11: "1st percentile RTT ... exceeds 500ms in all cases",
//!   99th percentiles "predominantly below 3s");
//! * broadband/academic/hosting blocks are fast and reliable, with the
//!   usual sprinkling of broadcast responders, middlebox firewalls and
//!   the occasional reflector (Sections 3.3.1–3.3.2);
//! * mixed-cellular ASes behave cellularly on a minority of their blocks,
//!   reproducing the low turtle *fractions* of AS9829 and AS3352;
//! * transit (Chinanet) is broadband-like with a ~1.5% cellular-ish tail.
//!
//! Vantage points model the four ISI collection sites; the inter-continent
//! propagation matrix feeds each block's base RTT.

use crate::link::{LinkCfg, LinkEvent};
use crate::profile::{
    BlockProfile, BroadcastCfg, CongestionCfg, DosCfg, EpisodeCfg, FirewallCfg, RateLimitCfg,
    StormCfg, WakeupCfg,
};
use crate::rng::Dist;
use crate::space::{LazyCfg, ProfileSource, ResolvedBlock};
use crate::world::World;
use beware_asdb::{AsKind, Asn, Continent, GenConfig, InternetPlan};
use beware_runtime::rng::{derive_seed, unit_hash};
use std::sync::Arc;

/// One of the four ISI survey vantage points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vantage {
    /// Single-letter code used in survey names (e.g. the `w` in IT63w).
    pub code: char,
    /// Human-readable location.
    pub location: &'static str,
    /// Continent, for the propagation matrix.
    pub continent: Continent,
}

/// The four ISI vantage points: Marina del Rey "w", Ft. Collins "c",
/// Fujisawa-shi "j", Athens "g".
pub const VANTAGES: [Vantage; 4] = [
    Vantage {
        code: 'w',
        location: "Marina del Rey, California",
        continent: Continent::NorthAmerica,
    },
    Vantage { code: 'c', location: "Ft. Collins, Colorado", continent: Continent::NorthAmerica },
    Vantage { code: 'j', location: "Fujisawa-shi, Kanagawa, Japan", continent: Continent::Asia },
    Vantage { code: 'g', location: "Athens, Greece", continent: Continent::Europe },
];

/// Look up a vantage by its code letter.
pub fn vantage(code: char) -> Option<Vantage> {
    VANTAGES.iter().copied().find(|v| v.code == code)
}

/// Round-trip propagation between continents in seconds (symmetric).
pub fn propagation_rtt(a: Continent, b: Continent) -> f64 {
    use Continent::*;
    if a == b {
        return 0.02;
    }
    let key = |x: Continent, y: Continent| (x.min(y), x.max(y));
    match key(a, b) {
        (SouthAmerica, NorthAmerica) => 0.12,
        (SouthAmerica, Europe) => 0.16,
        (SouthAmerica, Asia) => 0.22,
        (SouthAmerica, Africa) => 0.20,
        (SouthAmerica, Oceania) => 0.22,
        (Asia, Europe) => 0.14,
        (Asia, Africa) => 0.18,
        (Asia, NorthAmerica) => 0.12,
        (Asia, Oceania) => 0.12,
        (Europe, Africa) => 0.08,
        (Europe, NorthAmerica) => 0.09,
        (Europe, Oceania) => 0.25,
        (Africa, NorthAmerica) => 0.15,
        (Africa, Oceania) => 0.25,
        (NorthAmerica, Oceania) => 0.15,
        _ => 0.15,
    }
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioCfg {
    /// Survey year (2006–2015): controls the cellular share of the space.
    pub year: u16,
    /// Master determinism seed.
    pub seed: u64,
    /// Number of /24 blocks in the generated Internet.
    pub total_blocks: u32,
    /// Vantage point the prober sits at.
    pub vantage: Vantage,
}

impl Default for ScenarioCfg {
    fn default() -> Self {
        ScenarioCfg { year: 2015, seed: 0x1511_0b5e, total_blocks: 1024, vantage: VANTAGES[0] }
    }
}

/// A generated Internet plus the configuration to instantiate worlds on it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Parameters the scenario was built with.
    pub cfg: ScenarioCfg,
    /// The synthetic Internet (AS registry + prefix allocations).
    pub plan: InternetPlan,
}

/// Per-block hash streams.
mod stream {
    pub const SUBNET_BITS: u64 = 0x10;
    pub const BROADCAST: u64 = 0x11;
    pub const FIREWALL: u64 = 0x12;
    pub const DOS: u64 = 0x13;
    pub const DENSITY: u64 = 0x14;
    pub const MIXED_CELL: u64 = 0x15;
    pub const RATE_LIMIT: u64 = 0x16;
    pub const XPLORNET_SAT: u64 = 0x17;
    pub const DIURNAL: u64 = 0x18;
}

impl Scenario {
    /// Generate the Internet for `cfg`.
    pub fn new(cfg: ScenarioCfg) -> Self {
        let plan = InternetPlan::generate(&GenConfig {
            year: cfg.year,
            seed: derive_seed(cfg.seed, PLAN_SEED_STREAM),
            total_blocks: cfg.total_blocks,
        });
        Scenario { cfg, plan }
    }

    /// Wrap an existing plan (e.g. loaded from `beware_asdb::persist`)
    /// instead of generating one. `cfg.year` and `cfg.total_blocks` are
    /// overridden by the plan's own values where they conflict.
    pub fn from_plan(mut cfg: ScenarioCfg, plan: InternetPlan) -> Self {
        cfg.year = plan.year;
        cfg.total_blocks = plan.block_count();
        Scenario { cfg, plan }
    }

    /// The attribution database for this scenario.
    pub fn db(&self) -> beware_asdb::AsDb {
        self.plan.to_db()
    }

    /// The seed of the worlds this scenario builds — needed by oracles
    /// that interrogate host-level ground truth (e.g. the filter-ablation
    /// experiment asks which addresses *really are* broadcast responders).
    pub fn world_seed(&self) -> u64 {
        derive_seed(self.cfg.seed, 0x0030_411d)
    }

    /// Instantiate the world as seen from the scenario's vantage point.
    pub fn build_world(&self) -> World {
        let mut world = World::new(self.world_seed());
        for (block, asn) in self.plan.blocks() {
            let info = self.plan.registry.get(asn).expect("allocated ASN is registered");
            let profile = self.block_profile(block, asn, info.kind, info.continent);
            world.add_block(block, Arc::new(profile));
        }
        world
    }

    /// The procedural view of this scenario's address space: the same
    /// profiles [`Self::build_world`] precomputes, resolved on demand.
    /// Build it once and share it (`Arc`) across the per-chunk worlds of
    /// a full-space campaign.
    pub fn lazy_space(&self) -> ProceduralSpace {
        ProceduralSpace { scenario: self.clone(), db: self.db() }
    }

    /// Instantiate a procedural world over [`Self::lazy_space`], with
    /// host state bounded per `lazy`. For any probe sequence it answers
    /// byte-identically to [`Self::build_world`] (modulo host eviction
    /// on re-probes, see [`crate::space`]) while materializing only the
    /// blocks and hosts the sequence actually touches.
    pub fn build_lazy_world(&self, lazy: &LazyCfg) -> World {
        World::procedural(self.world_seed(), Arc::new(self.lazy_space()), lazy)
    }

    /// The link-layer configuration scenarios attach to their worlds:
    /// default tier capacities, a seed derived from the scenario seed
    /// (independent of the behavior streams), and the given event
    /// schedule.
    pub fn link_cfg(&self, events: Vec<LinkEvent>) -> LinkCfg {
        LinkCfg { seed: derive_seed(self.cfg.seed, 0x0040_11aa), events, ..LinkCfg::default() }
    }

    /// Deterministic per-block behavior profile.
    fn block_profile(
        &self,
        block: u32,
        asn: Asn,
        kind: AsKind,
        continent: Continent,
    ) -> BlockProfile {
        let bseed = derive_seed(self.cfg.seed, u64::from(block));
        let h = |s: u64| unit_hash(bseed, s);
        let path_rtt = propagation_rtt(self.cfg.vantage.continent, continent);

        // Resolve effective kind for blocks of heterogeneous ASes.
        let effective = match kind {
            AsKind::MixedCellular => {
                if h(stream::MIXED_CELL) < 0.30 {
                    AsKind::Cellular
                } else {
                    AsKind::Broadband
                }
            }
            // Xplornet (AS22995): rural provider, roughly half satellite.
            AsKind::Broadband if asn == Asn(22995) && h(stream::XPLORNET_SAT) < 0.5 => {
                AsKind::Satellite
            }
            other => other,
        };

        let mut p = match effective {
            AsKind::Broadband | AsKind::MixedCellular => BlockProfile {
                base_rtt: Dist::LogNormal { median: path_rtt + 0.03, sigma: 0.55 },
                jitter: Dist::Exponential { mean: 0.004 },
                density: 0.30,
                response_prob: 0.97,
                congestion: Some(CongestionCfg {
                    host_prob: 0.015,
                    extra: Dist::LogNormal { median: 0.8, sigma: 0.8 },
                    busy_loss: 0.10,
                }),
                ..Default::default()
            },
            AsKind::Academic => BlockProfile {
                base_rtt: Dist::LogNormal { median: path_rtt + 0.008, sigma: 0.25 },
                jitter: Dist::Exponential { mean: 0.001 },
                density: 0.45,
                response_prob: 0.99,
                ..Default::default()
            },
            AsKind::Hosting => BlockProfile {
                base_rtt: Dist::LogNormal { median: path_rtt + 0.004, sigma: 0.2 },
                jitter: Dist::Exponential { mean: 0.0005 },
                density: 0.55,
                response_prob: 0.995,
                ..Default::default()
            },
            AsKind::Transit => BlockProfile {
                base_rtt: Dist::LogNormal { median: path_rtt + 0.025, sigma: 0.45 },
                jitter: Dist::Exponential { mean: 0.006 },
                density: 0.18,
                response_prob: 0.95,
                // The ~1.5% high-latency tail Chinanet shows in Table 4.
                wakeup: Some(WakeupCfg { host_prob: 0.012, ..Default::default() }),
                congestion: Some(CongestionCfg {
                    host_prob: 0.012,
                    extra: Dist::LogNormal { median: 1.0, sigma: 0.8 },
                    busy_loss: 0.15,
                }),
                ..Default::default()
            },
            AsKind::Cellular => BlockProfile {
                base_rtt: Dist::LogNormal { median: path_rtt + 0.22, sigma: 0.35 },
                jitter: Dist::Exponential { mean: 0.12 },
                density: 0.12,
                response_prob: 0.87,
                wakeup: Some(WakeupCfg::default()),
                congestion: Some(CongestionCfg::default()),
                episodes: Some(EpisodeCfg::default()),
                storms: Some(StormCfg::default()),
                ..Default::default()
            },
            AsKind::Satellite => BlockProfile {
                // ≥ 500 ms floor: ~250 ms per geosynchronous traverse each
                // way, plus geography.
                base_rtt: Dist::Uniform { lo: 0.52 + path_rtt * 0.3, hi: 0.72 + path_rtt * 0.3 },
                jitter: Dist::Exponential { mean: 0.09 },
                density: 0.22,
                response_prob: 0.96,
                rtt_cap: Some(2.2),
                // Rare, long outage-buffer episodes: the 517 s outliers.
                episodes: Some(EpisodeCfg {
                    host_prob: 0.015,
                    interval: Dist::Exponential { mean: 40_000.0 },
                    duration: Dist::LogNormal { median: 250.0, sigma: 0.5 },
                    max_duration_secs: 520.0,
                    buffer_cap: 600,
                    buffer_prob: 0.9,
                    blackout_secs_max: 10.0,
                }),
                ..Default::default()
            },
        };

        // Diurnal congestion modulation on access networks, peaking in
        // the block's local evening: continents (and a per-block wobble)
        // phase-shift the peak, so scans launched at different hours (the
        // paper's Table 3 controls) see slightly different loads.
        if matches!(effective, AsKind::Cellular | AsKind::Broadband | AsKind::MixedCellular) {
            let continent_shift = match continent {
                Continent::Asia => 0.0,
                Continent::Oceania => 3_600.0,
                Continent::Europe => 28_800.0,
                Continent::Africa => 28_800.0,
                Continent::SouthAmerica => 46_800.0,
                Continent::NorthAmerica => 54_000.0,
            };
            p.diurnal = Some(crate::profile::DiurnalCfg {
                amplitude: 0.35,
                peak_offset_secs: 72_000.0 - continent_shift + 3_600.0 * h(stream::DIURNAL),
                period_secs: 86_400.0,
            });
        }

        // Per-block density wobble (±30%).
        p.density = (p.density * (0.7 + 0.6 * h(stream::DENSITY))).min(0.95);

        // Subnet layout: mostly flat /24s, a minority subnetted smaller.
        let sb = h(stream::SUBNET_BITS);
        p.subnet_host_bits = if sb < 0.60 {
            8
        } else if sb < 0.78 {
            7
        } else if sb < 0.90 {
            6
        } else if sb < 0.97 {
            5
        } else {
            4
        };

        // Broadcast responders on a fifth of fixed-line blocks (cellular
        // address pools are not bridged subnets). Responders concentrate
        // at subnet-edge addresses (routers at .254/.1) and are mostly
        // silent to unicast — the population whose stable 165/330/495 s
        // artifacts the EWMA filter removes. Interior, unicast-responsive
        // responders are kept rare: their occasional-loss false latencies
        // are *not* filterable (the paper's residual noise) and real data
        // shows them well below 1% of addresses.
        let fixed_line = matches!(
            effective,
            AsKind::Broadband | AsKind::Academic | AsKind::Hosting | AsKind::Transit
        );
        if fixed_line && h(stream::BROADCAST) < 0.20 {
            p.broadcast = Some(BroadcastCfg {
                responder_prob: 0.005 + 0.015 * h(stream::BROADCAST + 100),
                edge_responder_prob: 0.35 + 0.45 * h(stream::BROADCAST + 300),
                unicast_silent_prob: 0.55 + 0.3 * h(stream::BROADCAST + 400),
                network_addr_responds: h(stream::BROADCAST + 200) < 0.5,
            });
        }

        // Middlebox RST-ing firewalls guard a slice of edge networks.
        if matches!(effective, AsKind::Broadband | AsKind::Hosting) && h(stream::FIREWALL) < 0.12 {
            p.firewall = Some(FirewallCfg::default());
        }

        // A small number of blocks contain reflectors/DoS targets.
        if h(stream::DOS) < 0.03 {
            p.dos = Some(DosCfg { addr_prob: 0.01, ..Default::default() });
        }

        // RFC 1812 rate limiting on some conservative networks.
        if matches!(effective, AsKind::Academic | AsKind::Transit) && h(stream::RATE_LIMIT) < 0.2 {
            p.icmp_rate_limit = Some(RateLimitCfg { rate_per_sec: 2.0, burst: 10 });
        }

        p
    }
}

/// Seed stream used to derive the plan generator's seed from the scenario
/// seed, keeping it independent of the world's behavior streams.
const PLAN_SEED_STREAM: u64 = 0x1a40;

/// A [`ProfileSource`] over a scenario: block profiles as a pure function
/// of the prefix, computed exactly as [`Scenario::build_world`] would —
/// longest-prefix-match the attribution database for the announcing AS,
/// then derive the per-block profile from the scenario seed. Because both
/// steps are pure, a resolution can be recomputed at any time; nothing
/// about the space ever needs to stay resident.
#[derive(Debug)]
pub struct ProceduralSpace {
    scenario: Scenario,
    db: beware_asdb::AsDb,
}

impl ProfileSource for ProceduralSpace {
    fn resolve(&self, prefix24: u32) -> Option<ResolvedBlock> {
        let info = self.db.lookup(prefix24 << 8)?;
        let profile = self.scenario.block_profile(prefix24, info.asn, info.kind, info.continent);
        Some(ResolvedBlock { profile, asn: info.asn, continent: info.continent })
    }

    fn routed_blocks(&self) -> usize {
        self.scenario.plan.block_count() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vantage_lookup() {
        assert_eq!(vantage('w').unwrap().continent, Continent::NorthAmerica);
        assert_eq!(vantage('j').unwrap().location, "Fujisawa-shi, Kanagawa, Japan");
        assert!(vantage('x').is_none());
    }

    #[test]
    fn propagation_is_symmetric_and_positive() {
        for a in Continent::ALL {
            for b in Continent::ALL {
                let ab = propagation_rtt(a, b);
                assert!(ab > 0.0);
                assert_eq!(ab, propagation_rtt(b, a));
            }
            assert_eq!(propagation_rtt(a, a), 0.02);
        }
    }

    #[test]
    fn scenario_builds_a_routed_world() {
        let sc = Scenario::new(ScenarioCfg { total_blocks: 128, ..Default::default() });
        let world = sc.build_world();
        assert_eq!(world.block_count() as u32, sc.plan.block_count());
        // Every planned block is routed with a valid profile.
        for (block, _) in sc.plan.blocks() {
            assert!(world.has_block(block));
            world.block_profile(block).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn cellular_blocks_get_wakeup_and_satellite_gets_floor() {
        let sc = Scenario::new(ScenarioCfg { total_blocks: 512, ..Default::default() });
        let world = sc.build_world();
        let db = sc.db();
        let mut saw_cellular = false;
        let mut saw_satellite = false;
        for (block, _) in sc.plan.blocks() {
            let info = db.lookup(block << 8).unwrap();
            let p = world.block_profile(block).unwrap();
            match info.kind {
                AsKind::Cellular => {
                    saw_cellular = true;
                    assert!(p.wakeup.is_some(), "cellular block lacks wake-up");
                    assert!(p.episodes.is_some());
                }
                AsKind::Satellite => {
                    saw_satellite = true;
                    assert!(p.wakeup.is_none());
                    assert!(p.rtt_cap.is_some());
                    match p.base_rtt {
                        Dist::Uniform { lo, .. } => assert!(lo >= 0.5),
                        ref other => panic!("unexpected satellite base {other:?}"),
                    }
                }
                _ => {}
            }
        }
        assert!(saw_cellular && saw_satellite);
    }

    #[test]
    fn mixed_cellular_splits_blocks() {
        let sc = Scenario::new(ScenarioCfg { total_blocks: 2048, ..Default::default() });
        let world = sc.build_world();
        // AS9829's blocks must be a mix: some with wake-up, most without.
        let blocks = sc.plan.blocks_of(Asn(9829));
        assert!(blocks.len() > 10, "need enough blocks to test the split");
        let cellularish =
            blocks.iter().filter(|b| world.block_profile(**b).unwrap().wakeup.is_some()).count();
        let frac = cellularish as f64 / blocks.len() as f64;
        assert!((0.1..0.6).contains(&frac), "mixed split {frac}");
    }

    #[test]
    fn same_cfg_same_world_profiles() {
        let cfg = ScenarioCfg { total_blocks: 64, ..Default::default() };
        let a = Scenario::new(cfg);
        let b = Scenario::new(cfg);
        let wa = a.build_world();
        let wb = b.build_world();
        for (block, _) in a.plan.blocks() {
            assert_eq!(wa.block_profile(block), wb.block_profile(block));
        }
    }

    #[test]
    fn vantage_changes_base_rtt_not_structure() {
        let mk = |v: Vantage| {
            Scenario::new(ScenarioCfg { vantage: v, total_blocks: 64, ..Default::default() })
        };
        let w_us = mk(VANTAGES[0]).build_world();
        let w_jp = mk(VANTAGES[2]).build_world();
        assert_eq!(w_us.block_count(), w_jp.block_count());
    }

    /// The procedural world is observationally identical to the eager
    /// one: same routed space, same profiles, and byte-identical probe
    /// responses over an interleaved routed + unrouted sweep.
    #[test]
    fn lazy_world_answers_exactly_like_the_eager_world() {
        use crate::packet::Packet;
        use crate::time::{SimDuration, SimTime};
        let sc = Scenario::new(ScenarioCfg { total_blocks: 48, ..Default::default() });
        let mut eager = sc.build_world();
        let mut lazy = sc.build_lazy_world(&LazyCfg::default());
        assert_eq!(eager.block_count(), lazy.block_count());

        let blocks: Vec<u32> = sc.plan.blocks().map(|(b, _)| b).collect();
        for &block in &blocks {
            assert!(lazy.has_block(block));
            assert_eq!(eager.block_profile(block), lazy.block_profile(block), "{block:#08x}");
        }
        // An unallocated prefix is unrouted in both.
        let stray = (0u32..).find(|p| !blocks.contains(p)).unwrap();
        assert!(!eager.has_block(stray) && !lazy.has_block(stray));

        let mut at = SimTime::EPOCH;
        for (i, &block) in blocks.iter().enumerate().take(24) {
            for off in [1u32, 7, 0xc8, 0xff] {
                let dst = (block << 8) | off;
                let probe = Packet::echo_request(0x0101_0101, dst, 9, i as u16, vec![0xee; 8]);
                at += SimDuration::from_millis(3);
                assert_eq!(eager.probe(&probe, at), lazy.probe(&probe, at), "{dst:#010x}");
            }
            let miss = Packet::echo_request(0x0101_0101, (stray << 8) | 5, 9, i as u16, vec![]);
            assert_eq!(eager.probe(&miss, at), lazy.probe(&miss, at));
        }
        assert_eq!(eager.stats(), lazy.stats());
        assert_eq!(eager.hosts_instantiated(), lazy.hosts_instantiated());
    }
}
