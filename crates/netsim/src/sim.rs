//! The simulation driver: an event loop connecting one probing agent to
//! the world.
//!
//! Agents are written callback-style against [`Ctx`]: they send packets,
//! set timers, and receive deliveries. Since PR 10 the loop schedules
//! through the shared `runtime::DeadlineWheel` (via
//! [`EventQueue`](crate::event::EventQueue)) and drives a
//! [`SimClock`](crate::time::SimClock) forward as it pops — so timers are
//! genuinely cancellable ([`Ctx::cancel_timer`], retiring the
//! generation-counter idiom) and any component written against
//! `beware_runtime::Clock` can observe the simulated timeline through
//! [`Ctx::clock`]. Execution order stays trivially deterministic:
//! `(time, push-sequence)`, pinned by test.

use crate::event::{EventKey, EventQueue};
use crate::packet::Packet;
use crate::time::{SimClock, SimTime};
use crate::trace::{Direction, Trace};
use crate::world::World;
use beware_runtime::clock::SharedClock;

/// Events the loop dispatches.
#[derive(Debug)]
enum Event {
    Deliver(Packet),
    Timer(u64),
}

/// Handle to a pending timer, returned by [`Ctx::set_timer`] and accepted
/// by [`Ctx::cancel_timer`]. Stale handles (fired or already cancelled)
/// are harmlessly inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(EventKey);

/// A probing agent driven by the simulation.
pub trait Agent {
    /// Called once at simulation start; schedule initial work here.
    fn start(&mut self, ctx: &mut Ctx<'_>);
    /// A packet arrived at the agent's interface.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);
    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>);
}

/// The agent's handle to the running simulation.
#[derive(Debug)]
pub struct Ctx<'a> {
    world: &'a mut World,
    queue: &'a mut EventQueue<Event>,
    clock: &'a SimClock,
    now: SimTime,
    stop: &'a mut bool,
    sent: &'a mut u64,
    trace: Option<&'a mut Trace>,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transmit a packet into the world; any responses it provokes will be
    /// delivered to [`Agent::on_packet`] at their arrival times.
    pub fn send(&mut self, pkt: Packet) {
        *self.sent += 1;
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.record(self.now, Direction::Sent, &pkt);
        }
        for arrival in self.world.probe(&pkt, self.now) {
            self.queue.push(arrival.at, Event::Deliver(arrival.pkt));
        }
    }

    /// Schedule [`Agent::on_timer`] with `token` at time `at` (clamped to
    /// now if already past). The returned [`TimerId`] can cancel it.
    pub fn set_timer(&mut self, at: SimTime, token: u64) -> TimerId {
        let at = at.max(self.now);
        TimerId(self.queue.push(at, Event::Timer(token)))
    }

    /// Cancel a pending timer. Returns whether it was still pending —
    /// `false` means it already fired or was already cancelled, which
    /// callers may treat as a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        self.queue.cancel(id.0).is_some()
    }

    /// The simulated timeline as a `beware_runtime::Clock` — hand this to
    /// components (policy estimators, serve engines) that stamp time
    /// through the runtime seam. It reads exactly [`Ctx::now`], advanced
    /// by the event loop.
    pub fn clock(&self) -> SharedClock {
        self.clock.handle()
    }

    /// End the simulation after the current callback returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Read access to the world (e.g. for scenario assertions).
    pub fn world(&self) -> &World {
        self.world
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Time of the last processed event.
    pub end_time: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// Packets the agent transmitted.
    pub packets_sent: u64,
    /// Packets delivered to the agent.
    pub packets_delivered: u64,
    /// Event-queue depth high-water mark.
    pub queue_peak: u64,
}

impl RunSummary {
    /// Flush the run counters into a telemetry scope: counters `events`,
    /// `packets_sent`, `packets_delivered` and max-gauge `queue_peak`
    /// under the scope's prefix.
    pub fn record(&self, scope: &mut beware_telemetry::Scope<'_>) {
        scope.add("events", self.events);
        scope.add("packets_sent", self.packets_sent);
        scope.add("packets_delivered", self.packets_delivered);
        scope.gauge_max("queue_peak", self.queue_peak);
    }
}

/// Event loop binding an [`Agent`] to a [`World`].
#[derive(Debug)]
pub struct Simulation<A> {
    world: World,
    agent: A,
    /// Hard stop: events after this instant are not processed. `None`
    /// means run until the queue drains.
    pub deadline: Option<SimTime>,
    trace: Option<Trace>,
}

impl<A: Agent> Simulation<A> {
    /// Create a simulation over `world` driven by `agent`.
    pub fn new(world: World, agent: A) -> Self {
        Simulation { world, agent, deadline: None, trace: None }
    }

    /// Attach a packet trace retaining the most recent `capacity` packets
    /// crossing the agent's interface; retrieve it from
    /// [`Simulation::run_traced`].
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace = Some(Trace::new(capacity));
        self
    }

    /// Set a hard deadline (useful for open-ended agents).
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Run to completion; returns the agent, the world and run statistics.
    pub fn run(self) -> (A, World, RunSummary) {
        let (agent, world, summary, _) = self.run_traced();
        (agent, world, summary)
    }

    /// Like [`Simulation::run`], additionally returning the packet trace
    /// (empty unless [`Simulation::with_trace`] was called).
    pub fn run_traced(mut self) -> (A, World, RunSummary, Trace) {
        let mut queue = EventQueue::new();
        let clock = SimClock::new();
        let mut stop = false;
        let mut sent = 0u64;
        let mut delivered = 0u64;
        let mut events = 0u64;
        let mut now = SimTime::EPOCH;

        let tracing = self.trace.is_some();
        let mut trace = self.trace.take().unwrap_or_else(|| Trace::new(1));
        {
            let mut ctx = Ctx {
                world: &mut self.world,
                queue: &mut queue,
                clock: &clock,
                now,
                stop: &mut stop,
                sent: &mut sent,
                trace: tracing.then_some(&mut trace),
            };
            self.agent.start(&mut ctx);
        }

        while !stop {
            let Some((at, event)) = queue.pop() else { break };
            if let Some(deadline) = self.deadline {
                if at > deadline {
                    break;
                }
            }
            debug_assert!(at >= now, "event time went backwards");
            now = at;
            clock.advance_to(now);
            events += 1;
            if tracing {
                if let Event::Deliver(pkt) = &event {
                    trace.record(now, Direction::Received, pkt);
                }
            }
            let mut ctx = Ctx {
                world: &mut self.world,
                queue: &mut queue,
                clock: &clock,
                now,
                stop: &mut stop,
                sent: &mut sent,
                trace: tracing.then_some(&mut trace),
            };
            match event {
                Event::Deliver(pkt) => {
                    delivered += 1;
                    self.agent.on_packet(pkt, &mut ctx);
                }
                Event::Timer(token) => self.agent.on_timer(token, &mut ctx),
            }
        }

        let summary = RunSummary {
            end_time: now,
            events,
            packets_sent: sent,
            packets_delivered: delivered,
            queue_peak: queue.peak() as u64,
        };
        (self.agent, self.world, summary, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BlockProfile;
    use crate::rng::Dist;
    use crate::time::SimDuration;
    use std::sync::Arc;

    const PROBER: u32 = 0x0101_0101;

    fn test_world() -> World {
        let mut w = World::new(3);
        w.add_block(
            0x0a0000,
            Arc::new(BlockProfile {
                base_rtt: Dist::Constant(0.1),
                jitter: Dist::Constant(0.0),
                density: 1.0,
                response_prob: 1.0,
                error_prob: 0.0,
                dup_prob: 0.0,
                ..Default::default()
            }),
        );
        w
    }

    /// Pings one address every second, records (send, recv) times.
    struct PingAgent {
        remaining: u32,
        next_seq: u16,
        rtts: Vec<f64>,
    }

    impl Agent for PingAgent {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(ctx.now(), 0);
        }

        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            // Sequence number encodes the send second.
            if let crate::packet::L4::Icmp { kind, .. } = &pkt.l4 {
                if let beware_wire::icmp::IcmpKind::EchoReply { seq, .. } = kind {
                    let sent = f64::from(*seq);
                    self.rtts.push(ctx.now().as_secs_f64() - sent);
                }
            }
        }

        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            ctx.send(Packet::echo_request(PROBER, 0x0a000042, 7, seq, vec![]));
            if self.remaining > 0 {
                ctx.set_timer(ctx.now() + SimDuration::from_secs(1), 0);
            }
        }
    }

    #[test]
    fn ping_agent_measures_constant_rtt() {
        let agent = PingAgent { remaining: 5, next_seq: 0, rtts: Vec::new() };
        let (agent, world, summary) = Simulation::new(test_world(), agent).run();
        assert_eq!(agent.rtts.len(), 5);
        for rtt in &agent.rtts {
            assert!((rtt - 0.1).abs() < 1e-9, "rtt {rtt}");
        }
        assert_eq!(summary.packets_sent, 5);
        assert_eq!(summary.packets_delivered, 5);
        assert_eq!(world.stats().probes, 5);
        assert_eq!(summary.end_time.as_secs_f64(), 4.1);
    }

    #[test]
    fn deadline_cuts_execution() {
        let agent = PingAgent { remaining: 100, next_seq: 0, rtts: Vec::new() };
        let sim = Simulation::new(test_world(), agent)
            .with_deadline(SimTime::EPOCH + SimDuration::from_secs_f64(2.5));
        let (agent, _, summary) = sim.run();
        // Timers at 0,1,2 fire; replies at 0.1,1.1,2.1 delivered; the
        // timer at 3.0 is beyond the deadline.
        assert_eq!(agent.rtts.len(), 3);
        assert!(summary.end_time <= SimTime::EPOCH + SimDuration::from_secs_f64(2.5));
    }

    #[test]
    fn stop_ends_immediately() {
        struct Stopper {
            fired: u32,
        }
        impl Agent for Stopper {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(ctx.now() + SimDuration::from_secs(1), 1);
                ctx.set_timer(ctx.now() + SimDuration::from_secs(2), 2);
            }
            fn on_packet(&mut self, _: Packet, _: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
                self.fired += 1;
                ctx.stop();
            }
        }
        let (agent, _, summary) = Simulation::new(test_world(), Stopper { fired: 0 }).run();
        assert_eq!(agent.fired, 1);
        assert_eq!(summary.events, 1);
    }

    #[test]
    fn cancel_timer_prevents_firing() {
        // A request/timeout pair: the timeout timer is set when the probe
        // goes out and *cancelled* when the reply lands — the pattern the
        // generation-counter idiom used to fake.
        struct CancelAgent {
            pending: Option<TimerId>,
            timeouts: u32,
            replies: u32,
        }
        impl Agent for CancelAgent {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(Packet::echo_request(PROBER, 0x0a000042, 7, 0, vec![]));
                // RTT is 0.1 s; this timeout would fire at 3 s if not
                // cancelled.
                self.pending = Some(ctx.set_timer(ctx.now() + SimDuration::from_secs(3), 9));
            }
            fn on_packet(&mut self, _: Packet, ctx: &mut Ctx<'_>) {
                self.replies += 1;
                let id = self.pending.take().expect("reply implies pending timer");
                assert!(ctx.cancel_timer(id), "timer was still pending");
                assert!(!ctx.cancel_timer(id), "double cancel is inert");
            }
            fn on_timer(&mut self, _: u64, _: &mut Ctx<'_>) {
                self.timeouts += 1;
            }
        }
        let agent = CancelAgent { pending: None, timeouts: 0, replies: 0 };
        let (agent, _, summary) = Simulation::new(test_world(), agent).run();
        assert_eq!(agent.replies, 1);
        assert_eq!(agent.timeouts, 0, "cancelled timer must not fire");
        // Only the delivery is processed; the cancelled timer never
        // surfaces, so the run ends at the reply, not at 3 s.
        assert_eq!(summary.events, 1);
        assert_eq!(summary.end_time.as_secs_f64(), 0.1);
    }

    #[test]
    fn ctx_clock_tracks_simulation_time() {
        struct ClockAgent {
            stamps: Vec<std::time::Duration>,
            handle: Option<beware_runtime::clock::SharedClock>,
        }
        impl Agent for ClockAgent {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                let h = ctx.clock();
                assert!(h.is_virtual());
                self.handle = Some(h);
                ctx.set_timer(ctx.now() + SimDuration::from_millis(1500), 0);
                ctx.set_timer(ctx.now() + SimDuration::from_secs(4), 1);
            }
            fn on_packet(&mut self, _: Packet, _: &mut Ctx<'_>) {}
            fn on_timer(&mut self, _: u64, ctx: &mut Ctx<'_>) {
                let h = self.handle.as_ref().unwrap();
                assert_eq!(h.now(), std::time::Duration::from(ctx.now()));
                self.stamps.push(h.now());
            }
        }
        let agent = ClockAgent { stamps: Vec::new(), handle: None };
        let (agent, _, _) = Simulation::new(test_world(), agent).run();
        assert_eq!(
            agent.stamps,
            vec![std::time::Duration::from_millis(1500), std::time::Duration::from_secs(4)]
        );
    }

    #[test]
    fn trace_captures_both_directions() {
        let agent = PingAgent { remaining: 3, next_seq: 0, rtts: Vec::new() };
        let (_, _, _, trace) = Simulation::new(test_world(), agent).with_trace(16).run_traced();
        assert_eq!(trace.captured, 6, "3 sent + 3 received");
        let sent = trace.entries().filter(|e| e.dir == crate::trace::Direction::Sent).count();
        assert_eq!(sent, 3);
        assert!(trace.render().contains("ICMP echo request"));
    }

    #[test]
    fn no_trace_by_default() {
        let agent = PingAgent { remaining: 2, next_seq: 0, rtts: Vec::new() };
        let (_, _, _, trace) = Simulation::new(test_world(), agent).run_traced();
        assert!(trace.is_empty());
        assert_eq!(trace.captured, 0);
    }

    #[test]
    fn summary_tracks_queue_peak_and_records() {
        let agent = PingAgent { remaining: 5, next_seq: 0, rtts: Vec::new() };
        let (_, world, summary) = Simulation::new(test_world(), agent).run();
        // At least a timer and a pending delivery coexist at some point.
        assert!(summary.queue_peak >= 2, "peak {}", summary.queue_peak);

        let mut reg = beware_telemetry::Registry::new();
        let mut scope = reg.scope("netsim");
        summary.record(&mut scope);
        world.stats().record(&mut scope);
        assert_eq!(reg.counter("netsim/packets_sent"), Some(5));
        assert_eq!(reg.counter("netsim/probes"), Some(5));
        assert_eq!(reg.counter("netsim/responses_by_profile/plain"), Some(5));
        assert!(matches!(
            reg.get("netsim/queue_peak"),
            Some(beware_telemetry::Metric::Gauge(p)) if *p >= 2
        ));
    }

    #[test]
    fn deterministic_summary() {
        let run = || {
            let agent = PingAgent { remaining: 10, next_seq: 0, rtts: Vec::new() };
            let (a, _, s) = Simulation::new(test_world(), agent).run();
            (a.rtts, s)
        };
        assert_eq!(run(), run());
    }
}
