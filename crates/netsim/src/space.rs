//! Procedural address space: resolve-on-demand block profiles and the
//! bounded host table that lets a full-IPv4-scale scan stream in fixed
//! memory.
//!
//! The eager [`crate::world::World`] routes blocks through an explicit
//! table, which caps campaigns at however many `/24`s fit in memory. The
//! procedural mode replaces the table with a [`ProfileSource`]: block
//! identity is a **pure function** of `(campaign_seed, prefix)` (the
//! scenario's `derive_seed`/`unit_hash` streams), so a profile can be
//! recomputed at any time and never needs to be stored. The world keeps a
//! small [`ProfileCache`] purely as a speed-up — because the source is
//! pure, the cache capacity can never change results.
//!
//! # Eviction invariants
//!
//! Host state machines materialize on first probe into a [`HostTable`]
//! bounded two ways:
//!
//! * **capacity** — inserting past `host_cap` evicts the
//!   least-recently-probed host first (lazy LRU: a probe-ordered queue of
//!   `(last_probe, addr)` stamps, stale stamps skipped on pop);
//! * **quiescence** — hosts idle longer than the configured window are
//!   reclaimed opportunistically on every insert.
//!
//! Both policies are driven only by the deterministic probe sequence, so
//! a given workload always evicts the same hosts in the same order.
//! Broadcast fan-out deliberately bypasses the table (neighbors answer
//! from ephemeral state), so only directly probed addresses occupy slots.
//! For workloads that probe each address **at most once** (the Zmap-style
//! full-space sweep), evicted state is never read again, and results are
//! byte-identical across any capacity or quiescence setting — the
//! flagship invariant the full-space campaign's CI smoke `cmp`s. A
//! workload that re-probes an evicted address meets a freshly seeded host
//! (same identity streams, reset dynamic state), which is still
//! deterministic for a fixed configuration but not capacity-invariant.

use crate::host::HostState;
use crate::profile::BlockProfile;
use crate::time::{SimDuration, SimTime};
use beware_asdb::{Asn, Continent};
use std::collections::{HashMap, VecDeque};

/// A block resolved by a [`ProfileSource`]: the behavior profile plus the
/// routing identity the link layer aggregates on.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedBlock {
    /// Behavior profile of the `/24`.
    pub profile: BlockProfile,
    /// Announcing AS — the shared aggregation link's identity.
    pub asn: Asn,
    /// Continent — the shared spine link's identity.
    pub continent: Continent,
}

/// A pure function from `/24` prefix to block behavior.
///
/// Implementations must be deterministic: two calls with the same prefix
/// return the same block, regardless of call order or interleaving —
/// that is what lets the world cache (and evict) resolutions freely.
pub trait ProfileSource: Send + Sync + std::fmt::Debug {
    /// The block behind `prefix24` (an address right-shifted by 8), or
    /// `None` when that space is unrouted.
    fn resolve(&self, prefix24: u32) -> Option<ResolvedBlock>;

    /// Number of routed `/24` blocks the source covers.
    fn routed_blocks(&self) -> usize;
}

/// Bounds for lazily materialized state in a procedural world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LazyCfg {
    /// Maximum resident host state machines; the least-recently-probed
    /// host is evicted to admit a new one.
    pub host_cap: usize,
    /// Reclaim hosts idle at least this long (sim time), independent of
    /// capacity pressure. `None` disables quiescence eviction.
    pub quiescence: Option<SimDuration>,
    /// Capacity of the block-profile cache (a pure speed-up; never
    /// affects results).
    pub profile_cache: usize,
}

impl Default for LazyCfg {
    fn default() -> Self {
        LazyCfg { host_cap: usize::MAX, quiescence: None, profile_cache: 8192 }
    }
}

/// One resident host: its state machine plus the stamp the lazy-LRU
/// queue validates against.
#[derive(Debug)]
struct HostSlot {
    state: HostState,
    last_probe: SimTime,
}

/// The bounded host table. See the module docs for the eviction
/// invariants.
#[derive(Debug)]
pub(crate) struct HostTable {
    cap: usize,
    quiescence: Option<SimDuration>,
    map: HashMap<u32, HostSlot>,
    /// Probe-ordered `(last_probe, addr)` stamps; an entry is live iff it
    /// matches its slot's `last_probe` (re-probes leave stale stamps that
    /// pops and compaction discard).
    order: VecDeque<(SimTime, u32)>,
    evicted: u64,
    peak: usize,
}

impl HostTable {
    pub(crate) fn unbounded() -> HostTable {
        HostTable::bounded(usize::MAX, None)
    }

    pub(crate) fn bounded(cap: usize, quiescence: Option<SimDuration>) -> HostTable {
        assert!(cap > 0, "host table needs room for at least one host");
        HostTable {
            cap,
            quiescence,
            map: HashMap::new(),
            order: VecDeque::new(),
            evicted: 0,
            peak: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// High-water mark of resident hosts.
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }

    /// Hosts reclaimed so far (capacity plus quiescence).
    pub(crate) fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The host at `addr`, materializing it with `make` on first probe.
    /// Updates recency and runs both eviction policies.
    pub(crate) fn entry_with(
        &mut self,
        addr: u32,
        now: SimTime,
        make: impl FnOnce() -> HostState,
    ) -> &mut HostState {
        self.expire_quiescent(now);
        if !self.map.contains_key(&addr) {
            if self.map.len() >= self.cap {
                self.evict_lru();
            }
            self.map.insert(addr, HostSlot { state: make(), last_probe: now });
            self.peak = self.peak.max(self.map.len());
        }
        self.order.push_back((now, addr));
        // The queue holds one stale stamp per re-probe; rebuild it once it
        // dwarfs the live set so memory stays O(resident hosts).
        if self.order.len() > self.map.len().saturating_mul(4).max(64) {
            let map = &self.map;
            self.order.retain(|&(t, a)| map.get(&a).is_some_and(|s| s.last_probe == t));
        }
        let slot = self.map.get_mut(&addr).expect("just ensured present");
        slot.last_probe = now;
        &mut slot.state
    }

    /// Drop hosts whose most recent probe is at least a quiescence window
    /// in the past.
    fn expire_quiescent(&mut self, now: SimTime) {
        let Some(window) = self.quiescence else { return };
        while let Some(&(t, addr)) = self.order.front() {
            if now.saturating_since(t) < window {
                break;
            }
            self.order.pop_front();
            if self.map.get(&addr).is_some_and(|s| s.last_probe == t) {
                self.map.remove(&addr);
                self.evicted += 1;
            }
        }
    }

    /// Evict exactly one host: the live entry with the oldest stamp.
    fn evict_lru(&mut self) {
        while let Some((t, addr)) = self.order.pop_front() {
            if self.map.get(&addr).is_some_and(|s| s.last_probe == t) {
                self.map.remove(&addr);
                self.evicted += 1;
                return;
            }
        }
        unreachable!("a non-empty table always has a live queue stamp");
    }
}

/// Bounded FIFO cache of resolved blocks. Purely a speed-up: the source
/// is a pure function, so capacity never affects results.
#[derive(Debug)]
pub(crate) struct ProfileCache<V> {
    cap: usize,
    map: HashMap<u32, V>,
    order: VecDeque<u32>,
}

impl<V: Clone> ProfileCache<V> {
    pub(crate) fn new(cap: usize) -> ProfileCache<V> {
        assert!(cap > 0, "profile cache needs room for at least one block");
        ProfileCache { cap, map: HashMap::new(), order: VecDeque::new() }
    }

    pub(crate) fn get_or_insert_with(
        &mut self,
        prefix24: u32,
        make: impl FnOnce() -> Option<V>,
    ) -> Option<V> {
        if let Some(v) = self.map.get(&prefix24) {
            return Some(v.clone());
        }
        let v = make()?;
        if self.map.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(prefix24, v.clone());
        self.order.push_back(prefix24);
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BlockProfile;
    use crate::rng::Dist;

    fn profile() -> BlockProfile {
        BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            ..Default::default()
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_ns(secs * 1_000_000_000)
    }

    fn state(addr: u32, now: SimTime) -> HostState {
        HostState::new(7, &profile(), addr, now)
    }

    #[test]
    fn capacity_evicts_least_recently_probed() {
        let mut table = HostTable::bounded(2, None);
        table.entry_with(1, t(0), || state(1, t(0)));
        table.entry_with(2, t(1), || state(2, t(1)));
        // Re-probe 1 so 2 becomes the LRU despite its later insertion.
        table.entry_with(1, t(2), || unreachable!("1 is resident"));
        table.entry_with(3, t(3), || state(3, t(3)));
        assert_eq!(table.len(), 2);
        assert_eq!(table.evicted(), 1);
        assert!(table.map.contains_key(&1), "recently probed host survives");
        assert!(!table.map.contains_key(&2), "LRU host evicted");
        assert_eq!(table.peak(), 2);
    }

    #[test]
    fn quiescent_hosts_reclaimed_without_pressure() {
        let window = SimDuration::from_ns(10_000_000_000); // 10 s
        let mut table = HostTable::bounded(usize::MAX, Some(window));
        table.entry_with(1, t(0), || state(1, t(0)));
        table.entry_with(2, t(5), || state(2, t(5)));
        // At t=12 host 1 has idled 12 s >= 10 s; host 2 only 7 s.
        table.entry_with(3, t(12), || state(3, t(12)));
        assert_eq!(table.evicted(), 1);
        assert!(!table.map.contains_key(&1));
        assert!(table.map.contains_key(&2));
    }

    #[test]
    fn stale_stamps_never_evict_fresh_hosts() {
        let mut table = HostTable::bounded(1, None);
        // Many re-probes of the same host leave stale stamps; a new insert
        // must evict the host itself, not trip on the stale entries.
        for i in 0..100u64 {
            table.entry_with(9, t(i), || state(9, t(0)));
        }
        assert_eq!(table.evicted(), 0);
        table.entry_with(10, t(200), || state(10, t(200)));
        assert_eq!(table.len(), 1);
        assert_eq!(table.evicted(), 1);
        assert!(table.map.contains_key(&10));
        assert!(table.order.len() <= 64, "queue compaction bounds stale stamps");
    }

    #[test]
    fn profile_cache_is_bounded_and_transparent() {
        let mut cache: ProfileCache<u64> = ProfileCache::new(2);
        let calls = std::cell::Cell::new(0u32);
        let get = |c: &mut ProfileCache<u64>, k: u32| {
            c.get_or_insert_with(k, || {
                calls.set(calls.get() + 1);
                Some(u64::from(k) * 10)
            })
        };
        assert_eq!(get(&mut cache, 1), Some(10));
        assert_eq!(get(&mut cache, 1), Some(10));
        assert_eq!(calls.get(), 1, "second read is a hit");
        assert_eq!(get(&mut cache, 2), Some(20));
        assert_eq!(get(&mut cache, 3), Some(30));
        // 1 was evicted (FIFO), but the recompute returns the same value.
        assert_eq!(get(&mut cache, 1), Some(10));
        assert_eq!(calls.get(), 4);
        assert!(cache.map.len() <= 2);
        // Unrouted lookups are not cached.
        assert_eq!(cache.get_or_insert_with(99, || None), None);
        assert!(!cache.map.contains_key(&99));
    }
}
