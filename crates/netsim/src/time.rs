//! Simulation time.
//!
//! Nanosecond-resolution monotonic time since the simulation epoch. The ISI
//! dataset mixes two precisions — microseconds for matched responses,
//! whole seconds for timeout and unmatched records — so [`SimTime`] exposes
//! both truncations explicitly; analysis code must choose one deliberately
//! rather than inherit whatever a float happened to hold.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time (nanoseconds since the simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from nanoseconds since the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncated) — the precision of matched
    /// survey responses.
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since the epoch (truncated) — the precision of timeout
    /// and unmatched records in the ISI data.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant; `None` if `earlier` is later
    /// (callers must handle reordered events, not panic).
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Duration since an earlier instant, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// This instant as a [`std::time::Duration`] since the simulation
    /// epoch — the bridge onto the `beware_runtime::Clock` timebase,
    /// whose timestamps are `Duration`s since *its* epoch. Lets a
    /// simulated schedule drive a
    /// [`VirtualClock`](beware_runtime::VirtualClock) (or be compared
    /// against one) without unit juggling.
    pub const fn as_duration(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, saturating negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        // Saturate rather than wrap for absurdly large values.
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds (truncated).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Scale by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> std::time::Duration {
        std::time::Duration::from_nanos(d.0)
    }
}

impl From<std::time::Duration> for SimDuration {
    /// Saturates at the u64 nanosecond horizon (~584 years), matching
    /// every other saturating operation on simulation time.
    fn from(d: std::time::Duration) -> SimDuration {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug if `rhs` is later; use [`SimTime::checked_since`]
    /// where reordering is possible.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_truncation() {
        let t = SimTime::from_ns(3_500_123_456);
        assert_eq!(t.as_secs(), 3);
        assert_eq!(t.as_us(), 3_500_123);
        assert!((t.as_secs_f64() - 3.500123456).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::EPOCH + SimDuration::from_secs(10);
        let u = t + SimDuration::from_millis(250);
        assert_eq!((u - t).as_millis(), 250);
        assert_eq!(u.checked_since(t), Some(SimDuration::from_millis(250)));
        assert_eq!(t.checked_since(u), None);
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions_roundtrip() {
        assert_eq!(SimDuration::from_secs(5).as_ns(), 5_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_us(), 5_000);
        assert_eq!(SimDuration::from_us(5).as_ns(), 5_000);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1500);
    }

    #[test]
    fn from_secs_f64_is_total() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).as_ns(), u64::MAX);
    }

    #[test]
    fn std_duration_bridge_roundtrips_and_saturates() {
        use std::time::Duration;
        let d = SimDuration::from_millis(1234);
        assert_eq!(Duration::from(d), Duration::from_millis(1234));
        assert_eq!(SimDuration::from(Duration::from_micros(7)), SimDuration::from_us(7));
        let t = SimTime::EPOCH + SimDuration::from_secs(145);
        assert_eq!(t.as_duration(), Duration::from_secs(145));
        // A Duration can exceed u64 nanoseconds; the bridge saturates.
        assert_eq!(SimDuration::from(Duration::from_secs(u64::MAX / 4)).as_ns(), u64::MAX);
    }

    #[test]
    fn saturating_ops() {
        let big = SimDuration::from_ns(u64::MAX - 5);
        assert_eq!(big.saturating_add(SimDuration::from_ns(100)).as_ns(), u64::MAX);
        assert_eq!(big.saturating_mul(3).as_ns(), u64::MAX);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_us(7).to_string(), "7us");
        assert_eq!((SimTime::EPOCH + SimDuration::from_secs(1)).to_string(), "t+1.000000s");
    }
}
