//! Simulation time.
//!
//! Nanosecond-resolution monotonic time since the simulation epoch. The ISI
//! dataset mixes two precisions — microseconds for matched responses,
//! whole seconds for timeout and unmatched records — so [`SimTime`] exposes
//! both truncations explicitly; analysis code must choose one deliberately
//! rather than inherit whatever a float happened to hold.
//!
//! ## Bridging to the runtime timebase
//!
//! `beware_runtime::Clock` timestamps are [`std::time::Duration`]s since
//! the clock's epoch. Both [`SimTime`] and [`SimDuration`] convert
//! **losslessly** into `Duration` via [`From`] (every u64 of nanoseconds
//! fits). The reverse direction is fallible — a `Duration` can hold up to
//! u128 nanoseconds — so it is spelled [`TryFrom`], and callers that
//! genuinely want the old clamping behavior say so with
//! [`SimDuration::saturating_from`]. [`SimClock`] packages the bridge: a
//! [`VirtualClock`](beware_runtime::VirtualClock) whose hands are moved by
//! the event loop, so agent code and runtime components (wheel deadlines,
//! reactors, policy estimators) observe one shared timeline.

use beware_runtime::clock::{Clock, SharedClock, VirtualClock};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in simulation time (nanoseconds since the simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from nanoseconds since the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncated) — the precision of matched
    /// survey responses.
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since the epoch (truncated) — the precision of timeout
    /// and unmatched records in the ISI data.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant; `None` if `earlier` is later
    /// (callers must handle reordered events, not panic).
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Duration since an earlier instant, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, saturating negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        // Saturate rather than wrap for absurdly large values.
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds (truncated).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// A `std::time::Duration` clamped into the u64 nanosecond horizon
    /// (~584 years) — the explicit spelling of what the retired
    /// `From<Duration>` impl did silently. Use [`TryFrom`] unless a clamp
    /// is genuinely what the call site means.
    pub fn saturating_from(d: Duration) -> SimDuration {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Scale by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

/// Lossless: every u64 of nanoseconds fits in a `Duration`.
impl From<SimDuration> for Duration {
    fn from(d: SimDuration) -> Duration {
        Duration::from_nanos(d.0)
    }
}

/// Lossless: a simulation instant *is* its offset from the epoch, which
/// is exactly what a `beware_runtime::Clock` timestamp is.
impl From<SimTime> for Duration {
    fn from(t: SimTime) -> Duration {
        Duration::from_nanos(t.0)
    }
}

/// A `std::time::Duration` too large for the u64 nanosecond simulation
/// horizon (~584 years).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeOutOfRange;

impl fmt::Display for TimeOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "duration exceeds the u64-nanosecond simulation horizon")
    }
}

impl std::error::Error for TimeOutOfRange {}

impl TryFrom<Duration> for SimDuration {
    type Error = TimeOutOfRange;
    /// Fails (rather than silently clamping) past the u64 nanosecond
    /// horizon; see [`SimDuration::saturating_from`] for the clamp.
    fn try_from(d: Duration) -> Result<SimDuration, TimeOutOfRange> {
        u64::try_from(d.as_nanos()).map(SimDuration).map_err(|_| TimeOutOfRange)
    }
}

impl TryFrom<Duration> for SimTime {
    type Error = TimeOutOfRange;
    /// Interprets the duration as an offset from the simulation epoch —
    /// the inverse of `Duration::from(SimTime)`.
    fn try_from(d: Duration) -> Result<SimTime, TimeOutOfRange> {
        u64::try_from(d.as_nanos()).map(SimTime).map_err(|_| TimeOutOfRange)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug if `rhs` is later; use [`SimTime::checked_since`]
    /// where reordering is possible.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// The simulation's clock: a [`VirtualClock`] whose hands are moved by
/// the event loop.
///
/// [`Simulation::run`](crate::sim::Simulation::run) advances this clock
/// to each event's timestamp as it pops, so anything holding a
/// [`handle`](SimClock::handle) — runtime components, agents, telemetry —
/// reads the same timeline the scheduler is executing. This is the seam
/// that lets code written against `beware_runtime::Clock` (the serve
/// engine, policy estimators, reactors) run unmodified inside the
/// simulator: zero real sockets, zero real sleeps.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: VirtualClock,
}

impl SimClock {
    /// A simulation clock at the epoch.
    pub fn new() -> SimClock {
        SimClock { inner: VirtualClock::new() }
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        // A VirtualClock stores u64 nanoseconds internally, so this
        // round-trip cannot overflow the simulation horizon.
        SimTime::try_from(self.inner.now()).expect("virtual clock stays within u64 ns")
    }

    /// Move the clock forward to `t`. No-op if `t` is not later than now —
    /// the clock is monotonic even if a caller replays an old timestamp.
    pub fn advance_to(&self, t: SimTime) {
        let now = self.now();
        if let Some(delta) = t.checked_since(now) {
            self.inner.advance(Duration::from(delta));
        }
    }

    /// A ready-to-share `Arc<dyn Clock>` view of this timeline, for
    /// handing to components written against `beware_runtime::Clock`.
    pub fn handle(&self) -> SharedClock {
        self.inner.handle()
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_truncation() {
        let t = SimTime::from_ns(3_500_123_456);
        assert_eq!(t.as_secs(), 3);
        assert_eq!(t.as_us(), 3_500_123);
        assert!((t.as_secs_f64() - 3.500123456).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::EPOCH + SimDuration::from_secs(10);
        let u = t + SimDuration::from_millis(250);
        assert_eq!((u - t).as_millis(), 250);
        assert_eq!(u.checked_since(t), Some(SimDuration::from_millis(250)));
        assert_eq!(t.checked_since(u), None);
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions_roundtrip() {
        assert_eq!(SimDuration::from_secs(5).as_ns(), 5_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_us(), 5_000);
        assert_eq!(SimDuration::from_us(5).as_ns(), 5_000);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1500);
    }

    #[test]
    fn from_secs_f64_is_total() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).as_ns(), u64::MAX);
    }

    #[test]
    fn std_duration_bridge_is_lossless_out_and_checked_back() {
        let d = SimDuration::from_millis(1234);
        assert_eq!(Duration::from(d), Duration::from_millis(1234));
        assert_eq!(SimDuration::try_from(Duration::from_micros(7)), Ok(SimDuration::from_us(7)));
        let t = SimTime::EPOCH + SimDuration::from_secs(145);
        assert_eq!(Duration::from(t), Duration::from_secs(145));
        assert_eq!(SimTime::try_from(Duration::from_secs(145)), Ok(t));
        // A Duration can exceed u64 nanoseconds; the checked bridge says
        // so, and the saturating spelling clamps explicitly.
        let huge = Duration::from_secs(u64::MAX / 4);
        assert_eq!(SimDuration::try_from(huge), Err(TimeOutOfRange));
        assert_eq!(SimTime::try_from(huge), Err(TimeOutOfRange));
        assert_eq!(SimDuration::saturating_from(huge).as_ns(), u64::MAX);
    }

    #[test]
    fn bridge_roundtrips_every_nanosecond() {
        // Lossless both ways for values inside the horizon — including
        // sub-microsecond residues a millisecond-based bridge would shed.
        for ns in [0u64, 1, 999, 1_000_001, 1_500_000_007, u64::MAX] {
            let d = SimDuration::from_ns(ns);
            assert_eq!(SimDuration::try_from(Duration::from(d)), Ok(d));
            let t = SimTime::from_ns(ns);
            assert_eq!(SimTime::try_from(Duration::from(t)), Ok(t));
        }
    }

    #[test]
    fn sim_clock_advances_monotonically_and_shares_its_timeline() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::EPOCH);
        let handle = clock.handle();
        clock.advance_to(SimTime::from_ns(2_500));
        assert_eq!(clock.now(), SimTime::from_ns(2_500));
        assert_eq!(handle.now(), Duration::from_nanos(2_500), "handle sees the same timeline");
        assert!(handle.is_virtual());
        // Replaying an older timestamp must not rewind.
        clock.advance_to(SimTime::from_ns(100));
        assert_eq!(clock.now(), SimTime::from_ns(2_500));
    }

    #[test]
    fn saturating_ops() {
        let big = SimDuration::from_ns(u64::MAX - 5);
        assert_eq!(big.saturating_add(SimDuration::from_ns(100)).as_ns(), u64::MAX);
        assert_eq!(big.saturating_mul(3).as_ns(), u64::MAX);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_us(7).to_string(), "7us");
        assert_eq!((SimTime::EPOCH + SimDuration::from_secs(1)).to_string(), "t+1.000000s");
    }
}
