//! Packet tracing — the simulator's tcpdump.
//!
//! The paper's verification experiments lean on tcpdump ("we run tcpdump
//! simultaneously ... days after the Scamper code finished"); the
//! simulator offers the same observability: attach a [`Trace`] to a
//! [`crate::sim::Simulation`] and every packet crossing the agent's
//! interface is recorded into a bounded ring buffer, renderable as
//! tcpdump-style text lines.

use crate::packet::{Packet, L4};
use crate::time::SimTime;
use beware_wire::icmp::IcmpKind;
use std::collections::VecDeque;

/// Direction of a traced packet relative to the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Transmitted by the agent.
    Sent,
    /// Delivered to the agent.
    Received,
}

/// One captured packet.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Capture time.
    pub at: SimTime,
    /// Direction.
    pub dir: Direction,
    /// The packet itself.
    pub pkt: Packet,
}

impl TraceEntry {
    /// Render one tcpdump-style line.
    pub fn render(&self) -> String {
        let arrow = match self.dir {
            Direction::Sent => ">",
            Direction::Received => "<",
        };
        let what = match &self.pkt.l4 {
            L4::Icmp { kind, payload } => match kind {
                IcmpKind::EchoRequest { ident, seq } => {
                    format!("ICMP echo request id {ident} seq {seq} len {}", payload.len())
                }
                IcmpKind::EchoReply { ident, seq } => {
                    format!("ICMP echo reply id {ident} seq {seq} len {}", payload.len())
                }
                IcmpKind::DestUnreachable { code } => {
                    format!("ICMP dest unreachable code {code}")
                }
                IcmpKind::TimeExceeded { code } => format!("ICMP time exceeded code {code}"),
                IcmpKind::Other { ty, code } => format!("ICMP type {ty} code {code}"),
            },
            L4::Udp { src_port, dst_port, payload } => {
                format!("UDP {src_port} > {dst_port} len {}", payload.len())
            }
            L4::Tcp(t) => {
                let mut flags = String::new();
                if t.flags.syn {
                    flags.push('S');
                }
                if t.flags.ack {
                    flags.push('.');
                }
                if t.flags.rst {
                    flags.push('R');
                }
                if t.flags.fin {
                    flags.push('F');
                }
                format!("TCP {} > {} [{flags}] seq {}", t.src_port, t.dst_port, t.seq)
            }
        };
        format!(
            "{:>14.6} {arrow} {} -> {} ttl {}: {what}",
            self.at.as_secs_f64(),
            std::net::Ipv4Addr::from(self.pkt.src),
            std::net::Ipv4Addr::from(self.pkt.dst),
            self.pkt.ttl,
        )
    }
}

/// A bounded ring buffer of captured packets.
#[derive(Debug)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    /// Total packets offered (including those evicted from the ring).
    pub captured: u64,
    /// Packets evicted from the ring to make room — bounded capture used
    /// to truncate silently; this makes the loss visible (and it surfaces
    /// through telemetry as `netsim/trace_dropped`).
    pub dropped_entries: u64,
}

impl Trace {
    /// A trace keeping the most recent `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity trace");
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            captured: 0,
            dropped_entries: 0,
        }
    }

    /// Record one packet.
    pub fn record(&mut self, at: SimTime, dir: Direction, pkt: &Packet) {
        self.captured += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped_entries += 1;
        }
        self.entries.push_back(TraceEntry { at, dir, pkt: pkt.clone() });
    }

    /// Flush capture accounting into a telemetry scope (counters
    /// `trace_captured` / `trace_dropped` under the scope's prefix).
    pub fn record_into(&self, scope: &mut beware_telemetry::Scope<'_>) {
        scope.add("trace_captured", self.captured);
        scope.add("trace_dropped", self.dropped_entries);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the whole capture as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use beware_wire::tcp::{TcpFlags, TcpRepr};

    fn t(s: f64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn records_and_renders() {
        let mut tr = Trace::new(16);
        let probe = Packet::echo_request(0x01010101, 0x0a000001, 7, 3, vec![0; 8]);
        tr.record(t(1.5), Direction::Sent, &probe);
        let reply = probe.echo_reply_from(0x0a000001).unwrap();
        tr.record(t(1.55), Direction::Received, &reply);
        assert_eq!(tr.len(), 2);
        let text = tr.render();
        assert!(text.contains("> 1.1.1.1 -> 10.0.0.1"), "{text}");
        assert!(text.contains("ICMP echo request id 7 seq 3"), "{text}");
        assert!(text.contains("ICMP echo reply id 7 seq 3"), "{text}");
    }

    #[test]
    fn overflow_counts_dropped_entries() {
        let mut tr = Trace::new(4);
        let p = Packet::echo_request(1, 2, 7, 0, vec![]);
        // Fill exactly to capacity: nothing dropped yet.
        for i in 0..4 {
            tr.record(t(f64::from(i)), Direction::Sent, &p);
        }
        assert_eq!(tr.dropped_entries, 0);
        // Every further record evicts one.
        for i in 4..20 {
            tr.record(t(f64::from(i)), Direction::Sent, &p);
        }
        assert_eq!(tr.captured, 20);
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.dropped_entries, 16);

        let mut reg = beware_telemetry::Registry::new();
        tr.record_into(&mut reg.scope("netsim"));
        assert_eq!(reg.counter("netsim/trace_captured"), Some(20));
        assert_eq!(reg.counter("netsim/trace_dropped"), Some(16));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tr = Trace::new(3);
        for i in 0..10u16 {
            let p = Packet::echo_request(1, 2, 7, i, vec![]);
            tr.record(t(f64::from(i)), Direction::Sent, &p);
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.captured, 10);
        assert_eq!(tr.dropped_entries, 7);
        let seqs: Vec<u16> = tr
            .entries()
            .map(|e| match &e.pkt.l4 {
                L4::Icmp { kind: IcmpKind::EchoRequest { seq, .. }, .. } => *seq,
                _ => panic!(),
            })
            .collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn tcp_and_udp_render() {
        let mut tr = Trace::new(4);
        tr.record(
            t(0.0),
            Direction::Sent,
            &Packet {
                src: 1,
                dst: 2,
                ttl: 64,
                l4: L4::Tcp(TcpRepr {
                    src_port: 1234,
                    dst_port: 80,
                    seq: 9,
                    ack_no: 0,
                    flags: TcpFlags::ACK,
                    window: 0,
                }),
            },
        );
        tr.record(
            t(0.1),
            Direction::Received,
            &Packet {
                src: 2,
                dst: 1,
                ttl: 60,
                l4: L4::Udp { src_port: 53, dst_port: 4444, payload: vec![0; 12] },
            },
        );
        let text = tr.render();
        assert!(text.contains("TCP 1234 > 80 [.] seq 9"), "{text}");
        assert!(text.contains("UDP 53 > 4444 len 12"), "{text}");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        Trace::new(0);
    }
}
