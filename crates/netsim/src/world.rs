//! The simulated Internet: routed /24 blocks, lazily instantiated hosts,
//! and the probe → responses transfer function.
//!
//! The world is *passive*: it holds no timers. A prober hands it a packet
//! and the current time; the world returns the arrivals that packet causes.
//! All host state advances lazily on access, which is what lets a scan of a
//! million addresses run without a million timer events.

use crate::host::{self, HostState, Reply};
use crate::packet::{Arrival, Packet, L4};
use crate::profile::{BlockProfile, PROFILE_KINDS};
use crate::rng::{derive_seed, seeded};
use crate::time::{SimDuration, SimTime};
use beware_wire::icmp::IcmpKind;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters the world keeps for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Probes delivered to the world.
    pub probes: u64,
    /// Response packets generated.
    pub responses: u64,
    /// Probes that fell on unrouted space.
    pub unrouted: u64,
    /// Routed probes that drew no response at all (dead address, loss,
    /// episode blackout, rate limit, ...). Unrouted probes are counted
    /// under `unrouted` only.
    pub no_response: u64,
    /// Responses synthesized by firewalls rather than hosts.
    pub firewall_rsts: u64,
    /// Broadcast-triggered responses.
    pub broadcast_responses: u64,
    /// Responses per dominant profile kind, indexed like
    /// [`PROFILE_KINDS`].
    pub responses_by_profile: [u64; PROFILE_KINDS.len()],
}

impl WorldStats {
    /// Flush these counters into a telemetry scope (counters `probes`,
    /// `responses`, `unrouted`, `no_response`, `firewall_rsts`,
    /// `broadcast_responses` and `responses_by_profile/<kind>` under the
    /// scope's prefix). Zero per-kind buckets are skipped so the export
    /// only names profile kinds the run actually exercised.
    pub fn record(&self, scope: &mut beware_telemetry::Scope<'_>) {
        scope.add("probes", self.probes);
        scope.add("responses", self.responses);
        scope.add("unrouted", self.unrouted);
        scope.add("no_response", self.no_response);
        scope.add("firewall_rsts", self.firewall_rsts);
        scope.add("broadcast_responses", self.broadcast_responses);
        let mut by_kind = scope.scope("responses_by_profile");
        for (kind, &n) in PROFILE_KINDS.iter().zip(&self.responses_by_profile) {
            if n > 0 {
                by_kind.add(kind, n);
            }
        }
    }

    /// Flush the difference `after - self` into a telemetry scope —
    /// what a run contributed to a world that already had history.
    pub fn record_delta(&self, after: &WorldStats, scope: &mut beware_telemetry::Scope<'_>) {
        let mut d = WorldStats {
            probes: after.probes - self.probes,
            responses: after.responses - self.responses,
            unrouted: after.unrouted - self.unrouted,
            no_response: after.no_response - self.no_response,
            firewall_rsts: after.firewall_rsts - self.firewall_rsts,
            broadcast_responses: after.broadcast_responses - self.broadcast_responses,
            responses_by_profile: [0; PROFILE_KINDS.len()],
        };
        for i in 0..PROFILE_KINDS.len() {
            d.responses_by_profile[i] =
                after.responses_by_profile[i] - self.responses_by_profile[i];
        }
        d.record(scope);
    }
}

#[derive(Debug, Clone)]
struct BlockEntry {
    profile: Arc<BlockProfile>,
    /// Cached [`BlockProfile::kind_index`] so the per-probe hot path
    /// never re-derives it.
    kind: usize,
}

/// The simulated address space.
#[derive(Debug)]
pub struct World {
    seed: u64,
    blocks: HashMap<u32, BlockEntry>,
    hosts: HashMap<u32, HostState>,
    rng: StdRng,
    stats: WorldStats,
}

impl Default for World {
    /// An empty seed-0 world — exists so APIs can `std::mem::take` a
    /// `&mut World` (the [`crate::sim::Simulation`] constructor consumes
    /// the world by value).
    fn default() -> Self {
        World::new(0)
    }
}

impl World {
    /// An empty world with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        World {
            seed,
            blocks: HashMap::new(),
            hosts: HashMap::new(),
            rng: seeded(derive_seed(seed, 0xF17E_AA11)),
            stats: WorldStats::default(),
        }
    }

    /// Route a /24 block (identified by `addr >> 8`) with the given
    /// behavior. Panics on an invalid profile — scenario bugs should fail
    /// at build time, not during a multi-hour run.
    pub fn add_block(&mut self, prefix24: u32, profile: Arc<BlockProfile>) {
        if let Err(e) = profile.validate() {
            panic!("invalid BlockProfile for block {prefix24:#08x}: {e}");
        }
        let kind = profile.kind_index();
        self.blocks.insert(prefix24, BlockEntry { profile, kind });
    }

    /// Whether a /24 block is routed.
    pub fn has_block(&self, prefix24: u32) -> bool {
        self.blocks.contains_key(&prefix24)
    }

    /// Profile of a routed block.
    pub fn block_profile(&self, prefix24: u32) -> Option<&Arc<BlockProfile>> {
        self.blocks.get(&prefix24).map(|b| &b.profile)
    }

    /// Number of routed blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of host state machines instantiated so far.
    pub fn hosts_instantiated(&self) -> usize {
        self.hosts.len()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// True if `addr` hosts a live device (static property).
    pub fn is_live(&self, addr: u32) -> bool {
        match self.blocks.get(&(addr >> 8)) {
            Some(e) => host::is_live(self.seed, &e.profile, addr),
            None => false,
        }
    }

    /// Deliver a probe; returns the arrivals it causes at the prober.
    pub fn probe(&mut self, pkt: &Packet, now: SimTime) -> Vec<Arrival> {
        self.stats.probes += 1;
        let prefix24 = pkt.dst >> 8;
        let Some(entry) = self.blocks.get(&prefix24) else {
            self.stats.unrouted += 1;
            return Vec::new();
        };
        let kind = entry.kind;
        let profile = Arc::clone(&entry.profile);

        // A TCP-answering middlebox intercepts before the host sees it.
        if let (L4::Tcp(tcp), Some(fw)) = (&pkt.l4, &profile.firewall) {
            if tcp.flags.ack && !tcp.flags.syn && !tcp.flags.rst {
                let delay = fw.rst_delay.sample(&mut self.rng).max(0.001);
                let rst = Packet {
                    src: pkt.dst,
                    dst: pkt.src,
                    ttl: fw.ttl,
                    l4: L4::Tcp(tcp.rst_reply()),
                };
                self.stats.responses += 1;
                self.stats.firewall_rsts += 1;
                self.stats.responses_by_profile[kind] += 1;
                return vec![Arrival { at: now + SimDuration::from_secs_f64(delay), pkt: rst }];
            }
        }

        // Broadcast destinations solicit responses from subnet neighbors.
        if let Some(bcast) = &profile.broadcast {
            let hb = u32::from(profile.subnet_host_bits);
            let is_bcast = beware_wire::addr::is_subnet_broadcast(pkt.dst, hb);
            let is_net =
                bcast.network_addr_responds && beware_wire::addr::is_subnet_network(pkt.dst, hb);
            if is_bcast || is_net {
                let out = self.broadcast_responses(pkt, now, &profile);
                if out.is_empty() {
                    self.stats.no_response += 1;
                } else {
                    self.stats.responses_by_profile[kind] += out.len() as u64;
                }
                return out;
            }
        }

        // Ordinary unicast delivery. Unicast-silent broadcast responders
        // never answer probes aimed directly at them.
        if !host::is_live(self.seed, &profile, pkt.dst)
            || host::broadcast_unicast_silent(self.seed, &profile, pkt.dst)
        {
            self.stats.no_response += 1;
            return Vec::new();
        }
        let seed = self.seed;
        let state = self
            .hosts
            .entry(pkt.dst)
            .or_insert_with(|| HostState::new(seed, &profile, pkt.dst, now));
        let responses = state.respond(&profile, now);
        let ttl = state.recv_ttl;
        let mut out = Vec::with_capacity(responses.len());
        for r in responses {
            if let Some(reply) = Self::synthesize(pkt, pkt.dst, ttl, r.kind) {
                out.push(Arrival {
                    at: now + SimDuration::from_secs_f64(r.delay_secs),
                    pkt: reply,
                });
            }
        }
        if out.is_empty() {
            self.stats.no_response += 1;
        } else {
            self.stats.responses_by_profile[kind] += out.len() as u64;
        }
        self.stats.responses += out.len() as u64;
        out
    }

    /// Responses to a probe aimed at a broadcast (or network) address:
    /// every configured responder in the subnet answers *from its own
    /// address* — "no device should send an echo response with the source
    /// address that is the broadcast destination".
    fn broadcast_responses(
        &mut self,
        pkt: &Packet,
        now: SimTime,
        profile: &Arc<BlockProfile>,
    ) -> Vec<Arrival> {
        // Broadcast semantics only exist for ICMP echo.
        let is_echo = matches!(&pkt.l4, L4::Icmp { kind: IcmpKind::EchoRequest { .. }, .. });
        if !is_echo {
            return Vec::new();
        }
        let hb = u32::from(profile.subnet_host_bits);
        let size = 1u32 << hb;
        let base = pkt.dst & !(size - 1);
        let mut out = Vec::new();
        for addr in base..base + size {
            if addr == pkt.dst
                || !host::is_live(self.seed, profile, addr)
                || !host::answers_broadcast(self.seed, profile, addr)
            {
                continue;
            }
            let seed = self.seed;
            let state =
                self.hosts.entry(addr).or_insert_with(|| HostState::new(seed, profile, addr, now));
            for r in state.respond(profile, now) {
                // Broadcast responses are echo replies from the neighbor.
                if r.kind == Reply::Normal {
                    if let Some(mut reply) = pkt.echo_reply_from(addr) {
                        reply.ttl = state.recv_ttl;
                        out.push(Arrival {
                            at: now + SimDuration::from_secs_f64(r.delay_secs),
                            pkt: reply,
                        });
                    }
                }
            }
        }
        self.stats.responses += out.len() as u64;
        self.stats.broadcast_responses += out.len() as u64;
        out
    }

    /// Build the concrete response packet for a host reply.
    fn synthesize(probe: &Packet, responder: u32, ttl: u8, kind: Reply) -> Option<Packet> {
        match kind {
            Reply::Normal => match &probe.l4 {
                L4::Icmp { kind: IcmpKind::EchoRequest { .. }, .. } => {
                    let mut reply = probe.echo_reply_from(responder)?;
                    reply.ttl = ttl;
                    Some(reply)
                }
                L4::Icmp { .. } => None,
                L4::Udp { .. } => Some(Packet {
                    src: responder,
                    dst: probe.src,
                    ttl,
                    l4: L4::Icmp {
                        // Port unreachable, quoting the original datagram.
                        kind: IcmpKind::DestUnreachable { code: 3 },
                        payload: quote(probe),
                    },
                }),
                L4::Tcp(tcp) => Some(Packet {
                    src: responder,
                    dst: probe.src,
                    ttl,
                    l4: L4::Tcp(tcp.rst_reply()),
                }),
            },
            Reply::Error => {
                // Host unreachable from the block gateway.
                let gateway = (probe.dst & 0xffff_ff00) | 1;
                Some(Packet {
                    src: gateway,
                    dst: probe.src,
                    ttl: 250,
                    l4: L4::Icmp {
                        kind: IcmpKind::DestUnreachable { code: 1 },
                        payload: quote(probe),
                    },
                })
            }
        }
    }
}

/// RFC 792 quotation: the original IP header plus the first 8 payload
/// bytes, which is what real errors carry and all a prober may rely on.
fn quote(probe: &Packet) -> Vec<u8> {
    let mut bytes = probe.encode();
    bytes.truncate(beware_wire::ipv4::HEADER_LEN + 8);
    bytes
}

/// Recover the original destination address from an ICMP error quotation
/// produced by [`quote`] (or any RFC 792-conforming stack).
pub fn quoted_destination(quoted: &[u8]) -> Option<u32> {
    if quoted.len() < beware_wire::ipv4::HEADER_LEN {
        return None;
    }
    // The quotation may be truncated below what Ipv4Packet::parse demands
    // (it checks total length), so read the destination field directly
    // after sanity-checking version/IHL.
    if quoted[0] >> 4 != 4 {
        return None;
    }
    Some(u32::from_be_bytes([quoted[16], quoted[17], quoted[18], quoted[19]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BroadcastCfg, DosCfg, FirewallCfg};
    use crate::rng::Dist;
    use beware_wire::tcp::{TcpFlags, TcpRepr};

    const PROBER: u32 = 0x0101_0101;

    fn t(secs: f64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs_f64(secs)
    }

    fn dense_profile() -> BlockProfile {
        BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            ..Default::default()
        }
    }

    fn world_with(profile: BlockProfile) -> World {
        let mut w = World::new(7);
        w.add_block(0x0a0000, Arc::new(profile));
        w
    }

    #[test]
    fn unicast_echo_round_trip() {
        let mut w = world_with(dense_profile());
        let probe = Packet::echo_request(PROBER, 0x0a000010, 9, 1, vec![0xab; 24]);
        let arrivals = w.probe(&probe, t(1.0));
        assert_eq!(arrivals.len(), 1);
        let a = &arrivals[0];
        assert_eq!(a.pkt.src, 0x0a000010);
        assert_eq!(a.pkt.dst, PROBER);
        assert_eq!(a.at, t(1.05));
        match &a.pkt.l4 {
            L4::Icmp { kind, payload } => {
                assert_eq!(*kind, IcmpKind::EchoReply { ident: 9, seq: 1 });
                assert_eq!(payload, &vec![0xab; 24]);
            }
            _ => panic!("expected icmp"),
        }
        assert_eq!(w.stats().responses, 1);
    }

    #[test]
    fn unrouted_space_is_silent() {
        let mut w = world_with(dense_profile());
        let probe = Packet::echo_request(PROBER, 0x0b000010, 9, 1, vec![]);
        assert!(w.probe(&probe, t(1.0)).is_empty());
        assert_eq!(w.stats().unrouted, 1);
    }

    #[test]
    fn broadcast_probe_draws_neighbor_responses() {
        let profile = BlockProfile {
            broadcast: Some(BroadcastCfg {
                responder_prob: 1.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 0.0,
                network_addr_responds: true,
            }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        let bcast = Packet::echo_request(PROBER, 0x0a0000ff, 9, 1, vec![1, 2, 3]);
        let arrivals = w.probe(&bcast, t(0.0));
        // All live hosts (254 of them: .0 and .255 excluded) respond, each
        // from its own address, never from the broadcast address.
        assert_eq!(arrivals.len(), 254);
        assert!(arrivals.iter().all(|a| a.pkt.src != 0x0a0000ff));
        let srcs: std::collections::HashSet<u32> = arrivals.iter().map(|a| a.pkt.src).collect();
        assert_eq!(srcs.len(), 254);
        assert_eq!(w.stats().broadcast_responses, 254);
        // The payload (with the embedded original destination) is echoed.
        match &arrivals[0].pkt.l4 {
            L4::Icmp { payload, .. } => assert_eq!(payload, &vec![1, 2, 3]),
            _ => panic!(),
        }
    }

    #[test]
    fn network_address_responds_only_when_configured() {
        let profile = BlockProfile {
            broadcast: Some(BroadcastCfg {
                responder_prob: 1.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 0.0,
                network_addr_responds: false,
            }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        let net = Packet::echo_request(PROBER, 0x0a000000, 9, 1, vec![]);
        // .0 is not a live host and network-addr broadcast is off: silent.
        assert!(w.probe(&net, t(0.0)).is_empty());
    }

    #[test]
    fn subnetted_block_has_multiple_broadcast_addrs() {
        let profile = BlockProfile {
            subnet_host_bits: 6, // /26 subnets: .63, .127, .191, .255
            broadcast: Some(BroadcastCfg {
                responder_prob: 1.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 0.0,
                network_addr_responds: false,
            }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        for bcast_octet in [63u32, 127, 191, 255] {
            let probe = Packet::echo_request(PROBER, 0x0a000000 + bcast_octet, 9, 1, vec![]);
            let arrivals = w.probe(&probe, t(0.0));
            // 62 live neighbors per /26 (bcast + network excluded).
            assert_eq!(arrivals.len(), 62, "octet {bcast_octet}");
            // Responders come from the same /26.
            assert!(arrivals.iter().all(|a| a.pkt.src >> 6 == (0x0a000000 + bcast_octet) >> 6));
        }
        // An interior address is a normal host.
        let probe = Packet::echo_request(PROBER, 0x0a000005, 9, 1, vec![]);
        assert_eq!(w.probe(&probe, t(0.0)).len(), 1);
    }

    #[test]
    fn firewall_intercepts_tcp_ack_with_constant_ttl() {
        let profile = BlockProfile {
            firewall: Some(FirewallCfg { rst_delay: Dist::Constant(0.2), ttl: 243 }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        let ack = Packet {
            src: PROBER,
            dst: 0x0a000020,
            ttl: 64,
            l4: L4::Tcp(TcpRepr {
                src_port: 40000,
                dst_port: 80,
                seq: 5,
                ack_no: 77,
                flags: TcpFlags::ACK,
                window: 1024,
            }),
        };
        for dst in [0x0a000020u32, 0x0a000021, 0x0a0000f0] {
            let mut probe = ack.clone();
            probe.dst = dst;
            let arrivals = w.probe(&probe, t(0.0));
            assert_eq!(arrivals.len(), 1);
            assert_eq!(arrivals[0].pkt.ttl, 243, "constant fw TTL");
            assert_eq!(arrivals[0].at, t(0.2));
            match &arrivals[0].pkt.l4 {
                L4::Tcp(r) => {
                    assert!(r.flags.rst);
                    assert_eq!(r.seq, 77);
                }
                _ => panic!("expected tcp"),
            }
        }
        assert_eq!(w.stats().firewall_rsts, 3);
        // ICMP passes through the firewall to the host.
        let echo = Packet::echo_request(PROBER, 0x0a000020, 1, 1, vec![]);
        let arrivals = w.probe(&echo, t(10.0));
        assert_eq!(arrivals.len(), 1);
        assert_ne!(arrivals[0].pkt.ttl, 243);
    }

    #[test]
    fn udp_probe_draws_port_unreachable_with_quote() {
        let mut w = world_with(dense_profile());
        let probe = Packet {
            src: PROBER,
            dst: 0x0a000030,
            ttl: 64,
            l4: L4::Udp { src_port: 44444, dst_port: 33435, payload: vec![7; 16] },
        };
        let arrivals = w.probe(&probe, t(0.0));
        assert_eq!(arrivals.len(), 1);
        match &arrivals[0].pkt.l4 {
            L4::Icmp { kind: IcmpKind::DestUnreachable { code: 3 }, payload } => {
                assert_eq!(payload.len(), 28);
                assert_eq!(quoted_destination(payload), Some(0x0a000030));
            }
            other => panic!("expected port unreachable, got {other:?}"),
        }
    }

    #[test]
    fn tcp_ack_to_host_draws_rst_with_host_ttl() {
        let mut w = world_with(dense_profile());
        let probe = Packet {
            src: PROBER,
            dst: 0x0a000031,
            ttl: 64,
            l4: L4::Tcp(TcpRepr {
                src_port: 40000,
                dst_port: 80,
                seq: 1,
                ack_no: 2,
                flags: TcpFlags::ACK,
                window: 64,
            }),
        };
        let a = w.probe(&probe, t(0.0));
        assert_eq!(a.len(), 1);
        match &a[0].pkt.l4 {
            L4::Tcp(r) => assert!(r.flags.rst),
            _ => panic!(),
        }
    }

    #[test]
    fn error_reply_comes_from_gateway() {
        let profile = BlockProfile { error_prob: 1.0, ..dense_profile() };
        let mut w = world_with(profile);
        let probe = Packet::echo_request(PROBER, 0x0a000040, 1, 1, vec![]);
        let a = w.probe(&probe, t(0.0));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].pkt.src, 0x0a000001);
        match &a[0].pkt.l4 {
            L4::Icmp { kind: IcmpKind::DestUnreachable { code: 1 }, payload } => {
                assert_eq!(quoted_destination(payload), Some(0x0a000040));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reflector_flood_counts_in_stats() {
        let profile = BlockProfile {
            dos: Some(DosCfg {
                addr_prob: 1.0,
                count: Dist::Constant(50.0),
                max_responses: 1000,
                spread_secs: 1.0,
            }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        let probe = Packet::echo_request(PROBER, 0x0a000055, 1, 1, vec![]);
        let a = w.probe(&probe, t(0.0));
        assert_eq!(a.len(), 50);
        assert_eq!(w.stats().responses, 50);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = || {
            let mut w = world_with(BlockProfile {
                jitter: Dist::Exponential { mean: 0.01 },
                ..dense_profile()
            });
            let mut arrivals = Vec::new();
            for i in 0..64u32 {
                let probe =
                    Packet::echo_request(PROBER, 0x0a000000 + (i % 250) + 2, 1, i as u16, vec![]);
                arrivals.extend(w.probe(&probe, t(f64::from(i))));
            }
            arrivals
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hosts_instantiated_lazily() {
        let mut w = world_with(dense_profile());
        assert_eq!(w.hosts_instantiated(), 0);
        let probe = Packet::echo_request(PROBER, 0x0a000010, 1, 1, vec![]);
        w.probe(&probe, t(0.0));
        assert_eq!(w.hosts_instantiated(), 1);
        w.probe(&probe, t(1.0));
        assert_eq!(w.hosts_instantiated(), 1);
    }

    #[test]
    fn no_response_and_per_profile_counters() {
        // Sparse block: most addresses are dead → routed silence.
        let profile = BlockProfile { density: 0.0, ..dense_profile() };
        let mut w = world_with(profile);
        let probe = Packet::echo_request(PROBER, 0x0a000010, 9, 1, vec![]);
        assert!(w.probe(&probe, t(0.0)).is_empty());
        assert_eq!(w.stats().no_response, 1);
        // Unrouted space counts separately.
        let stray = Packet::echo_request(PROBER, 0x0b000010, 9, 1, vec![]);
        w.probe(&stray, t(0.0));
        assert_eq!(w.stats().unrouted, 1);
        assert_eq!(w.stats().no_response, 1);

        // A firewall block attributes its RSTs to the firewall kind.
        let mut w = world_with(BlockProfile {
            firewall: Some(FirewallCfg { rst_delay: Dist::Constant(0.2), ttl: 243 }),
            ..dense_profile()
        });
        let ack = Packet {
            src: PROBER,
            dst: 0x0a000020,
            ttl: 64,
            l4: L4::Tcp(TcpRepr {
                src_port: 40000,
                dst_port: 80,
                seq: 5,
                ack_no: 77,
                flags: TcpFlags::ACK,
                window: 1024,
            }),
        };
        w.probe(&ack, t(0.0));
        let kind = crate::profile::PROFILE_KINDS.iter().position(|&k| k == "firewall").unwrap();
        assert_eq!(w.stats().responses_by_profile[kind], 1);

        // Delta recording only reports what the second probe added.
        let before = w.stats();
        w.probe(&ack, t(1.0));
        let mut reg = beware_telemetry::Registry::new();
        before.record_delta(&w.stats(), &mut reg.scope("netsim"));
        assert_eq!(reg.counter("netsim/probes"), Some(1));
        assert_eq!(reg.counter("netsim/responses_by_profile/firewall"), Some(1));
    }

    #[test]
    fn quoted_destination_rejects_garbage() {
        assert_eq!(quoted_destination(&[0u8; 10]), None);
        assert_eq!(quoted_destination(&[0x65; 28]), None);
    }
}
