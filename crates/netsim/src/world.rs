//! The simulated Internet: routed /24 blocks, lazily instantiated hosts,
//! and the probe → responses transfer function.
//!
//! The world is *passive*: it holds no timers. A prober hands it a packet
//! and the current time; the world returns the arrivals that packet causes.
//! All host state advances lazily on access, which is what lets a scan of a
//! million addresses run without a million timer events.
//!
//! Two address-space backings share this transfer function:
//!
//! * **routed** ([`World::new`] + [`World::add_block`]) — an explicit
//!   block table, the right tool for small scripted worlds;
//! * **procedural** ([`World::procedural`]) — blocks resolved on demand
//!   from a pure [`ProfileSource`], with host state bounded by
//!   [`LazyCfg`], which is what lets a full-IPv4-scale sweep stream in
//!   fixed memory (see [`crate::space`] for the eviction invariants).
//!
//! Either backing can additionally route probes through a shared
//! [`crate::link::LinkLayer`] ([`World::with_links`]): prefixes then share
//! queues, and congestion or a scenario-scheduled degrade on one uplink
//! shows up as *correlated* extra delay across every host behind it.

use crate::host::{self, HostState, Reply};
use crate::link::{LinkCfg, LinkId, LinkLayer};
use crate::packet::{Arrival, Packet, L4};
use crate::profile::{BlockProfile, PROFILE_KINDS};
use crate::rng::seeded;
use crate::space::{HostTable, LazyCfg, ProfileCache, ProfileSource};
use crate::time::{SimDuration, SimTime};
use beware_asdb::{Asn, Continent};
use beware_runtime::rng::derive_seed;
use beware_wire::icmp::IcmpKind;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters the world keeps for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Probes delivered to the world.
    pub probes: u64,
    /// Response packets generated.
    pub responses: u64,
    /// Probes that fell on unrouted space.
    pub unrouted: u64,
    /// Routed probes that drew no response at all (dead address, loss,
    /// episode blackout, rate limit, ...). Unrouted probes are counted
    /// under `unrouted` only.
    pub no_response: u64,
    /// Responses synthesized by firewalls rather than hosts.
    pub firewall_rsts: u64,
    /// Broadcast-triggered responses.
    pub broadcast_responses: u64,
    /// Responses per dominant profile kind, indexed like
    /// [`PROFILE_KINDS`].
    pub responses_by_profile: [u64; PROFILE_KINDS.len()],
    /// Host state machines reclaimed by the bounded host table (capacity
    /// plus quiescence evictions). Zero for unbounded worlds.
    pub hosts_evicted: u64,
    /// High-water mark of simultaneously resident host state machines —
    /// the number a memory ceiling must accommodate.
    pub hosts_peak: u64,
    /// Probes black-holed by the link layer (partitions + full queues).
    pub link_drops: u64,
    /// High-water queueing backlog across all shared links, microseconds.
    pub link_queue_peak_us: u64,
}

impl WorldStats {
    /// Flush these counters into a telemetry scope (counters `probes`,
    /// `responses`, `unrouted`, `no_response`, `firewall_rsts`,
    /// `broadcast_responses`, `hosts_evicted`, `link_drops` and
    /// `responses_by_profile/<kind>` under the scope's prefix, plus
    /// max-merged gauges `hosts_peak` and `link_queue_peak_us`). Zero
    /// buckets and zero gauges are skipped so the export only names what
    /// the run actually exercised.
    pub fn record(&self, scope: &mut beware_telemetry::Scope<'_>) {
        scope.add("probes", self.probes);
        scope.add("responses", self.responses);
        scope.add("unrouted", self.unrouted);
        scope.add("no_response", self.no_response);
        scope.add("firewall_rsts", self.firewall_rsts);
        scope.add("broadcast_responses", self.broadcast_responses);
        if self.hosts_evicted > 0 {
            scope.add("hosts_evicted", self.hosts_evicted);
        }
        if self.link_drops > 0 {
            scope.add("link_drops", self.link_drops);
        }
        if self.hosts_peak > 0 {
            scope.gauge_max("hosts_peak", self.hosts_peak);
        }
        if self.link_queue_peak_us > 0 {
            scope.gauge_max("link_queue_peak_us", self.link_queue_peak_us);
        }
        let mut by_kind = scope.scope("responses_by_profile");
        for (kind, &n) in PROFILE_KINDS.iter().zip(&self.responses_by_profile) {
            if n > 0 {
                by_kind.add(kind, n);
            }
        }
    }

    /// Flush the difference `after - self` into a telemetry scope —
    /// what a run contributed to a world that already had history.
    /// Counters subtract; the peak gauges carry `after`'s high-water mark
    /// unchanged (gauges merge by max, so re-reporting the peak is safe).
    pub fn record_delta(&self, after: &WorldStats, scope: &mut beware_telemetry::Scope<'_>) {
        let mut d = WorldStats {
            probes: after.probes - self.probes,
            responses: after.responses - self.responses,
            unrouted: after.unrouted - self.unrouted,
            no_response: after.no_response - self.no_response,
            firewall_rsts: after.firewall_rsts - self.firewall_rsts,
            broadcast_responses: after.broadcast_responses - self.broadcast_responses,
            responses_by_profile: [0; PROFILE_KINDS.len()],
            hosts_evicted: after.hosts_evicted - self.hosts_evicted,
            hosts_peak: after.hosts_peak,
            link_drops: after.link_drops - self.link_drops,
            link_queue_peak_us: after.link_queue_peak_us,
        };
        for i in 0..PROFILE_KINDS.len() {
            d.responses_by_profile[i] =
                after.responses_by_profile[i] - self.responses_by_profile[i];
        }
        d.record(scope);
    }
}

#[derive(Debug, Clone)]
struct BlockEntry {
    profile: Arc<BlockProfile>,
    /// Cached [`BlockProfile::kind_index`] so the per-probe hot path
    /// never re-derives it.
    kind: usize,
    /// Routing identity `(AS, continent)` when known — what the link
    /// layer aggregates core and spine queues on. Explicitly added blocks
    /// carry `None` and only share their access (`/16`) link.
    route: Option<(Asn, Continent)>,
}

/// How the world backs its address space: an explicit block table, or a
/// pure resolve-on-demand source fronted by a bounded cache.
#[derive(Debug)]
enum Space {
    Routed(HashMap<u32, BlockEntry>),
    Procedural { source: Arc<dyn ProfileSource>, cache: ProfileCache<BlockEntry> },
}

/// The simulated address space.
#[derive(Debug)]
pub struct World {
    seed: u64,
    space: Space,
    hosts: HostTable,
    links: Option<LinkLayer>,
    rng: StdRng,
    stats: WorldStats,
}

impl Default for World {
    /// An empty seed-0 world — exists so APIs can `std::mem::take` a
    /// `&mut World` (the [`crate::sim::Simulation`] constructor consumes
    /// the world by value).
    fn default() -> Self {
        World::new(0)
    }
}

impl World {
    /// An empty routed world with the given determinism seed and an
    /// unbounded host table.
    pub fn new(seed: u64) -> Self {
        World {
            seed,
            space: Space::Routed(HashMap::new()),
            hosts: HostTable::unbounded(),
            links: None,
            rng: seeded(derive_seed(seed, 0xF17E_AA11)),
            stats: WorldStats::default(),
        }
    }

    /// A procedural world: blocks resolved on demand from `source`, host
    /// state bounded per `lazy`. Because the source is a pure function of
    /// the prefix, neither the profile-cache capacity nor (for workloads
    /// that probe each address at most once) the host bounds can change
    /// results — see [`crate::space`].
    pub fn procedural(seed: u64, source: Arc<dyn ProfileSource>, lazy: &LazyCfg) -> Self {
        World {
            seed,
            space: Space::Procedural { source, cache: ProfileCache::new(lazy.profile_cache) },
            hosts: HostTable::bounded(lazy.host_cap, lazy.quiescence),
            links: None,
            rng: seeded(derive_seed(seed, 0xF17E_AA11)),
            stats: WorldStats::default(),
        }
    }

    /// Builder: bound the host table of any world (panics if hosts were
    /// already materialized — bounds are a construction-time choice).
    pub fn with_host_bounds(mut self, cap: usize, quiescence: Option<SimDuration>) -> Self {
        assert_eq!(self.hosts.len(), 0, "host bounds must be set before the first probe");
        self.hosts = HostTable::bounded(cap, quiescence);
        self
    }

    /// Builder: route probes through a shared link layer, so prefixes
    /// behind the same uplink see correlated queueing delay and
    /// scheduled [`crate::link::LinkEvent`]s.
    pub fn with_links(mut self, cfg: LinkCfg) -> Self {
        self.links = Some(LinkLayer::new(cfg));
        self
    }

    /// Route a /24 block (identified by `addr >> 8`) with the given
    /// behavior. Panics on an invalid profile — scenario bugs should fail
    /// at build time, not during a multi-hour run — and on procedural
    /// worlds, whose space is defined by their source alone.
    pub fn add_block(&mut self, prefix24: u32, profile: Arc<BlockProfile>) {
        if let Err(e) = profile.validate() {
            panic!("invalid BlockProfile for block {prefix24:#08x}: {e}");
        }
        let kind = profile.kind_index();
        match &mut self.space {
            Space::Routed(blocks) => {
                blocks.insert(prefix24, BlockEntry { profile, kind, route: None });
            }
            Space::Procedural { .. } => {
                panic!("add_block on a procedural world: its source defines the space")
            }
        }
    }

    /// The block behind a /24 prefix, resolving (and caching) it on
    /// procedural worlds.
    fn lookup_block(&mut self, prefix24: u32) -> Option<BlockEntry> {
        match &mut self.space {
            Space::Routed(blocks) => blocks.get(&prefix24).cloned(),
            Space::Procedural { source, cache } => cache.get_or_insert_with(prefix24, || {
                source.resolve(prefix24).map(|r| {
                    let kind = r.profile.kind_index();
                    BlockEntry {
                        profile: Arc::new(r.profile),
                        kind,
                        route: Some((r.asn, r.continent)),
                    }
                })
            }),
        }
    }

    /// Resolve without touching the cache — for `&self` accessors; the
    /// source is pure, so this always agrees with [`Self::lookup_block`].
    fn peek_block(&self, prefix24: u32) -> Option<Arc<BlockProfile>> {
        match &self.space {
            Space::Routed(blocks) => blocks.get(&prefix24).map(|b| Arc::clone(&b.profile)),
            Space::Procedural { source, .. } => {
                source.resolve(prefix24).map(|r| Arc::new(r.profile))
            }
        }
    }

    /// Whether a /24 block is routed.
    pub fn has_block(&self, prefix24: u32) -> bool {
        self.peek_block(prefix24).is_some()
    }

    /// Profile of a routed block.
    pub fn block_profile(&self, prefix24: u32) -> Option<Arc<BlockProfile>> {
        self.peek_block(prefix24)
    }

    /// Number of routed blocks.
    pub fn block_count(&self) -> usize {
        match &self.space {
            Space::Routed(blocks) => blocks.len(),
            Space::Procedural { source, .. } => source.routed_blocks(),
        }
    }

    /// Number of host state machines currently resident.
    pub fn hosts_instantiated(&self) -> usize {
        self.hosts.len()
    }

    /// Accumulated counters, including the host-table and link-layer
    /// high-water marks.
    pub fn stats(&self) -> WorldStats {
        let mut s = self.stats;
        s.hosts_evicted = self.hosts.evicted();
        s.hosts_peak = self.hosts.peak() as u64;
        if let Some(layer) = &self.links {
            s.link_drops = layer.drops();
            s.link_queue_peak_us = layer.peak_backlog_us();
        }
        s
    }

    /// True if `addr` hosts a live device (static property).
    pub fn is_live(&self, addr: u32) -> bool {
        match self.peek_block(addr >> 8) {
            Some(profile) => host::is_live(self.seed, &profile, addr),
            None => false,
        }
    }

    /// Deliver a probe; returns the arrivals it causes at the prober.
    pub fn probe(&mut self, pkt: &Packet, now: SimTime) -> Vec<Arrival> {
        self.stats.probes += 1;
        let prefix24 = pkt.dst >> 8;
        let Some(entry) = self.lookup_block(prefix24) else {
            self.stats.unrouted += 1;
            return Vec::new();
        };

        // The probe crosses the shared uplinks before any middlebox or
        // host sees it; whatever they charge delays every response, and a
        // partition or full queue black-holes the probe outright.
        let mut link_extra = SimDuration::from_ns(0);
        if let Some(layer) = &mut self.links {
            let mut path = [LinkId::Access((pkt.dst >> 16) as u16); 3];
            let mut hops = 1;
            if let Some((asn, continent)) = entry.route {
                path[1] = LinkId::Core(asn.0);
                path[2] = LinkId::Spine(continent as u8);
                hops = 3;
            }
            match layer.traverse(&path[..hops], now) {
                Some(extra) => link_extra = extra,
                None => {
                    self.stats.no_response += 1;
                    return Vec::new();
                }
            }
        }

        let mut out = self.probe_behind_links(pkt, now, &entry);
        if link_extra > SimDuration::from_ns(0) {
            for a in &mut out {
                a.at += link_extra;
            }
        }
        out
    }

    /// The probe → responses transfer function past the link layer:
    /// middleboxes, broadcast fan-out, and the destination host itself.
    fn probe_behind_links(
        &mut self,
        pkt: &Packet,
        now: SimTime,
        entry: &BlockEntry,
    ) -> Vec<Arrival> {
        let kind = entry.kind;
        let profile = Arc::clone(&entry.profile);

        // A TCP-answering middlebox intercepts before the host sees it.
        if let (L4::Tcp(tcp), Some(fw)) = (&pkt.l4, &profile.firewall) {
            if tcp.flags.ack && !tcp.flags.syn && !tcp.flags.rst {
                let delay = fw.rst_delay.sample(&mut self.rng).max(0.001);
                let rst = Packet {
                    src: pkt.dst,
                    dst: pkt.src,
                    ttl: fw.ttl,
                    l4: L4::Tcp(tcp.rst_reply()),
                };
                self.stats.responses += 1;
                self.stats.firewall_rsts += 1;
                self.stats.responses_by_profile[kind] += 1;
                return vec![Arrival { at: now + SimDuration::from_secs_f64(delay), pkt: rst }];
            }
        }

        // Broadcast destinations solicit responses from subnet neighbors.
        if let Some(bcast) = &profile.broadcast {
            let hb = u32::from(profile.subnet_host_bits);
            let is_bcast = beware_wire::addr::is_subnet_broadcast(pkt.dst, hb);
            let is_net =
                bcast.network_addr_responds && beware_wire::addr::is_subnet_network(pkt.dst, hb);
            if is_bcast || is_net {
                let out = self.broadcast_responses(pkt, now, &profile);
                if out.is_empty() {
                    self.stats.no_response += 1;
                } else {
                    self.stats.responses_by_profile[kind] += out.len() as u64;
                }
                return out;
            }
        }

        // Ordinary unicast delivery. Unicast-silent broadcast responders
        // never answer probes aimed directly at them.
        if !host::is_live(self.seed, &profile, pkt.dst)
            || host::broadcast_unicast_silent(self.seed, &profile, pkt.dst)
        {
            self.stats.no_response += 1;
            return Vec::new();
        }
        let seed = self.seed;
        let state =
            self.hosts.entry_with(pkt.dst, now, || HostState::new(seed, &profile, pkt.dst, now));
        let responses = state.respond(&profile, now);
        let ttl = state.recv_ttl;
        let mut out = Vec::with_capacity(responses.len());
        for r in responses {
            if let Some(reply) = Self::synthesize(pkt, pkt.dst, ttl, r.kind) {
                out.push(Arrival {
                    at: now + SimDuration::from_secs_f64(r.delay_secs),
                    pkt: reply,
                });
            }
        }
        if out.is_empty() {
            self.stats.no_response += 1;
        } else {
            self.stats.responses_by_profile[kind] += out.len() as u64;
        }
        self.stats.responses += out.len() as u64;
        out
    }

    /// Responses to a probe aimed at a broadcast (or network) address:
    /// every configured responder in the subnet answers *from its own
    /// address* — "no device should send an echo response with the source
    /// address that is the broadcast destination".
    fn broadcast_responses(
        &mut self,
        pkt: &Packet,
        now: SimTime,
        profile: &Arc<BlockProfile>,
    ) -> Vec<Arrival> {
        // Broadcast semantics only exist for ICMP echo.
        let is_echo = matches!(&pkt.l4, L4::Icmp { kind: IcmpKind::EchoRequest { .. }, .. });
        if !is_echo {
            return Vec::new();
        }
        let hb = u32::from(profile.subnet_host_bits);
        let size = 1u32 << hb;
        let base = pkt.dst & !(size - 1);
        let mut out = Vec::new();
        for addr in base..base + size {
            if addr == pkt.dst
                || !host::is_live(self.seed, profile, addr)
                || !host::answers_broadcast(self.seed, profile, addr)
            {
                continue;
            }
            // Responders answer from ephemeral state that is never entered
            // into the host table: a broadcast fan-out must not couple one
            // address's observable behavior to another address's table
            // residency, or single-probe sweeps would stop being invariant
            // under the host-cap setting (an evicted-then-recreated
            // neighbor would see a fresh rng stream while a resident one
            // continues its advanced stream).
            let mut state = HostState::new(self.seed, profile, addr, now);
            for r in state.respond(profile, now) {
                // Broadcast responses are echo replies from the neighbor.
                if r.kind == Reply::Normal {
                    if let Some(mut reply) = pkt.echo_reply_from(addr) {
                        reply.ttl = state.recv_ttl;
                        out.push(Arrival {
                            at: now + SimDuration::from_secs_f64(r.delay_secs),
                            pkt: reply,
                        });
                    }
                }
            }
        }
        self.stats.responses += out.len() as u64;
        self.stats.broadcast_responses += out.len() as u64;
        out
    }

    /// Build the concrete response packet for a host reply.
    fn synthesize(probe: &Packet, responder: u32, ttl: u8, kind: Reply) -> Option<Packet> {
        match kind {
            Reply::Normal => match &probe.l4 {
                L4::Icmp { kind: IcmpKind::EchoRequest { .. }, .. } => {
                    let mut reply = probe.echo_reply_from(responder)?;
                    reply.ttl = ttl;
                    Some(reply)
                }
                L4::Icmp { .. } => None,
                L4::Udp { .. } => Some(Packet {
                    src: responder,
                    dst: probe.src,
                    ttl,
                    l4: L4::Icmp {
                        // Port unreachable, quoting the original datagram.
                        kind: IcmpKind::DestUnreachable { code: 3 },
                        payload: quote(probe),
                    },
                }),
                L4::Tcp(tcp) => Some(Packet {
                    src: responder,
                    dst: probe.src,
                    ttl,
                    l4: L4::Tcp(tcp.rst_reply()),
                }),
            },
            Reply::Error => {
                // Host unreachable from the block gateway.
                let gateway = (probe.dst & 0xffff_ff00) | 1;
                Some(Packet {
                    src: gateway,
                    dst: probe.src,
                    ttl: 250,
                    l4: L4::Icmp {
                        kind: IcmpKind::DestUnreachable { code: 1 },
                        payload: quote(probe),
                    },
                })
            }
        }
    }
}

/// RFC 792 quotation: the original IP header plus the first 8 payload
/// bytes, which is what real errors carry and all a prober may rely on.
fn quote(probe: &Packet) -> Vec<u8> {
    let mut bytes = probe.encode();
    bytes.truncate(beware_wire::ipv4::HEADER_LEN + 8);
    bytes
}

/// Recover the original destination address from an ICMP error quotation
/// produced by [`quote`] (or any RFC 792-conforming stack).
pub fn quoted_destination(quoted: &[u8]) -> Option<u32> {
    if quoted.len() < beware_wire::ipv4::HEADER_LEN {
        return None;
    }
    // The quotation may be truncated below what Ipv4Packet::parse demands
    // (it checks total length), so read the destination field directly
    // after sanity-checking version/IHL.
    if quoted[0] >> 4 != 4 {
        return None;
    }
    Some(u32::from_be_bytes([quoted[16], quoted[17], quoted[18], quoted[19]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BroadcastCfg, DosCfg, FirewallCfg};
    use crate::rng::Dist;
    use beware_wire::tcp::{TcpFlags, TcpRepr};

    const PROBER: u32 = 0x0101_0101;

    fn t(secs: f64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs_f64(secs)
    }

    fn dense_profile() -> BlockProfile {
        BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            ..Default::default()
        }
    }

    fn world_with(profile: BlockProfile) -> World {
        let mut w = World::new(7);
        w.add_block(0x0a0000, Arc::new(profile));
        w
    }

    #[test]
    fn unicast_echo_round_trip() {
        let mut w = world_with(dense_profile());
        let probe = Packet::echo_request(PROBER, 0x0a000010, 9, 1, vec![0xab; 24]);
        let arrivals = w.probe(&probe, t(1.0));
        assert_eq!(arrivals.len(), 1);
        let a = &arrivals[0];
        assert_eq!(a.pkt.src, 0x0a000010);
        assert_eq!(a.pkt.dst, PROBER);
        assert_eq!(a.at, t(1.05));
        match &a.pkt.l4 {
            L4::Icmp { kind, payload } => {
                assert_eq!(*kind, IcmpKind::EchoReply { ident: 9, seq: 1 });
                assert_eq!(payload, &vec![0xab; 24]);
            }
            _ => panic!("expected icmp"),
        }
        assert_eq!(w.stats().responses, 1);
    }

    #[test]
    fn unrouted_space_is_silent() {
        let mut w = world_with(dense_profile());
        let probe = Packet::echo_request(PROBER, 0x0b000010, 9, 1, vec![]);
        assert!(w.probe(&probe, t(1.0)).is_empty());
        assert_eq!(w.stats().unrouted, 1);
    }

    #[test]
    fn broadcast_probe_draws_neighbor_responses() {
        let profile = BlockProfile {
            broadcast: Some(BroadcastCfg {
                responder_prob: 1.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 0.0,
                network_addr_responds: true,
            }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        let bcast = Packet::echo_request(PROBER, 0x0a0000ff, 9, 1, vec![1, 2, 3]);
        let arrivals = w.probe(&bcast, t(0.0));
        // All live hosts (254 of them: .0 and .255 excluded) respond, each
        // from its own address, never from the broadcast address.
        assert_eq!(arrivals.len(), 254);
        assert!(arrivals.iter().all(|a| a.pkt.src != 0x0a0000ff));
        let srcs: std::collections::HashSet<u32> = arrivals.iter().map(|a| a.pkt.src).collect();
        assert_eq!(srcs.len(), 254);
        assert_eq!(w.stats().broadcast_responses, 254);
        // The payload (with the embedded original destination) is echoed.
        match &arrivals[0].pkt.l4 {
            L4::Icmp { payload, .. } => assert_eq!(payload, &vec![1, 2, 3]),
            _ => panic!(),
        }
    }

    #[test]
    fn network_address_responds_only_when_configured() {
        let profile = BlockProfile {
            broadcast: Some(BroadcastCfg {
                responder_prob: 1.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 0.0,
                network_addr_responds: false,
            }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        let net = Packet::echo_request(PROBER, 0x0a000000, 9, 1, vec![]);
        // .0 is not a live host and network-addr broadcast is off: silent.
        assert!(w.probe(&net, t(0.0)).is_empty());
    }

    #[test]
    fn subnetted_block_has_multiple_broadcast_addrs() {
        let profile = BlockProfile {
            subnet_host_bits: 6, // /26 subnets: .63, .127, .191, .255
            broadcast: Some(BroadcastCfg {
                responder_prob: 1.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 0.0,
                network_addr_responds: false,
            }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        for bcast_octet in [63u32, 127, 191, 255] {
            let probe = Packet::echo_request(PROBER, 0x0a000000 + bcast_octet, 9, 1, vec![]);
            let arrivals = w.probe(&probe, t(0.0));
            // 62 live neighbors per /26 (bcast + network excluded).
            assert_eq!(arrivals.len(), 62, "octet {bcast_octet}");
            // Responders come from the same /26.
            assert!(arrivals.iter().all(|a| a.pkt.src >> 6 == (0x0a000000 + bcast_octet) >> 6));
        }
        // An interior address is a normal host.
        let probe = Packet::echo_request(PROBER, 0x0a000005, 9, 1, vec![]);
        assert_eq!(w.probe(&probe, t(0.0)).len(), 1);
    }

    #[test]
    fn firewall_intercepts_tcp_ack_with_constant_ttl() {
        let profile = BlockProfile {
            firewall: Some(FirewallCfg { rst_delay: Dist::Constant(0.2), ttl: 243 }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        let ack = Packet {
            src: PROBER,
            dst: 0x0a000020,
            ttl: 64,
            l4: L4::Tcp(TcpRepr {
                src_port: 40000,
                dst_port: 80,
                seq: 5,
                ack_no: 77,
                flags: TcpFlags::ACK,
                window: 1024,
            }),
        };
        for dst in [0x0a000020u32, 0x0a000021, 0x0a0000f0] {
            let mut probe = ack.clone();
            probe.dst = dst;
            let arrivals = w.probe(&probe, t(0.0));
            assert_eq!(arrivals.len(), 1);
            assert_eq!(arrivals[0].pkt.ttl, 243, "constant fw TTL");
            assert_eq!(arrivals[0].at, t(0.2));
            match &arrivals[0].pkt.l4 {
                L4::Tcp(r) => {
                    assert!(r.flags.rst);
                    assert_eq!(r.seq, 77);
                }
                _ => panic!("expected tcp"),
            }
        }
        assert_eq!(w.stats().firewall_rsts, 3);
        // ICMP passes through the firewall to the host.
        let echo = Packet::echo_request(PROBER, 0x0a000020, 1, 1, vec![]);
        let arrivals = w.probe(&echo, t(10.0));
        assert_eq!(arrivals.len(), 1);
        assert_ne!(arrivals[0].pkt.ttl, 243);
    }

    #[test]
    fn udp_probe_draws_port_unreachable_with_quote() {
        let mut w = world_with(dense_profile());
        let probe = Packet {
            src: PROBER,
            dst: 0x0a000030,
            ttl: 64,
            l4: L4::Udp { src_port: 44444, dst_port: 33435, payload: vec![7; 16] },
        };
        let arrivals = w.probe(&probe, t(0.0));
        assert_eq!(arrivals.len(), 1);
        match &arrivals[0].pkt.l4 {
            L4::Icmp { kind: IcmpKind::DestUnreachable { code: 3 }, payload } => {
                assert_eq!(payload.len(), 28);
                assert_eq!(quoted_destination(payload), Some(0x0a000030));
            }
            other => panic!("expected port unreachable, got {other:?}"),
        }
    }

    #[test]
    fn tcp_ack_to_host_draws_rst_with_host_ttl() {
        let mut w = world_with(dense_profile());
        let probe = Packet {
            src: PROBER,
            dst: 0x0a000031,
            ttl: 64,
            l4: L4::Tcp(TcpRepr {
                src_port: 40000,
                dst_port: 80,
                seq: 1,
                ack_no: 2,
                flags: TcpFlags::ACK,
                window: 64,
            }),
        };
        let a = w.probe(&probe, t(0.0));
        assert_eq!(a.len(), 1);
        match &a[0].pkt.l4 {
            L4::Tcp(r) => assert!(r.flags.rst),
            _ => panic!(),
        }
    }

    #[test]
    fn error_reply_comes_from_gateway() {
        let profile = BlockProfile { error_prob: 1.0, ..dense_profile() };
        let mut w = world_with(profile);
        let probe = Packet::echo_request(PROBER, 0x0a000040, 1, 1, vec![]);
        let a = w.probe(&probe, t(0.0));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].pkt.src, 0x0a000001);
        match &a[0].pkt.l4 {
            L4::Icmp { kind: IcmpKind::DestUnreachable { code: 1 }, payload } => {
                assert_eq!(quoted_destination(payload), Some(0x0a000040));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reflector_flood_counts_in_stats() {
        let profile = BlockProfile {
            dos: Some(DosCfg {
                addr_prob: 1.0,
                count: Dist::Constant(50.0),
                max_responses: 1000,
                spread_secs: 1.0,
            }),
            ..dense_profile()
        };
        let mut w = world_with(profile);
        let probe = Packet::echo_request(PROBER, 0x0a000055, 1, 1, vec![]);
        let a = w.probe(&probe, t(0.0));
        assert_eq!(a.len(), 50);
        assert_eq!(w.stats().responses, 50);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = || {
            let mut w = world_with(BlockProfile {
                jitter: Dist::Exponential { mean: 0.01 },
                ..dense_profile()
            });
            let mut arrivals = Vec::new();
            for i in 0..64u32 {
                let probe =
                    Packet::echo_request(PROBER, 0x0a000000 + (i % 250) + 2, 1, i as u16, vec![]);
                arrivals.extend(w.probe(&probe, t(f64::from(i))));
            }
            arrivals
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hosts_instantiated_lazily() {
        let mut w = world_with(dense_profile());
        assert_eq!(w.hosts_instantiated(), 0);
        let probe = Packet::echo_request(PROBER, 0x0a000010, 1, 1, vec![]);
        w.probe(&probe, t(0.0));
        assert_eq!(w.hosts_instantiated(), 1);
        w.probe(&probe, t(1.0));
        assert_eq!(w.hosts_instantiated(), 1);
    }

    #[test]
    fn no_response_and_per_profile_counters() {
        // Sparse block: most addresses are dead → routed silence.
        let profile = BlockProfile { density: 0.0, ..dense_profile() };
        let mut w = world_with(profile);
        let probe = Packet::echo_request(PROBER, 0x0a000010, 9, 1, vec![]);
        assert!(w.probe(&probe, t(0.0)).is_empty());
        assert_eq!(w.stats().no_response, 1);
        // Unrouted space counts separately.
        let stray = Packet::echo_request(PROBER, 0x0b000010, 9, 1, vec![]);
        w.probe(&stray, t(0.0));
        assert_eq!(w.stats().unrouted, 1);
        assert_eq!(w.stats().no_response, 1);

        // A firewall block attributes its RSTs to the firewall kind.
        let mut w = world_with(BlockProfile {
            firewall: Some(FirewallCfg { rst_delay: Dist::Constant(0.2), ttl: 243 }),
            ..dense_profile()
        });
        let ack = Packet {
            src: PROBER,
            dst: 0x0a000020,
            ttl: 64,
            l4: L4::Tcp(TcpRepr {
                src_port: 40000,
                dst_port: 80,
                seq: 5,
                ack_no: 77,
                flags: TcpFlags::ACK,
                window: 1024,
            }),
        };
        w.probe(&ack, t(0.0));
        let kind = crate::profile::PROFILE_KINDS.iter().position(|&k| k == "firewall").unwrap();
        assert_eq!(w.stats().responses_by_profile[kind], 1);

        // Delta recording only reports what the second probe added.
        let before = w.stats();
        w.probe(&ack, t(1.0));
        let mut reg = beware_telemetry::Registry::new();
        before.record_delta(&w.stats(), &mut reg.scope("netsim"));
        assert_eq!(reg.counter("netsim/probes"), Some(1));
        assert_eq!(reg.counter("netsim/responses_by_profile/firewall"), Some(1));
    }

    #[test]
    fn quoted_destination_rejects_garbage() {
        assert_eq!(quoted_destination(&[0u8; 10]), None);
        assert_eq!(quoted_destination(&[0x65; 28]), None);
    }

    /// The flagship streaming invariant: for a workload that probes each
    /// address at most once, a tightly bounded host table produces the
    /// exact same arrivals as an unbounded one — evicted state is never
    /// read again, so eviction cannot show.
    #[test]
    fn single_probe_sweep_is_invariant_under_host_bounds() {
        let sweep = |world: &mut World| {
            let mut arrivals = Vec::new();
            for i in 0..256u32 {
                let probe = Packet::echo_request(PROBER, 0x0a000000 + i, 1, i as u16, vec![]);
                arrivals.extend(world.probe(&probe, t(f64::from(i) * 0.01)));
            }
            arrivals
        };
        let profile = BlockProfile { jitter: Dist::Exponential { mean: 0.02 }, ..dense_profile() };
        let mut unbounded = world_with(profile.clone());
        let mut bounded = world_with(profile).with_host_bounds(8, None);

        assert_eq!(sweep(&mut unbounded), sweep(&mut bounded));
        let (u, b) = (unbounded.stats(), bounded.stats());
        assert_eq!((u.probes, u.responses, u.no_response), (b.probes, b.responses, b.no_response));
        assert_eq!(u.hosts_evicted, 0);
        assert!(b.hosts_evicted > 200, "cap 8 over 254 hosts must evict continuously");
        assert!(b.hosts_peak <= 8, "peak residency respects the cap, got {}", b.hosts_peak);
        assert!(bounded.hosts_instantiated() <= 8);
    }

    /// Degrading one shared access link inflates delay for *every* host
    /// behind that /16 — and leaves hosts behind other links untouched.
    #[test]
    fn degraded_access_link_correlates_delay_across_its_hosts() {
        use crate::link::{LinkEvent, LinkEventKind};
        let cfg = LinkCfg {
            events: vec![LinkEvent {
                link: LinkId::Access(0x0a00),
                at_secs: 10.0,
                until_secs: f64::INFINITY,
                // 25k pps → 2.5 pps: ~0.4 s per packet of added service.
                kind: LinkEventKind::Degrade { capacity_scale: 1e-4 },
            }],
            ..LinkCfg::default()
        };
        let mut w = World::new(7).with_links(cfg);
        w.add_block(0x0a0000, Arc::new(dense_profile()));
        w.add_block(0x0b0000, Arc::new(dense_profile()));

        let rtt = |w: &mut World, addr: u32, at: SimTime| -> f64 {
            let probe = Packet::echo_request(PROBER, addr, 1, 1, vec![]);
            let arrivals = w.probe(&probe, at);
            assert_eq!(arrivals.len(), 1, "{addr:#010x}");
            arrivals[0].at.saturating_since(at).as_secs_f64()
        };

        // Before the event both /16s answer in ~base RTT + ~40 µs service.
        for (i, addr) in [0x0a000010u32, 0x0a0000c0, 0x0b000010].iter().enumerate() {
            let d = rtt(&mut w, *addr, t(f64::from(i as u32)));
            assert!(d < 0.06, "pre-event RTT inflated at {addr:#010x}: {d}");
        }
        // After: every host behind Access(0x0a00) is slow, not just one.
        for addr in [0x0a000011u32, 0x0a0000c1, 0x0a0000f7] {
            let d = rtt(&mut w, addr, t(20.0));
            assert!(d > 0.2, "degrade must inflate {addr:#010x}, got {d}");
        }
        // The sibling /16 rides an unaffected link.
        let d = rtt(&mut w, 0x0b000011, t(20.0));
        assert!(d < 0.06, "0x0b hosts must be unaffected, got {d}");
        assert!(w.stats().link_queue_peak_us > 0);
    }
}
