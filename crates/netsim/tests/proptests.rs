//! Property tests over the simulator: sampled values stay physical, host
//! behavior stays bounded, and the world is a pure function of its seed.

use beware_netsim::event::{EventKey, EventQueue};
use beware_netsim::host::{class_of, is_live, HostState};
use beware_netsim::packet::Packet;
use beware_netsim::profile::{BlockProfile, CongestionCfg, EpisodeCfg, StormCfg, WakeupCfg};
use beware_netsim::rng::{seeded, Dist};
use beware_netsim::time::{SimDuration, SimTime};
use beware_netsim::world::World;
use beware_runtime::rng::{derive_seed, unit_hash};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The event loop netsim carried until PR 10, kept verbatim as the
/// reference model: a binary heap keyed `(time, sequence)` with
/// cancellation by payload removal. The wheel-backed [`EventQueue`] must
/// replay any schedule this loop accepts, event for event.
#[derive(Default)]
struct RetiredHeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: std::collections::HashMap<u64, u64>,
    next_seq: u64,
}

impl RetiredHeapQueue {
    fn push(&mut self, at_ns: u64, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at_ns, seq)));
        self.payloads.insert(seq, payload);
        seq
    }

    fn cancel(&mut self, seq: u64) -> Option<u64> {
        self.payloads.remove(&seq)
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(payload) = self.payloads.remove(&seq) {
                return Some((at, payload));
            }
        }
        None
    }

    fn peek_ns(&mut self) -> Option<u64> {
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if self.payloads.contains_key(&seq) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }
}

/// One step of a virtual-time schedule: the op kind selector and a raw
/// draw that doubles as deadline (pushes) or victim selector (cancels).
type ScheduleOp = (u8, u64);

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        (0.0f64..10.0).prop_map(Dist::Constant),
        (0.0f64..5.0, 0.1f64..5.0).prop_map(|(lo, w)| Dist::Uniform { lo, hi: lo + w }),
        (0.001f64..10.0).prop_map(|mean| Dist::Exponential { mean }),
        (0.001f64..10.0, 0.05f64..2.0)
            .prop_map(|(median, sigma)| Dist::LogNormal { median, sigma }),
        (0.001f64..10.0, 0.3f64..4.0).prop_map(|(xm, alpha)| Dist::Pareto { xm, alpha }),
        (0.001f64..10.0, 0.3f64..4.0).prop_map(|(scale, shape)| Dist::Weibull { scale, shape }),
    ]
}

/// Bounded jitter for the physicality property (a heavy-tailed *jitter*
/// would make any absolute bound vacuous).
fn arb_bounded_jitter() -> impl Strategy<Value = Dist> {
    prop_oneof![
        (0.0f64..3.0).prop_map(Dist::Constant),
        (0.0f64..3.0, 0.1f64..3.0).prop_map(|(lo, w)| Dist::Uniform { lo, hi: lo + w }),
    ]
}

fn arb_profile() -> impl Strategy<Value = BlockProfile> {
    (
        arb_dist(),
        arb_bounded_jitter(),
        0.0f64..=1.0,
        0.0f64..=1.0,
        2u8..=8,
        proptest::option::of((0.0f64..=1.0, 1.0f64..30.0)),
        proptest::option::of(0.0f64..=1.0),
        proptest::option::of(0.0f64..=1.0),
        proptest::option::of((0.0f64..=1.0, 0.0f64..=1.0)),
    )
        .prop_map(
            |(base, jitter, density, response_prob, hb, wake, congest, episodes, storms)| {
                BlockProfile {
                    base_rtt: base,
                    jitter,
                    density,
                    response_prob,
                    subnet_host_bits: hb,
                    wakeup: wake.map(|(p, tail)| WakeupCfg {
                        host_prob: p,
                        tail_secs: tail,
                        ..Default::default()
                    }),
                    congestion: congest
                        .map(|p| CongestionCfg { host_prob: p, ..Default::default() }),
                    episodes: episodes.map(|p| EpisodeCfg { host_prob: p, ..Default::default() }),
                    storms: storms.map(|(p, loss)| StormCfg {
                        host_prob: p,
                        loss,
                        ..Default::default()
                    }),
                    ..Default::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dist_samples_finite_and_nonnegative(dist in arb_dist(), seed in any::<u64>()) {
        let mut rng = seeded(seed);
        for _ in 0..64 {
            let v = dist.sample(&mut rng);
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn unit_hash_always_in_unit_interval(parent in any::<u64>(), entity in any::<u64>()) {
        let h = unit_hash(parent, entity);
        prop_assert!((0.0..1.0).contains(&h));
        prop_assert_eq!(h, unit_hash(parent, entity));
    }

    #[test]
    fn derive_seed_is_deterministic_and_sensitive(parent in any::<u64>(), s in any::<u64>()) {
        prop_assert_eq!(derive_seed(parent, s), derive_seed(parent, s));
        prop_assert_ne!(derive_seed(parent, s), derive_seed(parent, s ^ 1));
    }

    #[test]
    fn host_responses_physical(profile in arb_profile(), addr in any::<u32>(),
                               probe_times in proptest::collection::vec(0.0f64..100_000.0, 1..30),
                               seed in any::<u64>()) {
        prop_assume!(profile.validate().is_ok());
        let mut times = probe_times;
        times.sort_by(f64::total_cmp);
        let t0 = SimTime::EPOCH + SimDuration::from_secs_f64(times[0]);
        let mut host = HostState::new(seed, &profile, addr, t0);
        for t in times {
            let now = SimTime::EPOCH + SimDuration::from_secs_f64(t);
            for r in host.respond(&profile, now) {
                prop_assert!(r.delay_secs.is_finite());
                prop_assert!(r.delay_secs >= 0.0);
                // No *mechanism* adds more than ~20 minutes on top of the
                // path RTT plus bounded jitter (the base draw itself is
                // whatever distribution the profile declares, including
                // heavy tails — the bound is relative to it).
                prop_assert!(
                    r.delay_secs < host.base_rtt() + 6.0 + 1_200.0,
                    "delay {} vs base {}",
                    r.delay_secs,
                    host.base_rtt()
                );
            }
        }
    }

    #[test]
    fn class_and_liveness_are_pure(profile in arb_profile(), addr in any::<u32>(), seed in any::<u64>()) {
        prop_assume!(profile.validate().is_ok());
        prop_assert_eq!(class_of(seed, &profile, addr), class_of(seed, &profile, addr));
        prop_assert_eq!(is_live(seed, &profile, addr), is_live(seed, &profile, addr));
    }

    #[test]
    fn world_trace_is_a_function_of_seed(
        seed in any::<u64>(),
        octets in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let run = || {
            let mut w = World::new(seed);
            w.add_block(0x0a0000, Arc::new(BlockProfile::default()));
            let mut out = Vec::new();
            for (i, &o) in octets.iter().enumerate() {
                let probe = Packet::echo_request(1, 0x0a000000 | u32::from(o), 7, i as u16, vec![]);
                let t = SimTime::EPOCH + SimDuration::from_secs(i as u64);
                out.extend(w.probe(&probe, t));
            }
            out
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn wheel_backed_queue_replays_the_retired_heap_byte_identically(
        ops in proptest::collection::vec((0u8..5, any::<u64>()), 1..300),
    ) {
        // Replay one interleaved schedule of pushes, cancels, pops and
        // peeks through both loops. Deadlines are drawn from a window of
        // 64 nanoseconds so same-instant ties (the FIFO contract) are
        // common, not freak events.
        let mut wheel_q: EventQueue<u64> = EventQueue::new();
        let mut heap_q = RetiredHeapQueue::default();
        let mut live: Vec<(EventKey, u64)> = Vec::new(); // (wheel key, heap seq)
        let mut next_payload = 0u64;
        for &(kind, draw) in &ops as &Vec<ScheduleOp> {
            match kind {
                // Pushes dominate so schedules grow deep enough to
                // exercise ordering, not just drain immediately.
                0 | 1 => {
                    let at_ns = draw % 64;
                    let key = wheel_q.push(SimTime::from_ns(at_ns), next_payload);
                    let seq = heap_q.push(at_ns, next_payload);
                    live.push((key, seq));
                    next_payload += 1;
                }
                2 => {
                    if !live.is_empty() {
                        let (key, seq) = live.swap_remove(draw as usize % live.len());
                        prop_assert_eq!(wheel_q.cancel(key), heap_q.cancel(seq));
                    }
                }
                3 => {
                    // Stale entries left in `live` after a pop are fine:
                    // both loops answer a later cancel with `None`.
                    let wheel_pop = wheel_q.pop().map(|(at, p)| (at.as_ns(), p));
                    prop_assert_eq!(wheel_pop, heap_q.pop());
                }
                _ => {
                    prop_assert_eq!(wheel_q.peek_time().map(SimTime::as_ns), heap_q.peek_ns());
                }
            }
        }
        // Drain both: the remaining schedules must replay identically to
        // the last event, and agree that they are empty.
        loop {
            let wheel_pop = wheel_q.pop().map(|(at, p)| (at.as_ns(), p));
            let heap_pop = heap_q.pop();
            prop_assert_eq!(wheel_pop, heap_pop);
            if wheel_pop.is_none() {
                break;
            }
        }
        prop_assert!(wheel_q.is_empty());
    }

    #[test]
    fn packets_encode_decode_roundtrip(src in any::<u32>(), dst in any::<u32>(),
                                       ident in any::<u16>(), seq in any::<u16>(),
                                       payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let p = Packet::echo_request(src, dst, ident, seq, payload);
        prop_assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }
}
