//! The paper's static oracle, scored through the [`TimeoutPolicy`]
//! interface.
//!
//! An [`OracleTable`] freezes one grid cell of a BWTS snapshot — "the
//! minimum timeout capturing c% of pings from r% of addresses" — into an
//! LPM trie of raw `f64` bits. [`OracleTable::policy_for`] then hands
//! out per-prefix [`OracleAdapter`]s: estimators that never adapt
//! (observe and on_timeout are no-ops) and whose
//! [`current_timeout`](TimeoutPolicy::current_timeout) is the snapshot's
//! recommendation, **bit-for-bit** — the integration suite pins the
//! adapter's answers to the offline `recommend_timeout` computation.

use crate::{RttSample, TimeoutPolicy};
use beware_asdb::PrefixTrie;
use beware_dataset::snapshot::TimeoutSnapshot;

/// Why an [`OracleTable`] could not be built from a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdapterError {
    /// The requested percentile pair is not a grid point of the snapshot.
    CellMissing {
        /// Requested address percentile, tenths of a percent.
        addr_pct_tenths: u16,
        /// Requested ping percentile, tenths of a percent.
        ping_pct_tenths: u16,
    },
}

impl std::fmt::Display for AdapterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdapterError::CellMissing { addr_pct_tenths, ping_pct_tenths } => write!(
                f,
                "snapshot has no cell at address pct {}.{}% / ping pct {}.{}%",
                addr_pct_tenths / 10,
                addr_pct_tenths % 10,
                ping_pct_tenths / 10,
                ping_pct_tenths % 10
            ),
        }
    }
}

impl std::error::Error for AdapterError {}

/// One grid cell of a BWTS snapshot, frozen for policy scoring. See the
/// module docs.
#[derive(Debug)]
pub struct OracleTable {
    trie: PrefixTrie<u64>,
    fallback_bits: u64,
    /// Per-prefix canonical encoding cost (prefix u32 + len u8 + one
    /// u64 cell), for the memory scoring.
    serialized_bytes: usize,
}

impl OracleTable {
    /// Freeze `snap` at the `(addr_pct_tenths, ping_pct_tenths)` grid
    /// cell.
    pub fn from_snapshot(
        snap: &TimeoutSnapshot,
        addr_pct_tenths: u16,
        ping_pct_tenths: u16,
    ) -> Result<OracleTable, AdapterError> {
        let missing = || AdapterError::CellMissing { addr_pct_tenths, ping_pct_tenths };
        let ri = snap
            .address_pct_tenths
            .iter()
            .position(|&t| t == addr_pct_tenths)
            .ok_or_else(missing)?;
        let ci =
            snap.ping_pct_tenths.iter().position(|&t| t == ping_pct_tenths).ok_or_else(missing)?;
        let c_count = snap.ping_pct_tenths.len();
        let cell = ri * c_count + ci;
        let mut trie = PrefixTrie::new();
        for entry in &snap.entries {
            trie.insert(entry.prefix, entry.len, entry.cells[cell]);
        }
        Ok(OracleTable {
            trie,
            fallback_bits: snap.fallback[cell],
            // prefix u32 + len u8 + cell u64, the snapshot codec's cost
            // per entry at a 1×1 grid, plus the fallback cell.
            serialized_bytes: 8 + snap.entries.len() * (4 + 1 + 8),
        })
    }

    /// The frozen recommendation for `addr`, raw bits (LPM entry or the
    /// snapshot's global fallback).
    pub fn timeout_bits(&self, addr: u32) -> u64 {
        self.trie.lookup(addr).copied().unwrap_or(self.fallback_bits)
    }

    /// The frozen recommendation for `addr`, seconds.
    pub fn timeout_secs(&self, addr: u32) -> f64 {
        f64::from_bits(self.timeout_bits(addr))
    }

    /// The per-prefix policy instance: every address under one prefix
    /// shares one frozen timeout.
    pub fn policy_for(&self, addr: u32) -> OracleAdapter {
        OracleAdapter { bits: self.timeout_bits(addr) }
    }

    /// Serialized size of the frozen table — what shipping this state
    /// would cost, charged by the shootout's memory scoring.
    pub fn state_bytes(&self) -> usize {
        self.serialized_bytes
    }

    /// Number of per-prefix entries.
    pub fn entries(&self) -> usize {
        self.trie.len()
    }
}

/// The static oracle as a (non-)estimator. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleAdapter {
    /// The frozen recommendation, raw `f64` bits.
    bits: u64,
}

impl OracleAdapter {
    /// A frozen policy quoting exactly `timeout_secs` forever.
    pub fn fixed(timeout_secs: f64) -> OracleAdapter {
        OracleAdapter { bits: timeout_secs.to_bits() }
    }
}

impl TimeoutPolicy for OracleAdapter {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn observe(&mut self, _sample: RttSample) {
        // Static by construction: the snapshot does not learn.
    }

    fn current_timeout(&self) -> f64 {
        f64::from_bits(self.bits)
    }

    fn on_timeout(&mut self) {
        // No backoff either: the paper's table is an open-loop setting.
    }

    fn state_bytes(&self) -> usize {
        // The per-prefix marginal cost is one frozen cell; the shared
        // table is charged once via `OracleTable::state_bytes`.
        std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_dataset::snapshot::SnapshotEntry;

    fn snap() -> TimeoutSnapshot {
        TimeoutSnapshot {
            address_pct_tenths: vec![500, 950],
            ping_pct_tenths: vec![800, 950],
            // Row-major 2×2: [(500,800), (500,950), (950,800), (950,950)].
            fallback: vec![1.0f64.to_bits(), 2.0f64.to_bits(), 3.0f64.to_bits(), 4.0f64.to_bits()],
            entries: vec![SnapshotEntry {
                prefix: 0x0a000000,
                len: 24,
                cells: vec![
                    10.0f64.to_bits(),
                    20.0f64.to_bits(),
                    30.0f64.to_bits(),
                    40.0f64.to_bits(),
                ],
            }],
        }
    }

    #[test]
    fn selects_the_requested_grid_cell() {
        let t = OracleTable::from_snapshot(&snap(), 950, 950).unwrap();
        assert_eq!(t.timeout_secs(0x0a000007), 40.0);
        assert_eq!(t.timeout_secs(0x0b000007), 4.0); // fallback
        let t = OracleTable::from_snapshot(&snap(), 500, 800).unwrap();
        assert_eq!(t.timeout_secs(0x0a000007), 10.0);
        assert_eq!(t.timeout_secs(0x0b000007), 1.0);
    }

    #[test]
    fn missing_cell_is_an_error() {
        let err = OracleTable::from_snapshot(&snap(), 990, 950).unwrap_err();
        assert!(err.to_string().contains("99.0%"), "{err}");
    }

    #[test]
    fn adapter_is_frozen() {
        let t = OracleTable::from_snapshot(&snap(), 950, 950).unwrap();
        let mut p = t.policy_for(0x0a000001);
        let before = p.current_timeout();
        p.observe(RttSample::new(0.001, 1.0));
        p.on_timeout();
        p.on_timeout();
        assert_eq!(p.current_timeout(), before);
        assert_eq!(p.current_timeout(), 40.0);
    }

    #[test]
    fn state_accounting_scales_with_entries() {
        let t = OracleTable::from_snapshot(&snap(), 950, 950).unwrap();
        assert_eq!(t.entries(), 1);
        assert_eq!(t.state_bytes(), 8 + 13);
    }
}
