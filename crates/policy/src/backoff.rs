//! Pure exponential backoff: the conventional prober the paper
//! critiques.
//!
//! No RTT feedback at all — a fixed base timeout (the classic 3 s),
//! multiplied on every failure, reset on every success. This is the
//! baseline behavior of zmap-style scanners and most ad-hoc probers;
//! the paper's Table 1 shows how much of the response tail it cuts off.

use crate::{RttSample, TimeoutPolicy, INITIAL_TIMEOUT_SECS, MAX_TIMEOUT_SECS};

/// Tunables for [`ExpBackoff`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffCfg {
    /// Timeout quoted when not backing off (conventional prober: 3 s).
    pub base: f64,
    /// Factor applied per consecutive timeout.
    pub multiplier: f64,
    /// Upper clamp on the quoted timeout.
    pub max_timeout: f64,
    /// Cap on consecutive-timeout exponent.
    pub max_exp: u32,
}

impl Default for BackoffCfg {
    fn default() -> Self {
        BackoffCfg {
            base: INITIAL_TIMEOUT_SECS,
            multiplier: 2.0,
            max_timeout: MAX_TIMEOUT_SECS,
            max_exp: 6,
        }
    }
}

/// Fixed base × multiplier exponential backoff. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpBackoff {
    cfg: BackoffCfg,
    /// Consecutive unanswered timeouts.
    exp: u32,
}

impl Default for ExpBackoff {
    fn default() -> Self {
        ExpBackoff::new(BackoffCfg::default())
    }
}

impl ExpBackoff {
    /// Build a backoff policy with explicit tunables.
    pub fn new(cfg: BackoffCfg) -> ExpBackoff {
        ExpBackoff { cfg, exp: 0 }
    }
}

impl TimeoutPolicy for ExpBackoff {
    fn name(&self) -> &'static str {
        "exp-backoff"
    }

    fn observe(&mut self, _sample: RttSample) {
        // The RTT itself is ignored — success merely ends the backoff
        // run. That blindness is the point of this baseline.
        self.exp = 0;
    }

    fn current_timeout(&self) -> f64 {
        (self.cfg.base * self.cfg.multiplier.powi(self.exp.min(self.cfg.max_exp) as i32))
            .min(self.cfg.max_timeout)
    }

    fn on_timeout(&mut self) {
        self.exp = (self.exp + 1).min(self.cfg.max_exp);
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_per_timeout_and_resets_on_success() {
        let mut p = ExpBackoff::default();
        assert_eq!(p.current_timeout(), 3.0);
        p.on_timeout();
        assert_eq!(p.current_timeout(), 6.0);
        p.on_timeout();
        assert_eq!(p.current_timeout(), 12.0);
        p.observe(RttSample::new(0.4, 1.0));
        assert_eq!(p.current_timeout(), 3.0);
    }

    #[test]
    fn clamps_at_max() {
        let mut p = ExpBackoff::default();
        for _ in 0..32 {
            p.on_timeout();
        }
        assert_eq!(p.current_timeout(), MAX_TIMEOUT_SECS);
    }

    #[test]
    fn ignores_the_rtt_value() {
        let mut a = ExpBackoff::default();
        let mut b = ExpBackoff::default();
        a.observe(RttSample::new(0.001, 0.0));
        b.observe(RttSample::new(59.0, 0.0));
        assert_eq!(a.current_timeout(), b.current_timeout());
    }
}
