//! CoDel-flavoured sliding-window quantile tracker.
//!
//! CoDel's insight is to control on a *windowed statistic of recent
//! measurements* instead of a long-memory EWMA. Translated to timeout
//! selection: remember the last `window` RTTs, quote a safety margin
//! above their `quantile` (nearest-rank, matching the repo's offline
//! percentile convention), and back off multiplicatively while probes
//! keep dying. Against a step change in baseline latency this forgets
//! the old regime after `window` samples — the property the shootout's
//! COVID scenario is designed to expose.

use crate::{RttSample, TimeoutPolicy, INITIAL_TIMEOUT_SECS, MAX_TIMEOUT_SECS, MIN_TIMEOUT_SECS};
use beware_core::percentile::nearest_rank;
use std::collections::VecDeque;

/// Tunables for [`CodelQuantile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodelCfg {
    /// Samples remembered (the sliding window).
    pub window: usize,
    /// Quantile of the window the timeout tracks, in `(0, 1]`.
    pub quantile: f64,
    /// Multiplicative safety margin over the window quantile.
    pub margin: f64,
    /// Lower clamp on the quoted timeout.
    pub min_timeout: f64,
    /// Upper clamp on the quoted timeout.
    pub max_timeout: f64,
    /// Cap on the backoff exponent.
    pub max_backoff_exp: u32,
}

impl Default for CodelCfg {
    fn default() -> Self {
        CodelCfg {
            window: 64,
            quantile: 0.95,
            margin: 1.5,
            min_timeout: MIN_TIMEOUT_SECS,
            max_timeout: MAX_TIMEOUT_SECS,
            max_backoff_exp: 6,
        }
    }
}

/// Sliding-window quantile tracker. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct CodelQuantile {
    cfg: CodelCfg,
    /// Samples in arrival order, oldest first (ring of `cfg.window`).
    recent: VecDeque<f64>,
    /// The same samples kept sorted, so the quantile is O(log w) to read
    /// and O(w) to maintain — cheaper than sorting per quote.
    sorted: Vec<f64>,
    backoff: u32,
}

impl Default for CodelQuantile {
    fn default() -> Self {
        CodelQuantile::new(CodelCfg::default())
    }
}

impl CodelQuantile {
    /// Build a tracker with explicit tunables.
    pub fn new(cfg: CodelCfg) -> CodelQuantile {
        assert!(cfg.window > 0, "window must hold at least one sample");
        assert!(cfg.quantile > 0.0 && cfg.quantile <= 1.0, "quantile must be in (0, 1]");
        CodelQuantile {
            recent: VecDeque::with_capacity(cfg.window),
            sorted: Vec::with_capacity(cfg.window),
            cfg,
            backoff: 0,
        }
    }

    /// Nearest-rank quantile of the current window.
    ///
    /// Rank selection goes through [`nearest_rank`], the same snapped-ceil
    /// the offline tables use: an inline `(quantile * n).ceil()` drifts one
    /// rank high whenever `quantile * n` is mathematically integral but
    /// floats land epsilon above it (0.9 × 10 → 9.000000000000002 → rank
    /// 10), quoting a higher quantile than configured and diverging from
    /// the offline convention the module docs promise.
    fn window_quantile(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let rank = nearest_rank(self.cfg.quantile, self.sorted.len());
        Some(self.sorted[rank - 1])
    }
}

impl TimeoutPolicy for CodelQuantile {
    fn name(&self) -> &'static str {
        "codel-quantile"
    }

    fn observe(&mut self, sample: RttSample) {
        let rtt = sample.rtt_secs;
        if self.recent.len() == self.cfg.window {
            let evicted = self.recent.pop_front().expect("window is non-empty");
            let at = self
                .sorted
                .binary_search_by(|x| x.partial_cmp(&evicted).expect("RTTs are never NaN"))
                .expect("evicted sample is present in the sorted mirror");
            self.sorted.remove(at);
        }
        self.recent.push_back(rtt);
        let at = match self
            .sorted
            .binary_search_by(|x| x.partial_cmp(&rtt).expect("RTTs are never NaN"))
        {
            Ok(i) | Err(i) => i,
        };
        self.sorted.insert(at, rtt);
        self.backoff = 0;
    }

    fn current_timeout(&self) -> f64 {
        let base = match self.window_quantile() {
            Some(q) => q * self.cfg.margin,
            None => INITIAL_TIMEOUT_SECS,
        };
        let scaled = base * f64::from(1u32 << self.backoff.min(self.cfg.max_backoff_exp));
        scaled.clamp(self.cfg.min_timeout, self.cfg.max_timeout)
    }

    fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(self.cfg.max_backoff_exp);
    }

    fn state_bytes(&self) -> usize {
        // The window dominates: both the ring and its sorted mirror are
        // sized to capacity up front.
        std::mem::size_of::<Self>() + 2 * self.cfg.window * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(rtt: f64) -> RttSample {
        RttSample::new(rtt, 0.0)
    }

    #[test]
    fn tracks_the_window_quantile_with_margin() {
        let mut p = CodelQuantile::new(CodelCfg { window: 10, ..CodelCfg::default() });
        for i in 1..=10 {
            p.observe(s(f64::from(i) / 10.0));
        }
        // p95 of 0.1..=1.0 (nearest rank, 10 samples) = 1.0; × 1.5 margin.
        assert!((p.current_timeout() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn forgets_the_old_regime_after_window_samples() {
        let mut p = CodelQuantile::new(CodelCfg { window: 8, ..CodelCfg::default() });
        for _ in 0..8 {
            p.observe(s(10.0));
        }
        assert!(p.current_timeout() > 10.0);
        for _ in 0..8 {
            p.observe(s(0.1));
        }
        // All the 10 s samples have slid out.
        assert!((p.current_timeout() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn small_window_fills_pin_nearest_rank() {
        // While the window fills (n = 1..5) the median tracker must quote
        // rank ⌈n/2⌉ exactly: samples arrive ascending, so the quoted base
        // is sorted[rank-1] and any off-by-one is visible.
        let mut p = CodelQuantile::new(CodelCfg {
            window: 5,
            quantile: 0.5,
            margin: 1.0,
            ..CodelCfg::default()
        });
        let expected_rank = [1usize, 1, 2, 2, 3];
        for n in 1..=5usize {
            p.observe(s(n as f64));
            let want = expected_rank[n - 1] as f64;
            assert!(
                (p.current_timeout() - want).abs() < 1e-12,
                "n={n}: quoted {} want rank {want}",
                p.current_timeout()
            );
        }
    }

    #[test]
    fn integral_quantile_window_products_use_exact_rank() {
        // quantile × window integral in exact arithmetic but epsilon-high
        // in f64: 0.9 × 10. Nearest rank is 9 → base 0.9, not rank 10.
        let mut p = CodelQuantile::new(CodelCfg {
            window: 10,
            quantile: 0.9,
            margin: 1.5,
            ..CodelCfg::default()
        });
        for i in 1..=10 {
            p.observe(s(f64::from(i) / 10.0));
        }
        assert!((p.current_timeout() - 0.9 * 1.5).abs() < 1e-12);
    }

    #[test]
    fn backoff_scales_and_resets() {
        let mut p = CodelQuantile::default();
        p.observe(s(1.0));
        let base = p.current_timeout();
        p.on_timeout();
        assert!((p.current_timeout() - (base * 2.0).min(MAX_TIMEOUT_SECS)).abs() < 1e-12);
        p.observe(s(1.0));
        assert!((p.current_timeout() - base).abs() < 1e-12);
    }

    #[test]
    fn duplicate_rtts_evict_cleanly() {
        let mut p = CodelQuantile::new(CodelCfg { window: 4, ..CodelCfg::default() });
        for _ in 0..12 {
            p.observe(s(0.2));
        }
        assert_eq!(p.recent.len(), 4);
        assert_eq!(p.sorted.len(), 4);
    }
}
