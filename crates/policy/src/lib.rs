//! # beware-policy
//!
//! Online adaptive-timeout policies, and the machinery to score them
//! against the paper's *static* percentile-of-percentile oracle.
//!
//! The paper's contribution is a table: "the minimum timeout that
//! captures c% of pings from r% of addresses", computed offline from a
//! two-week survey. Jain's *Divergence of Timeout Algorithms* is the
//! classic study of what happens when the timeout instead adapts
//! *online*, and the COVID-19 latency studies (PAPERS.md) document the
//! regime shifts — step changes in baseline latency, diurnal swings —
//! that make a static snapshot stale. This crate holds both sides of
//! that argument under one interface:
//!
//! * [`TimeoutPolicy`] — the per-prefix estimator contract: feed it RTT
//!   samples ([`observe`](TimeoutPolicy::observe)), ask it for the
//!   current timeout, tell it when a probe timed out
//!   ([`on_timeout`](TimeoutPolicy::on_timeout)) so it can back off.
//! * [`JacobsonKarn`] — RFC 6298-style SRTT/RTTVAR with Karn's rule and
//!   exponential backoff: the TCP lineage.
//! * [`ExpBackoff`] — fixed base × multiplier, no RTT feedback at all:
//!   the conventional-prober baseline the paper critiques.
//! * [`CodelQuantile`] — a CoDel-flavoured sliding-window percentile
//!   tracker: remember the last *w* RTTs, serve a margin above their
//!   *q*-quantile.
//! * [`OracleAdapter`] — the paper's static table frozen into the same
//!   trait, so the offline recommendation is scored through exactly the
//!   interface the online policies use (built from an [`OracleTable`]).
//!
//! Per-prefix state lives in a [`PrefixPolicyMap`] keyed by
//! `beware-asdb`'s longest-prefix-match trie; published, immutable
//! snapshots of the map travel as [`PolicyTable`]s through
//! `beware_runtime::swap::Slot` (the serve path's epoch-swap slot).
//! Everything is deterministic: no wall clock, no ambient RNG — sample
//! timestamps come in through [`RttSample::at_secs`].
//!
//! The [`shootout`] module replays simulated survey campaigns
//! ([`scenario`]) through every policy and scores false-timeout rate,
//! waiting-time tails and estimator memory against ground truth,
//! including the snapshot-staleness sweep that finds the crossover where
//! online adaptation beats a stale oracle. See DESIGN.md §13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod backoff;
pub mod codel;
pub mod map;
pub mod rto;
pub mod scenario;
pub mod shootout;
pub mod table;

pub use adapter::{OracleAdapter, OracleTable};
pub use backoff::ExpBackoff;
pub use codel::CodelQuantile;
pub use map::PrefixPolicyMap;
pub use rto::JacobsonKarn;
pub use scenario::{Scenario, ScenarioKind};
pub use shootout::{ShootoutCfg, ShootoutReport};
pub use table::PolicyTable;

/// One round-trip-time measurement, stamped with the (simulated or
/// injected) time it was taken. Policies must derive all adaptation from
/// these two numbers — never from wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttSample {
    /// The measured round-trip time in seconds.
    pub rtt_secs: f64,
    /// When the sample was taken, seconds on the injected clock.
    pub at_secs: f64,
}

impl RttSample {
    /// Convenience constructor.
    pub fn new(rtt_secs: f64, at_secs: f64) -> RttSample {
        RttSample { rtt_secs, at_secs }
    }
}

/// The estimator contract every timeout policy implements.
///
/// A policy instance tracks **one** flow of samples (in this repo: one
/// /24 prefix, via [`PrefixPolicyMap`]). The replay harness and the
/// serve path drive it with exactly three verbs:
///
/// * [`observe`](Self::observe) — a probe was answered within the
///   current timeout; here is its RTT. (Karn's rule is the policy's own
///   business: the harness never feeds RTTs of probes it declared timed
///   out.)
/// * [`current_timeout`](Self::current_timeout) — how long would you
///   wait for the next probe? Must be pure (no state change) so the
///   same state always quotes the same timeout.
/// * [`on_timeout`](Self::on_timeout) — the timeout you quoted expired
///   with no answer; back off if you are going to.
///
/// Determinism: a policy must be a pure fold over its sample/timeout
/// event stream — same events in, bit-identical timeout sequence out.
/// The proptest suite pins this for every registered kind.
pub trait TimeoutPolicy: std::fmt::Debug + Send {
    /// Stable, registry-facing policy name (e.g. `"jacobson-karn"`).
    fn name(&self) -> &'static str;

    /// Feed one successfully measured RTT sample.
    fn observe(&mut self, sample: RttSample);

    /// The timeout (seconds) the policy would arm right now.
    fn current_timeout(&self) -> f64;

    /// A probe armed with [`current_timeout`](Self::current_timeout)
    /// expired unanswered.
    fn on_timeout(&mut self);

    /// Bytes of estimator state this instance holds — what a server
    /// would pay per tracked prefix. Used by the shootout's memory
    /// scoring.
    fn state_bytes(&self) -> usize;
}

/// The registry of policies the CLI and serve path can name.
///
/// `Oracle` is the paper's static snapshot scored through the same
/// interface; the other three adapt online.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// RFC 6298-style SRTT/RTTVAR with Karn's rule ([`JacobsonKarn`]).
    JacobsonKarn,
    /// Fixed base × multiplier backoff, no RTT feedback ([`ExpBackoff`]).
    ExpBackoff,
    /// Sliding-window percentile tracker ([`CodelQuantile`]).
    CodelQuantile,
    /// The static BWTS oracle behind [`OracleAdapter`].
    Oracle,
}

impl PolicyKind {
    /// Every registered policy, in scoring/display order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::JacobsonKarn,
        PolicyKind::ExpBackoff,
        PolicyKind::CodelQuantile,
        PolicyKind::Oracle,
    ];

    /// The online (adaptive) policies — everything except the oracle.
    pub const ONLINE: [PolicyKind; 3] =
        [PolicyKind::JacobsonKarn, PolicyKind::ExpBackoff, PolicyKind::CodelQuantile];

    /// Stable CLI/registry name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::JacobsonKarn => "jacobson-karn",
            PolicyKind::ExpBackoff => "exp-backoff",
            PolicyKind::CodelQuantile => "codel-quantile",
            PolicyKind::Oracle => "oracle",
        }
    }

    /// Look a policy up by its CLI name.
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// One-line human description for `--list-policies`.
    pub fn summary(self) -> &'static str {
        match self {
            PolicyKind::JacobsonKarn => {
                "RFC 6298 SRTT/RTTVAR estimator with Karn's rule and exponential backoff"
            }
            PolicyKind::ExpBackoff => {
                "fixed base x multiplier exponential backoff (conventional prober, no RTT feedback)"
            }
            PolicyKind::CodelQuantile => {
                "sliding-window quantile tracker: margin above the q-quantile of the last w RTTs"
            }
            PolicyKind::Oracle => "static BWTS snapshot (the paper's offline recommendation)",
        }
    }

    /// Construct a fresh estimator of this kind with default parameters.
    ///
    /// Panics for [`PolicyKind::Oracle`]: the oracle is not a free
    /// function of samples — build it from a snapshot via
    /// [`OracleTable`].
    pub fn build(self) -> Box<dyn TimeoutPolicy> {
        match self {
            PolicyKind::JacobsonKarn => Box::new(JacobsonKarn::default()),
            PolicyKind::ExpBackoff => Box::new(ExpBackoff::default()),
            PolicyKind::CodelQuantile => Box::new(CodelQuantile::default()),
            PolicyKind::Oracle => {
                panic!("the oracle policy is built from a snapshot, not thin air")
            }
        }
    }
}

/// The timeout every online policy quotes before it has seen a single
/// sample: the conventional prober's 3 s (the value the paper's Table 1
/// benchmarks against).
pub const INITIAL_TIMEOUT_SECS: f64 = 3.0;

/// Upper clamp on every online policy's timeout, RFC 6298 §2.4's "at
/// least 60 seconds" maximum. Keeps a mis-adapted estimator from
/// quoting unbounded waits.
pub const MAX_TIMEOUT_SECS: f64 = 60.0;

/// Lower clamp on every online policy's timeout. RFC 6298 recommends a
/// whole second; probers on today's Internet routinely go lower, and the
/// paper's own 95/95 recommendation is sub-second for fast blocks.
pub const MIN_TIMEOUT_SECS: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_names() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(PolicyKind::from_name("bogus"), None);
    }

    #[test]
    fn online_kinds_build_with_initial_timeout() {
        for kind in PolicyKind::ONLINE {
            let policy = kind.build();
            assert_eq!(policy.name(), kind.name());
            assert_eq!(policy.current_timeout(), INITIAL_TIMEOUT_SECS);
            assert!(policy.state_bytes() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "built from a snapshot")]
    fn oracle_kind_does_not_build_from_nothing() {
        let _ = PolicyKind::Oracle.build();
    }
}
