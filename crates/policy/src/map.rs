//! Per-prefix estimator state behind an LPM trie.
//!
//! Both the replay harness and the policy-mode server track one
//! estimator per /24 — the granularity the paper's snapshot tables use —
//! created lazily on first contact. The map reuses `beware-asdb`'s
//! [`PrefixTrie`] for the keying, so the online subsystem and the static
//! oracle agree on what "per-prefix" means.

use crate::adapter::OracleTable;
use crate::{PolicyKind, PolicyTable, RttSample, TimeoutPolicy};
use beware_asdb::PrefixTrie;
use std::sync::Arc;

/// Factory producing the estimator for a freshly seen prefix. Receives
/// the (masked) prefix so snapshot-backed factories can look it up.
type Factory = Box<dyn Fn(u32) -> Box<dyn TimeoutPolicy> + Send + Sync>;

/// A lazily populated `prefix → estimator` map. See the module docs.
pub struct PrefixPolicyMap {
    kind: PolicyKind,
    prefix_len: u8,
    factory: Factory,
    /// `trie` stores indices into `slots` so iteration order (ascending
    /// prefix) is independent of creation order.
    trie: PrefixTrie<usize>,
    slots: Vec<Box<dyn TimeoutPolicy>>,
    /// State bytes charged regardless of tracked prefixes (the oracle's
    /// shared frozen table).
    base_bytes: usize,
}

impl std::fmt::Debug for PrefixPolicyMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixPolicyMap")
            .field("kind", &self.kind)
            .field("prefix_len", &self.prefix_len)
            .field("tracked", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl PrefixPolicyMap {
    /// A /24-keyed map of fresh default-parameter estimators of `kind`.
    ///
    /// Panics for [`PolicyKind::Oracle`] — use
    /// [`with_oracle`](Self::with_oracle).
    pub fn for_kind(kind: PolicyKind) -> PrefixPolicyMap {
        assert!(
            kind != PolicyKind::Oracle,
            "the oracle policy is built from a snapshot: use PrefixPolicyMap::with_oracle"
        );
        PrefixPolicyMap {
            kind,
            prefix_len: 24,
            factory: Box::new(move |_| kind.build()),
            trie: PrefixTrie::new(),
            slots: Vec::new(),
            base_bytes: 0,
        }
    }

    /// A /24-keyed map of frozen [`crate::OracleAdapter`]s over `table`.
    pub fn with_oracle(table: Arc<OracleTable>) -> PrefixPolicyMap {
        let base_bytes = table.state_bytes();
        PrefixPolicyMap {
            kind: PolicyKind::Oracle,
            prefix_len: 24,
            factory: Box::new(move |prefix| Box::new(table.policy_for(prefix))),
            trie: PrefixTrie::new(),
            slots: Vec::new(),
            base_bytes,
        }
    }

    /// Which policy kind populates this map.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// The tracked-prefix length (always 24 today).
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    fn mask(&self, addr: u32) -> u32 {
        if self.prefix_len == 0 {
            return 0;
        }
        addr & (u32::MAX << (32 - u32::from(self.prefix_len)))
    }

    /// The estimator covering `addr`, created on first contact.
    fn slot_mut(&mut self, addr: u32) -> &mut Box<dyn TimeoutPolicy> {
        let prefix = self.mask(addr);
        let idx = match self.trie.get_exact(prefix, self.prefix_len) {
            Some(&i) => i,
            None => {
                let i = self.slots.len();
                self.slots.push((self.factory)(prefix));
                self.trie.insert(prefix, self.prefix_len, i);
                i
            }
        };
        &mut self.slots[idx]
    }

    /// The timeout the covering estimator would arm for `addr` right now.
    pub fn timeout_for(&mut self, addr: u32) -> f64 {
        self.slot_mut(addr).current_timeout()
    }

    /// Feed a measured RTT for `addr` to its estimator.
    pub fn observe(&mut self, addr: u32, sample: RttSample) {
        self.slot_mut(addr).observe(sample);
    }

    /// Tell `addr`'s estimator its armed timeout expired unanswered.
    pub fn on_timeout(&mut self, addr: u32) {
        self.slot_mut(addr).on_timeout();
    }

    /// Number of prefixes with live estimator state.
    pub fn tracked(&self) -> usize {
        self.slots.len()
    }

    /// Total estimator memory: shared base state plus every tracked
    /// prefix's own state, plus the trie key (4 + 1 bytes canonical).
    pub fn state_bytes(&self) -> usize {
        self.base_bytes + self.slots.iter().map(|s| s.state_bytes() + 5).sum::<usize>()
    }

    /// Freeze the map into an immutable [`PolicyTable`] quoting
    /// `fallback_secs` for untracked space — what the policy-mode server
    /// publishes through the epoch-swap slot.
    pub fn snapshot_table(&self, fallback_secs: f64) -> PolicyTable {
        PolicyTable::from_entries(
            self.prefix_len,
            fallback_secs,
            self.trie.iter().map(|(prefix, _, &i)| (prefix, self.slots[i].current_timeout())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::INITIAL_TIMEOUT_SECS;

    #[test]
    fn lazily_creates_one_estimator_per_prefix() {
        let mut m = PrefixPolicyMap::for_kind(PolicyKind::JacobsonKarn);
        assert_eq!(m.tracked(), 0);
        m.observe(0x0a000001, RttSample::new(0.1, 0.0));
        m.observe(0x0a0000fe, RttSample::new(0.1, 1.0)); // same /24
        m.observe(0x0a000101, RttSample::new(0.1, 2.0)); // next /24
        assert_eq!(m.tracked(), 2);
    }

    #[test]
    fn prefixes_adapt_independently() {
        let mut m = PrefixPolicyMap::for_kind(PolicyKind::JacobsonKarn);
        for _ in 0..50 {
            m.observe(0x0a000001, RttSample::new(0.1, 0.0));
            m.observe(0x0a000101, RttSample::new(5.0, 0.0));
        }
        assert!(m.timeout_for(0x0a000002) < m.timeout_for(0x0a000102));
        // An untouched prefix quotes the initial timeout.
        assert_eq!(m.timeout_for(0x0b000001), INITIAL_TIMEOUT_SECS);
    }

    #[test]
    fn snapshot_table_freezes_current_timeouts() {
        let mut m = PrefixPolicyMap::for_kind(PolicyKind::ExpBackoff);
        m.on_timeout(0x0a000001); // 3 → 6
        m.timeout_for(0x0a000101); // tracked at initial 3
        let table = m.snapshot_table(INITIAL_TIMEOUT_SECS);
        assert_eq!(table.entries(), 2);
        assert_eq!(table.lookup(0x0a000099).timeout_secs, 6.0);
        assert_eq!(table.lookup(0x0a000199).timeout_secs, 3.0);
        assert!(!table.lookup(0x0c000001).exact);
        // Freezing is a snapshot: later adaptation does not leak in.
        m.on_timeout(0x0a000001);
        assert_eq!(table.lookup(0x0a000099).timeout_secs, 6.0);
    }

    #[test]
    fn state_bytes_grow_with_tracking() {
        let mut m = PrefixPolicyMap::for_kind(PolicyKind::CodelQuantile);
        let empty = m.state_bytes();
        m.observe(0x0a000001, RttSample::new(0.1, 0.0));
        assert!(m.state_bytes() > empty);
    }

    #[test]
    #[should_panic(expected = "with_oracle")]
    fn oracle_kind_needs_a_snapshot() {
        let _ = PrefixPolicyMap::for_kind(PolicyKind::Oracle);
    }
}
