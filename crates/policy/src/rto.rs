//! Jacobson/Karn retransmission-timeout estimator (RFC 6298 flavour).
//!
//! The TCP lineage: smooth the RTT (`SRTT`) and its variation
//! (`RTTVAR`) with the classic 1/8 and 1/4 gains, quote
//! `SRTT + K·RTTVAR`, double on every timeout, and apply **Karn's
//! rule** — after a timeout the next measured sample is ambiguous (the
//! answer may belong to the original, long-gone probe), so it is
//! discarded rather than folded into the estimator.

use crate::{RttSample, TimeoutPolicy, INITIAL_TIMEOUT_SECS, MAX_TIMEOUT_SECS, MIN_TIMEOUT_SECS};

/// Tunables for [`JacobsonKarn`]. The defaults are RFC 6298's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtoCfg {
    /// SRTT gain (RFC 6298: 1/8).
    pub alpha: f64,
    /// RTTVAR gain (RFC 6298: 1/4).
    pub beta: f64,
    /// Variation multiplier in `SRTT + K·RTTVAR` (RFC 6298: 4).
    pub k: f64,
    /// Lower clamp on the quoted timeout.
    pub min_timeout: f64,
    /// Upper clamp on the quoted timeout.
    pub max_timeout: f64,
    /// Cap on the backoff exponent (2^6 = 64x is already past any
    /// sane max_timeout).
    pub max_backoff_exp: u32,
}

impl Default for RtoCfg {
    fn default() -> Self {
        RtoCfg {
            alpha: 0.125,
            beta: 0.25,
            k: 4.0,
            min_timeout: MIN_TIMEOUT_SECS,
            max_timeout: MAX_TIMEOUT_SECS,
            max_backoff_exp: 6,
        }
    }
}

/// RFC 6298-style SRTT/RTTVAR estimator with Karn's rule and
/// exponential backoff. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobsonKarn {
    cfg: RtoCfg,
    /// Smoothed RTT; `None` until the first (unambiguous) sample.
    srtt: Option<f64>,
    rttvar: f64,
    /// Backoff exponent: the quoted timeout is the base RTO × 2^backoff.
    backoff: u32,
    /// Karn's rule: the first sample after a timeout is ambiguous and
    /// must be discarded.
    ambiguous: bool,
}

impl Default for JacobsonKarn {
    fn default() -> Self {
        JacobsonKarn::new(RtoCfg::default())
    }
}

impl JacobsonKarn {
    /// Build an estimator with explicit tunables.
    pub fn new(cfg: RtoCfg) -> JacobsonKarn {
        JacobsonKarn { cfg, srtt: None, rttvar: 0.0, backoff: 0, ambiguous: false }
    }

    /// The un-backed-off RTO this estimator would quote.
    fn base_rto(&self) -> f64 {
        match self.srtt {
            Some(srtt) => srtt + self.cfg.k * self.rttvar,
            None => INITIAL_TIMEOUT_SECS,
        }
    }
}

impl TimeoutPolicy for JacobsonKarn {
    fn name(&self) -> &'static str {
        "jacobson-karn"
    }

    fn observe(&mut self, sample: RttSample) {
        if self.ambiguous {
            // Karn's rule: this answer may belong to the probe we
            // already declared dead; its RTT proves nothing.
            self.ambiguous = false;
            return;
        }
        let rtt = sample.rtt_secs;
        match self.srtt {
            None => {
                // RFC 6298 (2.2): first measurement seeds both.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                // RFC 6298 (2.3): RTTVAR before SRTT, in this order.
                self.rttvar =
                    (1.0 - self.cfg.beta) * self.rttvar + self.cfg.beta * (srtt - rtt).abs();
                self.srtt = Some((1.0 - self.cfg.alpha) * srtt + self.cfg.alpha * rtt);
            }
        }
        // A fresh, unambiguous measurement ends any backoff run.
        self.backoff = 0;
    }

    fn current_timeout(&self) -> f64 {
        let scaled =
            self.base_rto() * f64::from(1u32 << self.backoff.min(self.cfg.max_backoff_exp));
        scaled.clamp(self.cfg.min_timeout, self.cfg.max_timeout)
    }

    fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(self.cfg.max_backoff_exp);
        self.ambiguous = true;
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(rtt: f64) -> RttSample {
        RttSample::new(rtt, 0.0)
    }

    #[test]
    fn first_sample_seeds_srtt_and_rttvar() {
        let mut p = JacobsonKarn::default();
        assert_eq!(p.current_timeout(), INITIAL_TIMEOUT_SECS);
        p.observe(s(0.2));
        // RTO = 0.2 + 4 * 0.1 = 0.6.
        assert!((p.current_timeout() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn steady_samples_converge_toward_srtt() {
        let mut p = JacobsonKarn::default();
        for _ in 0..200 {
            p.observe(s(0.1));
        }
        // RTTVAR decays toward zero on a constant stream; the RTO floors
        // at min_timeout.
        assert!(p.current_timeout() < 0.12, "rto = {}", p.current_timeout());
        assert!(p.current_timeout() >= MIN_TIMEOUT_SECS);
    }

    #[test]
    fn timeouts_double_and_clamp() {
        let mut p = JacobsonKarn::default();
        p.observe(s(1.0));
        let base = p.current_timeout();
        p.on_timeout();
        p.on_timeout();
        assert!((p.current_timeout() - (base * 4.0).min(MAX_TIMEOUT_SECS)).abs() < 1e-12);
        for _ in 0..20 {
            p.on_timeout();
        }
        assert!(p.current_timeout() <= MAX_TIMEOUT_SECS);
    }

    #[test]
    fn karn_discards_first_sample_after_timeout() {
        let mut p = JacobsonKarn::default();
        p.observe(s(0.5));
        let before = p.clone();
        p.on_timeout();
        // The ambiguous sample must change nothing but clear the flag…
        p.observe(s(30.0));
        assert_eq!(p.srtt, before.srtt);
        assert_eq!(p.rttvar, before.rttvar);
        // …but backoff persists until a clean sample lands.
        assert!(p.current_timeout() > before.current_timeout());
        p.observe(s(0.5));
        assert_eq!(p.backoff, 0);
    }
}
