//! Shootout scenarios: simulated survey campaigns with known regime
//! behavior.
//!
//! Each [`Scenario`] builds a netsim world, runs the ISI-style survey
//! prober over it with a **very wide match window**, and returns the
//! record stream. The wide window is what turns the survey into ground
//! truth: every probe a host ever answers becomes a `Matched` record
//! with its microsecond-precise RTT, and only genuine losses become
//! `Timeout` records — so a replayed policy's timeout decisions can be
//! scored against what *actually* happened, not against what a 3 s
//! window happened to catch.
//!
//! Three regimes (DESIGN.md §13):
//!
//! * **steady** — stationary latency; the paper's assumption, the
//!   static oracle's home turf.
//! * **covid_step** — a permanent step change in baseline latency and
//!   loss halfway through ([`beware_netsim::profile::ShiftCfg`]), the
//!   COVID-lockdown signature that makes a pre-shift snapshot stale.
//! * **diurnal_drift** — strong periodic congestion swings
//!   ([`beware_netsim::profile::DiurnalCfg`]); no single static timeout
//!   is right all day.

use beware_dataset::{Record, RecordKind};
use beware_netsim::profile::{BlockProfile, CongestionCfg, DiurnalCfg, ShiftCfg};
use beware_netsim::rng::Dist;
use beware_netsim::World;
use beware_probe::prelude::*;
use beware_runtime::rng::{derive_seed, unit_hash};
use beware_telemetry::Registry;
use std::sync::Arc;

/// Which regime a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioKind {
    /// Stationary latency.
    Steady,
    /// Permanent latency/loss step at `at_secs`.
    CovidStep {
        /// Simulation second of the step.
        at_secs: f64,
        /// Delay scale factor from then on.
        rtt_scale: f64,
        /// Extra per-probe loss from then on.
        extra_loss: f64,
    },
    /// Periodic congestion swing.
    DiurnalDrift {
        /// Relative swing, `[0, 1]`.
        amplitude: f64,
        /// Cycle length in seconds.
        period_secs: f64,
    },
}

/// One shootout campaign. See the module docs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable name: scores and telemetry key on it.
    pub name: &'static str,
    /// Number of /24 blocks probed.
    pub blocks: u32,
    /// Survey rounds.
    pub rounds: u32,
    /// Round duration in seconds.
    pub round_secs: f64,
    /// Determinism seed.
    pub seed: u64,
    /// The regime.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// The standard three-regime matrix at a given scale. The covid step
    /// lands at half the span; the diurnal period is span/3 so the smoke
    /// scale still sees full cycles (a real day would not fit).
    pub fn standard(seed: u64, blocks: u32, rounds: u32, round_secs: f64) -> Vec<Scenario> {
        let span = f64::from(rounds) * round_secs;
        vec![
            Scenario {
                name: "steady",
                blocks,
                rounds,
                round_secs,
                seed,
                kind: ScenarioKind::Steady,
            },
            Scenario {
                name: "covid_step",
                blocks,
                rounds,
                round_secs,
                seed: derive_seed(seed, 2),
                kind: ScenarioKind::CovidStep {
                    at_secs: span * 0.5,
                    rtt_scale: 2.5,
                    extra_loss: 0.05,
                },
            },
            Scenario {
                name: "diurnal_drift",
                blocks,
                rounds,
                round_secs,
                seed: derive_seed(seed, 3),
                kind: ScenarioKind::DiurnalDrift { amplitude: 0.9, period_secs: span / 3.0 },
            },
        ]
    }

    /// Total simulated span in seconds.
    pub fn span_secs(&self) -> f64 {
        f64::from(self.rounds) * self.round_secs
    }

    /// The step instant, for the staleness sweep.
    pub fn shift_at_secs(&self) -> Option<f64> {
        match self.kind {
            ScenarioKind::CovidStep { at_secs, .. } => Some(at_secs),
            _ => None,
        }
    }

    /// The profile of block `i`: per-block base latency spread over
    /// 20–270 ms, a third of the blocks behind mildly congested links,
    /// plus the scenario's regime mechanism.
    fn profile(&self, i: u32) -> BlockProfile {
        let u = unit_hash(self.seed, u64::from(i));
        let mut p = BlockProfile {
            base_rtt: Dist::LogNormal { median: 0.02 + 0.25 * u, sigma: 0.35 },
            jitter: Dist::Exponential { mean: 0.003 },
            density: 0.9,
            response_prob: 0.98,
            dup_prob: 0.0,
            error_prob: 0.001,
            ..BlockProfile::default()
        };
        if i.is_multiple_of(3) {
            p.congestion = Some(CongestionCfg {
                host_prob: 0.4,
                extra: Dist::LogNormal { median: 0.6, sigma: 0.6 },
                busy_loss: 0.08,
            });
        }
        match self.kind {
            ScenarioKind::Steady => {}
            ScenarioKind::CovidStep { at_secs, rtt_scale, extra_loss } => {
                p.shift = Some(ShiftCfg { at_secs, rtt_scale, extra_loss });
            }
            ScenarioKind::DiurnalDrift { amplitude, period_secs } => {
                // Diurnal modulation acts on congestion; make every block
                // congested so the whole scenario breathes.
                p.congestion = Some(CongestionCfg {
                    host_prob: 0.8,
                    extra: Dist::LogNormal { median: 0.8, sigma: 0.5 },
                    busy_loss: 0.06,
                });
                p.diurnal = Some(DiurnalCfg { amplitude, peak_offset_secs: 0.0, period_secs });
            }
        }
        p
    }

    /// Run the campaign: a survey with a ground-truth-wide match window
    /// (90% of the round), records in canonical replay order.
    pub fn run(&self, metrics: &mut Registry) -> Vec<Record> {
        let mut world = World::new(derive_seed(self.seed, 0x77));
        let blocks: Vec<u32> = (0..self.blocks).map(|i| 0x0a0000 + i).collect();
        for &b in &blocks {
            world.add_block(b, Arc::new(self.profile(b - 0x0a0000)));
        }
        let cfg = SurveyCfg {
            blocks,
            rounds: self.rounds,
            round_secs: self.round_secs,
            match_timeout_secs: self.round_secs * 0.9,
            seed: derive_seed(self.seed, 0x51),
            ..SurveyCfg::default()
        };
        let ((mut records, _stats), _summary) = cfg.build(Vec::new()).run_with(&mut world, metrics);
        canonical_sort(&mut records);
        records
    }
}

/// Sort records into the canonical replay order: by send time, then
/// address, then kind. The survey emits in event order (deterministic,
/// but interleaved by response arrival); replay wants one fixed,
/// content-defined order so scores are a pure function of the record
/// *set*.
pub fn canonical_sort(records: &mut [Record]) {
    records.sort_by_key(|r| {
        let (rank, detail) = match r.kind {
            RecordKind::Matched { rtt_us } => (0u8, rtt_us),
            RecordKind::Timeout => (1, 0),
            RecordKind::Unmatched { recv_s } => (2, recv_s),
            RecordKind::IcmpError { code } => (3, u32::from(code)),
        };
        (r.time_s, r.addr, rank, detail)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: ScenarioKind, seed: u64) -> Scenario {
        Scenario { name: "tiny", blocks: 2, rounds: 3, round_secs: 30.0, seed, kind }
    }

    #[test]
    fn runs_are_deterministic() {
        let sc = tiny(ScenarioKind::Steady, 7);
        let a = sc.run(&mut Registry::disabled());
        let b = sc.run(&mut Registry::disabled());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn wide_window_yields_matched_ground_truth() {
        let sc = tiny(ScenarioKind::Steady, 7);
        let records = sc.run(&mut Registry::disabled());
        let matched = records.iter().filter(|r| r.is_matched()).count();
        // Density 0.9 × response 0.98: the overwhelming majority match.
        assert!(matched * 10 > records.len() * 7, "{matched}/{}", records.len());
    }

    #[test]
    fn covid_step_raises_post_shift_rtts() {
        let sc =
            tiny(ScenarioKind::CovidStep { at_secs: 45.0, rtt_scale: 2.5, extra_loss: 0.0 }, 9);
        let records = sc.run(&mut Registry::disabled());
        let mean_rtt = |lo: u32, hi: u32| {
            let v: Vec<f64> = records
                .iter()
                .filter(|r| r.time_s >= lo && r.time_s < hi)
                .filter_map(|r| r.rtt_secs())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let before = mean_rtt(0, 45);
        let after = mean_rtt(45, 90);
        assert!(after > before * 1.8, "before {before} after {after}");
    }

    #[test]
    fn standard_matrix_has_three_regimes() {
        let m = Scenario::standard(1, 4, 8, 60.0);
        let names: Vec<&str> = m.iter().map(|s| s.name).collect();
        assert_eq!(names, ["steady", "covid_step", "diurnal_drift"]);
        assert_eq!(m[1].shift_at_secs(), Some(240.0));
        assert_eq!(m[0].shift_at_secs(), None);
    }

    #[test]
    fn canonical_sort_is_total_and_stable_by_content() {
        let mut a = vec![
            Record::timeout(5, 10),
            Record::matched(5, 10, 100),
            Record::matched(4, 10, 50),
            Record::unmatched(5, 9),
        ];
        let mut b = a.clone();
        b.reverse();
        canonical_sort(&mut a);
        canonical_sort(&mut b);
        assert_eq!(a, b);
        assert!(a[0].time_s <= a[1].time_s);
    }
}
