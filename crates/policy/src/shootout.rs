//! The RTO shootout: replay ground-truth survey records through every
//! policy and score them against each other.
//!
//! # Replay semantics (DESIGN.md §13)
//!
//! Records come from a [`Scenario`] survey with a ground-truth-wide
//! match window, in canonical `(time, addr, kind)` order. For each
//! record the covering estimator quotes a timeout `T`:
//!
//! * `Matched{rtt}` with `rtt ≤ T` — the prober waits `rtt` and gets
//!   the answer; the estimator observes the sample.
//! * `Matched{rtt}` with `rtt > T` — a **false timeout**: the host
//!   answered, but the policy gave up first. The prober waits `T`,
//!   counts a failure, and the estimator backs off. Per Karn's rule the
//!   (ambiguous) RTT is *not* fed back.
//! * `Timeout` — a true loss; the prober waits `T` and backs off.
//! * `Unmatched` / `IcmpError` — counted, otherwise ignored: the first
//!   is unattributable by construction, the second aborts the wait
//!   early and carries no RTT signal.
//!
//! The **cost** of a policy is `mean wait per probe + penalty ×
//! false-timeout rate` — seconds burned waiting, plus a fixed charge
//! (default 10 s) for every answer thrown away, the paper's framing of
//! what a too-short timeout destroys.
//!
//! # Staleness sweep
//!
//! On the step-change scenario, the last `eval_frac` of the span is the
//! evaluation window. For each age `a` the oracle is rebuilt from only
//! the records older than `eval_start − a` and scored on the window;
//! online policies replay the whole stream (warm state) but are scored
//! on the window only. The **crossover** is the smallest age at which
//! the best online policy's cost beats the stale oracle's — how stale a
//! snapshot can get before you should stop trusting it.
//!
//! Everything here is pure computation over pure simulation: the report
//! and the `policy/` telemetry family are byte-identical across
//! `--threads` (enforced by the integration suite).

use crate::scenario::Scenario;
use crate::{OracleTable, PolicyKind, PrefixPolicyMap, RttSample};
use beware_core::LatencySamples;
use beware_dataset::snapshot::TimeoutSnapshot;
use beware_dataset::{Record, RecordKind};
use beware_netsim::exec::run_tasks;
use beware_telemetry::Registry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builds a BWTS snapshot from per-address samples at a given
/// percentile grid. Injected by the caller (the CLI passes the serve
/// crate's `build_snapshot`) so this crate does not depend on the serve
/// path.
pub type SnapshotBuild<'a> = &'a (dyn Fn(&BTreeMap<u32, LatencySamples>, u16, u16) -> Result<TimeoutSnapshot, String>
         + Sync);

/// Staleness-sweep parameters.
#[derive(Debug, Clone)]
pub struct StalenessCfg {
    /// Fraction of the span (from the end) forming the eval window.
    pub eval_frac: f64,
    /// Snapshot ages to test, as fractions of the span.
    pub age_fracs: Vec<f64>,
}

impl Default for StalenessCfg {
    fn default() -> Self {
        StalenessCfg {
            eval_frac: 1.0 / 3.0,
            age_fracs: vec![0.0, 1.0 / 12.0, 1.0 / 8.0, 1.0 / 6.0, 1.0 / 4.0, 1.0 / 3.0, 0.5],
        }
    }
}

/// Shootout configuration.
#[derive(Debug, Clone)]
pub struct ShootoutCfg {
    /// The scenario matrix.
    pub scenarios: Vec<Scenario>,
    /// Worker threads for the scenario/replay fan-out. Scores are
    /// byte-identical for any value.
    pub threads: usize,
    /// Address percentile (tenths) of the oracle's grid cell.
    pub addr_pct_tenths: u16,
    /// Ping percentile (tenths) of the oracle's grid cell.
    pub ping_pct_tenths: u16,
    /// Seconds charged per unit of false-timeout rate in the cost.
    pub penalty_secs: f64,
    /// Staleness sweep, run on the first scenario with a step change.
    pub staleness: Option<StalenessCfg>,
}

impl ShootoutCfg {
    /// The standard matrix at a given scale: three regimes, the paper's
    /// r95 address percentile with a c99 ping percentile, 10 s penalty,
    /// staleness sweep on.
    pub fn standard(seed: u64, blocks: u32, rounds: u32, round_secs: f64, threads: usize) -> Self {
        ShootoutCfg {
            scenarios: Scenario::standard(seed, blocks, rounds, round_secs),
            threads,
            addr_pct_tenths: 950,
            ping_pct_tenths: 990,
            penalty_secs: 10.0,
            staleness: Some(StalenessCfg::default()),
        }
    }
}

/// One policy's score on one scenario (or eval window).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyScore {
    /// Policy name.
    pub name: &'static str,
    /// Scored probes (matched + true timeouts).
    pub probes: u64,
    /// Probes the host answered (ground truth).
    pub matched: u64,
    /// Answers the policy actually waited long enough to collect.
    pub answered: u64,
    /// Answers thrown away because the quoted timeout was too short.
    pub false_timeouts: u64,
    /// True losses.
    pub losses: u64,
    /// Unattributable responses (ignored by replay).
    pub unmatched: u64,
    /// ICMP errors (ignored by replay).
    pub icmp_errors: u64,
    /// `false_timeouts / matched`.
    pub false_timeout_rate: f64,
    /// Median wait, microseconds.
    pub wait_p50_us: u64,
    /// 99th-percentile wait, microseconds.
    pub wait_p99_us: u64,
    /// 99.9th-percentile wait, microseconds.
    pub wait_p999_us: u64,
    /// Total waiting time over all scored probes, seconds.
    pub total_wait_secs: f64,
    /// Estimator memory at end of replay, bytes.
    pub state_bytes: u64,
    /// Prefixes with live estimator state.
    pub tracked_prefixes: u64,
}

impl PolicyScore {
    /// Mean wait plus the false-timeout charge. Lower is better.
    pub fn cost(&self, penalty_secs: f64) -> f64 {
        if self.probes == 0 {
            return f64::INFINITY;
        }
        self.total_wait_secs / self.probes as f64 + penalty_secs * self.false_timeout_rate
    }
}

/// One scenario's results.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: &'static str,
    /// Records replayed.
    pub records: u64,
    /// Simulated span, seconds.
    pub sim_span_secs: f64,
    /// Scores in [`PolicyKind::ALL`] order.
    pub scores: Vec<PolicyScore>,
}

/// One age step of the staleness sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessPoint {
    /// Snapshot age in seconds (eval-window start minus data cutoff).
    pub age_secs: f64,
    /// Prefix entries the stale snapshot still had.
    pub snapshot_entries: u64,
    /// The stale oracle's cost on the eval window.
    pub oracle_cost: f64,
    /// Whether the best online policy beats this oracle.
    pub online_wins: bool,
}

/// The staleness sweep's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessSweep {
    /// Scenario swept (the step-change one).
    pub scenario: &'static str,
    /// Eval window start, simulation seconds.
    pub eval_start_secs: f64,
    /// Step instant, simulation seconds.
    pub shift_at_secs: f64,
    /// Each online policy's eval-window cost, [`PolicyKind::ONLINE`] order.
    pub online_costs: Vec<(&'static str, f64)>,
    /// Best online policy.
    pub best_online: &'static str,
    /// Its cost.
    pub best_online_cost: f64,
    /// Per-age oracle costs, ascending age.
    pub points: Vec<StalenessPoint>,
    /// Smallest tested age at which the best online policy beats the
    /// stale oracle; `None` if the oracle won at every tested age.
    pub crossover_age_secs: Option<f64>,
}

/// The full shootout outcome; [`to_json`](Self::to_json) is BENCH_6.
#[derive(Debug, Clone, PartialEq)]
pub struct ShootoutReport {
    /// Oracle grid cell, address axis (tenths of a percent).
    pub addr_pct_tenths: u16,
    /// Oracle grid cell, ping axis (tenths of a percent).
    pub ping_pct_tenths: u16,
    /// Cost penalty, seconds per unit false-timeout rate.
    pub penalty_secs: f64,
    /// Total simulated seconds across scenarios.
    pub sim_total_secs: f64,
    /// Per-scenario results, configuration order.
    pub scenarios: Vec<ScenarioResult>,
    /// The staleness sweep, when configured and applicable.
    pub staleness: Option<StalenessSweep>,
}

/// Collapse matched records (optionally only those sent before
/// `cutoff_secs`) into per-address latency samples — the offline
/// pipeline's input.
pub fn samples_from(records: &[Record], cutoff_secs: Option<f64>) -> BTreeMap<u32, LatencySamples> {
    let mut samples: BTreeMap<u32, LatencySamples> = BTreeMap::new();
    for r in records {
        if let Some(cut) = cutoff_secs {
            if f64::from(r.time_s) >= cut {
                continue;
            }
        }
        if let Some(rtt) = r.rtt_secs() {
            samples.entry(r.addr).or_default().push(rtt);
        }
    }
    samples
}

/// Nearest-rank percentile of an ascending slice (the loadgen/offline
/// convention); 0 when empty.
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Replay `records` through `map`, scoring only records sent at or
/// after `score_from_secs` (state still evolves over the full stream).
pub fn replay(
    map: &mut PrefixPolicyMap,
    records: &[Record],
    score_from_secs: f64,
    name: &'static str,
) -> PolicyScore {
    let mut waits_us: Vec<u64> = Vec::new();
    let mut score = PolicyScore {
        name,
        probes: 0,
        matched: 0,
        answered: 0,
        false_timeouts: 0,
        losses: 0,
        unmatched: 0,
        icmp_errors: 0,
        false_timeout_rate: 0.0,
        wait_p50_us: 0,
        wait_p99_us: 0,
        wait_p999_us: 0,
        total_wait_secs: 0.0,
        state_bytes: 0,
        tracked_prefixes: 0,
    };
    for r in records {
        let at = f64::from(r.time_s);
        let scored = at >= score_from_secs;
        match r.kind {
            RecordKind::Matched { rtt_us } => {
                let armed_us = (map.timeout_for(r.addr) * 1e6).round() as u64;
                if u64::from(rtt_us) <= armed_us {
                    map.observe(r.addr, RttSample::new(f64::from(rtt_us) / 1e6, at));
                    if scored {
                        score.probes += 1;
                        score.matched += 1;
                        score.answered += 1;
                        waits_us.push(u64::from(rtt_us));
                    }
                } else {
                    // False timeout: the answer existed, the policy quit.
                    // Karn: the ambiguous RTT is not observed.
                    map.on_timeout(r.addr);
                    if scored {
                        score.probes += 1;
                        score.matched += 1;
                        score.false_timeouts += 1;
                        waits_us.push(armed_us);
                    }
                }
            }
            RecordKind::Timeout => {
                let armed_us = (map.timeout_for(r.addr) * 1e6).round() as u64;
                map.on_timeout(r.addr);
                if scored {
                    score.probes += 1;
                    score.losses += 1;
                    waits_us.push(armed_us);
                }
            }
            RecordKind::Unmatched { .. } => {
                if scored {
                    score.unmatched += 1;
                }
            }
            RecordKind::IcmpError { .. } => {
                if scored {
                    score.icmp_errors += 1;
                }
            }
        }
    }
    waits_us.sort_unstable();
    score.wait_p50_us = percentile_us(&waits_us, 50.0);
    score.wait_p99_us = percentile_us(&waits_us, 99.0);
    score.wait_p999_us = percentile_us(&waits_us, 99.9);
    score.total_wait_secs = waits_us.iter().map(|&w| w as f64 / 1e6).sum();
    if score.matched > 0 {
        score.false_timeout_rate = score.false_timeouts as f64 / score.matched as f64;
    }
    score.state_bytes = map.state_bytes() as u64;
    score.tracked_prefixes = map.tracked() as u64;
    score
}

fn build_oracle_table(
    samples: &BTreeMap<u32, LatencySamples>,
    cfg: &ShootoutCfg,
    build: SnapshotBuild<'_>,
) -> Result<OracleTable, String> {
    let snap = build(samples, cfg.addr_pct_tenths, cfg.ping_pct_tenths)?;
    OracleTable::from_snapshot(&snap, cfg.addr_pct_tenths, cfg.ping_pct_tenths)
        .map_err(|e| e.to_string())
}

fn map_for(kind: PolicyKind, oracle: &Arc<OracleTable>) -> PrefixPolicyMap {
    match kind {
        PolicyKind::Oracle => PrefixPolicyMap::with_oracle(Arc::clone(oracle)),
        online => PrefixPolicyMap::for_kind(online),
    }
}

/// Run the whole shootout. `build` turns per-address samples into a
/// BWTS snapshot (the CLI passes the serve crate's builder); `metrics`
/// collects the deterministic `policy/` family plus the scenarios'
/// `netsim/` and `probe/` counters.
pub fn run(
    cfg: &ShootoutCfg,
    build: SnapshotBuild<'_>,
    metrics: &mut Registry,
) -> Result<ShootoutReport, String> {
    if cfg.scenarios.is_empty() {
        return Err("shootout needs at least one scenario".into());
    }

    // Phase 1: survey every scenario (embarrassingly parallel).
    let surveys = run_tasks(cfg.threads, cfg.scenarios.clone(), |_, sc| {
        let mut reg = Registry::new();
        let records = sc.run(&mut reg);
        (records, reg)
    });
    let mut record_sets: Vec<Vec<Record>> = Vec::with_capacity(surveys.len());
    for (records, reg) in surveys {
        metrics.merge(&reg);
        record_sets.push(records);
    }

    // Fresh (full-history) oracle per scenario.
    let mut oracles: Vec<Arc<OracleTable>> = Vec::with_capacity(record_sets.len());
    for records in &record_sets {
        let table = build_oracle_table(&samples_from(records, None), cfg, build)?;
        oracles.push(Arc::new(table));
    }

    // Phase 2: replay every (scenario × policy) pair.
    let pairs: Vec<(usize, PolicyKind)> = (0..record_sets.len())
        .flat_map(|si| PolicyKind::ALL.into_iter().map(move |k| (si, k)))
        .collect();
    let scores = run_tasks(cfg.threads, pairs, |_, (si, kind)| {
        let mut map = map_for(kind, &oracles[si]);
        replay(&mut map, &record_sets[si], 0.0, kind.name())
    });

    let mut scenarios = Vec::with_capacity(record_sets.len());
    for (si, sc) in cfg.scenarios.iter().enumerate() {
        let chunk = &scores[si * PolicyKind::ALL.len()..(si + 1) * PolicyKind::ALL.len()];
        scenarios.push(ScenarioResult {
            name: sc.name,
            records: record_sets[si].len() as u64,
            sim_span_secs: sc.span_secs(),
            scores: chunk.to_vec(),
        });
    }

    // Phase 3: staleness sweep on the first step-change scenario.
    let staleness = match &cfg.staleness {
        None => None,
        Some(st) => match cfg.scenarios.iter().position(|s| s.shift_at_secs().is_some()) {
            None => None,
            Some(si) => Some(sweep(cfg, st, si, &record_sets[si], build)?),
        },
    };

    record_policy_metrics(metrics, cfg, &scenarios, staleness.as_ref());

    Ok(ShootoutReport {
        addr_pct_tenths: cfg.addr_pct_tenths,
        ping_pct_tenths: cfg.ping_pct_tenths,
        penalty_secs: cfg.penalty_secs,
        sim_total_secs: cfg.scenarios.iter().map(Scenario::span_secs).sum(),
        scenarios,
        staleness,
    })
}

fn sweep(
    cfg: &ShootoutCfg,
    st: &StalenessCfg,
    si: usize,
    records: &[Record],
    build: SnapshotBuild<'_>,
) -> Result<StalenessSweep, String> {
    let sc = &cfg.scenarios[si];
    let span = sc.span_secs();
    let shift_at = sc.shift_at_secs().expect("sweep scenario has a shift");
    let eval_start = span * (1.0 - st.eval_frac.clamp(0.05, 0.95));

    // Stale oracle per age (ages that leave no pre-cutoff data are skipped).
    let mut ages: Vec<f64> = st.age_fracs.iter().map(|f| f * span).collect();
    ages.sort_by(|a, b| a.partial_cmp(b).expect("age fractions are finite"));
    ages.dedup();
    let mut aged_tables: Vec<(f64, Arc<OracleTable>)> = Vec::new();
    for &age in &ages {
        let cutoff = eval_start - age;
        if cutoff <= 0.0 {
            continue;
        }
        let samples = samples_from(records, Some(cutoff));
        if samples.is_empty() {
            continue;
        }
        aged_tables.push((age, Arc::new(build_oracle_table(&samples, cfg, build)?)));
    }

    // Everything scored on the eval window: online policies warm up over
    // the full stream; each stale oracle answers statically.
    enum Task {
        Online(PolicyKind),
        Aged(usize),
    }
    let tasks: Vec<Task> = PolicyKind::ONLINE
        .into_iter()
        .map(Task::Online)
        .chain((0..aged_tables.len()).map(Task::Aged))
        .collect();
    let outcomes = run_tasks(cfg.threads, tasks, |_, task| match task {
        Task::Online(kind) => {
            let mut map = PrefixPolicyMap::for_kind(kind);
            replay(&mut map, records, eval_start, kind.name())
        }
        Task::Aged(i) => {
            let mut map = PrefixPolicyMap::with_oracle(Arc::clone(&aged_tables[i].1));
            replay(&mut map, records, eval_start, PolicyKind::Oracle.name())
        }
    });

    let online_costs: Vec<(&'static str, f64)> = PolicyKind::ONLINE
        .iter()
        .zip(&outcomes)
        .map(|(k, s)| (k.name(), s.cost(cfg.penalty_secs)))
        .collect();
    let (best_online, best_online_cost) = online_costs
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        .expect("at least one online policy");

    let mut points = Vec::with_capacity(aged_tables.len());
    for (i, (age, table)) in aged_tables.iter().enumerate() {
        let oracle_cost = outcomes[PolicyKind::ONLINE.len() + i].cost(cfg.penalty_secs);
        points.push(StalenessPoint {
            age_secs: *age,
            snapshot_entries: table.entries() as u64,
            oracle_cost,
            online_wins: best_online_cost < oracle_cost,
        });
    }
    let crossover_age_secs = points.iter().find(|p| p.online_wins).map(|p| p.age_secs);

    Ok(StalenessSweep {
        scenario: sc.name,
        eval_start_secs: eval_start,
        shift_at_secs: shift_at,
        online_costs,
        best_online,
        best_online_cost,
        points,
        crossover_age_secs,
    })
}

/// The deterministic `policy/` telemetry family: counters only, summed
/// over replays whose record streams are thread-count independent.
fn record_policy_metrics(
    metrics: &mut Registry,
    cfg: &ShootoutCfg,
    scenarios: &[ScenarioResult],
    staleness: Option<&StalenessSweep>,
) {
    if !metrics.enabled() {
        return;
    }
    let mut policy = metrics.scope("policy");
    let mut shootout = policy.scope("shootout");
    shootout.add("scenarios", scenarios.len() as u64);
    shootout.add("penalty_tenths", (cfg.penalty_secs * 10.0).round() as u64);
    for sc in scenarios {
        let mut s = shootout.scope(sc.name);
        s.add("records", sc.records);
        for score in &sc.scores {
            let mut p = s.scope(score.name);
            p.add("probes", score.probes);
            p.add("answered", score.answered);
            p.add("false_timeouts", score.false_timeouts);
            p.add("losses", score.losses);
            p.add("wait_us_total", (score.total_wait_secs * 1e6).round() as u64);
            p.add("state_bytes", score.state_bytes);
        }
    }
    if let Some(sw) = staleness {
        let mut s = shootout.scope("staleness");
        s.add("points", sw.points.len() as u64);
        s.add("online_wins", sw.points.iter().filter(|p| p.online_wins).count() as u64);
        if let Some(age) = sw.crossover_age_secs {
            s.add("crossover_age_secs", age.round() as u64);
        }
    }
}

fn push_score(out: &mut String, s: &PolicyScore, penalty: f64) {
    use std::fmt::Write;
    write!(
        out,
        concat!(
            "{{\"policy\": \"{}\", \"probes\": {}, \"matched\": {}, \"answered\": {}, ",
            "\"false_timeouts\": {}, \"losses\": {}, \"unmatched\": {}, \"icmp_errors\": {}, ",
            "\"false_timeout_rate\": {:.6}, ",
            "\"wait_us\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}}, ",
            "\"total_wait_secs\": {:.6}, \"cost\": {:.6}, ",
            "\"state_bytes\": {}, \"tracked_prefixes\": {}}}"
        ),
        s.name,
        s.probes,
        s.matched,
        s.answered,
        s.false_timeouts,
        s.losses,
        s.unmatched,
        s.icmp_errors,
        s.false_timeout_rate,
        s.wait_p50_us,
        s.wait_p99_us,
        s.wait_p999_us,
        s.total_wait_secs,
        s.cost(penalty),
        s.state_bytes,
        s.tracked_prefixes,
    )
    .expect("writing to a String cannot fail");
}

impl ShootoutReport {
    /// Render BENCH_6.json. Contains **no wall-clock values**: the bytes
    /// are a pure function of the configuration and seeds, identical for
    /// any `--threads`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("{\n  \"schema\": 1,\n  \"bench\": \"policy_shootout\",\n");
        write!(
            out,
            "  \"address_pct\": {:.1},\n  \"ping_pct\": {:.1},\n  \"penalty_secs\": {:.3},\n  \"sim_total_secs\": {:.1},\n",
            f64::from(self.addr_pct_tenths) / 10.0,
            f64::from(self.ping_pct_tenths) / 10.0,
            self.penalty_secs,
            self.sim_total_secs,
        )
        .expect("writing to a String cannot fail");
        out.push_str("  \"scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            writeln!(
                out,
                "    {{\"scenario\": \"{}\", \"records\": {}, \"sim_span_secs\": {:.1}, \"policies\": [",
                sc.name, sc.records, sc.sim_span_secs
            )
            .expect("writing to a String cannot fail");
            for (j, score) in sc.scores.iter().enumerate() {
                out.push_str("      ");
                push_score(&mut out, score, self.penalty_secs);
                out.push_str(if j + 1 < sc.scores.len() { ",\n" } else { "\n" });
            }
            out.push_str(if i + 1 < self.scenarios.len() { "    ]},\n" } else { "    ]}\n" });
        }
        out.push_str("  ],\n");
        match &self.staleness {
            None => out.push_str("  \"staleness\": null\n"),
            Some(sw) => {
                write!(
                    out,
                    "  \"staleness\": {{\n    \"scenario\": \"{}\",\n    \"eval_start_secs\": {:.1},\n    \"shift_at_secs\": {:.1},\n",
                    sw.scenario, sw.eval_start_secs, sw.shift_at_secs
                )
                .expect("writing to a String cannot fail");
                out.push_str("    \"online_costs\": [");
                for (i, (name, cost)) in sw.online_costs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write!(out, "{{\"policy\": \"{name}\", \"cost\": {cost:.6}}}")
                        .expect("writing to a String cannot fail");
                }
                write!(
                    out,
                    "],\n    \"best_online\": \"{}\",\n    \"best_online_cost\": {:.6},\n    \"points\": [\n",
                    sw.best_online, sw.best_online_cost
                )
                .expect("writing to a String cannot fail");
                for (i, p) in sw.points.iter().enumerate() {
                    write!(
                        out,
                        "      {{\"age_secs\": {:.1}, \"snapshot_entries\": {}, \"oracle_cost\": {:.6}, \"online_wins\": {}}}{}",
                        p.age_secs,
                        p.snapshot_entries,
                        p.oracle_cost,
                        p.online_wins,
                        if i + 1 < sw.points.len() { ",\n" } else { "\n" }
                    )
                    .expect("writing to a String cannot fail");
                }
                out.push_str("    ],\n");
                match sw.crossover_age_secs {
                    Some(age) => {
                        writeln!(out, "    \"crossover_age_secs\": {age:.1}")
                            .expect("writing to a String cannot fail");
                    }
                    None => out.push_str("    \"crossover_age_secs\": null\n"),
                }
                out.push_str("  }\n");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Human-readable stdout summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for sc in &self.scenarios {
            writeln!(out, "{} ({} records, {:.0} sim-s):", sc.name, sc.records, sc.sim_span_secs)
                .expect("writing to a String cannot fail");
            for s in &sc.scores {
                writeln!(
                    out,
                    "  {:<16} cost {:>9.4}  false-rate {:>8.4}  p99 wait {:>9.3} s  mem {} B",
                    s.name,
                    s.cost(self.penalty_secs),
                    s.false_timeout_rate,
                    s.wait_p99_us as f64 / 1e6,
                    s.state_bytes,
                )
                .expect("writing to a String cannot fail");
            }
        }
        if let Some(sw) = &self.staleness {
            writeln!(
                out,
                "staleness ({}): best online {} at cost {:.4}; crossover {}",
                sw.scenario,
                sw.best_online,
                sw.best_online_cost,
                match sw.crossover_age_secs {
                    Some(a) => format!("at snapshot age {a:.0} s"),
                    None => "not reached (oracle wins at every tested age)".into(),
                }
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beware_core::TimeoutTable;

    /// A snapshot builder good enough for tests: one global table, no
    /// per-prefix entries (prefix grouping is the serve crate's job).
    fn test_build(
        samples: &BTreeMap<u32, LatencySamples>,
        addr_t: u16,
        ping_t: u16,
    ) -> Result<TimeoutSnapshot, String> {
        let table = TimeoutTable::compute_at(
            samples,
            &[f64::from(addr_t) / 10.0],
            &[f64::from(ping_t) / 10.0],
        )
        .ok_or("no samples")?;
        Ok(TimeoutSnapshot {
            address_pct_tenths: vec![addr_t],
            ping_pct_tenths: vec![ping_t],
            fallback: vec![table.cells[0][0].to_bits()],
            entries: vec![],
        })
    }

    fn small_cfg(threads: usize) -> ShootoutCfg {
        ShootoutCfg::standard(11, 2, 6, 30.0, threads)
    }

    #[test]
    fn replay_scores_false_timeouts_and_losses() {
        let records = vec![
            Record::matched(0x0a000001, 0, 100_000),   // 0.1 s, under 3 s
            Record::matched(0x0a000001, 1, 5_000_000), // 5 s, over: false timeout
            Record::timeout(0x0a000001, 2),
            Record::unmatched(0x0a000001, 3),
            Record::icmp_error(0x0a000002, 4, 1),
        ];
        let mut map = PrefixPolicyMap::for_kind(PolicyKind::ExpBackoff);
        let s = replay(&mut map, &records, 0.0, "exp-backoff");
        assert_eq!(s.probes, 3);
        assert_eq!(s.matched, 2);
        assert_eq!(s.answered, 1);
        assert_eq!(s.false_timeouts, 1);
        assert_eq!(s.losses, 1);
        assert_eq!(s.unmatched, 1);
        assert_eq!(s.icmp_errors, 1);
        assert!((s.false_timeout_rate - 0.5).abs() < 1e-12);
        // Waits: 0.1 (answer), 3.0 (false timeout), 6.0 (loss after backoff).
        assert!((s.total_wait_secs - 9.1).abs() < 1e-9);
    }

    #[test]
    fn score_window_masks_but_state_warms() {
        let records = vec![
            Record::matched(0x0a000001, 0, 100_000),
            Record::matched(0x0a000001, 100, 100_000),
        ];
        let mut map = PrefixPolicyMap::for_kind(PolicyKind::JacobsonKarn);
        let s = replay(&mut map, &records, 50.0, "jacobson-karn");
        assert_eq!(s.probes, 1);
        // Both samples were observed: the estimator warmed up on the
        // unscored prefix of the stream.
        assert!(map.timeout_for(0x0a000001) < 1.0);
    }

    #[test]
    fn shootout_is_thread_count_invariant() {
        let mut m1 = Registry::new();
        let mut m4 = Registry::new();
        let r1 = run(&small_cfg(1), &test_build, &mut m1).unwrap();
        let r4 = run(&small_cfg(4), &test_build, &mut m4).unwrap();
        assert_eq!(r1, r4);
        assert_eq!(r1.to_json(), r4.to_json());
        assert_eq!(m1.to_json(), m4.to_json());
    }

    #[test]
    fn report_covers_all_policies_and_scenarios() {
        let mut metrics = Registry::new();
        let report = run(&small_cfg(2), &test_build, &mut metrics).unwrap();
        assert_eq!(report.scenarios.len(), 3);
        for sc in &report.scenarios {
            assert_eq!(sc.scores.len(), 4);
            assert!(sc.records > 0);
            for s in &sc.scores {
                assert!(s.probes > 0, "{}/{} scored nothing", sc.name, s.name);
            }
        }
        let sweep = report.staleness.as_ref().expect("covid_step sweep present");
        assert_eq!(sweep.scenario, "covid_step");
        assert!(!sweep.points.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"policy_shootout\""));
        assert!(json.contains("jacobson-karn"));
        assert_eq!(metrics.counter("policy/shootout/scenarios"), Some(3));
    }
}
