//! Published, immutable policy state: what the serve path swaps.
//!
//! A live [`crate::PrefixPolicyMap`] is mutable and lives behind a lock;
//! requests must never wait on it. Instead the engine periodically
//! freezes the map into a [`PolicyTable`] — each tracked prefix's
//! current timeout, as raw `f64` bits — and publishes it through the
//! runtime's epoch-swap slot (`beware_runtime::swap::Slot`), exactly the
//! way snapshot reloads publish a new oracle. Readers then answer
//! queries from the frozen table with one LPM lookup and zero locks.

use beware_asdb::PrefixTrie;

/// One query's answer from a [`PolicyTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyAnswer {
    /// The recommended timeout in seconds.
    pub timeout_secs: f64,
    /// True when a tracked prefix covered the address (as opposed to the
    /// table's fallback).
    pub exact: bool,
}

/// An immutable freeze of per-prefix timeouts. See the module docs.
#[derive(Debug)]
pub struct PolicyTable {
    prefix_len: u8,
    trie: PrefixTrie<u64>,
    fallback_bits: u64,
}

impl PolicyTable {
    /// An empty table quoting `fallback_secs` everywhere: what a policy
    /// server answers before any RTT report has arrived.
    pub fn empty(prefix_len: u8, fallback_secs: f64) -> PolicyTable {
        PolicyTable { prefix_len, trie: PrefixTrie::new(), fallback_bits: fallback_secs.to_bits() }
    }

    /// Build a table from `(prefix, timeout_secs)` pairs, all at
    /// `prefix_len`.
    pub fn from_entries(
        prefix_len: u8,
        fallback_secs: f64,
        entries: impl IntoIterator<Item = (u32, f64)>,
    ) -> PolicyTable {
        let mut trie = PrefixTrie::new();
        for (prefix, secs) in entries {
            trie.insert(prefix, prefix_len, secs.to_bits());
        }
        PolicyTable { prefix_len, trie, fallback_bits: fallback_secs.to_bits() }
    }

    /// Tracked-prefix length (the serve path publishes /24 state).
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Number of tracked prefixes.
    pub fn entries(&self) -> usize {
        self.trie.len()
    }

    /// Answer a query for `addr`.
    pub fn lookup(&self, addr: u32) -> PolicyAnswer {
        match self.trie.lookup(addr) {
            Some(&bits) => PolicyAnswer { timeout_secs: f64::from_bits(bits), exact: true },
            None => PolicyAnswer { timeout_secs: f64::from_bits(self.fallback_bits), exact: false },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_answers_fallback() {
        let t = PolicyTable::empty(24, 3.0);
        assert_eq!(t.entries(), 0);
        let a = t.lookup(0x0a000001);
        assert_eq!(a.timeout_secs, 3.0);
        assert!(!a.exact);
    }

    #[test]
    fn entries_answer_exact_and_preserve_bits() {
        let odd = f64::from_bits(0x3ff_0000_0000_0001); // slightly above 1.0
        let t = PolicyTable::from_entries(24, 3.0, [(0x0a000000u32, odd), (0x0a000100, 7.5)]);
        assert_eq!(t.entries(), 2);
        let a = t.lookup(0x0a000042);
        assert!(a.exact);
        assert_eq!(a.timeout_secs.to_bits(), odd.to_bits());
        assert_eq!(t.lookup(0x0a000105).timeout_secs, 7.5);
        assert!(!t.lookup(0x0b000001).exact);
    }
}
