//! Property tests: every registered policy is a deterministic, bounded
//! function of its event stream.

use beware_policy::{PolicyKind, PrefixPolicyMap, RttSample, MAX_TIMEOUT_SECS, MIN_TIMEOUT_SECS};
use proptest::prelude::*;

/// One step of an estimator's life.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A measured RTT in microseconds (bounded to keep samples finite).
    Observe { rtt_us: u32 },
    /// An armed timeout expired.
    Timeout,
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    // ~4:1 observes to timeouts, like a mostly-responsive network.
    proptest::collection::vec(
        (any::<u8>(), 1u32..120_000_000).prop_map(|(pick, rtt_us)| {
            if pick < 204 {
                Event::Observe { rtt_us }
            } else {
                Event::Timeout
            }
        }),
        0..200,
    )
}

/// Drive a fresh policy of `kind` through `events`, recording the
/// timeout quoted before each step.
fn timeout_trace(kind: PolicyKind, events: &[Event]) -> Vec<u64> {
    let mut policy = kind.build();
    let mut trace = Vec::with_capacity(events.len() + 1);
    for (i, ev) in events.iter().enumerate() {
        trace.push(policy.current_timeout().to_bits());
        match *ev {
            Event::Observe { rtt_us } => {
                policy.observe(RttSample::new(f64::from(rtt_us) / 1e6, i as f64));
            }
            Event::Timeout => policy.on_timeout(),
        }
    }
    trace.push(policy.current_timeout().to_bits());
    trace
}

proptest! {
    /// Same event stream ⇒ bit-identical timeout sequence, for every
    /// online policy. (The oracle is frozen by construction and pinned
    /// against the offline pipeline in tests/policy.rs instead.)
    #[test]
    fn policies_are_deterministic(events in arb_events()) {
        for kind in PolicyKind::ONLINE {
            let a = timeout_trace(kind, &events);
            let b = timeout_trace(kind, &events);
            prop_assert_eq!(a, b, "{} diverged", kind.name());
        }
    }

    /// Quoted timeouts stay finite and inside the global clamp no matter
    /// what the network does.
    #[test]
    fn timeouts_stay_bounded(events in arb_events()) {
        for kind in PolicyKind::ONLINE {
            let mut policy = kind.build();
            for (i, ev) in events.iter().enumerate() {
                let t = policy.current_timeout();
                prop_assert!(t.is_finite(), "{}: non-finite timeout", kind.name());
                prop_assert!(
                    (MIN_TIMEOUT_SECS..=MAX_TIMEOUT_SECS).contains(&t),
                    "{}: {} outside [{MIN_TIMEOUT_SECS}, {MAX_TIMEOUT_SECS}]",
                    kind.name(),
                    t
                );
                match *ev {
                    Event::Observe { rtt_us } => {
                        policy.observe(RttSample::new(f64::from(rtt_us) / 1e6, i as f64));
                    }
                    Event::Timeout => policy.on_timeout(),
                }
            }
        }
    }

    /// The per-prefix map is as deterministic as its estimators: same
    /// (addr, event) stream ⇒ identical quotes and state accounting.
    #[test]
    fn prefix_map_replay_is_deterministic(
        steps in proptest::collection::vec((any::<u32>(), arb_events()), 0..8)
    ) {
        for kind in PolicyKind::ONLINE {
            let run = || {
                let mut map = PrefixPolicyMap::for_kind(kind);
                let mut quotes = Vec::new();
                for (addr, events) in &steps {
                    for (i, ev) in events.iter().enumerate() {
                        quotes.push(map.timeout_for(*addr).to_bits());
                        match *ev {
                            Event::Observe { rtt_us } => {
                                map.observe(*addr, RttSample::new(f64::from(rtt_us) / 1e6, i as f64));
                            }
                            Event::Timeout => map.on_timeout(*addr),
                        }
                    }
                }
                (quotes, map.state_bytes(), map.tracked())
            };
            prop_assert_eq!(run(), run(), "{} map diverged", kind.name());
        }
    }
}
