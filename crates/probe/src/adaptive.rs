//! The prober the paper tells us to build (Section 7):
//!
//! > "design network measurement software to approach outage detection
//! > using a method comparable to that of TCP: send another probe after 3
//! > seconds, but continue listening for a response to earlier probes ...
//! > We plan to use 60 seconds when we need a timeout."
//!
//! [`AdaptiveProber`] monitors a set of addresses in repeated check
//! cycles. Within a cycle it retransmits on a short trigger (responsive,
//! like Trinocular/Thunderping) but keeps listening far longer before
//! declaring the address unreachable. The report separates the verdicts a
//! *naive* prober (giving up at the retransmit trigger) would have reached
//! from those of the long listener — the "rescued" column is precisely the
//! false-outage rate the paper warns about.

use beware_netsim::packet::{Packet, L4};
use beware_netsim::sim::{Agent, Ctx};
use beware_netsim::time::{SimDuration, SimTime};
use beware_wire::icmp::IcmpKind;

/// Adaptive prober configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveCfg {
    /// Retransmit trigger, seconds (the conventional 3 s).
    pub retransmit_secs: f64,
    /// Retransmissions per cycle after the initial probe.
    pub retries: u32,
    /// How long after the *last* transmission to keep listening before the
    /// cycle's verdict (the paper's 60 s).
    pub listen_secs: f64,
    /// Gap between a cycle's verdict and the next cycle's first probe.
    pub cycle_gap_secs: f64,
    /// Check cycles per address.
    pub cycles: u32,
    /// The prober's own address.
    pub prober_addr: u32,
}

impl Default for AdaptiveCfg {
    fn default() -> Self {
        AdaptiveCfg {
            retransmit_secs: 3.0,
            retries: 2,
            listen_secs: 60.0,
            cycle_gap_secs: 60.0,
            cycles: 10,
            prober_addr: 0xC0_00_02_09,
        }
    }
}

impl AdaptiveCfg {
    /// Build a prober monitoring `addrs`. Drive it with
    /// [`crate::Prober::run`].
    pub fn build(self, addrs: Vec<u32>) -> AdaptiveProber {
        AdaptiveProber::new(addrs, self)
    }
}

/// Per-address monitoring outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageReport {
    /// Monitored address.
    pub addr: u32,
    /// Cycles run.
    pub cycles: u32,
    /// Cycles with no response even within the long listen window — what
    /// the adaptive prober actually declares as outages.
    pub outages: u32,
    /// Cycles a naive prober (verdict at the retransmit deadline of the
    /// last retry) would have declared as outages.
    pub naive_outages: u32,
    /// Cycles the long listen rescued: naive says down, a response did
    /// arrive later. Every one of these is a false outage avoided.
    pub rescued: u32,
}

struct TargetState {
    addr: u32,
    cycle: u32,
    /// Response seen in the current cycle at all.
    responded: bool,
    /// Response seen before the naive deadline.
    responded_naive: bool,
    report: OutageReport,
}

/// Token layout: target(24) | cycle(24) | kind(8) | attempt(8).
const KIND_SEND: u64 = 0;
const KIND_NAIVE_DEADLINE: u64 = 1;
const KIND_VERDICT: u64 = 2;

fn token(target: usize, cycle: u32, kind: u64, attempt: u32) -> u64 {
    ((target as u64) << 40) | (u64::from(cycle) << 16) | (kind << 8) | u64::from(attempt)
}

fn untoken(t: u64) -> (usize, u32, u64, u32) {
    ((t >> 40) as usize, ((t >> 16) & 0xff_ffff) as u32, (t >> 8) & 0xff, (t & 0xff) as u32)
}

/// The adaptive prober agent.
pub struct AdaptiveProber {
    cfg: AdaptiveCfg,
    targets: Vec<TargetState>,
    /// Address → index into `targets`, for O(1) response attribution.
    by_addr: std::collections::HashMap<u32, usize>,
    ident: u16,
}

impl AdaptiveProber {
    /// Monitor `addrs` under `cfg`.
    pub fn new(addrs: Vec<u32>, cfg: AdaptiveCfg) -> Self {
        assert!(!addrs.is_empty(), "no addresses to monitor");
        assert!(cfg.cycles > 0 && cfg.retransmit_secs > 0.0);
        assert!(addrs.len() < (1 << 24), "token space exceeded");
        assert!(cfg.cycles < (1 << 24), "token space exceeded");
        let by_addr = addrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        let targets = addrs
            .into_iter()
            .map(|addr| TargetState {
                addr,
                cycle: 0,
                responded: false,
                responded_naive: false,
                report: OutageReport { addr, cycles: 0, outages: 0, naive_outages: 0, rescued: 0 },
            })
            .collect();
        AdaptiveProber { cfg, targets, by_addr, ident: 0xada7 }
    }

    /// Consume the prober, returning per-address reports.
    pub fn into_reports(self) -> Vec<OutageReport> {
        self.targets.into_iter().map(|t| t.report).collect()
    }

    fn cycle_start(&self, target: usize, cycle: u32) -> SimTime {
        let window = self.cfg.retransmit_secs * f64::from(self.cfg.retries + 1)
            + self.cfg.listen_secs
            + self.cfg.cycle_gap_secs;
        // Stagger targets slightly so cycles do not burst.
        let stagger = target as f64 * 0.013;
        SimTime::EPOCH + SimDuration::from_secs_f64(stagger + f64::from(cycle) * window)
    }
}

impl Agent for AdaptiveProber {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        for idx in 0..self.targets.len() {
            ctx.set_timer(self.cycle_start(idx, 0), token(idx, 0, KIND_SEND, 0));
        }
    }

    fn on_timer(&mut self, tok: u64, ctx: &mut Ctx<'_>) {
        let (idx, cycle, kind, attempt) = untoken(tok);
        let cfg = self.cfg;
        let t = &mut self.targets[idx];
        // Stale timers from closed cycles are ignored.
        if cycle != t.cycle {
            return;
        }
        match kind {
            KIND_SEND => {
                // Retransmit trigger: a response cancels further retries
                // (like real probers) and completes the cycle immediately —
                // both verdicts are already known to be "reachable".
                if attempt > 0 && t.responded {
                    let now = ctx.now();
                    ctx.set_timer(now, token(idx, cycle, KIND_NAIVE_DEADLINE, 0));
                    ctx.set_timer(now, token(idx, cycle, KIND_VERDICT, 0));
                    return;
                }
                let seq = (((cycle & 0xfff) << 4) | attempt.min(0xf)) as u16;
                let addr = t.addr;
                ctx.send(Packet::echo_request(cfg.prober_addr, addr, self.ident, seq, vec![]));
                let now = ctx.now();
                if attempt < cfg.retries {
                    ctx.set_timer(
                        now + SimDuration::from_secs_f64(cfg.retransmit_secs),
                        token(idx, cycle, KIND_SEND, attempt + 1),
                    );
                } else {
                    // Last transmission: naive verdict one trigger later,
                    // true verdict after the listen window.
                    ctx.set_timer(
                        now + SimDuration::from_secs_f64(cfg.retransmit_secs),
                        token(idx, cycle, KIND_NAIVE_DEADLINE, 0),
                    );
                    ctx.set_timer(
                        now + SimDuration::from_secs_f64(cfg.listen_secs),
                        token(idx, cycle, KIND_VERDICT, 0),
                    );
                }
            }
            KIND_NAIVE_DEADLINE => {
                t.responded_naive = t.responded;
            }
            KIND_VERDICT => {
                let t = &mut self.targets[idx];
                t.report.cycles += 1;
                if !t.responded {
                    t.report.outages += 1;
                }
                if !t.responded_naive {
                    t.report.naive_outages += 1;
                    if t.responded {
                        t.report.rescued += 1;
                    }
                }
                // Next cycle.
                t.cycle += 1;
                t.responded = false;
                t.responded_naive = false;
                let next_cycle = t.cycle;
                if next_cycle < cfg.cycles {
                    let at = self.cycle_start(idx, next_cycle);
                    ctx.set_timer(at, token(idx, next_cycle, KIND_SEND, 0));
                } else if self.targets.iter().all(|t| t.cycle >= cfg.cycles) {
                    ctx.stop();
                }
            }
            _ => unreachable!("token kinds are exhaustive"),
        }
    }

    fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
        let L4::Icmp { kind: IcmpKind::EchoReply { ident, seq }, .. } = &pkt.l4 else {
            return;
        };
        if *ident != self.ident {
            return;
        }
        // Any response during the probe's own cycle counts — including
        // responses to earlier transmissions of that cycle, which is the
        // entire point. Responses from *previous* cycles (e.g. an episode
        // flush arriving minutes later) must NOT be credited to the
        // current cycle: the sequence number carries the cycle.
        let Some(&idx) = self.by_addr.get(&pkt.src) else { return };
        let t = &mut self.targets[idx];
        if u32::from(seq >> 4) == (t.cycle & 0xfff) {
            t.responded = true;
        }
    }
}

impl crate::Prober for AdaptiveProber {
    type Output = Vec<OutageReport>;

    fn engine(&self) -> &'static str {
        "adaptive"
    }

    fn record(&self, scope: &mut beware_telemetry::Scope<'_>) {
        scope.add("targets", self.targets.len() as u64);
        scope.add("cycles", self.targets.iter().map(|t| u64::from(t.report.cycles)).sum());
        scope.add("outages", self.targets.iter().map(|t| u64::from(t.report.outages)).sum());
        scope.add(
            "naive_outages",
            self.targets.iter().map(|t| u64::from(t.report.naive_outages)).sum(),
        );
        scope.add("rescued", self.targets.iter().map(|t| u64::from(t.report.rescued)).sum());
    }

    fn finish(self) -> Vec<OutageReport> {
        self.into_reports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prober;
    use beware_netsim::profile::{BlockProfile, EpisodeCfg, WakeupCfg};
    use beware_netsim::rng::Dist;
    use beware_netsim::sim::RunSummary;
    use beware_netsim::world::World;
    use std::sync::Arc;

    /// Test driver over the unified API.
    fn monitor(
        mut world: World,
        addrs: Vec<u32>,
        cfg: AdaptiveCfg,
    ) -> (Vec<OutageReport>, RunSummary) {
        cfg.build(addrs).run(&mut world)
    }

    fn quiet() -> BlockProfile {
        BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            ..Default::default()
        }
    }

    fn world(profile: BlockProfile) -> World {
        let mut w = World::new(31);
        w.add_block(0x0a0000, Arc::new(profile));
        w
    }

    #[test]
    fn healthy_host_never_flagged() {
        let (reports, _) = monitor(
            world(quiet()),
            vec![0x0a000005],
            AdaptiveCfg { cycles: 5, ..Default::default() },
        );
        let r = &reports[0];
        assert_eq!(r.cycles, 5);
        assert_eq!(r.outages, 0);
        assert_eq!(r.naive_outages, 0);
        assert_eq!(r.rescued, 0);
    }

    #[test]
    fn dead_address_flagged_by_both() {
        let (reports, _) = monitor(
            world(BlockProfile { density: 0.0, ..quiet() }),
            vec![0x0a000005],
            AdaptiveCfg { cycles: 4, ..Default::default() },
        );
        let r = &reports[0];
        assert_eq!(r.outages, 4);
        assert_eq!(r.naive_outages, 4);
        assert_eq!(r.rescued, 0, "nothing to rescue when truly dead");
    }

    #[test]
    fn slow_host_rescued_by_long_listen() {
        // Constant 20 s RTT: the naive prober (3 s trigger, 2 retries →
        // verdict at 9 s) declares every cycle down; the 60 s listener
        // sees every response.
        let (reports, _) = monitor(
            world(BlockProfile { base_rtt: Dist::Constant(20.0), ..quiet() }),
            vec![0x0a000005],
            AdaptiveCfg { cycles: 6, ..Default::default() },
        );
        let r = &reports[0];
        assert_eq!(r.outages, 0, "long listen must capture the 20 s responses");
        assert_eq!(r.naive_outages, 6);
        assert_eq!(r.rescued, 6);
    }

    #[test]
    fn retransmission_covers_wakeup_hosts() {
        // Wake-up of 5 s: the first probe's response arrives at 5.05 s
        // (after the 3 s trigger) but the retry at 3 s rides the now-woken
        // radio and answers within its own window — retries work exactly
        // as the paper describes for wake-up, without a long timeout.
        let p = BlockProfile {
            wakeup: Some(WakeupCfg { host_prob: 1.0, delay: Dist::Constant(5.0), tail_secs: 10.0 }),
            ..quiet()
        };
        let (reports, _) =
            monitor(world(p), vec![0x0a000005], AdaptiveCfg { cycles: 5, ..Default::default() });
        let r = &reports[0];
        assert_eq!(r.outages, 0);
        assert_eq!(r.naive_outages, 0, "retry at 3 s answers in time");
    }

    #[test]
    fn episode_host_shows_rescues() {
        // Frequent episodes with response buffering: the naive prober
        // sees outages whenever a cycle lands in an episode; the listener
        // recovers all flushes shorter than its window.
        let p = BlockProfile {
            episodes: Some(EpisodeCfg {
                host_prob: 1.0,
                interval: Dist::Constant(120.0),
                duration: Dist::Constant(40.0),
                max_duration_secs: 50.0,
                buffer_cap: 100,
                buffer_prob: 1.0,
                blackout_secs_max: 1e-9,
            }),
            ..quiet()
        };
        let (reports, _) =
            monitor(world(p), vec![0x0a000005], AdaptiveCfg { cycles: 20, ..Default::default() });
        let r = &reports[0];
        assert!(r.naive_outages > 0, "episodes must trip the naive prober");
        assert_eq!(r.outages, 0, "40 s flushes sit inside the 60 s listen window");
        assert_eq!(r.rescued, r.naive_outages);
    }

    #[test]
    fn telemetry_mirrors_reports() {
        let mut w = World::new(31);
        w.add_block(0x0a0000, Arc::new(quiet()));
        w.add_block(0x0a0001, Arc::new(BlockProfile { density: 0.0, ..quiet() }));
        let mut metrics = beware_telemetry::Registry::new();
        let (reports, _) = AdaptiveCfg { cycles: 3, ..Default::default() }
            .build(vec![0x0a000005, 0x0a000105])
            .run_with(&mut w, &mut metrics);
        assert_eq!(metrics.counter("probe/adaptive/targets"), Some(2));
        assert_eq!(metrics.counter("probe/adaptive/cycles"), Some(6));
        let outages: u64 = reports.iter().map(|r| u64::from(r.outages)).sum();
        assert_eq!(metrics.counter("probe/adaptive/outages"), Some(outages));
        assert_eq!(outages, 3);
    }

    #[test]
    fn multiple_targets_tracked_independently() {
        let mut w = World::new(31);
        w.add_block(0x0a0000, Arc::new(quiet()));
        w.add_block(0x0a0001, Arc::new(BlockProfile { density: 0.0, ..quiet() }));
        let (reports, _) = monitor(
            w,
            vec![0x0a000005, 0x0a000105],
            AdaptiveCfg { cycles: 3, ..Default::default() },
        );
        assert_eq!(reports[0].outages, 0);
        assert_eq!(reports[1].outages, 3);
    }
}
