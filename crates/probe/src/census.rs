//! The ISI *census*: the low-rate, full-space companion prober.
//!
//! The paper's surveys draw their /24 blocks partly from "samples of
//! blocks that were responsive in the last census — another ISI project
//! that probes the entire address space, but less frequently". This module
//! supplies that substrate: a sparse prober that samples a few addresses
//! per block, scores block responsiveness, and a selector that composes a
//! survey's block list the way ISI describes — a stable legacy set probed
//! since 2006 plus a fresh sample of census-responsive blocks.

use beware_netsim::packet::{Packet, L4};
use beware_netsim::sim::{Agent, Ctx};
use beware_netsim::time::{SimDuration, SimTime};
use beware_runtime::rng::{derive_seed, unit_hash};
use beware_wire::icmp::IcmpKind;
use std::collections::BTreeMap;

/// Census configuration.
#[derive(Debug, Clone)]
pub struct CensusCfg {
    /// Blocks to assess (typically the whole routed space).
    pub blocks: Vec<u32>,
    /// Addresses sampled per block (hash-chosen, interior octets).
    pub probes_per_block: u32,
    /// Sending-phase duration in seconds.
    pub duration_secs: f64,
    /// Listen time after the last probe.
    pub cooldown_secs: f64,
    /// The prober's address.
    pub prober_addr: u32,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for CensusCfg {
    fn default() -> Self {
        CensusCfg {
            blocks: Vec::new(),
            probes_per_block: 4,
            duration_secs: 1_800.0,
            cooldown_secs: 60.0,
            prober_addr: 0xC0_00_02_0A,
            seed: 0xce_05,
        }
    }
}

impl CensusCfg {
    /// Build the census prober. Drive it with [`crate::Prober::run`].
    pub fn build(self) -> CensusProber {
        CensusProber::new(self)
    }
}

/// Census outcome: per-block responder counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusResult {
    /// Block → number of sampled addresses that answered.
    pub responders: BTreeMap<u32, u32>,
    /// Addresses probed per block (for computing rates).
    pub probes_per_block: u32,
}

impl CensusResult {
    /// Blocks with at least `min_responders` answering addresses, in
    /// ascending block order.
    pub fn responsive_blocks(&self, min_responders: u32) -> Vec<u32> {
        self.responders.iter().filter(|&(_, &n)| n >= min_responders).map(|(&b, _)| b).collect()
    }

    /// Fraction of assessed blocks with any responder.
    pub fn responsive_fraction(&self) -> f64 {
        if self.responders.is_empty() {
            return 0.0;
        }
        self.responders.values().filter(|&&n| n > 0).count() as f64 / self.responders.len() as f64
    }
}

/// Compose a survey block list the ISI way: every `legacy` block (the
/// since-2006 panel) plus a deterministic sample of census-responsive
/// blocks, up to `count` total.
pub fn select_survey_blocks(
    census: &CensusResult,
    legacy: &[u32],
    count: usize,
    seed: u64,
) -> Vec<u32> {
    let mut out: Vec<u32> = legacy.to_vec();
    out.sort_unstable();
    out.dedup();
    let taken: std::collections::BTreeSet<u32> = out.iter().copied().collect();
    let mut candidates: Vec<u32> =
        census.responsive_blocks(1).into_iter().filter(|b| !taken.contains(b)).collect();
    // Deterministic shuffle by per-block hash.
    candidates.sort_by_key(|&b| derive_seed(seed, u64::from(b)));
    for b in candidates {
        if out.len() >= count {
            break;
        }
        out.push(b);
    }
    out.sort_unstable();
    out.truncate(count);
    out
}

/// The census agent.
pub struct CensusProber {
    cfg: CensusCfg,
    /// Flattened probe list: (block, address).
    targets: Vec<(u32, u32)>,
    next: usize,
    result: CensusResult,
    /// Reverse index: address → block (counts once per address).
    answered: BTreeMap<u32, bool>,
}

const SEND_TOKEN: u64 = 0;
const END_TOKEN: u64 = 1;

impl CensusProber {
    /// Build a census over `cfg.blocks`.
    pub fn new(cfg: CensusCfg) -> Self {
        assert!(!cfg.blocks.is_empty(), "census needs blocks");
        assert!(cfg.probes_per_block >= 1);
        let mut targets = Vec::with_capacity(cfg.blocks.len() * cfg.probes_per_block as usize);
        let mut responders = BTreeMap::new();
        for &b in &cfg.blocks {
            responders.insert(b, 0);
            for i in 0..cfg.probes_per_block {
                // Hash-chosen interior octet (avoid .0/.255).
                let h = unit_hash(derive_seed(cfg.seed, u64::from(b)), 0x100 + u64::from(i));
                let octet = 1 + (h * 253.0) as u32;
                targets.push((b, (b << 8) | octet));
            }
        }
        CensusProber {
            result: CensusResult { responders, probes_per_block: cfg.probes_per_block },
            cfg,
            targets,
            next: 0,
            answered: BTreeMap::new(),
        }
    }

    /// Consume the prober, returning the census result.
    pub fn into_result(self) -> CensusResult {
        self.result
    }
}

impl Agent for CensusProber {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimTime::EPOCH, SEND_TOKEN);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == END_TOKEN {
            ctx.stop();
            return;
        }
        let interval =
            SimDuration::from_secs_f64(self.cfg.duration_secs / self.targets.len() as f64);
        // One probe per tick keeps the census gentle, as the real one is.
        if self.next >= self.targets.len() {
            ctx.set_timer(
                ctx.now() + SimDuration::from_secs_f64(self.cfg.cooldown_secs),
                END_TOKEN,
            );
            return;
        }
        let (_, addr) = self.targets[self.next];
        let seq = (self.next & 0xffff) as u16;
        self.next += 1;
        ctx.send(Packet::echo_request(self.cfg.prober_addr, addr, 0xce05, seq, vec![]));
        ctx.set_timer(ctx.now() + interval, SEND_TOKEN);
    }

    fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx<'_>) {
        let L4::Icmp { kind: IcmpKind::EchoReply { ident, .. }, .. } = &pkt.l4 else {
            return;
        };
        if *ident != 0xce05 {
            return;
        }
        // Count each responding address once, toward its block.
        if self.answered.insert(pkt.src, true).is_none() {
            if let Some(n) = self.result.responders.get_mut(&(pkt.src >> 8)) {
                *n += 1;
            }
        }
    }
}

impl crate::Prober for CensusProber {
    type Output = CensusResult;

    fn engine(&self) -> &'static str {
        "census"
    }

    fn record(&self, scope: &mut beware_telemetry::Scope<'_>) {
        scope.add("probes_sent", self.next as u64);
        scope.add("responders", u64::from(self.result.responders.values().sum::<u32>()));
        scope.add(
            "responsive_blocks",
            self.result.responders.values().filter(|&&n| n > 0).count() as u64,
        );
        scope.add("assessed_blocks", self.result.responders.len() as u64);
    }

    fn finish(self) -> CensusResult {
        self.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prober;
    use beware_netsim::profile::BlockProfile;
    use beware_netsim::rng::Dist;
    use beware_netsim::sim::RunSummary;
    use beware_netsim::world::World;
    use std::sync::Arc;

    /// Test driver over the unified API.
    fn census(mut world: World, cfg: CensusCfg) -> (CensusResult, RunSummary) {
        cfg.build().run(&mut world)
    }

    fn world() -> World {
        let mut w = World::new(77);
        // A dense block, a sparse block, and a dead block.
        let mk = |density: f64| {
            Arc::new(BlockProfile {
                base_rtt: Dist::Constant(0.05),
                jitter: Dist::Constant(0.0),
                density,
                response_prob: 1.0,
                error_prob: 0.0,
                dup_prob: 0.0,
                ..Default::default()
            })
        };
        w.add_block(0x0a0000, mk(1.0));
        w.add_block(0x0a0001, mk(0.3));
        w.add_block(0x0a0002, mk(0.0));
        w
    }

    fn cfg(blocks: Vec<u32>) -> CensusCfg {
        CensusCfg { blocks, duration_secs: 60.0, cooldown_secs: 20.0, ..Default::default() }
    }

    #[test]
    fn census_scores_blocks_by_density() {
        let (result, summary) = census(world(), cfg(vec![0x0a0000, 0x0a0001, 0x0a0002]));
        assert_eq!(summary.packets_sent, 12);
        assert_eq!(result.responders[&0x0a0000], 4, "dense block fully responsive");
        assert_eq!(result.responders[&0x0a0002], 0, "dead block silent");
        assert!(result.responders[&0x0a0001] <= 4);
        let responsive = result.responsive_blocks(1);
        assert!(responsive.contains(&0x0a0000));
        assert!(!responsive.contains(&0x0a0002));
        assert!(result.responsive_fraction() <= 1.0);
    }

    #[test]
    fn selection_keeps_legacy_and_fills_from_census() {
        let (result, _) = census(world(), cfg(vec![0x0a0000, 0x0a0001, 0x0a0002]));
        // Legacy block 0x0a0002 is dead but stays (ISI probes its 2006
        // panel regardless of responsiveness).
        let blocks = select_survey_blocks(&result, &[0x0a0002], 2, 9);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.contains(&0x0a0002));
        // The filler must be census-responsive.
        let filler: Vec<u32> = blocks.iter().copied().filter(|&b| b != 0x0a0002).collect();
        assert!(result.responsive_blocks(1).contains(&filler[0]));
    }

    #[test]
    fn selection_is_deterministic_and_deduped() {
        let (result, _) = census(world(), cfg(vec![0x0a0000, 0x0a0001]));
        let a = select_survey_blocks(&result, &[0x0a0000, 0x0a0000], 2, 3);
        let b = select_survey_blocks(&result, &[0x0a0000, 0x0a0000], 2, 3);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&x| x == 0x0a0000).count(), 1);
    }

    #[test]
    fn telemetry_mirrors_census_counts() {
        let mut w = world();
        let mut metrics = beware_telemetry::Registry::new();
        let (result, summary) =
            cfg(vec![0x0a0000, 0x0a0002]).build().run_with(&mut w, &mut metrics);
        assert_eq!(metrics.counter("probe/census/probes_sent"), Some(summary.packets_sent));
        assert_eq!(metrics.counter("probe/census/assessed_blocks"), Some(2));
        assert_eq!(
            metrics.counter("probe/census/responders"),
            Some(u64::from(result.responders.values().sum::<u32>()))
        );
        assert_eq!(metrics.counter("probe/census/responsive_blocks"), Some(1));
    }

    #[test]
    fn census_is_deterministic() {
        let run = || census(world(), cfg(vec![0x0a0000, 0x0a0001])).0;
        assert_eq!(run(), run());
    }
}
