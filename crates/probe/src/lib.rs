//! # beware-probe
//!
//! The three probing engines the paper's measurements rest on, implemented
//! as agents over `beware-netsim`:
//!
//! * [`survey`] — the ISI-survey-style prober: probes whole /24 blocks once
//!   per 11-minute round in the bit-reversed last-octet order that spaces
//!   adjacent octets 330 s apart, matches responses within a 3 s window
//!   (microsecond RTTs), and records timeouts and unmatched responses with
//!   second-precision timestamps — exactly the record semantics the
//!   paper's re-analysis depends on.
//! * [`zmap`] — the stateless scanner: address-space permutation via a
//!   multiplicative cyclic group ([`permutation`]), destination address and
//!   send timestamp embedded in the echo payload (the authors'
//!   `module_icmp_echo_time.c` contribution), RTT computed entirely from
//!   the response.
//! * [`scamper`] — the stateful pinger used for verification experiments:
//!   per-target probe schedules over ICMP/UDP/TCP with exact per-probe
//!   matching and an unbounded listen window (the paper's
//!   "run tcpdump simultaneously" trick).
//! * [`census`] — the low-rate full-space companion prober whose
//!   responsiveness scores feed the survey's block selection ("samples of
//!   blocks that were responsive in the last census").
//! * [`adaptive`] — the prober the paper *recommends building*
//!   (Section 7): retransmit on a short trigger, keep listening long, and
//!   report how many would-be outages the long listen rescued.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod census;
pub mod permutation;
pub mod scamper;
pub mod survey;
pub mod zmap;

pub use adaptive::{run_monitor, AdaptiveCfg, AdaptiveProber, OutageReport};
pub use census::{run_census, select_survey_blocks, CensusCfg, CensusResult};
pub use permutation::CyclicPermutation;
pub use scamper::{JobResult, PingJob, PingProto, ScamperRunner};
pub use survey::{run_survey, SurveyCfg, SurveyProber};
pub use zmap::{run_scan, ZmapCfg, ZmapScanner};

/// Bit-reverse an octet: the probing order ISI uses within a /24, which
/// places last octets that differ in bit `b` exactly `256/2^(b+1)` slots
/// apart — off-by-one octets land 330 s apart in a 660 s round, octets
/// differing in bit 1 land 165 s apart, which is precisely where the
/// paper's pre-filter latency bumps (165 s / 330 s / 495 s) come from.
pub fn bitrev8(x: u8) -> u8 {
    x.reverse_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrev_is_involutive_bijection() {
        let mut seen = [false; 256];
        for i in 0u16..=255 {
            let r = bitrev8(i as u8);
            assert_eq!(bitrev8(r), i as u8);
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
    }

    #[test]
    fn off_by_one_octets_are_half_round_apart() {
        // Position of octet o in the round is bitrev8(o); octets 254/255
        // differ in bit 0 → 128 slots apart (330 s of a 660 s round).
        let d = i32::from(bitrev8(255)) - i32::from(bitrev8(254));
        assert_eq!(d.abs(), 128);
        // Octets differing in bit 1 → 64 slots (165 s).
        let d = i32::from(bitrev8(252)) - i32::from(bitrev8(254));
        assert_eq!(d.abs(), 64);
    }
}
