//! # beware-probe
//!
//! The three probing engines the paper's measurements rest on, implemented
//! as agents over `beware-netsim`:
//!
//! * [`survey`] — the ISI-survey-style prober: probes whole /24 blocks once
//!   per 11-minute round in the bit-reversed last-octet order that spaces
//!   adjacent octets 330 s apart, matches responses within a 3 s window
//!   (microsecond RTTs), and records timeouts and unmatched responses with
//!   second-precision timestamps — exactly the record semantics the
//!   paper's re-analysis depends on.
//! * [`zmap`] — the stateless scanner: address-space permutation via a
//!   multiplicative cyclic group ([`permutation`]), destination address and
//!   send timestamp embedded in the echo payload (the authors'
//!   `module_icmp_echo_time.c` contribution), RTT computed entirely from
//!   the response.
//! * [`scamper`] — the stateful pinger used for verification experiments:
//!   per-target probe schedules over ICMP/UDP/TCP with exact per-probe
//!   matching and an unbounded listen window (the paper's
//!   "run tcpdump simultaneously" trick).
//! * [`census`] — the low-rate full-space companion prober whose
//!   responsiveness scores feed the survey's block selection ("samples of
//!   blocks that were responsive in the last census").
//! * [`adaptive`] — the prober the paper *recommends building*
//!   (Section 7): retransmit on a short trigger, keep listening long, and
//!   report how many would-be outages the long listen rescued.

//!
//! All five engines implement the [`Prober`] trait: build one from its
//! config (`Cfg::build(..)`), then [`Prober::run`] it against a
//! `&mut World` — or [`Prober::run_with`] to collect telemetry. Pull
//! the whole surface in at once through [`prelude`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod census;
pub mod permutation;
pub mod scamper;
pub mod survey;
pub mod zmap;

pub use adaptive::{AdaptiveCfg, AdaptiveProber, OutageReport};
pub use census::{select_survey_blocks, CensusCfg, CensusProber, CensusResult};
pub use permutation::CyclicPermutation;
pub use scamper::{JobResult, PingJob, PingProto, ScamperCfg, ScamperRunner};
pub use survey::{SurveyCfg, SurveyProber};
pub use zmap::{ZmapCfg, ZmapScanner};

use beware_netsim::sim::{Agent, RunSummary, Simulation};
use beware_netsim::world::World;

/// The unified probing-engine interface.
///
/// Every engine is an [`Agent`] plus a way to extract its output, so one
/// shape drives all of them:
///
/// ```
/// use beware_probe::prelude::*;
/// use beware_netsim::{BlockProfile, World};
/// use std::sync::Arc;
///
/// let mut world = World::new(1);
/// world.add_block(0x0a0000, Arc::new(BlockProfile::default()));
/// let cfg = SurveyCfg { blocks: vec![0x0a0000], rounds: 1, ..Default::default() };
/// let mut metrics = Registry::new();
/// let ((records, stats), summary) =
///     cfg.build(Vec::new()).run_with(&mut world, &mut metrics);
/// assert_eq!(stats.probes(), summary.packets_sent);
/// assert_eq!(metrics.counter("probe/survey/probes_sent"), Some(stats.probes()));
/// assert!(records.len() as u64 >= stats.probes());
/// ```
///
/// The provided `run`/`run_with` take `&mut World` (the simulation itself
/// consumes the world by value; the default impl swaps it out and back),
/// so callers keep ownership and can run several engines over the same
/// world in sequence.
pub trait Prober: Agent + Sized {
    /// What the engine produces.
    type Output;

    /// Engine name used as the telemetry sub-scope: metrics land under
    /// `probe/<engine>/...`.
    fn engine(&self) -> &'static str;

    /// Flush engine-specific counters into `scope` (already prefixed with
    /// `probe/<engine>`). Called once after the simulation completes.
    fn record(&self, scope: &mut beware_telemetry::Scope<'_>);

    /// Consume the engine, returning its output.
    fn finish(self) -> Self::Output;

    /// Run to completion against `world` without telemetry.
    fn run(self, world: &mut World) -> (Self::Output, RunSummary) {
        self.run_with(world, &mut beware_telemetry::Registry::disabled())
    }

    /// Run to completion against `world`, flushing netsim counters (stats
    /// delta, run summary) under `netsim/` and engine counters under
    /// `probe/<engine>/` into `metrics`.
    fn run_with(
        self,
        world: &mut World,
        metrics: &mut beware_telemetry::Registry,
    ) -> (Self::Output, RunSummary) {
        let owned = std::mem::take(world);
        let stats_before = owned.stats();
        let (agent, mut finished_world, summary) = Simulation::new(owned, self).run();
        if metrics.enabled() {
            let mut netsim = metrics.scope("netsim");
            stats_before.record_delta(&finished_world.stats(), &mut netsim);
            summary.record(&mut netsim);
            let mut probe = metrics.scope("probe");
            let mut engine = probe.scope(agent.engine());
            agent.record(&mut engine);
        }
        std::mem::swap(world, &mut finished_world);
        (agent.finish(), summary)
    }
}

/// One-stop import for driving any engine: the [`Prober`] trait, every
/// engine config and output type, and the telemetry registry.
pub mod prelude {
    pub use crate::adaptive::{AdaptiveCfg, AdaptiveProber, OutageReport};
    pub use crate::census::{CensusCfg, CensusProber, CensusResult};
    pub use crate::scamper::{JobResult, PingJob, PingProto, ScamperCfg, ScamperRunner};
    pub use crate::survey::{SurveyCfg, SurveyProber};
    pub use crate::zmap::{ZmapCfg, ZmapScanner};
    pub use crate::Prober;
    pub use beware_telemetry::Registry;
}

/// Bit-reverse an octet: the probing order ISI uses within a /24, which
/// places last octets that differ in bit `b` exactly `256/2^(b+1)` slots
/// apart — off-by-one octets land 330 s apart in a 660 s round, octets
/// differing in bit 1 land 165 s apart, which is precisely where the
/// paper's pre-filter latency bumps (165 s / 330 s / 495 s) come from.
pub fn bitrev8(x: u8) -> u8 {
    x.reverse_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrev_is_involutive_bijection() {
        let mut seen = [false; 256];
        for i in 0u16..=255 {
            let r = bitrev8(i as u8);
            assert_eq!(bitrev8(r), i as u8);
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
    }

    #[test]
    fn off_by_one_octets_are_half_round_apart() {
        // Position of octet o in the round is bitrev8(o); octets 254/255
        // differ in bit 0 → 128 slots apart (330 s of a 660 s round).
        let d = i32::from(bitrev8(255)) - i32::from(bitrev8(254));
        assert_eq!(d.abs(), 128);
        // Octets differing in bit 1 → 64 slots (165 s).
        let d = i32::from(bitrev8(252)) - i32::from(bitrev8(254));
        assert_eq!(d.abs(), 64);
    }
}
