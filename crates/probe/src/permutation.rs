//! Full-cycle address-space permutation via a multiplicative cyclic group,
//! the technique zmap uses to visit every target exactly once in an order
//! that spreads load across networks without keeping a visited-set.
//!
//! For a domain of size `n` we pick the smallest prime `p > n`, find a
//! generator `g` of the multiplicative group mod `p` (order `p−1`), and
//! iterate `x ← g·x mod p`, skipping values that fall outside `1..=n`.
//! Since the group is cyclic of order `p−1` and we start from a random
//! element, the walk visits every residue in `1..p` exactly once per
//! cycle; at most `p − 1 − n` iterations are skipped, and by Bertrand's
//! postulate `p < 2n`, so iteration stays O(1) amortized.

use beware_runtime::rng::derive_seed;

/// An iterator producing each value of `0..n` exactly once, in a
/// pseudo-random order determined by `seed`.
///
/// ```
/// use beware_probe::CyclicPermutation;
///
/// let mut seen: Vec<u64> = CyclicPermutation::new(100, 42).collect();
/// assert_eq!(seen.len(), 100);
/// seen.sort_unstable();
/// assert_eq!(seen, (0..100).collect::<Vec<_>>()); // a true permutation
/// ```
#[derive(Debug, Clone)]
pub struct CyclicPermutation {
    n: u64,
    p: u64,
    g: u64,
    current: u64,
    first: u64,
    exhausted: bool,
    started: bool,
}

impl CyclicPermutation {
    /// Build a permutation of `0..n`. Panics if `n == 0` (an empty scan is
    /// a caller bug) or if `n` exceeds 2^32 (beyond any IPv4 scan).
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n > 0, "empty permutation domain");
        assert!(n <= 1 << 32, "domain larger than the IPv4 space");
        let p = next_prime(n + 1);
        let g = find_generator(p, seed);
        // Random start element in [1, p).
        let first = 1 + derive_seed(seed, 0x57a7) % (p - 1);
        CyclicPermutation { n, p, g, current: first, first, exhausted: false, started: false }
    }

    /// The prime modulus chosen (exposed for tests and diagnostics).
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The group generator chosen.
    pub fn generator(&self) -> u64 {
        self.g
    }
}

impl Iterator for CyclicPermutation {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.exhausted {
            return None;
        }
        loop {
            if self.started && self.current == self.first {
                self.exhausted = true;
                return None;
            }
            self.started = true;
            let value = self.current;
            self.current = mulmod(self.current, self.g, self.p);
            if value <= self.n {
                return Some(value - 1);
            }
        }
    }
}

/// `(a * b) mod m` without overflow for m < 2^63.
fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// `(base ^ exp) mod m`.
fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin, exact for all u64 with this witness set.
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for q in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == q {
            return true;
        }
        if n.is_multiple_of(q) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Smallest prime ≥ `n`.
fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    while !is_prime(n) {
        n += 2;
    }
    n
}

/// Prime factors of `n` (distinct), by trial division — `n` here is `p−1`
/// for p just above a scan size, so this is fast in practice.
fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// Find a generator of the multiplicative group mod prime `p`, scanning
/// candidates from a seeded start: `g` generates iff `g^((p−1)/q) ≠ 1`
/// for every prime factor `q` of `p−1`.
fn find_generator(p: u64, seed: u64) -> u64 {
    if p == 2 {
        return 1;
    }
    let factors = prime_factors(p - 1);
    let start = 2 + derive_seed(seed, 0x9e4e) % (p - 2);
    for off in 0..p - 2 {
        let candidate = 2 + (start - 2 + off) % (p - 2);
        if factors.iter().all(|&q| powmod(candidate, (p - 1) / q, p) != 1) {
            return candidate;
        }
    }
    unreachable!("every prime's group has a generator");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_spot_checks() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(65_537));
        assert!(is_prime(4_294_967_311)); // smallest prime > 2^32
        assert!(!is_prime(1));
        assert!(!is_prime(65_536));
        assert!(!is_prime(4_294_967_297)); // 641 · 6700417
    }

    #[test]
    fn next_prime_examples() {
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(1_000_000), 1_000_003);
    }

    #[test]
    fn prime_factors_examples() {
        assert_eq!(prime_factors(12), vec![2, 3]);
        assert_eq!(prime_factors(97), vec![97]);
        assert_eq!(prime_factors(1_000_002), vec![2, 3, 166_667]);
    }

    #[test]
    fn permutation_is_bijective_small() {
        for n in [1u64, 2, 5, 100, 257, 1000] {
            for seed in [0u64, 1, 0xdead] {
                let mut seen = vec![false; n as usize];
                let mut count = 0usize;
                for v in CyclicPermutation::new(n, seed) {
                    assert!(v < n, "value {v} out of domain {n}");
                    assert!(!seen[v as usize], "value {v} repeated (n={n}, seed={seed})");
                    seen[v as usize] = true;
                    count += 1;
                }
                assert_eq!(count, n as usize, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn permutation_is_bijective_large() {
        let n = 100_000u64;
        let mut seen = vec![false; n as usize];
        let mut count = 0usize;
        for v in CyclicPermutation::new(n, 42) {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
            count += 1;
        }
        assert_eq!(count, n as usize);
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a: Vec<u64> = CyclicPermutation::new(1000, 1).take(20).collect();
        let b: Vec<u64> = CyclicPermutation::new(1000, 2).take(20).collect();
        assert_ne!(a, b);
        // Same seed: identical.
        let c: Vec<u64> = CyclicPermutation::new(1000, 1).take(20).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn order_is_scattered_not_sequential() {
        // The first 100 values of a 10_000-element permutation should not
        // be clustered: their spread must cover a good chunk of the domain.
        let head: Vec<u64> = CyclicPermutation::new(10_000, 7).take(100).collect();
        let min = *head.iter().min().unwrap();
        let max = *head.iter().max().unwrap();
        assert!(max - min > 5_000, "head clustered in [{min}, {max}]");
        // And not simply ascending.
        assert!(head.windows(2).any(|w| w[1] < w[0]));
    }

    #[test]
    fn generator_generates() {
        let p = next_prime(1_000);
        let g = find_generator(p, 3);
        // Order of g must be exactly p-1: g^(p-1) = 1 and g^((p-1)/q) ≠ 1.
        assert_eq!(powmod(g, p - 1, p), 1);
        for q in prime_factors(p - 1) {
            assert_ne!(powmod(g, (p - 1) / q, p), 1);
        }
    }
}
