//! The scamper-style stateful pinger used for the paper's verification
//! experiments.
//!
//! A [`PingJob`] is one probe schedule against one destination: explicit
//! send offsets, one protocol. Matching is exact per probe:
//!
//! * ICMP — the sequence number indexes the probe;
//! * UDP — each probe uses a distinct source port, which comes back inside
//!   the ICMP port-unreachable quotation;
//! * TCP — each ACK uses a distinct source port; the RST's destination
//!   port returns it.
//!
//! The runner listens for a configurable grace period after the last send
//! — the equivalent of the paper's "we run tcpdump simultaneously ...
//! effectively creating an 'indefinite' timeout", which is how latencies
//! far beyond scamper's 2 s default were observed at all.

use beware_netsim::packet::{Packet, L4};
use beware_netsim::sim::{Agent, Ctx};
use beware_netsim::time::{SimDuration, SimTime};
use beware_netsim::world::quoted_destination;
use beware_runtime::rng::derive_seed;
use beware_wire::icmp::IcmpKind;
use beware_wire::payload::ProbePayload;
use beware_wire::tcp::{TcpFlags, TcpRepr};
use std::collections::HashMap;

/// Probe protocol for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PingProto {
    /// ICMP echo request.
    Icmp,
    /// UDP datagram to an unlikely port (expects ICMP port unreachable).
    Udp,
    /// TCP ACK to port 80 (expects RST) — not SYN, to avoid looking like a
    /// vulnerability scan.
    TcpAck,
}

/// One probing schedule against one destination.
#[derive(Debug, Clone)]
pub struct PingJob {
    /// Destination address.
    pub dst: u32,
    /// Protocol.
    pub proto: PingProto,
    /// Send offsets in seconds, relative to `start_secs`. Must be
    /// ascending. At most 65 536 probes (the sequence space).
    pub offsets: Vec<f64>,
    /// Job start time in seconds from simulation epoch (stagger jobs to
    /// avoid synchronized bursts).
    pub start_secs: f64,
}

impl PingJob {
    /// `count` probes every `interval_secs`, the classic ping train.
    pub fn train(
        dst: u32,
        proto: PingProto,
        count: usize,
        interval_secs: f64,
        start_secs: f64,
    ) -> Self {
        PingJob {
            dst,
            proto,
            offsets: (0..count).map(|i| i as f64 * interval_secs).collect(),
            start_secs,
        }
    }
}

/// Result of one job: per-probe RTTs and response TTLs, in probe order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Destination probed.
    pub dst: u32,
    /// Protocol used.
    pub proto: PingProto,
    /// Per-probe RTT in seconds (`None` = no response observed).
    pub rtts: Vec<Option<f64>>,
    /// TTL of each first response as received.
    pub ttls: Vec<Option<u8>>,
    /// Responses beyond the first per probe (duplicates/floods).
    pub extra_responses: u64,
    /// ICMP host-unreachable errors received for this job.
    pub errors: u64,
}

impl JobResult {
    /// RTTs of answered probes, in probe order.
    pub fn answered(&self) -> Vec<f64> {
        self.rtts.iter().flatten().copied().collect()
    }

    /// Fraction of probes answered.
    pub fn response_rate(&self) -> f64 {
        if self.rtts.is_empty() {
            0.0
        } else {
            self.answered().len() as f64 / self.rtts.len() as f64
        }
    }
}

/// Runner configuration: everything but the job list.
#[derive(Debug, Clone)]
pub struct ScamperCfg {
    /// The prober's own address.
    pub prober_addr: u32,
    /// Determinism seed (payload key derivation).
    pub seed: u64,
    /// Listen time after the last probe of the last job — the paper's
    /// "indefinite timeout" tcpdump window.
    pub grace_secs: f64,
}

impl Default for ScamperCfg {
    fn default() -> Self {
        ScamperCfg { prober_addr: 0xC0_00_02_0C, seed: 0x5ca3, grace_secs: 120.0 }
    }
}

impl ScamperCfg {
    /// Build a runner over `jobs`. Drive it with [`crate::Prober::run`].
    /// Panics on duplicate `(dst, proto)` pairs or oversized schedules.
    pub fn build(self, jobs: Vec<PingJob>) -> ScamperRunner {
        ScamperRunner::new(jobs, self.prober_addr, self.seed, self.grace_secs)
    }
}

/// Base source port for UDP/TCP probe indexing.
const BASE_PORT: u16 = 1024;

/// Runs a set of [`PingJob`]s to completion.
pub struct ScamperRunner {
    jobs: Vec<PingJob>,
    results: Vec<JobResult>,
    send_times: Vec<Vec<Option<SimTime>>>,
    next_probe: Vec<usize>,
    by_key: HashMap<(u32, PingProto), usize>,
    prober_addr: u32,
    ident: u16,
    payload_key: u64,
    grace_secs: f64,
    jobs_done: usize,
}

const END_TOKEN: u64 = u64::MAX;

impl ScamperRunner {
    /// Build a runner. `grace_secs` is how long to keep listening after
    /// the last probe of the last job. Panics on duplicate
    /// `(dst, proto)` pairs or oversized schedules — both caller bugs.
    pub fn new(jobs: Vec<PingJob>, prober_addr: u32, seed: u64, grace_secs: f64) -> Self {
        assert!(!jobs.is_empty(), "no jobs");
        let mut by_key = HashMap::new();
        for (i, job) in jobs.iter().enumerate() {
            assert!(job.offsets.len() <= 65_536, "schedule exceeds sequence space");
            assert!(job.offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be ascending");
            let prev = by_key.insert((job.dst, job.proto), i);
            assert!(prev.is_none(), "duplicate job for dst/proto");
        }
        let results = jobs
            .iter()
            .map(|j| JobResult {
                dst: j.dst,
                proto: j.proto,
                rtts: vec![None; j.offsets.len()],
                ttls: vec![None; j.offsets.len()],
                extra_responses: 0,
                errors: 0,
            })
            .collect();
        let send_times = jobs.iter().map(|j| vec![None; j.offsets.len()]).collect();
        let next_probe = vec![0; jobs.len()];
        ScamperRunner {
            jobs,
            results,
            send_times,
            next_probe,
            by_key,
            prober_addr,
            ident: 0x5ca3,
            payload_key: derive_seed(seed, 0x5ca3),
            grace_secs,
            jobs_done: 0,
        }
    }

    /// Consume the runner, returning the per-job results.
    pub fn into_results(self) -> Vec<JobResult> {
        self.results
    }

    fn job_probe_time(&self, job_idx: usize, probe_idx: usize) -> SimTime {
        let job = &self.jobs[job_idx];
        SimTime::EPOCH + SimDuration::from_secs_f64(job.start_secs + job.offsets[probe_idx])
    }

    fn build_probe(&self, job_idx: usize, probe_idx: usize, now: SimTime) -> Packet {
        let job = &self.jobs[job_idx];
        match job.proto {
            PingProto::Icmp => {
                let payload =
                    ProbePayload { dest: job.dst, send_ns: now.as_ns() }.encode(self.payload_key);
                Packet::echo_request(
                    self.prober_addr,
                    job.dst,
                    self.ident,
                    probe_idx as u16,
                    payload.to_vec(),
                )
            }
            PingProto::Udp => Packet {
                src: self.prober_addr,
                dst: job.dst,
                ttl: 64,
                l4: L4::Udp {
                    src_port: BASE_PORT + probe_idx as u16,
                    dst_port: 33_435,
                    payload: vec![0u8; 8],
                },
            },
            PingProto::TcpAck => Packet {
                src: self.prober_addr,
                dst: job.dst,
                ttl: 64,
                l4: L4::Tcp(TcpRepr {
                    src_port: BASE_PORT + probe_idx as u16,
                    dst_port: 80,
                    seq: 0x1000_0000 + probe_idx as u32,
                    ack_no: 0x2000_0000 + probe_idx as u32,
                    flags: TcpFlags::ACK,
                    window: 1024,
                }),
            },
        }
    }

    fn record_response(&mut self, job_idx: usize, probe_idx: usize, now: SimTime, ttl: u8) {
        let Some(Some(sent)) = self.send_times[job_idx].get(probe_idx).copied() else {
            return; // response to a probe we never sent (forged/garbled)
        };
        let result = &mut self.results[job_idx];
        if result.rtts[probe_idx].is_none() {
            result.rtts[probe_idx] = Some(now.saturating_since(sent).as_secs_f64());
            result.ttls[probe_idx] = Some(ttl);
        } else {
            result.extra_responses += 1;
        }
    }

    /// Resolve `(responder, proto)` to a job, for response classification.
    fn job_for(&self, addr: u32, proto: PingProto) -> Option<usize> {
        self.by_key.get(&(addr, proto)).copied()
    }
}

impl Agent for ScamperRunner {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        for job_idx in 0..self.jobs.len() {
            if self.jobs[job_idx].offsets.is_empty() {
                self.jobs_done += 1;
                continue;
            }
            ctx.set_timer(self.job_probe_time(job_idx, 0), job_idx as u64);
        }
        if self.jobs_done == self.jobs.len() {
            ctx.set_timer(ctx.now() + SimDuration::from_secs_f64(self.grace_secs), END_TOKEN);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == END_TOKEN {
            ctx.stop();
            return;
        }
        let job_idx = token as usize;
        let probe_idx = self.next_probe[job_idx];
        let now = ctx.now();
        let probe = self.build_probe(job_idx, probe_idx, now);
        self.send_times[job_idx][probe_idx] = Some(now);
        ctx.send(probe);
        self.next_probe[job_idx] += 1;
        if self.next_probe[job_idx] < self.jobs[job_idx].offsets.len() {
            ctx.set_timer(self.job_probe_time(job_idx, self.next_probe[job_idx]), token);
        } else {
            self.jobs_done += 1;
            if self.jobs_done == self.jobs.len() {
                ctx.set_timer(now + SimDuration::from_secs_f64(self.grace_secs), END_TOKEN);
            }
        }
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        match &pkt.l4 {
            // ICMP echo reply: sequence number indexes the probe.
            L4::Icmp { kind: IcmpKind::EchoReply { seq, ident }, .. } => {
                if *ident != self.ident {
                    return;
                }
                if let Some(job_idx) = self.job_for(pkt.src, PingProto::Icmp) {
                    self.record_response(job_idx, usize::from(*seq), now, pkt.ttl);
                }
            }
            // ICMP errors: classify by the quoted original packet.
            L4::Icmp { kind: IcmpKind::DestUnreachable { code }, payload } => {
                let Some(orig_dst) = quoted_destination(payload) else { return };
                if *code == 3 {
                    // Port unreachable: the UDP "answer". The quoted bytes
                    // carry the original UDP header right after the IP
                    // header; its source port indexes the probe.
                    if payload.len() >= beware_wire::ipv4::HEADER_LEN + 2 {
                        let sp = u16::from_be_bytes([
                            payload[beware_wire::ipv4::HEADER_LEN],
                            payload[beware_wire::ipv4::HEADER_LEN + 1],
                        ]);
                        if let (Some(job_idx), Some(probe_idx)) = (
                            self.job_for(orig_dst, PingProto::Udp),
                            sp.checked_sub(BASE_PORT).map(usize::from),
                        ) {
                            self.record_response(job_idx, probe_idx, now, pkt.ttl);
                        }
                    }
                } else {
                    // Genuine unreachability error: count per matching job.
                    for proto in [PingProto::Icmp, PingProto::Udp, PingProto::TcpAck] {
                        if let Some(job_idx) = self.job_for(orig_dst, proto) {
                            self.results[job_idx].errors += 1;
                        }
                    }
                }
            }
            // TCP RST: the destination port is our probe's source port.
            L4::Tcp(tcp) if tcp.flags.rst => {
                if let (Some(job_idx), Some(probe_idx)) = (
                    self.job_for(pkt.src, PingProto::TcpAck),
                    tcp.dst_port.checked_sub(BASE_PORT).map(usize::from),
                ) {
                    self.record_response(job_idx, probe_idx, now, pkt.ttl);
                }
            }
            _ => {}
        }
    }
}

impl crate::Prober for ScamperRunner {
    type Output = Vec<JobResult>;

    fn engine(&self) -> &'static str {
        "scamper"
    }

    fn record(&self, scope: &mut beware_telemetry::Scope<'_>) {
        let sent: u64 =
            self.send_times.iter().map(|t| t.iter().filter(|s| s.is_some()).count() as u64).sum();
        scope.add("probes_sent", sent);
        scope.add("jobs", self.jobs.len() as u64);
        scope.add(
            "matched",
            self.results.iter().map(|r| r.rtts.iter().filter(|x| x.is_some()).count() as u64).sum(),
        );
        scope.add("extra_responses", self.results.iter().map(|r| r.extra_responses).sum());
        scope.add("errors", self.results.iter().map(|r| r.errors).sum());
    }

    fn finish(self) -> Vec<JobResult> {
        self.into_results()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prober;
    use beware_netsim::profile::{BlockProfile, FirewallCfg, WakeupCfg};
    use beware_netsim::rng::Dist;
    use beware_netsim::sim::RunSummary;
    use beware_netsim::world::World;
    use std::sync::Arc;

    const PROBER: u32 = 0x0101_0101;

    /// Test driver over the unified API.
    fn run(
        mut world: World,
        jobs: Vec<PingJob>,
        seed: u64,
        grace_secs: f64,
    ) -> (Vec<JobResult>, RunSummary) {
        ScamperCfg { prober_addr: PROBER, seed, grace_secs }.build(jobs).run(&mut world)
    }

    fn quiet_profile() -> BlockProfile {
        BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            ..Default::default()
        }
    }

    fn world(profile: BlockProfile) -> World {
        let mut w = World::new(21);
        w.add_block(0x0a0000, Arc::new(profile));
        w
    }

    #[test]
    fn icmp_train_measures_every_probe() {
        let jobs = vec![PingJob::train(0x0a000005, PingProto::Icmp, 10, 1.0, 0.0)];
        let (results, _) = run(world(quiet_profile()), jobs, 1, 30.0);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.answered().len(), 10);
        assert!(r.rtts.iter().all(|x| (x.unwrap() - 0.05).abs() < 1e-9));
        assert!((r.response_rate() - 1.0).abs() < 1e-12);
        assert!(r.ttls.iter().all(|t| t.is_some()));
    }

    #[test]
    fn udp_and_tcp_probes_match_exactly() {
        let jobs = vec![
            PingJob::train(0x0a000006, PingProto::Udp, 5, 1.0, 0.0),
            PingJob::train(0x0a000006, PingProto::TcpAck, 5, 1.0, 100.0),
        ];
        let (results, _) = run(world(quiet_profile()), jobs, 1, 30.0);
        for r in &results {
            assert_eq!(r.answered().len(), 5, "{:?}", r.proto);
            assert!(r.rtts.iter().all(|x| (x.unwrap() - 0.05).abs() < 1e-9));
        }
    }

    #[test]
    fn firewall_rsts_carry_constant_ttl() {
        let p = BlockProfile {
            firewall: Some(FirewallCfg { rst_delay: Dist::Constant(0.2), ttl: 243 }),
            ..quiet_profile()
        };
        let jobs = vec![
            PingJob::train(0x0a000007, PingProto::TcpAck, 3, 1.0, 0.0),
            PingJob::train(0x0a000008, PingProto::TcpAck, 3, 1.0, 0.0),
            PingJob::train(0x0a000007, PingProto::Icmp, 3, 1.0, 50.0),
        ];
        let (results, _) = run(world(p), jobs, 1, 30.0);
        for r in results.iter().filter(|r| r.proto == PingProto::TcpAck) {
            assert!(r.ttls.iter().all(|t| *t == Some(243)));
            assert!(r.rtts.iter().all(|x| (x.unwrap() - 0.2).abs() < 1e-9));
        }
        // ICMP bypasses the firewall; its TTL is the host's.
        let icmp = results.iter().find(|r| r.proto == PingProto::Icmp).unwrap();
        assert!(icmp.ttls.iter().all(|t| *t != Some(243)));
    }

    #[test]
    fn first_ping_effect_visible_in_train() {
        let p = BlockProfile {
            wakeup: Some(WakeupCfg { host_prob: 1.0, delay: Dist::Constant(2.0), tail_secs: 10.0 }),
            ..quiet_profile()
        };
        let jobs = vec![PingJob::train(0x0a000009, PingProto::Icmp, 5, 1.0, 0.0)];
        let (results, _) = run(world(p), jobs, 1, 30.0);
        let rtts = results[0].answered();
        assert!((rtts[0] - 2.05).abs() < 1e-9, "first {}", rtts[0]);
        for r in &rtts[1..] {
            assert!((r - 0.05).abs() < 1e-9, "rest {r}");
        }
    }

    #[test]
    fn unanswered_probes_are_none() {
        let p = BlockProfile { density: 0.0, ..quiet_profile() };
        let jobs = vec![PingJob::train(0x0a00000a, PingProto::Icmp, 4, 1.0, 0.0)];
        let (results, _) = run(world(p), jobs, 1, 5.0);
        assert!(results[0].rtts.iter().all(|x| x.is_none()));
        assert_eq!(results[0].response_rate(), 0.0);
    }

    #[test]
    fn offsets_schedule_respected() {
        let jobs = vec![PingJob {
            dst: 0x0a00000b,
            proto: PingProto::Icmp,
            offsets: vec![0.0, 5.0, 85.0, 86.0],
            start_secs: 10.0,
        }];
        let (results, summary) = run(world(quiet_profile()), jobs, 1, 10.0);
        assert_eq!(results[0].answered().len(), 4);
        // Last probe at t = 96, grace 10 s.
        assert!((summary.end_time.as_secs_f64() - 106.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "duplicate job")]
    fn duplicate_jobs_rejected() {
        ScamperRunner::new(
            vec![
                PingJob::train(1, PingProto::Icmp, 1, 1.0, 0.0),
                PingJob::train(1, PingProto::Icmp, 1, 1.0, 9.0),
            ],
            PROBER,
            1,
            1.0,
        );
    }

    #[test]
    fn telemetry_mirrors_job_results() {
        let mut w = world(quiet_profile());
        let jobs = vec![
            PingJob::train(0x0a000005, PingProto::Icmp, 4, 1.0, 0.0),
            PingJob::train(0x0a000006, PingProto::Udp, 3, 1.0, 50.0),
        ];
        let mut metrics = beware_telemetry::Registry::new();
        let (results, summary) = ScamperCfg { prober_addr: PROBER, seed: 1, grace_secs: 20.0 }
            .build(jobs)
            .run_with(&mut w, &mut metrics);
        assert_eq!(metrics.counter("probe/scamper/probes_sent"), Some(summary.packets_sent));
        assert_eq!(metrics.counter("probe/scamper/jobs"), Some(2));
        let matched: u64 =
            results.iter().map(|r| r.rtts.iter().filter(|x| x.is_some()).count() as u64).sum();
        assert_eq!(metrics.counter("probe/scamper/matched"), Some(matched));
        assert_eq!(matched, 7);
    }

    #[test]
    fn deterministic_results() {
        let run = || {
            let jobs = vec![PingJob::train(0x0a000005, PingProto::Icmp, 8, 1.0, 0.0)];
            run(world(quiet_profile()), jobs, 9, 10.0).0
        };
        assert_eq!(run(), run());
    }
}
