//! The ISI-survey-style prober.
//!
//! Faithful to the probing scheme Section 3 of the paper describes:
//!
//! * every selected /24 block is probed once per round (11 minutes);
//! * within a block, the 256 last octets are visited in **bit-reversed**
//!   order, one every `660/256 ≈ 2.58 s`, which puts off-by-one octets
//!   330 s apart — the property both the paper's Figure 4 false-match
//!   illustration and its broadcast-responder filter rely on;
//! * a response arriving within the match window (3 s) merges with its
//!   request into a [`Record::matched`] with a microsecond RTT;
//! * a late response yields a [`Record::timeout`] for the probe plus a
//!   [`Record::unmatched`] for the response, both second-precise;
//! * ICMP errors close the probe with a [`Record::icmp_error`].
//!
//! Block start offsets are staggered deterministically so the prober's
//! traffic spreads over the round instead of bursting.

use beware_dataset::{Record, RecordSink, SurveyStats};
use beware_netsim::packet::{Packet, L4};
use beware_netsim::rng::{coin, seeded};
use beware_netsim::sim::{Agent, Ctx};
use beware_netsim::time::{SimDuration, SimTime};
use beware_netsim::world::quoted_destination;
use beware_runtime::rng::{derive_seed, unit_hash};
use beware_wire::icmp::IcmpKind;
use beware_wire::payload::ProbePayload;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Survey prober configuration.
#[derive(Debug, Clone)]
pub struct SurveyCfg {
    /// The /24 blocks to probe (prefix values, i.e. `addr >> 8`).
    pub blocks: Vec<u32>,
    /// Number of probing rounds (the paper's surveys run ~2 weeks at 11
    /// minutes per round ≈ 1800 rounds; scale to taste).
    pub rounds: u32,
    /// Round duration in seconds (ISI: 660).
    pub round_secs: f64,
    /// Match window in seconds (ISI: 3).
    pub match_timeout_secs: f64,
    /// The prober's own address.
    pub prober_addr: u32,
    /// ICMP identifier to stamp on probes.
    pub ident: u16,
    /// Probability a would-be match is *lost by the prober* — models the
    /// broken `j`/`g` surveys the paper screens out in Section 5.2, where
    /// 20% response rates collapsed to 0.02–0.2%.
    pub match_drop_prob: f64,
    /// Determinism seed (staggering, drop decisions).
    pub seed: u64,
}

impl Default for SurveyCfg {
    fn default() -> Self {
        SurveyCfg {
            blocks: Vec::new(),
            rounds: 50,
            round_secs: 660.0,
            match_timeout_secs: 3.0,
            prober_addr: 0xC0_00_02_01, // 192.0.2.1
            ident: 0xbe_ef_u16 & 0x7fff,
            match_drop_prob: 0.0,
            seed: 0x5u64,
        }
    }
}

impl SurveyCfg {
    /// Build the survey prober writing records into `sink`; drive it with
    /// [`crate::Prober::run`].
    pub fn build<S: RecordSink>(self, sink: S) -> SurveyProber<S> {
        SurveyProber::new(self, sink)
    }
}

struct BlockSched {
    prefix24: u32,
    /// Start offset within the round, nanoseconds.
    stagger: SimDuration,
    /// Global slot index: round * 256 + position.
    pos: u32,
}

/// The survey prober agent. Generic over the record sink so callers can
/// collect in memory, stream to disk, or keep only statistics.
pub struct SurveyProber<S: RecordSink> {
    cfg: SurveyCfg,
    sink: S,
    stats: SurveyStats,
    blocks: Vec<BlockSched>,
    /// Outstanding probe per address: send time.
    outstanding: HashMap<u32, SimTime>,
    payload_key: u64,
    rng: StdRng,
    slot: SimDuration,
    finished_blocks: usize,
}

/// Timer token marking end-of-survey grace expiry.
const END_TOKEN: u64 = u64::MAX;

impl<S: RecordSink> SurveyProber<S> {
    /// Build a prober writing records into `sink`.
    pub fn new(cfg: SurveyCfg, sink: S) -> Self {
        assert!(!cfg.blocks.is_empty(), "survey needs at least one block");
        assert!(cfg.rounds > 0, "survey needs at least one round");
        let slot = SimDuration::from_secs_f64(cfg.round_secs / 256.0);
        let blocks = cfg
            .blocks
            .iter()
            .map(|&prefix24| BlockSched {
                prefix24,
                stagger: SimDuration::from_secs_f64(
                    unit_hash(cfg.seed, u64::from(prefix24)) * cfg.round_secs,
                ),
                pos: 0,
            })
            .collect();
        let rng = seeded(derive_seed(cfg.seed, 0x5042));
        let payload_key = derive_seed(cfg.seed, 0xbead);
        SurveyProber {
            cfg,
            sink,
            stats: SurveyStats::default(),
            blocks,
            outstanding: HashMap::new(),
            payload_key,
            rng,
            slot,
            finished_blocks: 0,
        }
    }

    /// Consume the prober, returning the sink and aggregate statistics.
    pub fn into_parts(self) -> (S, SurveyStats) {
        (self.sink, self.stats)
    }

    fn emit(&mut self, record: Record) {
        self.stats.count(&record);
        self.sink.push(record);
    }

    /// Close a still-outstanding probe as a timeout.
    fn close_as_timeout(&mut self, addr: u32, sent: SimTime) {
        self.emit(Record::timeout(addr, sent.as_secs() as u32));
    }
}

impl<S: RecordSink> Agent for SurveyProber<S> {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        for (idx, block) in self.blocks.iter().enumerate() {
            ctx.set_timer(SimTime::EPOCH + block.stagger, idx as u64);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == END_TOKEN {
            // Grace period over: flush every outstanding probe as timeout.
            // Sorted by (send time, address) so the record stream is
            // deterministic despite HashMap iteration order.
            let mut outstanding: Vec<(u32, SimTime)> = self.outstanding.drain().collect();
            outstanding.sort_unstable_by_key(|&(addr, sent)| (sent, addr));
            for (addr, sent) in outstanding {
                self.close_as_timeout(addr, sent);
            }
            ctx.stop();
            return;
        }
        let idx = token as usize;
        let (dst, send_at, next_at, finished) = {
            let block = &mut self.blocks[idx];
            if block.pos >= self.cfg.rounds * 256 {
                (0, SimTime::EPOCH, SimTime::EPOCH, true)
            } else {
                let octet = crate::bitrev8((block.pos % 256) as u8);
                let dst = (block.prefix24 << 8) | u32::from(octet);
                let send_at =
                    SimTime::EPOCH + block.stagger + self.slot.saturating_mul(u64::from(block.pos));
                block.pos += 1;
                let next_at =
                    SimTime::EPOCH + block.stagger + self.slot.saturating_mul(u64::from(block.pos));
                (dst, send_at, next_at, false)
            }
        };
        if finished {
            self.finished_blocks += 1;
            if self.finished_blocks == self.blocks.len() {
                // Keep listening one extra round for stragglers, then end.
                let grace = SimDuration::from_secs_f64(self.cfg.round_secs);
                ctx.set_timer(ctx.now() + grace, END_TOKEN);
            }
            return;
        }

        // If the previous round's probe to this address is still open, it
        // has long exceeded the window (rounds ≫ timeout): record timeout.
        if let Some(sent) = self.outstanding.remove(&dst) {
            self.close_as_timeout(dst, sent);
        }
        let now = ctx.now();
        debug_assert_eq!(now, send_at, "timer drift");
        let payload = ProbePayload { dest: dst, send_ns: now.as_ns() }.encode(self.payload_key);
        let seq = (self.blocks[idx].pos.wrapping_sub(1) & 0xffff) as u16;
        let probe =
            Packet::echo_request(self.cfg.prober_addr, dst, self.cfg.ident, seq, payload.to_vec());
        self.outstanding.insert(dst, now);
        ctx.send(probe);
        ctx.set_timer(next_at, token);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        match &pkt.l4 {
            L4::Icmp { kind: IcmpKind::EchoReply { .. }, .. } => {
                let src = pkt.src;
                match self.outstanding.get(&src).copied() {
                    Some(sent) => {
                        let rtt = now.saturating_since(sent);
                        if rtt.as_secs_f64() <= self.cfg.match_timeout_secs {
                            // Within the window: a survey-detected response
                            // — unless the (possibly broken) prober drops it.
                            if coin(&mut self.rng, self.cfg.match_drop_prob) {
                                return; // probe stays open, times out later
                            }
                            self.outstanding.remove(&src);
                            self.emit(Record::matched(
                                src,
                                sent.as_secs() as u32,
                                rtt.as_us() as u32,
                            ));
                        } else {
                            // Too late: the probe timed out, the response
                            // is recorded unmatched, both second-precise.
                            self.outstanding.remove(&src);
                            self.close_as_timeout(src, sent);
                            self.emit(Record::unmatched(src, now.as_secs() as u32));
                        }
                    }
                    None => {
                        // No probe open for this source (duplicate, or a
                        // broadcast response from a neighbor address).
                        self.emit(Record::unmatched(src, now.as_secs() as u32));
                    }
                }
            }
            L4::Icmp { kind: IcmpKind::DestUnreachable { code }, payload } => {
                if let Some(dst) = quoted_destination(payload) {
                    if let Some(sent) = self.outstanding.remove(&dst) {
                        self.emit(Record::icmp_error(dst, sent.as_secs() as u32, *code));
                    }
                }
            }
            _ => {}
        }
    }
}

impl<S: RecordSink> crate::Prober for SurveyProber<S> {
    type Output = (S, SurveyStats);

    fn engine(&self) -> &'static str {
        "survey"
    }

    fn record(&self, scope: &mut beware_telemetry::Scope<'_>) {
        scope.add("probes_sent", self.stats.probes());
        scope.add("matched", self.stats.matched);
        scope.add("timeouts", self.stats.timeouts);
        // Responses past the match window plus foreign/broadcast arrivals
        // — the survey's "recovered late" population.
        scope.add("unmatched", self.stats.unmatched);
        scope.add("errors", self.stats.errors);
    }

    fn finish(self) -> (S, SurveyStats) {
        self.into_parts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prober;
    use beware_dataset::Record;
    use beware_netsim::profile::{BlockProfile, BroadcastCfg};
    use beware_netsim::rng::Dist;
    use beware_netsim::sim::RunSummary;
    use beware_netsim::world::World;
    use std::sync::Arc;

    /// Test driver over the unified API, collecting records in memory.
    fn survey(mut world: World, cfg: SurveyCfg) -> (Vec<Record>, SurveyStats, RunSummary) {
        let ((records, stats), summary) = cfg.build(Vec::new()).run(&mut world);
        (records, stats, summary)
    }

    fn quiet_profile() -> BlockProfile {
        BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            ..Default::default()
        }
    }

    fn one_block_world(profile: BlockProfile) -> World {
        let mut w = World::new(11);
        w.add_block(0x0a0000, Arc::new(profile));
        w
    }

    fn cfg(rounds: u32) -> SurveyCfg {
        SurveyCfg { blocks: vec![0x0a0000], rounds, ..Default::default() }
    }

    #[test]
    fn responsive_block_yields_matched_records() {
        let (records, stats, _) = survey(one_block_world(quiet_profile()), cfg(2));
        // 254 live hosts (.0/.255 excluded) × 2 rounds, all matched.
        assert_eq!(stats.matched, 254 * 2);
        // .0 and .255 never answer (no broadcast configured): timeouts.
        assert_eq!(stats.timeouts, 2 * 2);
        assert_eq!(stats.unmatched, 0);
        let rtts: Vec<f64> = records.iter().filter_map(|r| r.rtt_secs()).collect();
        assert!(rtts.iter().all(|&r| (r - 0.05).abs() < 1e-3));
    }

    #[test]
    fn sparse_block_times_out() {
        let profile = BlockProfile { density: 0.0, ..quiet_profile() };
        let (_, stats, _) = survey(one_block_world(profile), cfg(1));
        assert_eq!(stats.matched, 0);
        assert_eq!(stats.timeouts, 256);
    }

    #[test]
    fn within_block_schedule_spaces_adjacent_octets_half_round() {
        // Capture send order via probe times: all probes hit one block, so
        // reconstruct schedule from records of a no-response world.
        let profile = BlockProfile { density: 0.0, ..quiet_profile() };
        let (records, _, _) = survey(one_block_world(profile), cfg(1));
        let mut time_of = HashMap::new();
        for r in &records {
            time_of.insert(r.addr & 0xff, r.time_s);
        }
        let d = i64::from(time_of[&254]) - i64::from(time_of[&255]);
        assert!((d.abs() - 330).abs() <= 2, "254/255 spacing {d}");
        let d = i64::from(time_of[&0]) - i64::from(time_of[&1]);
        assert!((d.abs() - 330).abs() <= 2, "0/1 spacing {d}");
        // Octets differing in bit 1: 165 s.
        let d = i64::from(time_of[&252]) - i64::from(time_of[&254]);
        assert!((d.abs() - 165).abs() <= 2, "252/254 spacing {d}");
    }

    #[test]
    fn slow_host_recorded_as_timeout_plus_unmatched() {
        // Base RTT 20 s: every response arrives past the 3 s window.
        let profile = BlockProfile { base_rtt: Dist::Constant(20.0), ..quiet_profile() };
        let (records, stats, _) = survey(one_block_world(profile), cfg(1));
        assert_eq!(stats.matched, 0);
        assert_eq!(stats.unmatched, 254);
        assert_eq!(stats.timeouts, 256); // 254 late + 2 dead broadcast addrs
                                         // Unmatched recv = probe time + 20 s.
        let sent: HashMap<u32, u32> =
            records.iter().filter(|r| r.is_timeout()).map(|r| (r.addr, r.time_s)).collect();
        for r in records.iter().filter(|r| r.is_unmatched()) {
            let lat = i64::from(r.time_s) - i64::from(sent[&r.addr]);
            assert!((lat - 20).abs() <= 1, "latency {lat}");
        }
    }

    #[test]
    fn broadcast_block_produces_unmatched_responses() {
        let profile = BlockProfile {
            broadcast: Some(BroadcastCfg {
                responder_prob: 1.0,
                edge_responder_prob: 1.0,
                unicast_silent_prob: 0.0,
                network_addr_responds: false,
            }),
            ..quiet_profile()
        };
        let (_, stats, _) = survey(one_block_world(profile), cfg(1));
        // Probing .255 triggers 254 neighbor responses; each neighbor
        // either has its own probe open (matched against the wrong probe
        // only if within 3 s — but their probes are ≥2.58 s away, so some
        // match, some land unmatched). At minimum, many unmatched appear.
        assert!(stats.unmatched > 100, "unmatched {}", stats.unmatched);
    }

    #[test]
    fn match_drop_prob_breaks_response_rate() {
        let (_, healthy, _) = survey(one_block_world(quiet_profile()), cfg(2));
        let mut c = cfg(2);
        c.match_drop_prob = 0.999;
        let (_, broken, _) = survey(one_block_world(quiet_profile()), c);
        assert!(healthy.response_rate() > 0.9);
        assert!(broken.response_rate() < 0.01, "rate {}", broken.response_rate());
    }

    #[test]
    fn deterministic_records() {
        let run = || survey(one_block_world(quiet_profile()), cfg(2)).0;
        assert_eq!(run(), run());
    }

    #[test]
    fn icmp_errors_recorded_and_excluded_from_matches() {
        let profile = BlockProfile { error_prob: 1.0, ..quiet_profile() };
        let (records, stats, _) = survey(one_block_world(profile), cfg(1));
        assert_eq!(stats.matched, 0);
        assert_eq!(stats.errors, 254);
        assert!(records
            .iter()
            .any(|r| matches!(r.kind, beware_dataset::RecordKind::IcmpError { code: 1 })));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_block_list_rejected() {
        SurveyProber::new(SurveyCfg::default(), Vec::new());
    }

    #[test]
    fn telemetry_mirrors_stats() {
        let mut world = one_block_world(quiet_profile());
        let mut reg = beware_telemetry::Registry::new();
        let ((_, stats), _) = cfg(2).build(Vec::new()).run_with(&mut world, &mut reg);
        assert_eq!(reg.counter("probe/survey/matched"), Some(stats.matched));
        assert_eq!(reg.counter("probe/survey/timeouts"), Some(stats.timeouts));
        assert_eq!(reg.counter("probe/survey/probes_sent"), Some(stats.probes()));
        // The netsim family was recorded by the same run.
        assert_eq!(reg.counter("netsim/probes"), Some(stats.probes()));
        // The world swap left a usable world behind.
        assert_eq!(world.stats().probes, stats.probes());
    }
}
