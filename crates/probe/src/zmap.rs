//! The stateless (zmap-style) scanner.
//!
//! No per-probe state: the echo payload carries the probed destination and
//! the send timestamp (plus a validation tag), so a response — from
//! whatever source address, however late — is self-describing. This is the
//! design the paper's authors contributed upstream so zmap could compute
//! RTTs and expose broadcast responders; both Figure 2 (broadcast last
//! octets) and Figure 7 (scan RTT distributions) depend on it.
//!
//! Target order comes from [`crate::permutation::CyclicPermutation`], and
//! sends are paced uniformly over the configured scan duration (real scans
//! took 10.5 hours; scale to taste).

use crate::permutation::CyclicPermutation;
use beware_asdb::PrefixTrie;
use beware_dataset::{ScanMeta, ScanRecord, ZmapScan};
use beware_netsim::packet::{Packet, L4};
use beware_netsim::sim::{Agent, Ctx};
use beware_netsim::time::{SimDuration, SimTime};
use beware_runtime::rng::derive_seed;
use beware_wire::icmp::IcmpKind;
use beware_wire::payload::ProbePayload;

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct ZmapCfg {
    /// /24 blocks to scan (each contributes all 256 addresses, exactly as
    /// a full-Internet scan would visit them).
    pub blocks: Vec<u32>,
    /// Wall-clock length of the sending phase, seconds.
    pub duration_secs: f64,
    /// Extra listening time after the last probe, seconds — long enough to
    /// catch the >100 s responders the paper reports.
    pub cooldown_secs: f64,
    /// Probes transmitted per scheduling tick (batching keeps the event
    /// queue small on million-address scans).
    pub batch: u32,
    /// The scanner's own address.
    pub prober_addr: u32,
    /// ICMP identifier stamped on probes.
    pub ident: u16,
    /// Determinism seed (permutation + payload key).
    pub seed: u64,
    /// Excluded prefixes `(prefix, len)` — the scanner never probes
    /// addresses they cover (zmap's blocklist: military ranges, opt-outs).
    pub exclude: Vec<(u32, u8)>,
}

impl Default for ZmapCfg {
    fn default() -> Self {
        ZmapCfg {
            blocks: Vec::new(),
            duration_secs: 3_600.0,
            cooldown_secs: 180.0,
            batch: 64,
            prober_addr: 0xC0_00_02_02, // 192.0.2.2
            ident: 0x2a2a,
            seed: 0x2e7a,
            exclude: Vec::new(),
        }
    }
}

impl ZmapCfg {
    /// Build the scanner; `meta` labels the output scan. Drive it with
    /// [`crate::Prober::run`].
    pub fn build(self, meta: ScanMeta) -> ZmapScanner {
        ZmapScanner::new(self, meta)
    }
}

/// The scanner agent.
pub struct ZmapScanner {
    cfg: ZmapCfg,
    perm: CyclicPermutation,
    total: u64,
    sent: u64,
    payload_key: u64,
    scan: ZmapScan,
    blocklist: PrefixTrie<()>,
    /// Targets skipped because a blocklist prefix covered them.
    pub excluded: u64,
    /// Responses that failed payload validation (foreign/corrupt).
    pub invalid_payloads: u64,
}

const SEND_TOKEN: u64 = 0;
const END_TOKEN: u64 = 1;

impl ZmapScanner {
    /// Build a scanner; `meta` labels the output scan.
    pub fn new(cfg: ZmapCfg, meta: ScanMeta) -> Self {
        assert!(!cfg.blocks.is_empty(), "scan needs at least one block");
        let total = cfg.blocks.len() as u64 * 256;
        let perm = CyclicPermutation::new(total, derive_seed(cfg.seed, 0x9e2a));
        let payload_key = derive_seed(cfg.seed, 0xbead);
        let mut blocklist = PrefixTrie::new();
        for &(prefix, len) in &cfg.exclude {
            blocklist.insert(prefix, len, ());
        }
        ZmapScanner {
            cfg,
            perm,
            total,
            sent: 0,
            payload_key,
            scan: ZmapScan::new(meta),
            blocklist,
            excluded: 0,
            invalid_payloads: 0,
        }
    }

    /// Consume the scanner, returning the completed scan.
    pub fn into_scan(self) -> ZmapScan {
        self.scan
    }

    fn index_to_addr(&self, idx: u64) -> u32 {
        let block = self.cfg.blocks[(idx >> 8) as usize];
        (block << 8) | (idx & 0xff) as u32
    }

    fn send_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.cfg.duration_secs / self.total as f64)
    }
}

impl Agent for ZmapScanner {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimTime::EPOCH, SEND_TOKEN);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == END_TOKEN {
            ctx.stop();
            return;
        }
        let interval = self.send_interval();
        for _ in 0..self.cfg.batch {
            let Some(idx) = self.perm.next() else {
                // Sending phase over: listen through the cooldown.
                let grace = SimDuration::from_secs_f64(self.cfg.cooldown_secs);
                ctx.set_timer(ctx.now() + grace, END_TOKEN);
                return;
            };
            let dst = self.index_to_addr(idx);
            if self.blocklist.lookup(dst).is_some() {
                self.excluded += 1;
                continue;
            }
            let now = ctx.now();
            let payload = ProbePayload { dest: dst, send_ns: now.as_ns() }.encode(self.payload_key);
            let seq = (self.sent & 0xffff) as u16;
            self.sent += 1;
            ctx.send(Packet::echo_request(
                self.cfg.prober_addr,
                dst,
                self.cfg.ident,
                seq,
                payload.to_vec(),
            ));
        }
        let next = ctx.now() + interval.saturating_mul(u64::from(self.cfg.batch));
        ctx.set_timer(next, SEND_TOKEN);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let L4::Icmp { kind: IcmpKind::EchoReply { .. }, payload } = &pkt.l4 {
            match ProbePayload::decode(payload, self.payload_key) {
                Ok(p) => {
                    let Some(rtt_ns) = p.rtt_ns(ctx.now().as_ns()) else { return };
                    let rtt_us = (rtt_ns / 1_000).min(u64::from(u32::MAX)) as u32;
                    self.scan.records.push(ScanRecord {
                        probed: p.dest,
                        responder: pkt.src,
                        rtt_us,
                    });
                }
                Err(_) => self.invalid_payloads += 1,
            }
        }
    }
}

impl crate::Prober for ZmapScanner {
    type Output = ZmapScan;

    fn engine(&self) -> &'static str {
        "zmap"
    }

    fn record(&self, scope: &mut beware_telemetry::Scope<'_>) {
        scope.add("probes_sent", self.sent);
        scope.add("responses", self.scan.records.len() as u64);
        scope.add("cross_address", self.scan.cross_address_records().count() as u64);
        scope.add("excluded", self.excluded);
        scope.add("invalid_payloads", self.invalid_payloads);
    }

    fn finish(self) -> ZmapScan {
        self.into_scan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prober;
    use beware_netsim::profile::{BlockProfile, BroadcastCfg};
    use beware_netsim::rng::Dist;
    use beware_netsim::sim::RunSummary;
    use beware_netsim::world::World;
    use std::sync::Arc;

    /// Test driver over the unified API.
    fn scan(mut world: World, cfg: ZmapCfg) -> (ZmapScan, RunSummary) {
        cfg.build(meta()).run(&mut world)
    }

    fn meta() -> ScanMeta {
        ScanMeta { label: "test".into(), day: "Mon".into(), begin: "00:00".into() }
    }

    fn quiet_profile() -> BlockProfile {
        BlockProfile {
            base_rtt: Dist::Constant(0.08),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            ..Default::default()
        }
    }

    fn cfg(blocks: Vec<u32>) -> ZmapCfg {
        ZmapCfg { blocks, duration_secs: 60.0, cooldown_secs: 30.0, ..Default::default() }
    }

    #[test]
    fn scan_covers_every_live_address_once() {
        let mut w = World::new(5);
        w.add_block(0x0a0000, Arc::new(quiet_profile()));
        w.add_block(0x0a0001, Arc::new(quiet_profile()));
        let (scan, summary) = scan(w, cfg(vec![0x0a0000, 0x0a0001]));
        assert_eq!(summary.packets_sent, 512);
        // 254 live per block (bcast/network dead, no broadcast cfg).
        assert_eq!(scan.response_count(), 508);
        assert_eq!(scan.responder_count(), 508);
        // Every responder was probed directly.
        assert!(scan.records.iter().all(|r| !r.is_cross_address()));
        // RTTs reflect the constant world.
        assert!(scan.records.iter().all(|r| (r.rtt_secs() - 0.08).abs() < 0.002));
    }

    #[test]
    fn broadcast_responders_show_cross_address_records() {
        let mut w = World::new(5);
        w.add_block(
            0x0a0000,
            Arc::new(BlockProfile {
                broadcast: Some(BroadcastCfg {
                    responder_prob: 1.0,
                    edge_responder_prob: 1.0,
                    unicast_silent_prob: 0.0,
                    network_addr_responds: true,
                }),
                ..quiet_profile()
            }),
        );
        let (scan, _) = scan(w, cfg(vec![0x0a0000]));
        let cross: Vec<_> = scan.cross_address_records().collect();
        // Probing .255 and .0 each triggered 254 neighbor replies.
        assert_eq!(cross.len(), 508);
        assert!(cross.iter().all(|r| r.probed == 0x0a0000ff || r.probed == 0x0a000000));
        assert!(cross.iter().all(|r| r.responder != r.probed));
    }

    #[test]
    fn blocklist_excludes_covered_addresses() {
        let mut w = World::new(5);
        w.add_block(0x0a0000, Arc::new(quiet_profile()));
        w.add_block(0x0a0001, Arc::new(quiet_profile()));
        // Exclude the entire second block plus half of the first.
        let cfg = ZmapCfg {
            exclude: vec![(0x0a000100, 24), (0x0a000080, 25)],
            ..cfg(vec![0x0a0000, 0x0a0001])
        };
        let scanner = ZmapScanner::new(cfg, meta());
        let (scanner, _, summary) = beware_netsim::Simulation::new(w, scanner).run();
        assert_eq!(scanner.excluded, 256 + 128);
        assert_eq!(summary.packets_sent, 512 - 256 - 128);
        let scan = scanner.into_scan();
        assert!(
            scan.records.iter().all(|r| r.probed < 0x0a000080),
            "no probed address may fall in an excluded range"
        );
    }

    #[test]
    fn scan_is_deterministic() {
        let run = || {
            let mut w = World::new(5);
            w.add_block(0x0a0000, Arc::new(quiet_profile()));
            let (scan, _) = scan(w, cfg(vec![0x0a0000]));
            scan.records
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pacing_spreads_sends_over_duration() {
        let mut w = World::new(5);
        w.add_block(0x0a0000, Arc::new(BlockProfile { density: 0.0, ..quiet_profile() }));
        let (_, summary) = scan(w, cfg(vec![0x0a0000]));
        // End time ≈ duration + cooldown.
        let end = summary.end_time.as_secs_f64();
        assert!((85.0..95.0).contains(&end), "end {end}");
    }

    #[test]
    fn telemetry_mirrors_scan_counts() {
        let mut w = World::new(5);
        w.add_block(0x0a0000, Arc::new(quiet_profile()));
        let mut metrics = beware_telemetry::Registry::new();
        let (scan, summary) = cfg(vec![0x0a0000]).build(meta()).run_with(&mut w, &mut metrics);
        assert_eq!(metrics.counter("probe/zmap/probes_sent"), Some(summary.packets_sent));
        assert_eq!(metrics.counter("probe/zmap/responses"), Some(scan.records.len() as u64));
        assert_eq!(metrics.counter("probe/zmap/excluded"), Some(0));
        assert_eq!(metrics.counter("netsim/probes"), Some(summary.packets_sent));
    }

    #[test]
    fn slow_responders_caught_within_cooldown() {
        let mut w = World::new(5);
        w.add_block(
            0x0a0000,
            Arc::new(BlockProfile { base_rtt: Dist::Constant(20.0), ..quiet_profile() }),
        );
        let (scan, _) = scan(w, cfg(vec![0x0a0000]));
        assert_eq!(scan.response_count(), 254);
        assert!(scan.records.iter().all(|r| (r.rtt_secs() - 20.0).abs() < 0.01));
    }
}
