//! Property tests over the probing engines: permutation bijectivity at
//! arbitrary sizes, schedule arithmetic of the survey prober, and scamper
//! result-shape invariants.

use beware_netsim::profile::BlockProfile;
use beware_netsim::rng::Dist;
use beware_netsim::world::World;
use beware_probe::bitrev8;
use beware_probe::permutation::CyclicPermutation;
use beware_probe::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permutation_bijective_at_any_size(n in 1u64..5_000, seed in any::<u64>()) {
        let mut seen = vec![false; n as usize];
        let mut count = 0u64;
        for v in CyclicPermutation::new(n, seed) {
            prop_assert!(v < n);
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
            count += 1;
        }
        prop_assert_eq!(count, n);
    }

    #[test]
    fn bitrev_distance_reflects_bit_position(octet in any::<u8>(), bit in 0u32..8) {
        // Flipping bit b of the octet moves its probe slot by exactly
        // 256 >> (b+1) positions — the property behind the paper's
        // 165/330/495 s artifact latencies.
        let other = octet ^ (1 << bit);
        let d = (i32::from(bitrev8(octet)) - i32::from(bitrev8(other))).unsigned_abs();
        prop_assert_eq!(d, 128u32 >> bit);
    }

    #[test]
    fn survey_record_count_conservation(density in 0.0f64..=1.0, rounds in 1u32..4, seed in any::<u64>()) {
        let mut w = World::new(seed);
        w.add_block(0x0a0000, Arc::new(BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            ..Default::default()
        }));
        let cfg = SurveyCfg { blocks: vec![0x0a0000], rounds, seed, ..Default::default() };
        let ((_, stats), summary) = cfg.build(Vec::new()).run(&mut w);
        // Every probe becomes exactly one record: matched, timeout or error.
        prop_assert_eq!(stats.probes(), u64::from(rounds) * 256);
        prop_assert_eq!(summary.packets_sent, u64::from(rounds) * 256);
        // With a 50 ms world and no loss, nothing is unmatched.
        prop_assert_eq!(stats.unmatched, 0);
    }

    #[test]
    fn scamper_results_aligned_with_jobs(counts in proptest::collection::vec(1usize..12, 1..8), seed in any::<u64>()) {
        let mut w = World::new(seed);
        w.add_block(0x0a0000, Arc::new(BlockProfile {
            base_rtt: Dist::Constant(0.05),
            jitter: Dist::Constant(0.0),
            density: 1.0,
            response_prob: 1.0,
            error_prob: 0.0,
            dup_prob: 0.0,
            ..Default::default()
        }));
        let jobs: Vec<PingJob> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| PingJob::train(0x0a000002 + i as u32, PingProto::Icmp, c, 1.0, i as f64))
            .collect();
        let (results, _) = ScamperCfg { prober_addr: 0x01010101, seed, grace_secs: 10.0 }
            .build(jobs)
            .run(&mut w);
        prop_assert_eq!(results.len(), counts.len());
        for (r, &c) in results.iter().zip(&counts) {
            prop_assert_eq!(r.rtts.len(), c);
            prop_assert_eq!(r.ttls.len(), c);
            // Constant world: every probe answered at 50 ms.
            prop_assert!(r.rtts.iter().all(|x| x.is_some_and(|v| (v - 0.05).abs() < 1e-9)));
        }
    }
}
